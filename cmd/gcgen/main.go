// Command gcgen generates graph datasets and query workloads in the
// repository's text codec, for feeding external tools or re-running
// experiments from files.
//
// Usage:
//
//	gcgen -kind molecules -count 100 -out dataset.txt
//	gcgen -kind social -count 50 -n 100 -out social.txt
//	gcgen -kind workload -dataset dataset.txt -queries 100 -out workload.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a clean exit
		}
		fmt.Fprintf(os.Stderr, "gcgen: %v\n", err)
		os.Exit(1)
	}
}

// run generates the requested dataset or workload. It is main minus the
// process plumbing — flags come from args, `-out -` writes to stdout —
// so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "molecules", "molecules | social | er | workload")
		count   = fs.Int("count", 100, "number of graphs to generate")
		n       = fs.Int("n", 100, "vertices per graph (social/er)")
		p       = fs.Float64("p", 0.05, "edge probability (er)")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "-", "output file ('-' = stdout)")
		dsPath  = fs.String("dataset", "", "dataset file (workload kind)")
		queries = fs.Int("queries", 100, "workload size (workload kind)")
		qtype   = fs.String("type", "subgraph", "workload query type: subgraph | supergraph")
		zipf    = fs.Float64("zipf", 1.2, "workload popularity skew (≤1 = uniform)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "molecules":
		gs := gen.Molecules(rng, *count, gen.DefaultMoleculeConfig())
		return graph.WriteAll(w, gs)
	case "social":
		gs := gen.BADataset(rng, *count, *n, 2, 8)
		return graph.WriteAll(w, gs)
	case "er":
		gs := gen.ERDataset(rng, *count, *n, *p, 8)
		return graph.WriteAll(w, gs)
	case "workload":
		if *dsPath == "" {
			return fmt.Errorf("workload generation requires -dataset")
		}
		f, err := os.Open(*dsPath)
		if err != nil {
			return err
		}
		dataset, err := graph.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		dataset = gen.AssignIDs(dataset)
		cfg := gen.DefaultWorkloadConfig()
		cfg.Size = *queries
		cfg.PoolSize = *queries/2 + 1
		cfg.ZipfS = *zipf
		if *qtype == "supergraph" {
			cfg.Type = ftv.Supergraph
		}
		wl, err := gen.NewWorkload(rng, dataset, cfg)
		if err != nil {
			return err
		}
		// Queries are written consecutively; the id encodes the pool entry
		// so resubmissions are recognizable downstream.
		qs := make([]*graph.Graph, len(wl.Queries))
		for i, q := range wl.Queries {
			qs[i] = q.G.WithID(q.PoolID)
		}
		return graph.WriteAll(w, qs)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}
