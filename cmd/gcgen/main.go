// Command gcgen generates graph datasets and query workloads in the
// repository's text codec, for feeding external tools or re-running
// experiments from files.
//
// Usage:
//
//	gcgen -kind molecules -count 100 -out dataset.txt
//	gcgen -kind social -count 50 -n 100 -out social.txt
//	gcgen -kind workload -dataset dataset.txt -queries 100 -out workload.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

func main() {
	var (
		kind    = flag.String("kind", "molecules", "molecules | social | er | workload")
		count   = flag.Int("count", 100, "number of graphs to generate")
		n       = flag.Int("n", 100, "vertices per graph (social/er)")
		p       = flag.Float64("p", 0.05, "edge probability (er)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "-", "output file ('-' = stdout)")
		dsPath  = flag.String("dataset", "", "dataset file (workload kind)")
		queries = flag.Int("queries", 100, "workload size (workload kind)")
		qtype   = flag.String("type", "subgraph", "workload query type: subgraph | supergraph")
		zipf    = flag.Float64("zipf", 1.2, "workload popularity skew (≤1 = uniform)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "molecules":
		gs := gen.Molecules(rng, *count, gen.DefaultMoleculeConfig())
		if err := graph.WriteAll(w, gs); err != nil {
			fatal(err)
		}
	case "social":
		gs := gen.BADataset(rng, *count, *n, 2, 8)
		if err := graph.WriteAll(w, gs); err != nil {
			fatal(err)
		}
	case "er":
		gs := gen.ERDataset(rng, *count, *n, *p, 8)
		if err := graph.WriteAll(w, gs); err != nil {
			fatal(err)
		}
	case "workload":
		if *dsPath == "" {
			fatal(fmt.Errorf("workload generation requires -dataset"))
		}
		f, err := os.Open(*dsPath)
		if err != nil {
			fatal(err)
		}
		dataset, err := graph.ReadAll(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		dataset = gen.AssignIDs(dataset)
		cfg := gen.DefaultWorkloadConfig()
		cfg.Size = *queries
		cfg.PoolSize = *queries/2 + 1
		cfg.ZipfS = *zipf
		if *qtype == "supergraph" {
			cfg.Type = ftv.Supergraph
		}
		wl, err := gen.NewWorkload(rng, dataset, cfg)
		if err != nil {
			fatal(err)
		}
		// Queries are written consecutively; the id encodes the pool entry
		// so resubmissions are recognizable downstream.
		qs := make([]*graph.Graph, len(wl.Queries))
		for i, q := range wl.Queries {
			qs[i] = q.G.WithID(q.PoolID)
		}
		if err := graph.WriteAll(w, qs); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gcgen: %v\n", err)
	os.Exit(1)
}
