package main

import (
	"bytes"
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"graphcache/internal/graph"
)

// TestRunMolecules generates a small molecule dataset to stdout and
// round-trips it through the text codec.
func TestRunMolecules(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "molecules", "-count", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	gs, err := graph.ReadAll(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(gs) != 5 {
		t.Fatalf("got %d graphs, want 5", len(gs))
	}
}

// TestRunWorkload writes a dataset to a file, then generates a workload
// over it — the two-step pipeline the command exists for.
func TestRunWorkload(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "dataset.txt")
	if err := run([]string{"-kind", "molecules", "-count", "20", "-out", ds}, nil); err != nil {
		t.Fatalf("dataset: %v", err)
	}
	var out bytes.Buffer
	if err := run([]string{"-kind", "workload", "-dataset", ds, "-queries", "10"}, &out); err != nil {
		t.Fatalf("workload: %v", err)
	}
	qs, err := graph.ReadAll(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-kind", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown kind: want error")
	}
	if err := run([]string{"-kind", "workload"}, &bytes.Buffer{}); err == nil {
		t.Fatal("workload without -dataset: want error")
	}
	if err := run([]string{"-h"}, &bytes.Buffer{}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: got %v, want flag.ErrHelp", err)
	}
}
