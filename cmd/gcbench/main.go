// Command gcbench regenerates the paper's evaluation artifacts (DESIGN.md
// §4): Figure 3 (The Query Journey), Figure 2(b) (The Workload Run),
// Figure 2(c) (cache replacement across policies), the §3.1.I policy
// competition, the §3.1.II speedup-versus-overhead study, the headline
// speedup run and the live-churn maintenance comparison.
//
// Usage:
//
//	gcbench -exp all
//	gcbench -exp fig3 -seed 2018
//	gcbench -exp policies -queries 2000
//	gcbench -exp overhead
//	gcbench -exp headline -dataset 1000 -queries 5000
//	gcbench -exp churn -dataset 150 -queries 400
//	gcbench -exp scaling                      # large tier: 10k graphs, 10k queries, GOMAXPROCS sweep
//	gcbench -exp scaling -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -cpuprofile and -memprofile capture pprof profiles of whichever
// experiments ran — the raw material for the hot-path memory discipline
// work (internal/core/doc.go). -exp scaling is deliberately NOT part of
// -exp all: it runs minutes of wall-clock by design.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graphcache/internal/bench"
	"graphcache/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a clean exit
		}
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		os.Exit(1)
	}
}

// run executes the selected experiments against args, writing reports to
// stdout. It is main minus the process plumbing, so tests can drive it
// directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: fig3 | workloadrun | fig2c | policies | overhead | headline | sweeps | churn | memory | persist | scaling | all (scaling is excluded from all — it runs minutes by design; memory and persist cover only the default tier under all, both tiers when selected explicitly)")
		seed       = fs.Int64("seed", 2018, "random seed (all experiments are deterministic per seed)")
		queries    = fs.Int("queries", 1000, "workload size for policies/overhead/headline/churn (overrides the scaling tier's when set)")
		dataset    = fs.Int("dataset", 400, "dataset size for overhead/headline/churn (overrides the scaling tier's when set)")
		mutations  = fs.Int("mutations", 12, "churn: interleaved dataset mutations")
		workerList = fs.String("workers", "", "scaling: comma-separated worker counts; empty sweeps powers of two up to GOMAXPROCS")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (after the selected experiments) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	known := map[string]bool{
		"fig3": true, "workloadrun": true, "fig2c": true, "policies": true,
		"overhead": true, "headline": true, "sweeps": true, "churn": true,
		"memory": true, "persist": true, "scaling": true, "all": true,
	}
	if !known[*exp] {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// The heap profile is written after the experiments so it shows
		// what the runs left resident, not the startup state.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gcbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gcbench: memprofile: %v\n", err)
			}
		}()
	}

	if *exp == "scaling" {
		tier := bench.LargeTier()
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["dataset"] {
			tier.DatasetSize = *dataset
		}
		if explicit["queries"] {
			tier.Queries = *queries
			tier.PoolSize = max(*queries/3, 8)
		}
		return runScaling(stdout, *seed, tier, *workerList)
	}
	runExp := func(name string, fn func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(stdout)
		return nil
	}

	for _, step := range []struct {
		name string
		fn   func() error
	}{
		{"fig3", func() error { return runFig3(stdout, *seed) }},
		{"workloadrun", func() error { return runWorkload(stdout, *seed) }},
		{"fig2c", func() error { return runFig2c(stdout, *seed) }},
		{"policies", func() error { return runPolicies(stdout, *seed, *queries) }},
		{"overhead", func() error { return runOverhead(stdout, *seed, *dataset, *queries) }},
		{"headline", func() error { return runHeadline(stdout, *seed, *dataset, *queries) }},
		{"sweeps", func() error { return runSweeps(stdout, *seed, *queries) }},
		{"churn", func() error { return runChurn(stdout, *seed, *dataset, *queries, *mutations) }},
		{"memory", func() error { return runMemory(stdout, *seed, *exp == "memory") }},
		{"persist", func() error { return runPersist(stdout, *seed, *exp == "persist") }},
	} {
		if err := runExp(step.name, step.fn); err != nil {
			return err
		}
	}
	return nil
}

// runScaling drives the scaling workload tier through the three engines
// over the GOMAXPROCS worker sweep — the experiment behind ROADMAP open
// item 1 ("make parallelism pay"). Pair with -cpuprofile/-memprofile to
// see where the large tier actually spends its time and allocations.
func runScaling(stdout io.Writer, seed int64, tier bench.ThroughputTier, workerList string) error {
	var workers []int
	if strings.TrimSpace(workerList) != "" {
		for _, f := range strings.Split(workerList, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
				return fmt.Errorf("bad worker count %q", f)
			}
			workers = append(workers, n)
		}
	}
	env := bench.CaptureEnvironment()
	cmp, err := bench.ParallelThroughputTier(seed, tier, workers)
	if err != nil {
		return err
	}
	t := stats.NewTable(fmt.Sprintf("EXP-SCALE · %s tier: %d mixed queries over %d graphs (GOMAXPROCS=%d, %d CPUs, %s)",
		cmp.Tier, cmp.Queries, cmp.DatasetSize, env.GOMAXPROCS, env.NumCPU, env.GoVersion),
		"workers", "serialized q/s", "shared-window q/s", "per-shard q/s", "speedup", "window speedup")
	for i, w := range cmp.WorkerCounts {
		t.AddRow(w,
			fmt.Sprintf("%.1f", cmp.Serialized[i].QPS),
			fmt.Sprintf("%.1f", cmp.SharedWindow[i].QPS),
			fmt.Sprintf("%.1f", cmp.PerShard[i].QPS),
			fmt.Sprintf("%.2f×", cmp.SpeedupAt(w)),
			fmt.Sprintf("%.2f×", cmp.WindowSpeedupAt(w)))
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "speedup = per-shard/serialized; window speedup = per-shard/shared-window.")
	if env.GOMAXPROCS == 1 {
		fmt.Fprintln(stdout, "note: GOMAXPROCS=1 — the sweep degenerates to a single point; scaling needs real cores.")
	}
	return nil
}

// runMemory reports the answer-set memory ledger — bytes/entry under the
// adaptive containers + interning against the dense-equivalent baseline,
// plus the intern hit rate. Under -exp all only the default tier runs
// (the large tier costs a full scaling-tier workload); -exp memory runs
// both, which is where the ISSUE-8 ≥40% reduction acceptance is checked.
func runMemory(stdout io.Writer, seed int64, full bool) error {
	tiers := []bench.ThroughputTier{bench.DefaultTier()}
	if full {
		tiers = append(tiers, bench.LargeTier())
	}
	t := stats.NewTable("EXP-MEM · Answer-set memory: adaptive containers + interning vs dense baseline",
		"tier", "entries", "distinct sets", "answer bytes", "bytes/entry", "dense/entry", "reduction", "intern hit rate")
	for _, tier := range tiers {
		r, err := bench.RunMemory(seed, tier)
		if err != nil {
			return err
		}
		t.AddRow(r.Tier, r.Entries, r.DistinctSets, stats.FormatBytes(int(r.AnswerBytes)),
			fmt.Sprintf("%.1f", r.BytesPerEntry),
			fmt.Sprintf("%.1f", r.DenseBytesPerEntry),
			fmt.Sprintf("%.1f%%", 100*r.Reduction),
			fmt.Sprintf("%.2f", r.InternHitRate))
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "reduction = 1 − answer/dense bytes; dense = one private ⌈|D|/64⌉-word set per entry.")
	return nil
}

// runPersist reports EXP-PERSIST: snapshot save/restore wall time and
// on-disk bytes of the binary GCS3 format against the v2 text format,
// eager and lazy. Under -exp all only the default tier runs; -exp
// persist also measures the large scaling tier.
func runPersist(stdout io.Writer, seed int64, full bool) error {
	tiers := []bench.ThroughputTier{bench.DefaultTier()}
	if full {
		tiers = append(tiers, bench.LargeTier())
	}
	t := stats.NewTable("EXP-PERSIST · Snapshot persistence: binary GCS3 (v3) vs text (v2)",
		"tier", "entries", "v2 bytes", "v3 bytes", "v2 save", "v3 save", "v2 restore", "v3 restore", "v3 lazy", "restore speedup", "lazy speedup")
	for _, tier := range tiers {
		r, err := bench.RunPersist(seed, tier)
		if err != nil {
			return err
		}
		t.AddRow(r.Tier, r.Entries, stats.FormatBytes(r.V2Bytes), stats.FormatBytes(r.V3Bytes),
			fmt.Sprintf("%.2fms", r.V2SaveMs), fmt.Sprintf("%.2fms", r.V3SaveMs),
			fmt.Sprintf("%.2fms", r.V2RestoreMs), fmt.Sprintf("%.2fms", r.V3RestoreMs),
			fmt.Sprintf("%.2fms", r.V3LazyRestoreMs),
			fmt.Sprintf("%.2f×", r.RestoreSpeedup), fmt.Sprintf("%.2f×", r.LazySpeedup))
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "restore speedup = v2/v3 eager; lazy = RestoreStateLazy to first-query readiness (answer bodies still on disk).")
	return nil
}

func runChurn(stdout io.Writer, seed int64, dataset, queries, mutations int) error {
	cmp, err := bench.RunChurnComparison(seed, dataset, queries, mutations)
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-CHURN · Exact maintenance vs drop-and-rebuild under live mutations",
		"strategy", "q/s", "dataset tests", "maintenance", "total", "exact hits", "avg filter maint", "inserts/rebuilds")
	row := func(name string, s bench.ChurnStats) {
		t.AddRow(name, fmt.Sprintf("%.1f", s.QPS), s.DatasetTests,
			s.MaintenanceTests, s.TotalTests(), s.ExactHits,
			s.AvgFilterMaintain().Round(time.Microsecond),
			fmt.Sprintf("%d/%d", s.FilterInserts, s.FilterRebuilds))
	}
	row("maintained", cmp.Maintained)
	row("drop+rebuild", cmp.Rebuild)
	t.Render(stdout)
	fmt.Fprintf(stdout, "%d queries, %d mutations (%d adds): maintenance saves %.1f%% of the sub-iso bill; answers byte-identical.\n",
		cmp.Queries, cmp.Mutations, cmp.Maintained.Adds, 100*cmp.TestReduction())
	return nil
}

func runSweeps(stdout io.Writer, seed int64, queries int) error {
	cap, err := bench.RunCapacitySweep(seed, queries, nil)
	if err != nil {
		return err
	}
	t := stats.NewTable("SWEEP · cache capacity", "capacity", "test-speedup", "time-speedup", "hit-rate")
	for _, p := range cap {
		t.AddRow(p.Value, p.Speedups.Tests, p.Speedups.Time, p.HitRate)
	}
	t.Render(stdout)

	win, err := bench.RunWindowSweep(seed, queries, nil)
	if err != nil {
		return err
	}
	t2 := stats.NewTable("SWEEP · admission window", "window", "test-speedup", "time-speedup", "hit-rate")
	for _, p := range win {
		t2.AddRow(p.Value, p.Speedups.Tests, p.Speedups.Time, p.HitRate)
	}
	t2.Render(stdout)

	bud, err := bench.RunHitBudgetSweep(seed, queries, nil)
	if err != nil {
		return err
	}
	t3 := stats.NewTable("SWEEP · sub/super hit budget", "budget", "test-speedup", "time-speedup", "hit-rate")
	for _, p := range bud {
		t3.AddRow(p.Value, p.Speedups.Tests, p.Speedups.Time, p.HitRate)
	}
	t3.Render(stdout)
	return nil
}

func runFig3(stdout io.Writer, seed int64) error {
	res, err := bench.RunFig3(seed)
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-F3 · The Query Journey (Figure 3)", "panel", "quantity", "value")
	t.AddRow("3(a)/(e)", "cache hits H (sub) / H' (super)", fmt.Sprintf("%d / %d", res.SubHits, res.SuperHits))
	t.AddRow("3(b)", "|C_M| Method M candidates", res.CM)
	t.AddRow("3(c)", "|S| answers for sure", res.S)
	t.AddRow("3(d)", "|S'| non-answers for sure", res.SPrime)
	t.AddRow("3(f)", "|C| GC candidates", res.C)
	t.AddRow("3(g)", "|R| sub-iso survivors", res.R)
	t.AddRow("3(h)", "|A| final answers", res.A)
	t.AddRow("—", "test speedup C_M/C (paper: 1.74)", fmt.Sprintf("%.2f", res.TestSpeedup))
	t.AddRow("—", "S member ids", fmt.Sprintf("%v", res.SureIDs))
	t.Render(stdout)
	return nil
}

func runWorkload(stdout io.Writer, seed int64) error {
	steps, c, err := bench.RunWorkload(seed, 10, "hd")
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-F2B · The Workload Run (Figure 2(b))", "query", "exact", "sub", "super", "hit%", "test-speedup")
	for _, s := range steps {
		t.AddRow(s.Index, s.ExactHit, s.SubHits, s.SuperHits, fmt.Sprintf("%.1f", s.HitPct), fmt.Sprintf("%.2f", s.TestSpeedup))
	}
	t.Render(stdout)
	snap := c.Stats()
	fmt.Fprintf(stdout, "cumulative: %d queries, %d tests executed, %d saved, speedup %.2f\n",
		snap.Queries, snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup())
	return nil
}

func runFig2c(stdout io.Writer, seed int64) error {
	rs, err := bench.RunReplacement(seed, nil)
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-F2C · Cache replacement across policies (Figure 2(c))", "policy", "kept", "evicted entry ids")
	for _, r := range rs {
		t.AddRow(r.Policy, r.Kept, fmt.Sprintf("%v", r.Evicted))
	}
	t.Render(stdout)
	return nil
}

func runPolicies(stdout io.Writer, seed int64, queries int) error {
	cells, err := bench.RunPolicyCompetition(seed, queries, nil)
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-I · Policy competition (§3.1.I)", "workload", "policy", "test-speedup", "time-speedup", "hit-rate")
	for _, c := range cells {
		t.AddRow(c.Workload, c.Policy,
			fmt.Sprintf("%.2f", c.Speedups.Tests),
			fmt.Sprintf("%.2f", c.Speedups.Time),
			fmt.Sprintf("%.2f", c.HitRate))
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "take-away (paper): when in doubt, use HD — best or on par with the best alternative.")
	return nil
}

func runOverhead(stdout io.Writer, seed int64, dataset, queries int) error {
	fs, err := bench.RunFeatureSize(seed, dataset, queries/2, 3)
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-II-A · FTV feature size +1 (§3.1.II)", "metric", "L=3", "L=4", "ratio/delta")
	t.AddRow("index bytes", stats.FormatBytes(fs.IndexBytesBase), stats.FormatBytes(fs.IndexBytesBigger),
		fmt.Sprintf("×%.2f (paper ≈ ×2)", fs.SpaceRatio))
	t.AddRow("avg query time", fs.AvgTimeBase, fs.AvgTimeBigger,
		fmt.Sprintf("−%.1f%% (paper ≈ −10%%)", 100*fs.TimeReduction))
	t.AddRow("avg |C_M|", fmt.Sprintf("%.1f", fs.AvgCandidatesBase), fmt.Sprintf("%.1f", fs.AvgCandidatesBigger), "")
	t.Render(stdout)

	oh, err := bench.RunGCOverhead(seed, dataset, queries, 50)
	if err != nil {
		return err
	}
	t2 := stats.NewTable("EXP-II-B · GC speedup vs space overhead (§3.1.II)", "metric", "value", "paper")
	t2.AddRow("FTV index bytes", stats.FormatBytes(oh.IndexBytes), "")
	t2.AddRow("GC cache bytes", stats.FormatBytes(oh.CacheBytes), "")
	t2.AddRow("memory ratio", fmt.Sprintf("%.3f", oh.MemoryRatio), "≈ 0.01")
	t2.AddRow("test speedup", fmt.Sprintf("%.2f×", oh.Speedups.Tests), "up to 40×")
	t2.AddRow("time speedup", fmt.Sprintf("%.2f×", oh.Speedups.Time), "up to 40×")
	t2.AddRow("hit rate", fmt.Sprintf("%.2f", oh.HitRate), "")
	t2.Render(stdout)
	return nil
}

func runHeadline(stdout io.Writer, seed int64, dataset, queries int) error {
	res, err := bench.RunHeadline(seed, dataset, queries)
	if err != nil {
		return err
	}
	t := stats.NewTable("EXP-HL · Headline speedup run", "metric", "value")
	t.AddRow("dataset graphs", res.DatasetSize)
	t.AddRow("queries", res.Queries)
	t.AddRow("aggregate test speedup", fmt.Sprintf("%.2f×", res.Speedups.Tests))
	t.AddRow("aggregate time speedup", fmt.Sprintf("%.2f×", res.Speedups.Time))
	t.AddRow("max per-query test speedup", fmt.Sprintf("%.2f× (paper: up to 40×)", res.MaxQuerySpeedup))
	t.AddRow("hit rate", fmt.Sprintf("%.2f", res.HitRate))
	t.AddRow("cache bytes / index bytes", fmt.Sprintf("%s / %s", stats.FormatBytes(res.CacheBytes), stats.FormatBytes(res.IndexBytes)))
	t.Render(stdout)
	return nil
}
