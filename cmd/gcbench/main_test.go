package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke: each single experiment renders its table through run() — the
// same entry point main uses, so flag or wiring rot fails here first.
func TestRunSingleExperiments(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-exp", "fig3"}, "EXP-F3"},
		{[]string{"-exp", "fig2c"}, "EXP-F2C"},
		{[]string{"-exp", "churn", "-dataset", "60", "-queries", "120"}, "EXP-CHURN"},
	}
	for _, tc := range cases {
		t.Run(tc.want, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
