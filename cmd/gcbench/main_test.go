package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke: each single experiment renders its table through run() — the
// same entry point main uses, so flag or wiring rot fails here first.
func TestRunSingleExperiments(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-exp", "fig3"}, "EXP-F3"},
		{[]string{"-exp", "fig2c"}, "EXP-F2C"},
		{[]string{"-exp", "churn", "-dataset", "60", "-queries", "120"}, "EXP-CHURN"},
	}
	for _, tc := range cases {
		t.Run(tc.want, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}

// Smoke: the scaling experiment (downsized) renders its table and the
// profile flags write non-empty pprof files.
func TestRunScalingWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{
		"-exp", "scaling", "-dataset", "30", "-queries", "60", "-workers", "1,2",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "EXP-SCALE") {
		t.Errorf("output missing scaling table:\n%s", out.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	if err := run([]string{"-exp", "scaling", "-workers", "zero"}, &out); err == nil {
		t.Error("bad worker list accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
