// Command queryjourney is the CLI rendition of the demo's Scenario I —
// The Query Journey (Figure 3): it executes one query over a warmed
// GraphCache and walks through every computation panel, visualizing the
// dataset-wide sets H, C_M, S, S', C, R and A as proportional strips.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"graphcache/internal/bench"
	"graphcache/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a clean exit
		}
		fmt.Fprintf(os.Stderr, "queryjourney: %v\n", err)
		os.Exit(1)
	}
}

// run renders the journey for args to stdout. It is main minus the
// process plumbing, so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("queryjourney", flag.ContinueOnError)
	seed := fs.Int64("seed", 2018, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := bench.RunFig3(*seed)
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout, "The Query Journey — how GraphCache accelerates one query")
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	fmt.Fprintf(stdout, "cache: %d previously executed queries (demo: 50)\n\n", res.CachedQueries)

	const width = 60
	fmt.Fprintf(stdout, "(a,e) cache hits: %d sub-case (query ⊑ cached) and %d super-case (cached ⊑ query)\n",
		res.SubHits, res.SuperHits)
	fmt.Fprintf(stdout, "(b)   Method M filters the dataset to |C_M| = %d candidate graphs\n", res.CM)
	fmt.Fprintf(stdout, "      C_M %s\n", viz.Strip(res.CM, res.CM, width))
	fmt.Fprintf(stdout, "(c)   sub-case hits deliver S: %d graph(s) in the answer FOR SURE: %v\n", res.S, res.SureIDs)
	fmt.Fprintf(stdout, "(d)   super-case hits deliver S': %d graph(s) NOT in the answer for sure\n", res.SPrime)
	fmt.Fprintf(stdout, "      S'  %s\n", viz.Strip(res.SPrime, res.CM, width))
	fmt.Fprintf(stdout, "(f)   GC verifies only |C| = %d candidates (was %d)\n", res.C, res.CM)
	fmt.Fprintf(stdout, "      C   %s\n", viz.Strip(res.C, res.CM, width))
	fmt.Fprintf(stdout, "(g)   %d graphs survive sub-iso testing (R)\n", res.R)
	fmt.Fprintf(stdout, "(h)   answer set A = R ∪ S, |A| = %d: %v\n\n", res.A, res.AnswerIDs)

	fmt.Fprintf(stdout, "speedup in sub-iso test numbers: %d/%d = %.2f (paper example: 75/43 = 1.74)\n",
		res.CM, res.C, res.TestSpeedup)
	return nil
}
