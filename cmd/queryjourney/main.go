// Command queryjourney is the CLI rendition of the demo's Scenario I —
// The Query Journey (Figure 3): it executes one query over a warmed
// GraphCache and walks through every computation panel, visualizing the
// dataset-wide sets H, C_M, S, S', C, R and A as proportional strips.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphcache/internal/bench"
	"graphcache/internal/viz"
)

func main() {
	seed := flag.Int64("seed", 2018, "random seed")
	flag.Parse()

	res, err := bench.RunFig3(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "queryjourney: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("The Query Journey — how GraphCache accelerates one query")
	fmt.Println(strings.Repeat("=", 64))
	fmt.Printf("cache: %d previously executed queries (demo: 50)\n\n", res.CachedQueries)

	const width = 60
	fmt.Printf("(a,e) cache hits: %d sub-case (query ⊑ cached) and %d super-case (cached ⊑ query)\n",
		res.SubHits, res.SuperHits)
	fmt.Printf("(b)   Method M filters the dataset to |C_M| = %d candidate graphs\n", res.CM)
	fmt.Printf("      C_M %s\n", viz.Strip(res.CM, res.CM, width))
	fmt.Printf("(c)   sub-case hits deliver S: %d graph(s) in the answer FOR SURE: %v\n", res.S, res.SureIDs)
	fmt.Printf("(d)   super-case hits deliver S': %d graph(s) NOT in the answer for sure\n", res.SPrime)
	fmt.Printf("      S'  %s\n", viz.Strip(res.SPrime, res.CM, width))
	fmt.Printf("(f)   GC verifies only |C| = %d candidates (was %d)\n", res.C, res.CM)
	fmt.Printf("      C   %s\n", viz.Strip(res.C, res.CM, width))
	fmt.Printf("(g)   %d graphs survive sub-iso testing (R)\n", res.R)
	fmt.Printf("(h)   answer set A = R ∪ S, |A| = %d: %v\n\n", res.A, res.AnswerIDs)

	fmt.Printf("speedup in sub-iso test numbers: %d/%d = %.2f (paper example: 75/43 = 1.74)\n",
		res.CM, res.C, res.TestSpeedup)
}
