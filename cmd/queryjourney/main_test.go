package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke: the journey renders all panels through run() — the same entry
// point main uses.
func TestRunRendersJourney(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "2018"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"The Query Journey", "C_M", "FOR SURE", "speedup in sub-iso test numbers",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "notanumber"}, &out); err == nil {
		t.Error("bad seed accepted")
	}
}
