// Command workloadrun is the CLI rendition of the demo's Scenario II —
// The Workload Run (Figure 2(b) and 2(c)): it processes a workload through
// GraphCache, reporting per-query sub/super/exact hits and hit percentage,
// then compares which cached graphs each replacement policy evicts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphcache/internal/bench"
	"graphcache/internal/stats"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2018, "random seed")
		size     = flag.Int("size", 10, "workload size (demo: 10)")
		policy   = flag.String("policy", "hd", "replacement policy for the run")
		policies = flag.String("policies", "lru,pop,pin,pinc,hd", "policies for the replacement comparison; 'none' to skip")
	)
	flag.Parse()

	steps, c, err := bench.RunWorkload(*seed, *size, *policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("The Workload Run — %d queries under the %q policy\n", *size, *policy)
	fmt.Println(strings.Repeat("=", 64))
	t := stats.NewTable("", "query", "hits (exact/sub/super)", "hit%", "test-speedup")
	for _, s := range steps {
		ex := 0
		if s.ExactHit {
			ex = 1
		}
		t.AddRow(s.Index, fmt.Sprintf("%d/%d/%d", ex, s.SubHits, s.SuperHits),
			fmt.Sprintf("%.1f%%", s.HitPct), fmt.Sprintf("%.2f", s.TestSpeedup))
	}
	t.Render(os.Stdout)
	snap := c.Stats()
	fmt.Printf("\ncumulative: %d tests executed, %d saved → speedup %.2f; %d cached graphs, %s resident\n",
		snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup(), c.Len(), stats.FormatBytes(c.Bytes()))

	if *policies == "none" {
		return
	}
	names := strings.Split(*policies, ",")
	rs, err := bench.RunReplacement(*seed, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadrun: replacement: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nCache replacement comparison (Figure 2(c)): identical workload, different victims")
	for _, r := range rs {
		fmt.Printf("%-5s evicted %2d: %v\n", r.Policy, len(r.Evicted), r.Evicted)
	}
	fmt.Println("\ndifferent policies cache out different graphs — each embodies a different utility trade-off.")
}
