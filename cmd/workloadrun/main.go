// Command workloadrun is the CLI rendition of the demo's Scenario II —
// The Workload Run (Figure 2(b) and 2(c)): it processes a workload through
// GraphCache, reporting per-query sub/super/exact hits and hit percentage,
// then compares which cached graphs each replacement policy evicts.
//
// With -throughput it instead drives a mixed workload through the batched
// worker-pool API (Cache.ExecuteAll), reporting queries/sec of the sharded
// engine against the serialized single-lock baseline at each worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphcache/internal/bench"
	"graphcache/internal/stats"
)

func main() {
	var (
		seed       = flag.Int64("seed", 2018, "random seed")
		size       = flag.Int("size", 10, "workload size (demo: 10)")
		policy     = flag.String("policy", "hd", "replacement policy for the run")
		policies   = flag.String("policies", "lru,pop,pin,pinc,hd", "policies for the replacement comparison; 'none' to skip")
		throughput = flag.Bool("throughput", false, "run the parallel-throughput comparison instead of the workload run")
		datasetSz  = flag.Int("throughput-dataset", 100, "throughput mode: dataset size")
		queries    = flag.Int("throughput-queries", 200, "throughput mode: workload size")
		workerList = flag.String("workers", "1,4,8", "throughput mode: comma-separated worker counts")
	)
	flag.Parse()

	if *throughput {
		if err := runThroughput(*seed, *datasetSz, *queries, *workerList); err != nil {
			fmt.Fprintf(os.Stderr, "workloadrun: %v\n", err)
			os.Exit(1)
		}
		return
	}

	steps, c, err := bench.RunWorkload(*seed, *size, *policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("The Workload Run — %d queries under the %q policy\n", *size, *policy)
	fmt.Println(strings.Repeat("=", 64))
	t := stats.NewTable("", "query", "hits (exact/sub/super)", "hit%", "test-speedup")
	for _, s := range steps {
		ex := 0
		if s.ExactHit {
			ex = 1
		}
		t.AddRow(s.Index, fmt.Sprintf("%d/%d/%d", ex, s.SubHits, s.SuperHits),
			fmt.Sprintf("%.1f%%", s.HitPct), fmt.Sprintf("%.2f", s.TestSpeedup))
	}
	t.Render(os.Stdout)
	snap := c.Stats()
	fmt.Printf("\ncumulative: %d tests executed, %d saved → speedup %.2f; %d cached graphs, %s resident\n",
		snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup(), c.Len(), stats.FormatBytes(c.Bytes()))

	if *policies == "none" {
		return
	}
	names := strings.Split(*policies, ",")
	rs, err := bench.RunReplacement(*seed, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadrun: replacement: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nCache replacement comparison (Figure 2(c)): identical workload, different victims")
	for _, r := range rs {
		fmt.Printf("%-5s evicted %2d: %v\n", r.Policy, len(r.Evicted), r.Evicted)
	}
	fmt.Println("\ndifferent policies cache out different graphs — each embodies a different utility trade-off.")
}

// runThroughput renders the parallel-throughput comparison as a table.
func runThroughput(seed int64, datasetSize, queries int, workerList string) error {
	var workers []int
	for _, f := range strings.Split(workerList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad worker count %q", f)
		}
		workers = append(workers, n)
	}
	cmp, err := bench.ParallelThroughput(seed, datasetSize, queries, workers)
	if err != nil {
		return err
	}
	fmt.Printf("Parallel throughput — %d mixed queries over %d molecules\n", queries, datasetSize)
	fmt.Println(strings.Repeat("=", 64))
	t := stats.NewTable("", "workers", "serialized q/s", "sharded q/s", "speedup")
	for i, w := range cmp.WorkerCounts {
		t.AddRow(w,
			fmt.Sprintf("%.1f", cmp.Serialized[i].QPS),
			fmt.Sprintf("%.1f", cmp.Sharded[i].QPS),
			fmt.Sprintf("%.2f×", cmp.SpeedupAt(w)))
	}
	t.Render(os.Stdout)
	fmt.Println("\nserialized = one global lock per query (pre-sharding engine);")
	fmt.Println("sharded    = lock-striped kernel, expensive stages lock-free.")
	return nil
}
