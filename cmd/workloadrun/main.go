// Command workloadrun is the CLI rendition of the demo's Scenario II —
// The Workload Run (Figure 2(b) and 2(c)): it processes a workload through
// GraphCache, reporting per-query sub/super/exact hits and hit percentage,
// then compares which cached graphs each replacement policy evicts.
//
// With -throughput it instead drives a mixed workload through the batched
// worker-pool API (Cache.ExecuteAll), reporting queries/sec of the sharded
// engine against the serialized single-lock baseline at each worker count.
// Adding -assert-index also runs the indexed-vs-unindexed hit-detection
// comparison and exits non-zero unless the feature index strictly reduced
// hit-detection work (the `make bench-smoke` CI gate).
//
// With -churn it drives a mixed query/add/remove stream twice — once over
// one exactly-maintained cache, once dropping and rebuilding the cache at
// every dataset mutation — and reports the sub-iso bill of each strategy
// (-assert-churn turns the win into an exit code, the `make bench-json`
// gate). -bench-json FILE runs throughput and churn and writes both
// results to FILE for the CI perf-trajectory artifact.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"graphcache/internal/bench"
	"graphcache/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a clean exit
		}
		fmt.Fprintf(os.Stderr, "workloadrun: %v\n", err)
		os.Exit(1)
	}
}

// run executes the command against args, writing reports to stdout. It is
// main minus the process plumbing, so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("workloadrun", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 2018, "random seed")
		size        = fs.Int("size", 10, "workload size (demo: 10)")
		policy      = fs.String("policy", "hd", "replacement policy for the run")
		policies    = fs.String("policies", "lru,pop,pin,pinc,hd", "policies for the replacement comparison; 'none' to skip")
		throughput  = fs.Bool("throughput", false, "run the parallel-throughput comparison instead of the workload run")
		scale       = fs.String("scale", "default", "throughput mode: workload tier (default | large; large = 10k+ graphs, 10k+ zipf-skewed mixed queries)")
		datasetSz   = fs.Int("throughput-dataset", 200, "throughput mode: dataset size (overrides the tier's)")
		queries     = fs.Int("throughput-queries", 1000, "throughput mode: workload size (overrides the tier's)")
		workerList  = fs.String("workers", "", "throughput mode: comma-separated worker counts; empty sweeps powers of two up to GOMAXPROCS")
		assertIndex = fs.Bool("assert-index", false, "throughput mode: also compare indexed vs unindexed hit detection and fail unless the index strictly reduced work")
		churn       = fs.Bool("churn", false, "run the live-mutation comparison: exact cache maintenance vs drop-cache-and-rebuild over a mixed query/add/remove stream")
		churnDS     = fs.Int("churn-dataset", 150, "churn mode: initial dataset size")
		churnQs     = fs.Int("churn-queries", 400, "churn mode: query count")
		churnMuts   = fs.Int("churn-mutations", 12, "churn mode: interleaved dataset mutations (add-heavy: two adds per remove)")
		assertChurn = fs.Bool("assert-churn", false, "churn mode: fail unless the maintained cache strictly beat drop-and-rebuild")
		benchJSON   = fs.String("bench-json", "", "write the throughput and churn results to this JSON file (runs both modes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Assertion flags must never be silently ignored: each belongs to one
	// mode, validated up front regardless of which mode actually runs.
	if *assertIndex && !*throughput {
		return fmt.Errorf("-assert-index requires -throughput")
	}
	if *assertChurn && !*churn && *benchJSON == "" {
		return fmt.Errorf("-assert-churn requires -churn or -bench-json")
	}
	// The tier named by -scale shapes the throughput workload; explicit
	// size flags override the tier's sizes (so the CI smoke gates keep
	// their historical tiny scales without naming a tier).
	tier, err := bench.TierByName(*scale)
	if err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["throughput-dataset"] {
		tier.DatasetSize = *datasetSz
	}
	if explicit["throughput-queries"] {
		tier.Queries = *queries
		tier.PoolSize = max(*queries/3, 8)
	}
	if *benchJSON != "" {
		if *assertIndex || *churn || *throughput {
			return fmt.Errorf("-bench-json runs throughput and churn itself; combine it only with -assert-churn and the size flags")
		}
		return runBenchJSON(stdout, *benchJSON, *seed, tier, *workerList, *churnDS, *churnQs, *churnMuts, *assertChurn)
	}
	if *churn {
		if *throughput {
			return fmt.Errorf("-churn and -throughput are separate modes; use -bench-json to run both")
		}
		return runChurn(stdout, *seed, *churnDS, *churnQs, *churnMuts, *assertChurn)
	}
	if *throughput {
		if err := runThroughput(stdout, *seed, tier, *workerList); err != nil {
			return err
		}
		if *assertIndex {
			return runIndexSmoke(stdout, *seed, tier.DatasetSize, tier.Queries)
		}
		return nil
	}

	steps, c, err := bench.RunWorkload(*seed, *size, *policy)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "The Workload Run — %d queries under the %q policy\n", *size, *policy)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "query", "hits (exact/sub/super)", "hit%", "test-speedup")
	for _, s := range steps {
		ex := 0
		if s.ExactHit {
			ex = 1
		}
		t.AddRow(s.Index, fmt.Sprintf("%d/%d/%d", ex, s.SubHits, s.SuperHits),
			fmt.Sprintf("%.1f%%", s.HitPct), fmt.Sprintf("%.2f", s.TestSpeedup))
	}
	t.Render(stdout)
	snap := c.Stats()
	fmt.Fprintf(stdout, "\ncumulative: %d tests executed, %d saved → speedup %.2f; %d cached graphs, %s resident\n",
		snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup(), c.Len(), stats.FormatBytes(c.Bytes()))
	answerPerEntry := 0.0
	if n := c.Len(); n > 0 {
		answerPerEntry = float64(snap.AnswerBytes) / float64(n)
	}
	internRate := 0.0
	if total := snap.InternHits + snap.InternMisses; total > 0 {
		internRate = float64(snap.InternHits) / float64(total)
	}
	fmt.Fprintf(stdout, "answer sets: %s pooled (%.1f bytes/entry), intern hit rate %.2f\n",
		stats.FormatBytes(int(snap.AnswerBytes)), answerPerEntry, internRate)

	if *policies == "none" {
		return nil
	}
	names := strings.Split(*policies, ",")
	rs, err := bench.RunReplacement(*seed, names)
	if err != nil {
		return fmt.Errorf("replacement: %w", err)
	}
	fmt.Fprintln(stdout, "\nCache replacement comparison (Figure 2(c)): identical workload, different victims")
	for _, r := range rs {
		fmt.Fprintf(stdout, "%-5s evicted %2d: %v\n", r.Policy, len(r.Evicted), r.Evicted)
	}
	fmt.Fprintln(stdout, "\ndifferent policies cache out different graphs — each embodies a different utility trade-off.")
	return nil
}

// runThroughput renders the parallel-throughput comparison as a table.
func runThroughput(stdout io.Writer, seed int64, tier bench.ThroughputTier, workerList string) error {
	workers, err := parseWorkers(workerList)
	if err != nil {
		return err
	}
	cmp, err := bench.ParallelThroughputTier(seed, tier, workers)
	if err != nil {
		return err
	}
	env := bench.CaptureEnvironment()
	fmt.Fprintf(stdout, "Parallel throughput [%s tier] — %d mixed queries over %d molecules (GOMAXPROCS=%d, %d CPUs)\n",
		cmp.Tier, cmp.Queries, cmp.DatasetSize, env.GOMAXPROCS, env.NumCPU)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "workers", "serialized q/s", "shared-window q/s", "per-shard q/s", "speedup", "window speedup")
	for i, w := range cmp.WorkerCounts {
		t.AddRow(w,
			fmt.Sprintf("%.1f", cmp.Serialized[i].QPS),
			fmt.Sprintf("%.1f", cmp.SharedWindow[i].QPS),
			fmt.Sprintf("%.1f", cmp.PerShard[i].QPS),
			fmt.Sprintf("%.2f×", cmp.SpeedupAt(w)),
			fmt.Sprintf("%.2f×", cmp.WindowSpeedupAt(w)))
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "\nserialized    = one global lock per query (pre-sharding engine);")
	fmt.Fprintln(stdout, "shared-window = lock-striped kernel, one coordinator-guarded admission window;")
	fmt.Fprintln(stdout, "per-shard     = per-shard admission windows, no global mutex on any query path.")
	fmt.Fprintln(stdout, "speedup = per-shard/serialized; window speedup = per-shard/shared-window.")
	return nil
}

// runChurn renders the exact-maintenance-vs-rebuild comparison; with
// assert it errors unless the maintained cache strictly won the total
// sub-iso bill.
func runChurn(stdout io.Writer, seed int64, datasetSize, queries, mutations int, assert bool) error {
	cmp, err := bench.RunChurnComparison(seed, datasetSize, queries, mutations)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "Live dataset churn — %d queries, %d mutations (%d adds / %d removes) over %d molecules\n",
		cmp.Queries, cmp.Mutations, cmp.Maintained.Adds, cmp.Maintained.Removes, cmp.DatasetSize)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "strategy", "q/s", "dataset tests", "maintenance tests", "total tests", "exact hits", "tests saved")
	row := func(name string, s bench.ChurnStats) {
		t.AddRow(name, fmt.Sprintf("%.1f", s.QPS), s.DatasetTests, s.MaintenanceTests,
			s.TotalTests(), s.ExactHits, s.TestsSaved)
	}
	row("maintained", cmp.Maintained)
	row("drop+rebuild", cmp.Rebuild)
	t.Render(stdout)
	fmt.Fprintln(stdout, "\nmutation latency:")
	lt := stats.NewTable("", "strategy", "avg add", "avg filter maint", "avg remove", "filter inserts", "filter rebuilds", "max addition log")
	lrow := func(name string, s bench.ChurnStats) {
		lt.AddRow(name, s.AvgAddLatency().Round(time.Microsecond), s.AvgFilterMaintain().Round(time.Microsecond),
			s.AvgRemoveLatency().Round(time.Microsecond),
			s.FilterInserts, s.FilterRebuilds, s.MaxAdditionLog)
	}
	lrow("maintained", cmp.Maintained)
	lrow("drop+rebuild", cmp.Rebuild)
	lt.Render(stdout)
	fmt.Fprintf(stdout, "\nanswers cross-checked byte-identical between both strategies after every mutation.\n")
	fmt.Fprintf(stdout, "maintained cache spends %.1f%% fewer sub-iso tests than dropping the cache at every mutation;\n",
		100*cmp.TestReduction())
	fmt.Fprintf(stdout, "'avg filter maint' isolates identical work in both strategies: the incremental O(graph)\n")
	fmt.Fprintf(stdout, "GGSX insert vs the O(dataset) rebuild. 'avg add' is each strategy's whole mutation path\n")
	fmt.Fprintf(stdout, "(the maintained side additionally reconciles every cached answer set eagerly).\n")
	if assert && !cmp.MaintainedWins() {
		return fmt.Errorf("churn assertion failed: maintained %d total tests vs rebuild %d",
			cmp.Maintained.TotalTests(), cmp.Rebuild.TotalTests())
	}
	return nil
}

// runBenchJSON runs the throughput, large-tier scaling and churn
// comparisons and writes all three to a JSON file — the perf-trajectory
// artifact CI uploads per PR — together with the worker sweep and the
// runtime environment (GOMAXPROCS, CPU count, Go version), so a flat
// scaling curve measured in a 1-CPU container is distinguishable from a
// real regression. With assertChurn it additionally fails unless the
// maintained cache won.
func runBenchJSON(stdout io.Writer, path string, seed int64, tier bench.ThroughputTier, workerList string, churnDS, churnQs, churnMuts int, assertChurn bool) error {
	workers, err := parseWorkers(workerList)
	if err != nil {
		return err
	}
	if len(workers) == 0 {
		workers = bench.DefaultThroughputWorkers()
	}
	tp, err := bench.ParallelThroughputTier(seed, tier, workers)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	// The scaling section always measures the large tier; when -scale
	// already selected it, the run is not repeated.
	scaling := tp
	if tier.Name != "large" {
		if scaling, err = bench.ParallelThroughputTier(seed, bench.LargeTier(), workers); err != nil {
			return fmt.Errorf("scaling: %w", err)
		}
	}
	churn, err := bench.RunChurnComparison(seed, churnDS, churnQs, churnMuts)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	// The memory section tracks the answer-set bytes/entry trajectory on
	// the same tier the throughput section ran plus the large scaling
	// tier — the ISSUE-8 acceptance surface (≥40% reduction vs dense).
	var memory []*bench.MemoryResult
	for _, mt := range []bench.ThroughputTier{tier, bench.LargeTier()} {
		m, err := bench.RunMemory(seed, mt)
		if err != nil {
			return fmt.Errorf("memory (%s): %w", mt.Name, err)
		}
		memory = append(memory, m)
	}
	// The persist section tracks snapshot save/restore wall time and bytes
	// (binary GCS3 vs text v2, eager and lazy restore) on the throughput
	// tier — the ISSUE-10 acceptance surface (v3 restore < v2).
	persist, err := bench.RunPersist(seed, tier)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	report := struct {
		Seed       int64                       `json:"seed"`
		Env        bench.Environment           `json:"env"`
		Workers    []int                       `json:"workers"`
		Throughput *bench.ThroughputComparison `json:"throughput"`
		Scaling    *bench.ThroughputComparison `json:"scaling"`
		Churn      *bench.ChurnComparison      `json:"churn"`
		Memory     []*bench.MemoryResult       `json:"memory"`
		Persist    *bench.PersistResult        `json:"persist"`
	}{seed, bench.CaptureEnvironment(), workers, tp, scaling, churn, memory, persist}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote throughput (%d worker counts), %s-tier scaling (%d graphs / %d queries), churn (%d queries, %d mutations, %.1f%% test reduction), memory (%.1f%% answer-byte reduction on the %s tier) and persist (v3 restore %.2f× faster than v2, lazy %.2f×) results to %s\n",
		len(workers), scaling.Tier, scaling.DatasetSize, scaling.Queries,
		churn.Queries, churn.Mutations, 100*churn.TestReduction(),
		100*memory[len(memory)-1].Reduction, memory[len(memory)-1].Tier,
		persist.RestoreSpeedup, persist.LazySpeedup, path)
	if assertChurn && !churn.MaintainedWins() {
		return fmt.Errorf("churn assertion failed: maintained %d total tests vs rebuild %d",
			churn.Maintained.TotalTests(), churn.Rebuild.TotalTests())
	}
	return nil
}

// parseWorkers parses a comma-separated worker-count list, shared by the
// throughput and bench-json paths. An empty list means "let the
// experiment sweep up to GOMAXPROCS" (bench.DefaultThroughputWorkers).
func parseWorkers(workerList string) ([]int, error) {
	if strings.TrimSpace(workerList) == "" {
		return nil, nil
	}
	var workers []int
	for _, f := range strings.Split(workerList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		workers = append(workers, n)
	}
	return workers, nil
}

// runIndexSmoke renders the indexed-vs-unindexed hit-detection comparison
// and errors unless the index strictly reduced work.
func runIndexSmoke(stdout io.Writer, seed int64, datasetSize, queries int) error {
	cmp, err := bench.RunIndexComparison(seed, datasetSize, queries)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nHit-detection index — %d mixed queries over %d molecules (PIN policy)\n", cmp.Queries, datasetSize)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "engine", "dominance merges", "cache-side iso tests", "index-pruned")
	t.AddRow("unindexed", cmp.Unindexed.HitFullChecks, cmp.Unindexed.HitDetectionTests, cmp.Unindexed.HitIndexPruned)
	t.AddRow("indexed", cmp.Indexed.HitFullChecks, cmp.Indexed.HitDetectionTests, cmp.Indexed.HitIndexPruned)
	t.Render(stdout)
	fmt.Fprintln(stdout, "\nanswers cross-checked byte-identical between both engines.")
	if !cmp.Reduced() {
		return fmt.Errorf("index assertion failed: indexed merges %d / iso %d vs unindexed merges %d / iso %d, pruned %d",
			cmp.Indexed.HitFullChecks, cmp.Indexed.HitDetectionTests,
			cmp.Unindexed.HitFullChecks, cmp.Unindexed.HitDetectionTests, cmp.Indexed.HitIndexPruned)
	}
	fmt.Fprintln(stdout, "index assertion passed: strictly fewer merges, no extra iso tests, pruning active.")
	return nil
}
