// Command workloadrun is the CLI rendition of the demo's Scenario II —
// The Workload Run (Figure 2(b) and 2(c)): it processes a workload through
// GraphCache, reporting per-query sub/super/exact hits and hit percentage,
// then compares which cached graphs each replacement policy evicts.
//
// With -throughput it instead drives a mixed workload through the batched
// worker-pool API (Cache.ExecuteAll), reporting queries/sec of the sharded
// engine against the serialized single-lock baseline at each worker count.
// Adding -assert-index also runs the indexed-vs-unindexed hit-detection
// comparison and exits non-zero unless the feature index strictly reduced
// hit-detection work (the `make bench-smoke` CI gate).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphcache/internal/bench"
	"graphcache/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a clean exit
		}
		fmt.Fprintf(os.Stderr, "workloadrun: %v\n", err)
		os.Exit(1)
	}
}

// run executes the command against args, writing reports to stdout. It is
// main minus the process plumbing, so tests can drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("workloadrun", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 2018, "random seed")
		size        = fs.Int("size", 10, "workload size (demo: 10)")
		policy      = fs.String("policy", "hd", "replacement policy for the run")
		policies    = fs.String("policies", "lru,pop,pin,pinc,hd", "policies for the replacement comparison; 'none' to skip")
		throughput  = fs.Bool("throughput", false, "run the parallel-throughput comparison instead of the workload run")
		datasetSz   = fs.Int("throughput-dataset", 200, "throughput mode: dataset size")
		queries     = fs.Int("throughput-queries", 1000, "throughput mode: workload size")
		workerList  = fs.String("workers", "1,4,8", "throughput mode: comma-separated worker counts")
		assertIndex = fs.Bool("assert-index", false, "throughput mode: also compare indexed vs unindexed hit detection and fail unless the index strictly reduced work")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *throughput {
		if err := runThroughput(stdout, *seed, *datasetSz, *queries, *workerList); err != nil {
			return err
		}
		if *assertIndex {
			return runIndexSmoke(stdout, *seed, *datasetSz, *queries)
		}
		return nil
	}
	if *assertIndex {
		return fmt.Errorf("-assert-index requires -throughput")
	}

	steps, c, err := bench.RunWorkload(*seed, *size, *policy)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "The Workload Run — %d queries under the %q policy\n", *size, *policy)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "query", "hits (exact/sub/super)", "hit%", "test-speedup")
	for _, s := range steps {
		ex := 0
		if s.ExactHit {
			ex = 1
		}
		t.AddRow(s.Index, fmt.Sprintf("%d/%d/%d", ex, s.SubHits, s.SuperHits),
			fmt.Sprintf("%.1f%%", s.HitPct), fmt.Sprintf("%.2f", s.TestSpeedup))
	}
	t.Render(stdout)
	snap := c.Stats()
	fmt.Fprintf(stdout, "\ncumulative: %d tests executed, %d saved → speedup %.2f; %d cached graphs, %s resident\n",
		snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup(), c.Len(), stats.FormatBytes(c.Bytes()))

	if *policies == "none" {
		return nil
	}
	names := strings.Split(*policies, ",")
	rs, err := bench.RunReplacement(*seed, names)
	if err != nil {
		return fmt.Errorf("replacement: %w", err)
	}
	fmt.Fprintln(stdout, "\nCache replacement comparison (Figure 2(c)): identical workload, different victims")
	for _, r := range rs {
		fmt.Fprintf(stdout, "%-5s evicted %2d: %v\n", r.Policy, len(r.Evicted), r.Evicted)
	}
	fmt.Fprintln(stdout, "\ndifferent policies cache out different graphs — each embodies a different utility trade-off.")
	return nil
}

// runThroughput renders the parallel-throughput comparison as a table.
func runThroughput(stdout io.Writer, seed int64, datasetSize, queries int, workerList string) error {
	var workers []int
	for _, f := range strings.Split(workerList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad worker count %q", f)
		}
		workers = append(workers, n)
	}
	cmp, err := bench.ParallelThroughput(seed, datasetSize, queries, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "Parallel throughput — %d mixed queries over %d molecules\n", queries, datasetSize)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "workers", "serialized q/s", "shared-window q/s", "per-shard q/s", "speedup", "window speedup")
	for i, w := range cmp.WorkerCounts {
		t.AddRow(w,
			fmt.Sprintf("%.1f", cmp.Serialized[i].QPS),
			fmt.Sprintf("%.1f", cmp.SharedWindow[i].QPS),
			fmt.Sprintf("%.1f", cmp.PerShard[i].QPS),
			fmt.Sprintf("%.2f×", cmp.SpeedupAt(w)),
			fmt.Sprintf("%.2f×", cmp.WindowSpeedupAt(w)))
	}
	t.Render(stdout)
	fmt.Fprintln(stdout, "\nserialized    = one global lock per query (pre-sharding engine);")
	fmt.Fprintln(stdout, "shared-window = lock-striped kernel, one coordinator-guarded admission window;")
	fmt.Fprintln(stdout, "per-shard     = per-shard admission windows, no global mutex on any query path.")
	fmt.Fprintln(stdout, "speedup = per-shard/serialized; window speedup = per-shard/shared-window.")
	return nil
}

// runIndexSmoke renders the indexed-vs-unindexed hit-detection comparison
// and errors unless the index strictly reduced work.
func runIndexSmoke(stdout io.Writer, seed int64, datasetSize, queries int) error {
	cmp, err := bench.RunIndexComparison(seed, datasetSize, queries)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nHit-detection index — %d mixed queries over %d molecules (PIN policy)\n", cmp.Queries, datasetSize)
	fmt.Fprintln(stdout, strings.Repeat("=", 64))
	t := stats.NewTable("", "engine", "dominance merges", "cache-side iso tests", "index-pruned")
	t.AddRow("unindexed", cmp.Unindexed.HitFullChecks, cmp.Unindexed.HitDetectionTests, cmp.Unindexed.HitIndexPruned)
	t.AddRow("indexed", cmp.Indexed.HitFullChecks, cmp.Indexed.HitDetectionTests, cmp.Indexed.HitIndexPruned)
	t.Render(stdout)
	fmt.Fprintln(stdout, "\nanswers cross-checked byte-identical between both engines.")
	if !cmp.Reduced() {
		return fmt.Errorf("index assertion failed: indexed merges %d / iso %d vs unindexed merges %d / iso %d, pruned %d",
			cmp.Indexed.HitFullChecks, cmp.Indexed.HitDetectionTests,
			cmp.Unindexed.HitFullChecks, cmp.Unindexed.HitDetectionTests, cmp.Indexed.HitIndexPruned)
	}
	fmt.Fprintln(stdout, "index assertion passed: strictly fewer merges, no extra iso tests, pruning active.")
	return nil
}
