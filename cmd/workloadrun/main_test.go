package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke: a tiny workload run must complete cleanly and render its tables.
func TestRunWorkloadSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "6", "-seed", "7", "-policies", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"The Workload Run", "cumulative:", "test-speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// Smoke: throughput mode with the index assertion — the bench-smoke CI
// gate — must pass on a tiny mixed workload.
func TestRunThroughputWithIndexAssertion(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-throughput", "-throughput-dataset", "30", "-throughput-queries", "60",
		"-workers", "1,2", "-assert-index",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Parallel throughput", "Hit-detection index", "index assertion passed"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workers", "0", "-throughput"}, &out); err == nil {
		t.Error("bad worker count accepted")
	}
	if err := run([]string{"-assert-index"}, &out); err == nil {
		t.Error("-assert-index without -throughput accepted")
	}
	if err := run([]string{"-assert-churn"}, &out); err == nil {
		t.Error("-assert-churn without -churn accepted")
	}
	if err := run([]string{"-churn", "-assert-index"}, &out); err == nil {
		t.Error("-assert-index with -churn silently accepted")
	}
	if err := run([]string{"-bench-json", "x.json", "-throughput"}, &out); err == nil {
		t.Error("-bench-json combined with -throughput accepted")
	}
}

// Smoke: churn mode with the maintenance assertion — the bench-json CI
// artifact's core comparison — must pass on a tiny stream.
func TestRunChurnWithAssertion(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-churn", "-churn-dataset", "60", "-churn-queries", "120",
		"-churn-mutations", "6", "-assert-churn",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Live dataset churn", "maintained", "drop+rebuild", "byte-identical"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// Smoke: -bench-json writes a parseable artifact with both sections.
func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	// -scale large with explicit tiny size overrides keeps the test fast:
	// the scaling section reuses the (downsized) large-tier run instead
	// of measuring the full 10k×10k workload.
	err := run([]string{
		"-bench-json", path, "-scale", "large",
		"-throughput-dataset", "30", "-throughput-queries", "60", "-workers", "1",
		"-churn-dataset", "60", "-churn-queries", "120", "-churn-mutations", "6",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Env struct {
			GOMAXPROCS int
			NumCPU     int
			GoVersion  string
		} `json:"env"`
		Workers    []int `json:"workers"`
		Throughput struct {
			WorkerCounts []int `json:"WorkerCounts"`
		} `json:"throughput"`
		Scaling struct {
			Tier         string
			WorkerCounts []int `json:"WorkerCounts"`
		} `json:"scaling"`
		Churn struct {
			Queries   int `json:"Queries"`
			Mutations int `json:"Mutations"`
		} `json:"churn"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bad JSON artifact: %v\n%s", err, raw)
	}
	if len(report.Throughput.WorkerCounts) != 1 || report.Churn.Queries != 120 || report.Churn.Mutations == 0 {
		t.Fatalf("artifact content wrong:\n%s", raw)
	}
	if report.Env.GOMAXPROCS < 1 || report.Env.NumCPU < 1 || report.Env.GoVersion == "" {
		t.Fatalf("artifact must record the runtime environment:\n%s", raw)
	}
	if len(report.Workers) != 1 || report.Workers[0] != 1 {
		t.Fatalf("artifact must record the worker sweep:\n%s", raw)
	}
	if report.Scaling.Tier != "large" || len(report.Scaling.WorkerCounts) != 1 {
		t.Fatalf("artifact must include the scaling section:\n%s", raw)
	}
}

// An empty -workers list means "sweep up to GOMAXPROCS"; the sweep is
// derived, never empty.
func TestParseWorkersEmptyMeansAuto(t *testing.T) {
	ws, err := parseWorkers("")
	if err != nil || ws != nil {
		t.Fatalf("parseWorkers(\"\") = %v, %v; want nil, nil", ws, err)
	}
	if ws, err = parseWorkers(" 2, 4 "); err != nil || len(ws) != 2 || ws[0] != 2 || ws[1] != 4 {
		t.Fatalf("parseWorkers(\" 2, 4 \") = %v, %v", ws, err)
	}
}
