package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke: a tiny workload run must complete cleanly and render its tables.
func TestRunWorkloadSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "6", "-seed", "7", "-policies", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"The Workload Run", "cumulative:", "test-speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// Smoke: throughput mode with the index assertion — the bench-smoke CI
// gate — must pass on a tiny mixed workload.
func TestRunThroughputWithIndexAssertion(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-throughput", "-throughput-dataset", "30", "-throughput-queries", "60",
		"-workers", "1,2", "-assert-index",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Parallel throughput", "Hit-detection index", "index assertion passed"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workers", "0", "-throughput"}, &out); err == nil {
		t.Error("bad worker count accepted")
	}
	if err := run([]string{"-assert-index"}, &out); err == nil {
		t.Error("-assert-index without -throughput accepted")
	}
	if err := run([]string{"-assert-churn"}, &out); err == nil {
		t.Error("-assert-churn without -churn accepted")
	}
	if err := run([]string{"-churn", "-assert-index"}, &out); err == nil {
		t.Error("-assert-index with -churn silently accepted")
	}
	if err := run([]string{"-bench-json", "x.json", "-throughput"}, &out); err == nil {
		t.Error("-bench-json combined with -throughput accepted")
	}
}

// Smoke: churn mode with the maintenance assertion — the bench-json CI
// artifact's core comparison — must pass on a tiny stream.
func TestRunChurnWithAssertion(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-churn", "-churn-dataset", "60", "-churn-queries", "120",
		"-churn-mutations", "6", "-assert-churn",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Live dataset churn", "maintained", "drop+rebuild", "byte-identical"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// Smoke: -bench-json writes a parseable artifact with both sections.
func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench-json", path,
		"-throughput-dataset", "30", "-throughput-queries", "60", "-workers", "1",
		"-churn-dataset", "60", "-churn-queries", "120", "-churn-mutations", "6",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Throughput struct {
			WorkerCounts []int `json:"WorkerCounts"`
		} `json:"throughput"`
		Churn struct {
			Queries   int `json:"Queries"`
			Mutations int `json:"Mutations"`
		} `json:"churn"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bad JSON artifact: %v\n%s", err, raw)
	}
	if len(report.Throughput.WorkerCounts) != 1 || report.Churn.Queries != 120 || report.Churn.Mutations == 0 {
		t.Fatalf("artifact content wrong:\n%s", raw)
	}
}
