package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke: a tiny workload run must complete cleanly and render its tables.
func TestRunWorkloadSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "6", "-seed", "7", "-policies", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"The Workload Run", "cumulative:", "test-speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// Smoke: throughput mode with the index assertion — the bench-smoke CI
// gate — must pass on a tiny mixed workload.
func TestRunThroughputWithIndexAssertion(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-throughput", "-throughput-dataset", "30", "-throughput-queries", "60",
		"-workers", "1,2", "-assert-index",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Parallel throughput", "Hit-detection index", "index assertion passed"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workers", "0", "-throughput"}, &out); err == nil {
		t.Error("bad worker count accepted")
	}
	if err := run([]string{"-assert-index"}, &out); err == nil {
		t.Error("-assert-index without -throughput accepted")
	}
}
