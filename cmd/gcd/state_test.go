package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stateQueries are distinct small patterns over the generated molecule
// dataset — enough to turn the window (2) twice and leave admitted
// entries behind.
var stateQueries = []string{
	"t # 0\nv 0 0\nv 1 0\ne 0 1\n",
	"t # 0\nv 0 0\nv 1 1\ne 0 1\n",
	"t # 0\nv 0 0\nv 1 0\nv 2 0\ne 0 1\ne 1 2\n",
	"t # 0\nv 0 0\nv 1 1\nv 2 0\ne 0 1\ne 1 2\n",
	"t # 0\nv 0 1\nv 1 0\nv 2 0\nv 3 0\ne 0 1\ne 1 2\ne 2 3\n",
}

func postStateQuery(t *testing.T, base, graph string) map[string]any {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"graph": graph, "type": "subgraph"})
	resp, err := http.Post(base+"/api/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("query response not JSON: %v\n%s", err, raw)
	}
	return out
}

func getStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %s", resp.StatusCode, raw)
	}
	var stats map[string]any
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, raw)
	}
	return stats
}

// Full persistence lifecycle: cold boot with -state, warm the cache, save
// on graceful shutdown; reboot restores the entries lazily (no answer
// bodies faulted until a query needs them) and the restored entries
// answer with exact hits.
func TestDaemonStateSaveRestore(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "cache.gcstate")

	base, out, shutdown := bootDaemon(t, "-state", statePath)
	if !strings.Contains(out.String(), "starting cold") {
		t.Errorf("first boot did not report a cold start:\n%s", out.String())
	}
	for _, q := range stateQueries {
		postStateQuery(t, base, q)
	}
	warmEntries := getStats(t, base)["cachedEntries"].(float64)
	if warmEntries == 0 {
		t.Fatal("workload admitted no entries; the lifecycle test needs a warm cache")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "saved") {
		t.Errorf("no save banner in output:\n%s", out.String())
	}
	if fi, err := os.Stat(statePath); err != nil || fi.Size() == 0 {
		t.Fatalf("state file after shutdown: %v (size %v)", err, fi)
	}

	base, out, shutdown = bootDaemon(t, "-state", statePath)
	defer shutdown()
	if !strings.Contains(out.String(), "restored") {
		t.Fatalf("second boot did not restore:\n%s", out.String())
	}
	stats := getStats(t, base)
	if got := stats["cachedEntries"].(float64); got != warmEntries {
		t.Fatalf("restored %v entries, want %v", got, warmEntries)
	}
	// Lazy restore: booting and serving stats reads no answer bodies.
	if got := stats["stateBodyFaults"].(float64); got != 0 {
		t.Fatalf("boot faulted %v answer bodies before any query", got)
	}
	// A warmed query answers from cache, faulting its body in.
	out2 := postStateQuery(t, base, stateQueries[0])
	if !out2["exactHit"].(bool) {
		t.Error("restored entry did not produce an exact hit")
	}
	if got := getStats(t, base)["stateBodyFaults"].(float64); got == 0 {
		t.Error("exact hit on a restored entry faulted no answer body")
	}
}

// POST /api/state/save persists on demand when -state is set and answers
// 503 when it is not.
func TestDaemonStateSaveEndpoint(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "cache.gcstate")
	base, _, shutdown := bootDaemon(t, "-state", statePath)
	for _, q := range stateQueries {
		postStateQuery(t, base, q)
	}
	resp, err := http.Post(base+"/api/state/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save status %d: %s", resp.StatusCode, raw)
	}
	if fi, err := os.Stat(statePath); err != nil || fi.Size() == 0 {
		t.Fatalf("state file after save: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	base, _, shutdown = bootDaemon(t)
	defer shutdown()
	resp, err = http.Post(base+"/api/state/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("save without -state: status %d, want 503", resp.StatusCode)
	}
}

// A corrupt (or foreign) state file must never take the daemon down: it
// boots with an empty cache and says why.
func TestDaemonCorruptStateFileIgnored(t *testing.T) {
	for name, contents := range map[string]string{
		"junk":        "not a state file at all",
		"bad-binary":  "GCS3" + strings.Repeat("\x00", 80),
		"bad-text-v2": "gcstate 2 30 1\nentry 0 extra junk\n",
	} {
		t.Run(name, func(t *testing.T) {
			statePath := filepath.Join(t.TempDir(), "cache.gcstate")
			if err := os.WriteFile(statePath, []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			base, out, shutdown := bootDaemon(t, "-state", statePath)
			defer shutdown()
			if !strings.Contains(out.String(), "ignoring state file") {
				t.Errorf("no corrupt-state banner:\n%s", out.String())
			}
			stats := getStats(t, base)
			if got := stats["cachedEntries"].(float64); got != 0 {
				t.Errorf("corrupt restore left %v entries", got)
			}
			// The daemon still serves queries.
			postStateQuery(t, base, stateQueries[0])
		})
	}
}
