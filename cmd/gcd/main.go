// Command gcd serves GraphCache over HTTP — the stand-in for the demo
// paper's cloud deployment with HTML dashboards. It loads (or generates) a
// dataset, builds Method M and the cache, and exposes:
//
//	GET  /                      HTML status page
//	GET  /api/stats             operational counters (Statistics Manager)
//	GET  /api/entries           cached queries and their utilities
//	POST /api/query             execute a query: {"graph": "<gSpan text>", "type": "subgraph"}
//	POST /api/query/batch       execute a batch: {"queries": [...], "workers": 8}
//	                            (?stream=1 streams NDJSON outcomes as they finish)
//	GET  /api/dataset/{id}      dataset graph as text, ?format=dot / ascii
//	POST /api/state/save        persist the cache to the -state file
//	GET  /debug/pprof/          live CPU/heap/goroutine profiles (only with -pprof)
//
// Requests are served concurrently: net/http spawns a goroutine per
// connection and the sharded cache kernel processes the in-flight queries
// in parallel. SIGINT/SIGTERM trigger a graceful shutdown that drains
// in-flight requests before exiting.
//
// With -state <path> the cache is persistent: a snapshot at that path is
// restored lazily at boot (a missing file is a cold start; a corrupt file
// is logged and skipped, the daemon starts with an empty cache) and the
// cache is saved back — atomically, via temp file + rename — on graceful
// shutdown or on demand through POST /api/state/save.
//
// Usage:
//
//	gcd -addr :8081 -dataset aids.txt -state aids.gcstate
//	gcd -addr :8081 -generate 1000 -policy hd -capacity 100 -shards 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/server"

	"math/rand"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal kills immediately
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h printed usage; that is a clean exit
		}
		log.Fatalf("gcd: %v", err)
	}
}

// run builds the cache and serves HTTP until ctx is cancelled, then drains
// in-flight requests and returns. It is main minus the process plumbing
// (signals, exit codes), so tests can boot the daemon on a random port,
// read the bound address off stdout and shut it down via the context.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gcd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8081", "listen address (the demo used :8081)")
		dsPath     = fs.String("dataset", "", "dataset file in the text codec; empty generates molecules")
		generate   = fs.Int("generate", 100, "generated dataset size when -dataset is empty")
		seed       = fs.Int64("seed", 2018, "generation seed")
		policy     = fs.String("policy", "hd", "replacement policy")
		capacity   = fs.Int("capacity", 50, "cache capacity (entries)")
		window     = fs.Int("window", 10, "admission window size")
		ggsxLen    = fs.Int("ggsx", 4, "GGSX path-feature length")
		workers    = fs.Int("workers", 1, "parallel verification workers per query")
		shards     = fs.Int("shards", 0, "cache lock shards (0 = default)")
		serialized = fs.Bool("serialized", false, "serialize all queries behind one lock (pre-sharding baseline)")
		indexOff   = fs.Bool("index-off", false, "disable the hit-detection feature index (pre-index baseline)")
		sharedWin  = fs.Bool("shared-window", false, "use one global admission window instead of per-shard windows (pre-decentralization baseline)")
		lazyRec    = fs.Bool("lazy-reconcile", false, "reconcile cached answers lazily after dataset additions (per-entry epochs) instead of eagerly at mutation time")
		pprofOn    = fs.Bool("pprof", false, "expose net/http/pprof profiling at /debug/pprof/ (off by default: profiles leak internals, enable only on trusted networks)")
		statePath  = fs.String("state", "", "cache state file: restored (lazily) at boot, saved on graceful shutdown and POST /api/state/save")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var dataset []*graph.Graph
	if *dsPath != "" {
		f, err := os.Open(*dsPath)
		if err != nil {
			return err
		}
		dataset, err = graph.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		dataset = gen.AssignIDs(dataset)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		dataset = gen.Molecules(rng, *generate, gen.DefaultMoleculeConfig())
	}
	if len(dataset) == 0 {
		return errors.New("empty dataset")
	}

	method := ftv.NewGGSXMethod(dataset, *ggsxLen)
	p, err := core.NewPolicy(*policy)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Capacity = *capacity
	cfg.Window = *window
	cfg.Policy = p
	cfg.VerifyWorkers = *workers
	cfg.Shards = *shards
	cfg.Serialized = *serialized
	cfg.IndexOff = *indexOff
	cfg.SharedWindow = *sharedWin
	cfg.LazyReconcile = *lazyRec
	cache, err := core.New(method, cfg)
	if err != nil {
		return err
	}

	// Restore persisted state before accepting traffic. Lazy mode: the
	// snapshot's index and graphs load now, answer bodies fault in from the
	// (mmapped) file as queries touch them — so the handle must stay open
	// for the cache's lifetime. A missing file is a cold start; a corrupt
	// or mismatched file must never take the daemon down, it just starts
	// empty.
	var stateHandle io.Closer
	if *statePath != "" {
		switch closer, err := cache.RestoreStateLazy(*statePath); {
		case err == nil:
			stateHandle = closer
			fmt.Fprintf(stdout, "gcd: restored %d cached queries from %s (lazy)\n", cache.Len(), *statePath)
		case os.IsNotExist(err):
			fmt.Fprintf(stdout, "gcd: no state file at %s, starting cold\n", *statePath)
		default:
			// Not a v3 snapshot (or a damaged one). Fall back to an eager
			// restore, which also reads the legacy v2 text format; if that
			// fails too, the file is corrupt — start empty, never crash.
			if v2err := restoreEager(cache, *statePath); v2err == nil {
				fmt.Fprintf(stdout, "gcd: restored %d cached queries from %s\n", cache.Len(), *statePath)
			} else {
				fmt.Fprintf(stdout, "gcd: ignoring state file %s: %v\n", *statePath, err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "gcd: %d dataset graphs, method %s, policy %s, cache %d/%d window, %d shards\n",
		len(dataset), method.Name(), p.Name(), *capacity, *window, cache.Shards())
	fmt.Fprintf(stdout, "gcd: listening on %s\n", ln.Addr())

	api := server.New(cache)
	if *statePath != "" {
		api.SetStateSaver(func() error { return saveState(cache, *statePath) })
	}
	var handler http.Handler = api
	if *pprofOn {
		// The profiling handlers are mounted on a wrapper mux rather than
		// the blank-import DefaultServeMux route, so they exist ONLY when
		// opted in and the API handler keeps owning every other path.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintln(stdout, "gcd: pprof profiling exposed at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(stdout, "gcd: shutting down, draining in-flight requests")
		//gclint:ignore ctxflow -- the received ctx is already cancelled here; the drain deadline must outlive it
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// Save AFTER the drain (no in-flight mutations) and BEFORE closing
		// the restore handle: serializing a lazily restored cache faults the
		// remaining answer bodies in from the old snapshot file.
		if *statePath != "" {
			if err := saveState(cache, *statePath); err != nil {
				return fmt.Errorf("saving state: %w", err)
			}
			fmt.Fprintf(stdout, "gcd: saved %d cached queries to %s\n", cache.Len(), *statePath)
		}
		if stateHandle != nil {
			if err := stateHandle.Close(); err != nil {
				return fmt.Errorf("closing state file: %w", err)
			}
		}
		snap := cache.Stats()
		fmt.Fprintf(stdout, "gcd: served %d queries (%d exact hits), bye\n", snap.Queries, snap.ExactHits)
		return nil
	}
}

// saveState persists the cache atomically: serialize to a temp file in the
// destination directory, then rename over the target — a crash mid-save
// leaves the previous snapshot intact, and a reader never sees a partial
// file. Concurrent saves (shutdown racing POST /api/state/save) are safe:
// each writes its own temp file and the cache serializes the snapshots.
// restoreEager reads a state file through the format-sniffing eager path
// (v3 binary or legacy v2 text).
func restoreEager(c *core.Cache, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.ReadState(f)
}

func saveState(c *core.Cache, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gcstate-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.WriteState(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
