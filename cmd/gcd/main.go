// Command gcd serves GraphCache over HTTP — the stand-in for the demo
// paper's cloud deployment with HTML dashboards. It loads (or generates) a
// dataset, builds Method M and the cache, and exposes:
//
//	GET  /                      HTML status page
//	GET  /api/stats             operational counters (Statistics Manager)
//	GET  /api/entries           cached queries and their utilities
//	POST /api/query             execute a query: {"graph": "<gSpan text>", "type": "subgraph"}
//	GET  /api/dataset/{id}      dataset graph as text, ?format=dot / ascii
//
// Usage:
//
//	gcd -addr :8081 -dataset aids.txt
//	gcd -addr :8081 -generate 1000 -policy hd -capacity 100
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/server"

	"math/rand"
)

func main() {
	var (
		addr     = flag.String("addr", ":8081", "listen address (the demo used :8081)")
		dsPath   = flag.String("dataset", "", "dataset file in the text codec; empty generates molecules")
		generate = flag.Int("generate", 100, "generated dataset size when -dataset is empty")
		seed     = flag.Int64("seed", 2018, "generation seed")
		policy   = flag.String("policy", "hd", "replacement policy")
		capacity = flag.Int("capacity", 50, "cache capacity (entries)")
		window   = flag.Int("window", 10, "admission window size")
		ggsxLen  = flag.Int("ggsx", 4, "GGSX path-feature length")
		workers  = flag.Int("workers", 1, "parallel verification workers")
	)
	flag.Parse()

	var dataset []*graph.Graph
	if *dsPath != "" {
		f, err := os.Open(*dsPath)
		if err != nil {
			log.Fatalf("gcd: %v", err)
		}
		dataset, err = graph.ReadAll(f)
		f.Close()
		if err != nil {
			log.Fatalf("gcd: %v", err)
		}
		dataset = gen.AssignIDs(dataset)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		dataset = gen.Molecules(rng, *generate, gen.DefaultMoleculeConfig())
	}
	if len(dataset) == 0 {
		log.Fatal("gcd: empty dataset")
	}

	method := ftv.NewGGSXMethod(dataset, *ggsxLen)
	p, err := core.NewPolicy(*policy)
	if err != nil {
		log.Fatalf("gcd: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Capacity = *capacity
	cfg.Window = *window
	cfg.Policy = p
	cfg.VerifyWorkers = *workers
	cache, err := core.New(method, cfg)
	if err != nil {
		log.Fatalf("gcd: %v", err)
	}

	fmt.Printf("gcd: %d dataset graphs, method %s, policy %s, cache %d/%d window\n",
		len(dataset), method.Name(), p.Name(), *capacity, *window)
	fmt.Printf("gcd: listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(cache, dataset)))
}
