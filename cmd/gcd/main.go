// Command gcd serves GraphCache over HTTP — the stand-in for the demo
// paper's cloud deployment with HTML dashboards. It loads (or generates) a
// dataset, builds Method M and the cache, and exposes:
//
//	GET  /                      HTML status page
//	GET  /api/stats             operational counters (Statistics Manager)
//	GET  /api/entries           cached queries and their utilities
//	POST /api/query             execute a query: {"graph": "<gSpan text>", "type": "subgraph"}
//	POST /api/query/batch       execute a batch: {"queries": [...], "workers": 8}
//	GET  /api/dataset/{id}      dataset graph as text, ?format=dot / ascii
//
// Requests are served concurrently: net/http spawns a goroutine per
// connection and the sharded cache kernel processes the in-flight queries
// in parallel. SIGINT/SIGTERM trigger a graceful shutdown that drains
// in-flight requests before exiting.
//
// Usage:
//
//	gcd -addr :8081 -dataset aids.txt
//	gcd -addr :8081 -generate 1000 -policy hd -capacity 100 -shards 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/server"

	"math/rand"
)

func main() {
	var (
		addr       = flag.String("addr", ":8081", "listen address (the demo used :8081)")
		dsPath     = flag.String("dataset", "", "dataset file in the text codec; empty generates molecules")
		generate   = flag.Int("generate", 100, "generated dataset size when -dataset is empty")
		seed       = flag.Int64("seed", 2018, "generation seed")
		policy     = flag.String("policy", "hd", "replacement policy")
		capacity   = flag.Int("capacity", 50, "cache capacity (entries)")
		window     = flag.Int("window", 10, "admission window size")
		ggsxLen    = flag.Int("ggsx", 4, "GGSX path-feature length")
		workers    = flag.Int("workers", 1, "parallel verification workers per query")
		shards     = flag.Int("shards", 0, "cache lock shards (0 = default)")
		serialized = flag.Bool("serialized", false, "serialize all queries behind one lock (pre-sharding baseline)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	var dataset []*graph.Graph
	if *dsPath != "" {
		f, err := os.Open(*dsPath)
		if err != nil {
			log.Fatalf("gcd: %v", err)
		}
		dataset, err = graph.ReadAll(f)
		f.Close()
		if err != nil {
			log.Fatalf("gcd: %v", err)
		}
		dataset = gen.AssignIDs(dataset)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		dataset = gen.Molecules(rng, *generate, gen.DefaultMoleculeConfig())
	}
	if len(dataset) == 0 {
		log.Fatal("gcd: empty dataset")
	}

	method := ftv.NewGGSXMethod(dataset, *ggsxLen)
	p, err := core.NewPolicy(*policy)
	if err != nil {
		log.Fatalf("gcd: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Capacity = *capacity
	cfg.Window = *window
	cfg.Policy = p
	cfg.VerifyWorkers = *workers
	cfg.Shards = *shards
	cfg.Serialized = *serialized
	cache, err := core.New(method, cfg)
	if err != nil {
		log.Fatalf("gcd: %v", err)
	}

	fmt.Printf("gcd: %d dataset graphs, method %s, policy %s, cache %d/%d window, %d shards\n",
		len(dataset), method.Name(), p.Name(), *capacity, *window, cache.Shards())
	fmt.Printf("gcd: listening on %s\n", *addr)

	srv := &http.Server{Addr: *addr, Handler: server.New(cache, dataset)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("gcd: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Println("gcd: shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("gcd: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gcd: %v", err)
		}
		snap := cache.Stats()
		fmt.Printf("gcd: served %d queries (%d exact hits), bye\n", snap.Queries, snap.ExactHits)
	}
}
