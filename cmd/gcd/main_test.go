package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the daemon's stdout is captured in
// while the test polls it for the bound address.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// bootDaemon starts run() on a random port and returns the base URL, the
// captured output, and a shutdown function that waits for a clean exit.
func bootDaemon(t *testing.T, extraArgs ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-generate", "30", "-seed", "11", "-window", "2"}, extraArgs...)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], out, func() error {
				cancel()
				select {
				case err := <-done:
					return err
				case <-time.After(10 * time.Second):
					return fmt.Errorf("daemon did not exit after shutdown")
				}
			}
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never reported its address\noutput: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Smoke: gcd boots on a random port, answers a query and the stats
// endpoint (including the new index counters), and exits cleanly on
// context cancellation.
func TestDaemonBootQueryShutdown(t *testing.T) {
	base, out, shutdown := bootDaemon(t)

	body := strings.NewReader(`{"graph": "t # 0\nv 0 1\nv 1 2\ne 0 1\n", "type": "subgraph"}`)
	resp, err := http.Post(base+"/api/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	qb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, qb)
	}

	resp, err = http.Get(base + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %s", resp.StatusCode, sb)
	}
	var stats map[string]any
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, sb)
	}
	if got, ok := stats["queries"].(float64); !ok || got != 1 {
		t.Errorf("stats queries = %v, want 1", stats["queries"])
	}
	for _, key := range []string{"hitIndexPruned", "hitFullChecks", "hitScanEntries", "windowTurns", "shards"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q:\n%s", key, sb)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "bye") {
		t.Errorf("no shutdown banner in output:\n%s", s)
	}
}

// The -index-off baseline must boot and serve as well.
func TestDaemonIndexOffFlag(t *testing.T) {
	base, _, shutdown := bootDaemon(t, "-index-off")
	resp, err := http.Get(base + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// -pprof mounts the profiling endpoints without stealing any API route;
// without the flag /debug/pprof/ must not exist.
func TestDaemonPprofFlag(t *testing.T) {
	base, _, shutdown := bootDaemon(t, "-pprof")
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/api/stats"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with -pprof: status %d, want 200", path, resp.StatusCode)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	base, _, shutdown = bootDaemon(t)
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("/debug/pprof/ served without -pprof; profiling must be opt-in")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-policy", "nope"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(context.Background(), []string{"-dataset", "/does/not/exist"}, &out); err == nil {
		t.Error("missing dataset file accepted")
	}
}
