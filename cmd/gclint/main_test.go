package main

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for gclint to chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const scratchHeader = `package scratch

import (
	"sync"
	"sync/atomic"
)

//gclint:hierarchy outer inner

type kernel struct {
	//gclint:lock outer
	outerMu sync.Mutex
	//gclint:lock inner
	innerMu sync.Mutex
	state   atomic.Pointer[snap]
}

//gclint:cow
type snap struct{ n int }
`

// TestRunCleanModule: a conforming scratch module lints clean.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": scratchHeader + `
func (k *kernel) good() {
	k.outerMu.Lock()
	defer k.outerMu.Unlock()
	k.innerMu.Lock()
	k.innerMu.Unlock()
}

func (k *kernel) republish() {
	old := k.state.Load()
	k.state.Store(&snap{n: old.n + 1})
}
`,
	})
	var out strings.Builder
	if err := run([]string{"-C", dir, "./..."}, &out); err != nil {
		t.Fatalf("expected clean lint, got %v\n%s", err, out.String())
	}
}

// TestRunHierarchyViolation: deliberately reversing the lock hierarchy
// in a scratch file must fail the lint run.
func TestRunHierarchyViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": scratchHeader + `
func (k *kernel) reversed() {
	k.innerMu.Lock()
	defer k.innerMu.Unlock()
	k.outerMu.Lock()
	k.outerMu.Unlock()
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "lockorder") || !strings.Contains(out.String(), "acquiring outer while inner is held") {
		t.Fatalf("missing lockorder finding:\n%s", out.String())
	}
}

// TestRunCowViolation: mutating a published COW snapshot in a scratch
// file must fail the lint run.
func TestRunCowViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": scratchHeader + `
func (k *kernel) scribble() {
	st := k.state.Load()
	st.n = 7
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cowpublish") || !strings.Contains(out.String(), "write through published copy-on-write value") {
		t.Fatalf("missing cowpublish finding:\n%s", out.String())
	}
}

// TestRunTornSnapshotViolation: loading an annotated snapshot cell twice
// inside one operation scope must fail the lint run — the seeded version
// of the detectHits comparator bug (internal/core/processor.go's
// rankCandidates extraction).
func TestRunTornSnapshotViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": `package scratch

import "sync/atomic"

type box struct {
	//gclint:snapshot data
	data atomic.Pointer[int]
}

//gclint:pins data
func torn(b *box) int {
	a := *b.data.Load()
	c := *b.data.Load()
	return a + c
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "snapshotonce") || !strings.Contains(out.String(), "loaded more than once in one operation scope") {
		t.Fatalf("missing snapshotonce finding:\n%s", out.String())
	}
}

// TestRunDeterminismViolation: an unordered map range inside a
// //gclint:deterministic function must fail the lint run, including when
// the range sits in a transitively-reached helper.
func TestRunDeterminismViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": `package scratch

//gclint:deterministic
func Sum(m map[string]int) int {
	return helper(m)
}

func helper(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "determinism") ||
		!strings.Contains(out.String(), "range over map (no sorted-key idiom)") ||
		!strings.Contains(out.String(), "reachable from //gclint:deterministic Sum") {
		t.Fatalf("missing transitive determinism finding:\n%s", out.String())
	}
}

// TestRunContextDropViolation: a function that receives a context and
// then calls the context-less sibling of a *Context API pair must fail
// the lint run — the exact shape of the PR 4 batch-streaming bug, where a
// handler held r.Context() but invoked ExecuteAllStream instead of
// ExecuteAllStreamContext.
func TestRunContextDropViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": `package scratch

import "context"

func Fetch(id int) int { return id }

func FetchContext(ctx context.Context, id int) int { return id }

func Handle(ctx context.Context, id int) int {
	return Fetch(id)
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ctxflow") || !strings.Contains(out.String(), "call to Fetch drops the request context; use FetchContext") {
		t.Fatalf("missing ctxflow finding:\n%s", out.String())
	}
}

// TestRunJSONOutput: -json must emit machine-parseable diagnostics with
// module-relative paths — the contract the CI annotation step depends on.
func TestRunJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": `package scratch

import "context"

func Work(ctx context.Context) context.Context {
	return context.Background()
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "-json", "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %d:\n%s", len(diags), out.String())
	}
	d := diags[0]
	if d.Analyzer != "ctxflow" || d.File != "scratch.go" || d.Line == 0 || d.Col == 0 ||
		!strings.Contains(d.Message, "discards the context.Context Work already receives") {
		t.Fatalf("unexpected diagnostic %+v", d)
	}
}

// TestRunWaiversInventory: -waivers must list every //gclint:ignore with
// its reason and exit clean.
func TestRunWaiversInventory(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": `package scratch

import "context"

func Fetch(id int) int { return id }

func FetchContext(ctx context.Context, id int) int { return id }

func Handle(ctx context.Context, id int) int {
	//gclint:ignore ctxflow -- scratch fixture exercising the waiver inventory
	return Fetch(id)
}
`,
	})
	var out strings.Builder
	if err := run([]string{"-C", dir, "-waivers", "./..."}, &out); err != nil {
		t.Fatalf("waivers mode should exit clean, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "scratch.go:10: waives [ctxflow] -- scratch fixture exercising the waiver inventory") {
		t.Fatalf("missing waiver line:\n%s", out.String())
	}
}

// TestRunRepo: the repository itself must lint clean — this is `make
// lint` as a regression test.
func TestRunRepo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-C", "../..", "./..."}, &out); err != nil {
		t.Fatalf("repo does not lint clean: %v\n%s", err, out.String())
	}
}

// TestRunRejectsBadFlags: flag errors surface as errors, not panics.
func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil || errors.Is(err, flag.ErrHelp) {
		t.Fatalf("expected flag error, got %v", err)
	}
}
