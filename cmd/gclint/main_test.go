package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for gclint to chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const scratchHeader = `package scratch

import (
	"sync"
	"sync/atomic"
)

//gclint:hierarchy outer inner

type kernel struct {
	//gclint:lock outer
	outerMu sync.Mutex
	//gclint:lock inner
	innerMu sync.Mutex
	state   atomic.Pointer[snap]
}

//gclint:cow
type snap struct{ n int }
`

// TestRunCleanModule: a conforming scratch module lints clean.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": scratchHeader + `
func (k *kernel) good() {
	k.outerMu.Lock()
	defer k.outerMu.Unlock()
	k.innerMu.Lock()
	k.innerMu.Unlock()
}

func (k *kernel) republish() {
	old := k.state.Load()
	k.state.Store(&snap{n: old.n + 1})
}
`,
	})
	var out strings.Builder
	if err := run([]string{"-C", dir, "./..."}, &out); err != nil {
		t.Fatalf("expected clean lint, got %v\n%s", err, out.String())
	}
}

// TestRunHierarchyViolation: deliberately reversing the lock hierarchy
// in a scratch file must fail the lint run.
func TestRunHierarchyViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": scratchHeader + `
func (k *kernel) reversed() {
	k.innerMu.Lock()
	defer k.innerMu.Unlock()
	k.outerMu.Lock()
	k.outerMu.Unlock()
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "lockorder") || !strings.Contains(out.String(), "acquiring outer while inner is held") {
		t.Fatalf("missing lockorder finding:\n%s", out.String())
	}
}

// TestRunCowViolation: mutating a published COW snapshot in a scratch
// file must fail the lint run.
func TestRunCowViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"scratch.go": scratchHeader + `
func (k *kernel) scribble() {
	st := k.state.Load()
	st.n = 7
}
`,
	})
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if !errors.Is(err, errFindings) {
		t.Fatalf("expected findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cowpublish") || !strings.Contains(out.String(), "write through published copy-on-write value") {
		t.Fatalf("missing cowpublish finding:\n%s", out.String())
	}
}

// TestRunRepo: the repository itself must lint clean — this is `make
// lint` as a regression test.
func TestRunRepo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-C", "../..", "./..."}, &out); err != nil {
		t.Fatalf("repo does not lint clean: %v\n%s", err, out.String())
	}
}

// TestRunRejectsBadFlags: flag errors surface as errors, not panics.
func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil || errors.Is(err, flag.ErrHelp) {
		t.Fatalf("expected flag error, got %v", err)
	}
}
