// Command gclint is the repo's concurrency/hot-path contract checker:
// a multichecker running the lockorder, cowpublish, leaflock, noalloc,
// snapshotonce, determinism and ctxflow analyzers (internal/lint/...)
// over the module. `make lint` invokes it as `gclint ./...`; any
// finding is a build error.
//
// Usage:
//
//	gclint [-C dir] [-json] [-waivers] [-timings] [packages]
//
// Packages default to ./... resolved in -C (default the current
// directory). The module is loaded and type-checked exactly once and
// shared across the whole suite.
//
//   - -json emits diagnostics as a JSON array ({analyzer, file, line,
//     col, message}, file relative to -C) instead of text — the CI
//     workflow turns these into GitHub Actions ::error annotations.
//   - -waivers switches to inventory mode: instead of linting, list
//     every //gclint:ignore directive with its mandatory reason (text,
//     or JSON with -json) so waiver growth stays reviewable.
//   - -timings appends per-analyzer wall time plus the one-time
//     load/type-check cost, so lint-cost regressions show up in CI
//     logs next to the findings.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"graphcache/internal/lint"
	"graphcache/internal/lint/cowpublish"
	"graphcache/internal/lint/ctxflow"
	"graphcache/internal/lint/determinism"
	"graphcache/internal/lint/leaflock"
	"graphcache/internal/lint/lockorder"
	"graphcache/internal/lint/noalloc"
	"graphcache/internal/lint/snapshotonce"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*lint.Analyzer{
	lockorder.Analyzer,
	cowpublish.Analyzer,
	leaflock.Analyzer,
	noalloc.Analyzer,
	snapshotonce.Analyzer,
	determinism.Analyzer,
	ctxflow.Analyzer,
}

// errFindings distinguishes "the code has findings" (exit 1, findings
// already printed) from operational failures (load/type-check errors).
var errFindings = errors.New("findings reported")

// jsonDiagnostic is the -json wire shape of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonWaiver is the -waivers -json wire shape of one //gclint:ignore.
type jsonWaiver struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, errFindings) {
			fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gclint", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	asJSON := fs.Bool("json", false, "emit structured JSON instead of text")
	waivers := fs.Bool("waivers", false, "inventory //gclint:ignore directives instead of linting")
	timings := fs.Bool("timings", false, "report per-analyzer wall time")
	fs.Usage = func() {
		fmt.Fprintf(stdout, "usage: gclint [-C dir] [-json] [-waivers] [-timings] [packages]\n\n"+
			"Runs the gclint analyzer suite (%s) over the packages\n"+
			"(default ./...). Any finding fails the run.\n\n", analyzerNames())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, loadTime, err := lint.LoadModuleTimed(*dir, patterns...)
	if err != nil {
		return err
	}
	diags, ann, analyzerTimes, err := lint.RunTimed(prog, analyzers)
	if err != nil {
		return err
	}

	// relativize points findings at -C-relative paths, which is what
	// both humans and the CI annotation step want.
	absDir, absErr := filepath.Abs(*dir)
	relativize := func(file string) string {
		if absErr != nil {
			return file
		}
		if rel, err := filepath.Rel(absDir, file); err == nil {
			return rel
		}
		return file
	}

	if *waivers {
		ws := make([]jsonWaiver, 0, len(ann.Waivers))
		for _, w := range ann.Waivers {
			ws = append(ws, jsonWaiver{
				File:      relativize(w.File),
				Line:      w.Line,
				Analyzers: w.Analyzers,
				Reason:    w.Reason,
			})
		}
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].File != ws[j].File {
				return ws[i].File < ws[j].File
			}
			return ws[i].Line < ws[j].Line
		})
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(ws)
		}
		for _, w := range ws {
			fmt.Fprintf(stdout, "%s:%d: waives %v -- %s\n", w.File, w.Line, w.Analyzers, w.Reason)
		}
		fmt.Fprintf(stdout, "gclint: %d waiver(s)\n", len(ws))
		return nil
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			pos := prog.Position(d.Pos)
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relativize(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			pos := prog.Position(d.Pos)
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relativize(pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}

	if *timings {
		fmt.Fprintf(os.Stderr, "gclint: load+typecheck %v\n", loadTime)
		for _, t := range analyzerTimes {
			fmt.Fprintf(os.Stderr, "gclint: %-12s %v\n", t.Name, t.Duration)
		}
	}

	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(stdout, "gclint: %d finding(s)\n", len(diags))
		}
		return errFindings
	}
	return nil
}

func analyzerNames() string {
	names := ""
	for i, a := range analyzers {
		if i > 0 {
			names += ", "
		}
		names += a.Name
	}
	return names
}
