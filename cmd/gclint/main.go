// Command gclint is the repo's concurrency/hot-path contract checker:
// a multichecker running the lockorder, cowpublish, leaflock and
// noalloc analyzers (internal/lint/...) over the module. `make lint`
// invokes it as `gclint ./...`; any finding is a build error.
//
// Usage:
//
//	gclint [-C dir] [packages]
//
// Packages default to ./... resolved in -C (default the current
// directory).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"graphcache/internal/lint"
	"graphcache/internal/lint/cowpublish"
	"graphcache/internal/lint/leaflock"
	"graphcache/internal/lint/lockorder"
	"graphcache/internal/lint/noalloc"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*lint.Analyzer{
	lockorder.Analyzer,
	cowpublish.Analyzer,
	leaflock.Analyzer,
	noalloc.Analyzer,
}

// errFindings distinguishes "the code has findings" (exit 1, findings
// already printed) from operational failures (load/type-check errors).
var errFindings = errors.New("findings reported")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, errFindings) {
			fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gclint", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stdout, "usage: gclint [-C dir] [packages]\n\n"+
			"Runs the gclint analyzer suite (%s) over the packages\n"+
			"(default ./...). Any finding fails the run.\n\n", analyzerNames())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.LoadModule(*dir, patterns...)
	if err != nil {
		return err
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s: %s\n", prog.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "gclint: %d finding(s)\n", len(diags))
		return errFindings
	}
	return nil
}

func analyzerNames() string {
	names := ""
	for i, a := range analyzers {
		if i > 0 {
			names += ", "
		}
		names += a.Name
	}
	return names
}
