// Circuits: the paper's electronic-design use case, exercising the claimed
// generalization "to directed graphs and/or graphs with edge labels" —
// sub-circuit search over a library of combinational circuits (directed
// DAGs with gate-type vertex labels and wire-type edge labels).
package main

import (
	"fmt"
	"log"

	gc "graphcache"
)

func main() {
	// A library of 400 circuits.
	library := gc.GenerateCircuits(13, 400, gc.DefaultCircuitConfig())
	method := gc.NewGGSXMethod(library, 3)

	cfg := gc.DefaultConfig()
	cfg.Window = 1
	cache, err := gc.NewCache(method, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sub-circuit search over a 400-circuit library (directed, edge-labelled)")
	fmt.Println("------------------------------------------------------------------------")

	// An engineer looks for functional blocks: first a small adder-like
	// block, then progressively larger blocks containing it, then repeats.
	for round := 0; round < 6; round++ {
		src := library[round*61%len(library)]
		blockLarge := gc.ExtractPattern(int64(900+round), src, 7)
		blockSmall := gc.ExtractPattern(int64(800+round), blockLarge, 3)

		for _, step := range []struct {
			name string
			g    *gc.Graph
		}{
			{"small block ", blockSmall},
			{"large block ", blockLarge},
			{"small again ", blockSmall},
		} {
			res, err := cache.Execute(step.g, gc.Subgraph)
			if err != nil {
				log.Fatal(err)
			}
			kind := "miss"
			switch {
			case res.ExactHit:
				kind = "EXACT hit"
			case res.SubHitCount() > 0:
				kind = "sub-case hit"
			case res.SuperHitCount() > 0:
				kind = "super-case hit"
			}
			fmt.Printf("round %d %s (%dV/%dE): %4d circuits match, %4d/%4d tests, %-14s speedup %5.2f×\n",
				round, step.name, step.g.N(), step.g.M(),
				res.Answers.Count(), res.Tests, res.BaseCandidates, kind, res.TestSpeedup())
		}
	}

	snap := cache.Stats()
	fmt.Printf("\ntotals: %d queries, %.2f× fewer sub-iso tests (%d executed, %d saved)\n",
		snap.Queries, snap.TestSpeedup(), snap.TestsExecuted, snap.TestsSaved)
	fmt.Println("direction and wire labels are honored end to end: a reversed arc or a")
	fmt.Println("different wire type is a different sub-circuit.")
}
