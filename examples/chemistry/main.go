// Chemistry: the paper's motivating biochemical scenario — substructure
// screening over a molecule library. Queries grow from simple functional
// groups to complex scaffolds ("from simple molecules and aminoacids to
// complex proteins"), exactly the containment structure GraphCache's
// sub/super hits exploit.
package main

import (
	"fmt"
	"log"

	gc "graphcache"
)

func main() {
	// A screening library of 2000 molecules.
	library := gc.GenerateMolecules(1, 2000)
	method := gc.NewGGSXMethod(library, 4)

	cfg := gc.DefaultConfig()
	cfg.Capacity = 100
	// Admit executed queries immediately (window 1) so refinements within
	// one scaffold family hit the family's earlier queries.
	cfg.Window = 1
	cache, err := gc.NewCache(method, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A research campaign: analysts iteratively refine substructure
	// queries — start from a scaffold, then grow it, then go back to a
	// fragment. Build 5 scaffold families, each a containment chain
	// fragment ⊑ core ⊑ scaffold.
	type step struct {
		name    string
		pattern *gc.Graph
	}
	var campaign []step
	for fam := 0; fam < 5; fam++ {
		src := library[fam*37]
		scaffold := gc.ExtractPattern(int64(100+fam), src, 12)
		core := gc.ExtractPattern(int64(200+fam), scaffold, 7)
		fragment := gc.ExtractPattern(int64(300+fam), core, 3)
		campaign = append(campaign,
			step{fmt.Sprintf("family %d: fragment", fam), fragment},
			step{fmt.Sprintf("family %d: core    ", fam), core},
			step{fmt.Sprintf("family %d: scaffold", fam), scaffold},
			step{fmt.Sprintf("family %d: core (recheck)", fam), core},
		)
	}

	fmt.Println("substructure screening campaign over a 2000-molecule library")
	fmt.Println("--------------------------------------------------------------")
	for _, s := range campaign {
		res, err := cache.Execute(s.pattern, gc.Subgraph)
		if err != nil {
			log.Fatal(err)
		}
		hit := "miss"
		switch {
		case res.ExactHit:
			hit = "EXACT hit"
		case res.SubHitCount() > 0 && res.SuperHitCount() > 0:
			hit = "sub+super hits"
		case res.SubHitCount() > 0:
			hit = "sub-case hit"
		case res.SuperHitCount() > 0:
			hit = "super-case hit"
		}
		fmt.Printf("%-26s %5d matches  %4d/%4d tests  %-14s speedup %5.2f×\n",
			s.name, res.Answers.Count(), res.Tests, res.BaseCandidates, hit, res.TestSpeedup())
	}

	snap := cache.Stats()
	fmt.Printf("\ncampaign totals: %d queries — %d sub-iso tests executed, %d avoided (%.2f× fewer)\n",
		snap.Queries, snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup())
	fmt.Printf("hits: %d exact, %d sub-case, %d super-case\n",
		snap.ExactHits, snap.SubHits, snap.SuperHits)
}
