// Custompolicy: the demo's developer scenario (Figure 2(d)) — extending
// GraphCache with a new replacement policy by implementing the Policy
// interface: UpdateCacheStaInfo, ReplacedContent and OnWindowTurn
// (the Cache Manager performs the replacement itself, the paper's
// updateCacheItems).
//
// The example implements "SLRU-ish": entries that ever produced a hit are
// protected; victims come from the never-hit probation segment first.
package main

import (
	"fmt"
	"log"
	"sort"

	gc "graphcache"
)

// segmentedPolicy is the custom policy: probation (no hits yet) is evicted
// before protected (≥1 hit), each segment ordered LRU.
type segmentedPolicy struct {
	hits map[int]bool // entry ID → ever hit
}

func newSegmented() *segmentedPolicy {
	return &segmentedPolicy{hits: make(map[int]bool)}
}

// Name identifies the policy in reports.
func (p *segmentedPolicy) Name() string { return "slru" }

// UpdateCacheStaInfo promotes entries to the protected segment on any hit.
// (Corresponds to Figure 2(d)'s updateCacheStaInfo.)
func (p *segmentedPolicy) UpdateCacheStaInfo(ev *gc.HitEvent) {
	e := ev.Entry
	e.Hits++
	e.LastUsed = ev.Tick
	e.SavedTests += float64(ev.SavedTests)
	e.SavedCostNs += ev.SavedCostNs
	p.hits[e.ID] = true
}

// OnWindowTurn could age the protection map; this policy keeps it sticky.
func (p *segmentedPolicy) OnWindowTurn() {}

// ReplacedContent returns the x positions with least utility: probation
// first (oldest LastUsed first), then protected. (Figure 2(d)'s
// getReplacedContent.)
func (p *segmentedPolicy) ReplacedContent(entries []*gc.Entry, x int) []int {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := entries[idx[a]], entries[idx[b]]
		pa, pb := p.hits[ea.ID], p.hits[eb.ID]
		if pa != pb {
			return !pa // probation evicts first
		}
		if ea.LastUsed != eb.LastUsed {
			return ea.LastUsed < eb.LastUsed
		}
		return ea.ID < eb.ID
	})
	if x > len(idx) {
		x = len(idx)
	}
	return idx[:x]
}

func main() {
	dataset := gc.GenerateMolecules(3, 800)
	method := gc.NewGGSXMethod(dataset, 3)

	run := func(policy gc.Policy) gc.Snapshot {
		cfg := gc.DefaultConfig()
		cfg.Capacity = 15
		cfg.Policy = policy
		cache, err := gc.NewCache(method, cfg)
		if err != nil {
			log.Fatal(err)
		}
		wcfg := gc.DefaultWorkloadConfig()
		wcfg.Size = 400
		wcfg.PoolSize = 120
		wcfg.ZipfS = 1.3
		wcfg.ChainFrac = 0.5
		w, err := gc.GenerateWorkload(11, dataset, wcfg) // same seed ⇒ same workload
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range w.Queries {
			if _, err := cache.Execute(q.G, q.Type); err != nil {
				log.Fatal(err)
			}
		}
		return cache.Stats()
	}

	fmt.Println("custom replacement policy vs bundled ones (same workload)")
	fmt.Println("----------------------------------------------------------")
	policies := []gc.Policy{newSegmented(), gc.NewLRU(), gc.NewHD()}
	for _, p := range policies {
		snap := run(p)
		fmt.Printf("%-5s speedup %5.2f×  (%6d tests executed, %6d saved, hits: %d exact / %d sub / %d super)\n",
			p.Name(), snap.TestSpeedup(), snap.TestsExecuted, snap.TestsSaved,
			snap.ExactHits, snap.SubHits, snap.SuperHits)
	}
	fmt.Println("\nthe custom policy plugged in with three methods — no kernel changes needed.")
}
