// Quickstart: build a dataset, wrap a filter-then-verify method with
// GraphCache, execute a few queries and watch the cache save sub-iso work.
package main

import (
	"fmt"
	"log"

	gc "graphcache"
)

func main() {
	// A dataset of 500 AIDS-like molecule graphs (ids = positions).
	dataset := gc.GenerateMolecules(42, 500)

	// Method M: GraphGrepSX-style path index (paths ≤ 4 edges) + VF2.
	method := gc.NewGGSXMethod(dataset, 4)

	// GraphCache on top: 50 cached queries, HD replacement (the paper's
	// recommended default). Window=1 admits every executed query into the
	// cache immediately; the default of 10 batches admissions, which suits
	// long workloads but would hide hits in this 3-query walk-through.
	cfg := gc.DefaultConfig()
	cfg.Window = 1
	cache, err := gc.NewCache(method, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A subgraph query: find all molecules containing this pattern.
	// Extracting it from a dataset graph guarantees ≥ 1 answer.
	pattern := gc.ExtractPattern(7, dataset[3], 6)
	fmt.Printf("query pattern: %d vertices, %d edges\n", pattern.N(), pattern.M())

	res, err := cache.Execute(pattern, gc.Subgraph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold query : %d answers, %d/%d candidates verified\n",
		res.Answers.Count(), res.Tests, res.BaseCandidates)

	// Resubmit: exact-match hit, zero sub-iso tests.
	res2, err := cache.Execute(pattern, gc.Subgraph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted: exact hit=%v, %d tests (answers identical: %v)\n",
		res2.ExactHit, res2.Tests, res2.Answers.Equal(res.Answers))

	// A narrower pattern (subgraph of the first): sub-case hit — some
	// answers are known for sure without any testing.
	narrower := gc.ExtractPattern(8, pattern, 3)
	res3, err := cache.Execute(narrower, gc.Subgraph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("narrower   : %d answers, %d known for sure via %d sub-case hit(s), speedup %.2f×\n",
		res3.Answers.Count(), res3.Sure.Count(), res3.SubHitCount(), res3.TestSpeedup())

	snap := cache.Stats()
	fmt.Printf("\ncache totals: %d queries, %d tests executed, %d saved → speedup %.2f×\n",
		snap.Queries, snap.TestsExecuted, snap.TestsSaved, snap.TestSpeedup())
}
