// Socialnet: the paper's second motivating scenario — social-network
// pattern queries that "start off broad (e.g., all the people in a
// geographic location) and become narrower (e.g., those having specific
// demographics)". Narrowing a subgraph query means growing the pattern,
// so consecutive queries form super-case chains over the cache.
package main

import (
	"fmt"
	"log"

	gc "graphcache"
)

func main() {
	// A dataset of 300 community graphs (Barabási–Albert, 80 vertices).
	communities := gc.GenerateSocialGraphs(9, 300, 80, 2)
	method := gc.NewGGSXMethod(communities, 3)

	cfg := gc.DefaultConfig()
	cfg.Capacity = 60
	cfg.Policy = gc.NewHD()
	// Admit immediately so each session's broad query serves the narrower
	// ones that follow it (the default window of 10 batches admissions).
	cfg.Window = 1
	cache, err := gc.NewCache(method, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Analyst sessions: each starts broad and narrows twice. Narrower
	// patterns are built by growing the previous pattern inside a source
	// community graph, so broad ⊑ narrower ⊑ narrowest.
	fmt.Println("social pattern analysis: broad → narrower → narrowest")
	fmt.Println("------------------------------------------------------")
	for session := 0; session < 8; session++ {
		src := communities[session*29%len(communities)]
		narrowest := gc.ExtractPattern(int64(500+session), src, 9)
		narrower := gc.ExtractPattern(int64(600+session), narrowest, 6)
		broad := gc.ExtractPattern(int64(700+session), narrower, 3)

		for i, p := range []*gc.Graph{broad, narrower, narrowest} {
			res, err := cache.Execute(p, gc.Subgraph)
			if err != nil {
				log.Fatal(err)
			}
			stage := []string{"broad    ", "narrower ", "narrowest"}[i]
			fmt.Printf("session %d %s: %4d matches, %3d/%3d tests, %d super-case hit(s), speedup %5.2f×\n",
				session, stage, res.Answers.Count(), res.Tests, res.BaseCandidates,
				res.SuperHitCount(), res.TestSpeedup())
		}
	}

	snap := cache.Stats()
	fmt.Printf("\ntotals: %d queries, speedup %.2f× in sub-iso tests (%d executed, %d saved)\n",
		snap.Queries, snap.TestSpeedup(), snap.TestsExecuted, snap.TestsSaved)
}
