// Package graphcache is a caching system for subgraph/supergraph queries
// over graph datasets — a from-scratch Go implementation of GC/GraphCache
// (Wang, Liu, Ma, Ntarmos, Triantafillou; PVLDB 11(12), 2018 and EDBT
// 2017).
//
// Subgraph queries return the dataset graphs containing a pattern;
// supergraph queries return those contained in it. Both entail
// NP-complete subgraph-isomorphism (sub-iso) tests. GraphCache caches
// executed queries together with their answer sets and exploits three
// kinds of cache hits to cut sub-iso work for new queries:
//
//   - exact-match hits: an isomorphic cached query answers directly;
//   - sub-case hits (new query ⊑ cached query) and
//   - super-case hits (cached query ⊑ new query), which by containment
//     transitivity yield graphs that are answers for sure (skipped) or
//     non-answers for sure (pruned).
//
// The cache wraps any "Method M" — a filter-then-verify (FTV) method or a
// plain subgraph-isomorphism algorithm — and never changes its answers:
// results are provably exact (extensively property-tested against the
// uncached method).
//
// # Quick start
//
//	dataset := graphcache.GenerateMolecules(42, 1000)
//	method := graphcache.NewGGSXMethod(dataset, 4) // GraphGrepSX + VF2
//	cache, err := graphcache.NewCache(method, graphcache.DefaultConfig())
//	if err != nil { ... }
//	res, err := cache.Execute(pattern, graphcache.Subgraph)
//	// res.Answers: exact answer set; res.TestSpeedup(): saved work.
//
// # Concurrency
//
// A Cache is safe for any number of goroutines calling Execute at once.
// Admitted entries are partitioned across Config.Shards lock shards keyed
// by graph fingerprint (DefaultShards when zero), and the expensive query
// stages — Method M filtering, hit-detection iso tests, candidate
// verification — run without holding any lock. A small coordinator mutex
// serializes only the genuinely global concerns: admission-window turns,
// replacement-policy accounting and verification-cost statistics.
//
// Sub/super hit detection consults a global feature index instead of
// snapshotting the shards: a copy-on-write, ID-ordered array of immutable
// per-entry containment summaries (label/degree feature vectors plus a
// path-feature bloom), published through one atomic pointer. Writers
// republish it inside the same critical section that mutates the entries
// (window turns, state restores) while holding the coordinator mutex and
// every shard lock; readers take a single atomic load and never lock.
// Entries whose summaries cannot contain (or be contained in) the query's
// are skipped before any dominance merge or iso test — the summaries are
// necessary conditions for containment, so answers are provably unchanged.
// Config.IndexOff restores the snapshot-scanning engine as a baseline.
// QueryAll drives a whole batch through a bounded worker pool:
//
//	outs := graphcache.QueryAll(cache, reqs, 8)
//
// Sequential streams produce identical results and cache contents at any
// shard count under timing-independent policies (LRU, FIFO, POP, PIN);
// PINC and the default HD rank eviction victims by measured verification
// cost, so their cache contents can differ between physical runs — a
// property of those policies, not of the sharding. Concurrent submission
// keeps every answer set exact but makes admission order
// scheduling-dependent. Config.Serialized restores the
// one-query-at-a-time engine for baselines and reproducibility.
//
// # Extending
//
// Replacement policies are pluggable (the Figure 2(d) developer interface):
// implement Policy — UpdateCacheStaInfo, ReplacedContent, OnWindowTurn —
// and pass it in Config.Policy. Bundled policies: LRU, POP, PIN, PINC, HD
// (recommended default), FIFO and RAND. Filters implementing Filter can
// replace GGSX inside Method M, and any VerifierFunc can replace VF2.
package graphcache
