// Package graphcache is a caching system for subgraph/supergraph queries
// over graph datasets — a from-scratch Go implementation of GC/GraphCache
// (Wang, Liu, Ma, Ntarmos, Triantafillou; PVLDB 11(12), 2018 and EDBT
// 2017).
//
// Subgraph queries return the dataset graphs containing a pattern;
// supergraph queries return those contained in it. Both entail
// NP-complete subgraph-isomorphism (sub-iso) tests. GraphCache caches
// executed queries together with their answer sets and exploits three
// kinds of cache hits to cut sub-iso work for new queries:
//
//   - exact-match hits: an isomorphic cached query answers directly;
//   - sub-case hits (new query ⊑ cached query) and
//   - super-case hits (cached query ⊑ new query), which by containment
//     transitivity yield graphs that are answers for sure (skipped) or
//     non-answers for sure (pruned).
//
// The cache wraps any "Method M" — a filter-then-verify (FTV) method or a
// plain subgraph-isomorphism algorithm — and never changes its answers:
// results are provably exact (extensively property-tested against the
// uncached method).
//
// # Quick start
//
//	dataset := graphcache.GenerateMolecules(42, 1000)
//	method := graphcache.NewGGSXMethod(dataset, 4) // GraphGrepSX + VF2
//	cache, err := graphcache.NewCache(method, graphcache.DefaultConfig())
//	if err != nil { ... }
//	res, err := cache.Execute(pattern, graphcache.Subgraph)
//	// res.Answers: exact answer set; res.TestSpeedup(): saved work.
//
// # Concurrency
//
// A Cache is safe for any number of goroutines calling Execute at once.
// Admitted entries are partitioned across Config.Shards lock shards keyed
// by graph fingerprint (DefaultShards when zero), and the expensive query
// stages — Method M filtering, hit-detection iso tests, candidate
// verification — run without holding any lock. No per-query code path
// takes a global mutex: each shard owns its own admission window (staged
// and exact-matched under that shard's lock alone), entry IDs come from
// an atomic counter, and verification-cost statistics live in lock-free
// CAS cells. Window turns are per-shard too — a full shard window ages,
// evicts and admits under the policy mutex plus that one shard's write
// lock, so queries owned by other shards never block. Capacity stays
// global (an atomic resident account tells the turning shard how far
// over budget the cache is; it evicts its own least-useful residents,
// ranked against the whole cache, to pay it down). The only remaining
// cross-shard serialization is the policy mutex guarding replacement-
// policy state and per-entry utilities: hit crediting and window turns —
// counter arithmetic, never iso tests.
//
// Sub/super hit detection consults a feature index instead of
// snapshotting the shards: per-shard, copy-on-write arrays of immutable
// per-entry containment summaries (label/degree feature vectors plus a
// path-feature bloom), each published through an atomic pointer; a
// turning shard republishes only its own slice, and readers load the
// slices lock-free and scan their union. Entries whose summaries cannot
// contain (or be contained in) the query's are skipped before any
// dominance merge or iso test — the summaries are necessary conditions
// for containment, so answers are provably unchanged. Config.IndexOff
// restores the snapshot-scanning engine as a baseline. QueryAll drives a
// whole batch through a bounded worker pool, and QueryAllStream delivers
// outcomes over a channel as workers finish — the pipeline behind the
// server's NDJSON batch streaming:
//
//	outs := graphcache.QueryAll(cache, reqs, 8)
//	for so := range graphcache.QueryAllStream(cache, reqs, 8) { ... }
//
// Sequential streams are deterministic at any fixed shard count, and
// answer sets are byte-identical across engines and shard counts.
// Config.SharedWindow restores the previous engine — one global
// admission window whose turns stop the world — as a measurable
// baseline; under it, cache contents are additionally identical to a
// single-shard cache at any shard count for timing-independent policies
// (LRU, FIFO, POP, PIN). PINC and the default HD rank eviction victims
// by measured verification cost, so their cache contents can differ
// between physical runs — a property of those policies, not of the
// sharding. Concurrent submission keeps every answer set exact but makes
// admission order scheduling-dependent. Config.Serialized restores the
// one-query-at-a-time engine for baselines and reproducibility.
//
// # Live dataset mutations
//
// The paper specifies GC over a static dataset; this implementation also
// serves live stores. Cache.AddGraph appends a graph under a fresh,
// stable id and Cache.RemoveGraph tombstones one (ids are never reused),
// with every cached answer set maintained EXACTLY — a mixed
// add/remove/query stream returns answers byte-identical to the uncached
// method after every mutation. The rules:
//
//   - Each query runs against one immutable dataset snapshot (an epoch-
//     tagged, copy-on-write state behind an atomic pointer in the ftv
//     layer); queries share a read lock, mutations take the write side,
//     so no query ever observes a half-maintained cache.
//   - Removals are stop-the-world and cheap: the gid's bit is cleared
//     from every admitted and window entry's answer set (a pointer swap
//     per entry, no iso tests) and the id is masked out of all future
//     candidate sets.
//   - Additions verify the new graph against each cached entry — eagerly
//     at mutation time by default, or lazily (Config.LazyReconcile) where
//     entries carry a dataset epoch and a hit on a stale entry verifies
//     only the delta graphs recorded in the addition log before its
//     answers are trusted.
//   - Additions are O(graph), not O(dataset): every bundled filter
//     implements the incremental-insert capability (ftv.InsertableFilter),
//     so AddGraph patches the filter index through a copy-on-write
//     per-touched-node insert — only the new graph's features are
//     enumerated, untouched index structure is shared with the previous
//     snapshot, and old snapshots keep answering for their own epoch.
//     Custom factory-built filters without the capability fall back to a
//     full rebuild (observable via the filterInserts/filterRebuilds
//     counters).
//   - The addition log is self-compacting: the kernel tracks the minimum
//     dataset epoch across all resident and pending entries and, at
//     window turns and every stop-the-world pass, drops the records every
//     entry has already passed. In eager mode the log drains at each
//     mutation; in lazy mode it holds exactly the records the coldest
//     entry still needs — bounded state under unbounded churn.
//
// Per-graph cost statistics and per-query bitsets grow with the dataset;
// the HTTP layer surfaces mutations as POST /api/dataset/graphs and
// DELETE /api/dataset/graphs/{id}, and /api/stats reports the maintenance
// ledger (filterInserts, filterRebuilds, additionLogLen, logCompactions).
// Bundled methods are all mutation-capable; custom static filters opt in
// via NewDynamicMethod.
//
// # Extending
//
// Replacement policies are pluggable (the Figure 2(d) developer interface):
// implement Policy — UpdateCacheStaInfo, ReplacedContent, OnWindowTurn —
// and pass it in Config.Policy. Bundled policies: LRU, POP, PIN, PINC, HD
// (recommended default), FIFO and RAND. Filters implementing Filter can
// replace GGSX inside Method M, and any VerifierFunc can replace VF2.
package graphcache
