package graphcache_test

import (
	"bytes"
	"fmt"
	"testing"

	gc "graphcache"
)

func TestPublicQuickstartFlow(t *testing.T) {
	dataset := gc.GenerateMolecules(42, 60)
	method := gc.NewGGSXMethod(dataset, 3)
	cache, err := gc.NewCache(method, gc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	pattern := gc.ExtractPattern(7, dataset[0], 6)
	res, err := cache.Execute(pattern, gc.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Contains(0) {
		t.Error("source graph must answer its own extracted pattern")
	}
	base := method.Run(pattern, gc.Subgraph)
	if !base.Answers.Equal(res.Answers) {
		t.Error("cache must match base method")
	}

	// Resubmission exact-hits.
	res2, err := cache.Execute(pattern, gc.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit || res2.Tests != 0 {
		t.Errorf("resubmission: exact=%v tests=%d", res2.ExactHit, res2.Tests)
	}
}

func TestPublicGraphConstruction(t *testing.T) {
	g, err := gc.NewGraph([]gc.Label{1, 2, 3}, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Error("graph construction broken")
	}
	if _, err := gc.NewGraph([]gc.Label{1}, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop should error")
	}
	b := gc.NewBuilder(2)
	b.SetLabel(0, 5).SetLabel(1, 6).AddEdge(0, 1)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !gc.SubIso(g2, g2) {
		t.Error("SubIso self test failed")
	}
	if gc.Isomorphic(g, g2) {
		t.Error("different graphs reported isomorphic")
	}
}

func TestPublicDatasetIO(t *testing.T) {
	ds := gc.GenerateMolecules(1, 5)
	var buf bytes.Buffer
	if err := gc.WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := gc.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("round trip lost graphs: %d", len(back))
	}
	for i := range ds {
		if !gc.Isomorphic(ds[i], back[i]) {
			t.Fatalf("graph %d not preserved", i)
		}
	}
}

func TestPublicPolicies(t *testing.T) {
	for _, name := range gc.PolicyNames() {
		p, err := gc.NewPolicy(name)
		if err != nil || p == nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
	}
	cfg := gc.DefaultConfig()
	cfg.Policy = gc.NewLRU()
	dataset := gc.GenerateMolecules(2, 10)
	cache, err := gc.NewCache(gc.NewLabelMethod(dataset), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache.PolicyName() != "lru" {
		t.Error("policy not applied")
	}
}

func TestPublicMethodVariants(t *testing.T) {
	dataset := gc.GenerateMolecules(3, 20)
	pattern := gc.ExtractPattern(4, dataset[5], 5)
	var prev *gc.MethodResult
	for _, m := range []*gc.Method{
		gc.NewGGSXMethod(dataset, 3),
		gc.NewLabelMethod(dataset),
		gc.NewSIMethod(dataset),
	} {
		r := m.Run(pattern, gc.Subgraph)
		if prev != nil && !r.Answers.Equal(prev.Answers) {
			t.Fatalf("method %s disagrees", m.Name())
		}
		prev = r
	}
}

func TestPublicWorkloadGeneration(t *testing.T) {
	dataset := gc.GenerateMolecules(5, 30)
	cfg := gc.DefaultWorkloadConfig()
	cfg.Size = 25
	w, err := gc.GenerateWorkload(6, dataset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 25 {
		t.Fatalf("workload size %d", len(w.Queries))
	}
	method := gc.NewGGSXMethod(dataset, 3)
	cache, err := gc.NewCache(method, gc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if _, err := cache.Execute(q.G, q.Type); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Stats().Queries != 25 {
		t.Error("monitor lost queries")
	}
}

// Custom policy through the public API only — the Figure 2(d) scenario.
type publicCustomPolicy struct{ evictions int }

func (p *publicCustomPolicy) Name() string                    { return "custom" }
func (p *publicCustomPolicy) UpdateCacheStaInfo(*gc.HitEvent) {}
func (p *publicCustomPolicy) OnWindowTurn()                   {}
func (p *publicCustomPolicy) ReplacedContent(entries []*gc.Entry, x int) []int {
	p.evictions += x
	out := make([]int, 0, x)
	for i := 0; i < x && i < len(entries); i++ {
		out = append(out, i)
	}
	return out
}

func TestPublicCustomPolicy(t *testing.T) {
	dataset := gc.GenerateMolecules(7, 20)
	cfg := gc.DefaultConfig()
	custom := &publicCustomPolicy{}
	cfg.Policy = custom
	cfg.Capacity = 3
	cfg.Window = 2
	cache, err := gc.NewCache(gc.NewLabelMethod(dataset), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		pattern := gc.ExtractPattern(int64(100+i), dataset[i%len(dataset)], 3+i%4)
		if _, err := cache.Execute(pattern, gc.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if custom.evictions == 0 {
		t.Error("custom policy never consulted")
	}
	if cache.Len() > 3 {
		t.Error("capacity violated under custom policy")
	}
}

func TestPublicPersistence(t *testing.T) {
	dataset := gc.GenerateMolecules(11, 30)
	method := gc.NewGGSXMethod(dataset, 3)
	cfg := gc.DefaultConfig()
	cfg.Window = 1
	cache, err := gc.NewCache(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pattern := gc.ExtractPattern(12, dataset[4], 5)
	res1, err := cache.Execute(pattern, gc.Subgraph)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cache.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := gc.NewCache(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	res2, err := restored.Execute(pattern, gc.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit || !res2.Answers.Equal(res1.Answers) {
		t.Error("restored cache did not serve the persisted query")
	}
}

func TestPublicCircuits(t *testing.T) {
	circuits := gc.GenerateCircuits(13, 20, gc.DefaultCircuitConfig())
	if len(circuits) != 20 {
		t.Fatal("wrong count")
	}
	for _, c := range circuits {
		if !c.Directed() || !c.HasEdgeLabels() {
			t.Fatal("circuit lost directedness or edge labels through the API")
		}
	}
	method := gc.NewGGSXMethod(circuits, 2)
	cache, err := gc.NewCache(method, gc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := gc.ExtractPattern(14, circuits[0], 3)
	res, err := cache.Execute(q, gc.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Contains(0) {
		t.Error("source circuit missing from answers")
	}
}

func TestPublicSocialGraphs(t *testing.T) {
	ds := gc.GenerateSocialGraphs(8, 5, 60, 2)
	if len(ds) != 5 {
		t.Fatal("wrong count")
	}
	for _, g := range ds {
		if !g.IsConnected() {
			t.Error("social graph disconnected")
		}
	}
}

// ExampleNewCache demonstrates the minimal end-to-end flow: resubmitting a
// query turns into an exact-match hit with zero sub-iso tests.
func ExampleNewCache() {
	dataset := gc.GenerateMolecules(42, 200)
	cache, err := gc.NewCache(gc.NewGGSXMethod(dataset, 4), gc.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pattern := gc.ExtractPattern(7, dataset[0], 5)

	first, _ := cache.Execute(pattern, gc.Subgraph)
	again, _ := cache.Execute(pattern, gc.Subgraph)
	fmt.Println("first run exact hit:", first.ExactHit)
	fmt.Println("resubmission exact hit:", again.ExactHit, "with", again.Tests, "tests")
	fmt.Println("answers stable:", again.Answers.Equal(first.Answers))
	// Output:
	// first run exact hit: false
	// resubmission exact hit: true with 0 tests
	// answers stable: true
}
