package gen

import (
	"math/rand"
	"sort"

	"graphcache/internal/graph"
)

// ExtractConnectedSubgraph returns a connected (non-induced) subgraph of g
// with up to targetEdges edges, grown by random edge expansion from a
// random start vertex — the established query-generation principle in the
// FTV literature: queries are connected substructures of dataset graphs,
// so q ⊑ g holds by construction.
//
// Directedness and edge labels are preserved: directed sources yield
// directed (weakly connected) patterns with original arc orientations, and
// labelled edges keep their labels. If g has no edges, a single random
// vertex is returned. The extracted graph's vertices are renumbered
// 0..k-1; its id is -1.
func ExtractConnectedSubgraph(rng *rand.Rand, g *graph.Graph, targetEdges int) *graph.Graph {
	if g.N() == 0 {
		return graph.MustNew(nil, nil)
	}
	single := func() *graph.Graph {
		v := rng.Intn(g.N())
		b := graph.NewBuilder(1).SetLabel(0, g.Label(v))
		if g.Directed() {
			b.Directed()
		}
		return b.MustBuild()
	}
	if g.M() == 0 || targetEdges <= 0 {
		return single()
	}
	// Start from a vertex with at least one incident edge.
	start := rng.Intn(g.N())
	for g.OutDegree(start)+g.InDegree(start) == 0 {
		start = rng.Intn(g.N())
	}

	// Edges are kept in true orientation: (u, v) means u→v for directed
	// graphs and the normalized pair u < v for undirected ones.
	orient := func(u, v int) [2]int {
		if !g.Directed() && u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	inSet := map[int]bool{start: true}
	chosen := make(map[[2]int]bool)
	var frontier [][2]int
	addFrontier := func(v int) {
		for _, w := range g.OutNeighbors(v) {
			if e := orient(v, int(w)); !chosen[e] {
				frontier = append(frontier, e)
			}
		}
		if g.Directed() {
			for _, w := range g.InNeighbors(v) {
				if e := orient(int(w), v); !chosen[e] {
					frontier = append(frontier, e)
				}
			}
		}
	}
	addFrontier(start)

	for len(chosen) < targetEdges && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		e := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		for _, v := range []int{e[0], e[1]} {
			if !inSet[v] {
				inSet[v] = true
				addFrontier(v)
			}
		}
	}

	// Renumber deterministically by original vertex id.
	verts := make([]int, 0, len(inSet))
	for v := range inSet {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	remap := make(map[int]int, len(verts))
	for i, v := range verts {
		remap[v] = i
	}
	b := graph.NewBuilder(len(verts))
	if g.Directed() {
		b.Directed()
	}
	for i, v := range verts {
		b.SetLabel(i, g.Label(v))
	}
	labelled := g.HasEdgeLabels()
	for e := range chosen {
		if labelled {
			b.AddLabeledEdge(remap[e[0]], remap[e[1]], g.EdgeLabel(e[0], e[1]))
		} else {
			b.AddEdge(remap[e[0]], remap[e[1]])
		}
	}
	return b.MustBuild()
}

// Augment returns a supergraph of g: a copy extended with extraV fresh
// vertices (each attached to a random existing vertex) and up to extraE
// extra edges between random non-adjacent vertex pairs. g ⊑ result holds
// by construction (the identity embedding), which is how supergraph
// queries with non-empty answers are generated. Directedness and edge
// labels are preserved; added edges draw labels from the sampler when the
// base graph is edge-labelled.
func Augment(rng *rand.Rand, g *graph.Graph, extraV, extraE int, sampler *LabelSampler) *graph.Graph {
	n := g.N() + extraV
	b := graph.NewBuilder(n)
	if g.Directed() {
		b.Directed()
	}
	for v := 0; v < g.N(); v++ {
		b.SetLabel(v, g.Label(v))
	}
	for v := g.N(); v < n; v++ {
		b.SetLabel(v, sampler.Sample(rng))
	}
	labelled := g.HasEdgeLabels()
	addEdge := func(u, v int, l graph.Label) {
		if labelled {
			b.AddLabeledEdge(u, v, l)
		} else {
			b.AddEdge(u, v)
		}
	}
	for _, e := range g.Edges() {
		addEdge(e[0], e[1], g.EdgeLabel(e[0], e[1]))
	}
	for i := g.N(); i < n; i++ {
		t := rng.Intn(i)
		if g.Directed() && rng.Intn(2) == 0 {
			addEdge(t, i, sampler.Sample(rng))
		} else {
			addEdge(i, t, sampler.Sample(rng))
		}
	}
	added := 0
	for attempt := 0; added < extraE && attempt < 20*(extraE+1); attempt++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || u < g.N() && v < g.N() && g.HasEdge(u, v) {
			continue
		}
		addEdge(u, v, sampler.Sample(rng))
		added++
	}
	return b.MustBuild()
}
