package gen

import (
	"fmt"
	"math/rand"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Query is one workload item: a pattern graph plus its query semantics.
type Query struct {
	G *graph.Graph
	// Type is the query semantics (subgraph or supergraph).
	Type ftv.QueryType
	// PoolID is the index of the pattern-pool entry this query was drawn
	// from, for workload analysis; -1 when unknown.
	PoolID int
}

// Workload is an ordered sequence of queries plus the pattern pool it was
// drawn from (the demo's "pattern pool" from which The Workload Run lets
// users compose workloads).
type Workload struct {
	Queries []Query
	Pool    []Query
}

// WorkloadConfig controls workload generation. The three knobs —
// popularity skew, containment chains and resubmission (implied by skew) —
// are exactly what differentiates the replacement policies in EXP-I.
type WorkloadConfig struct {
	// Size is the number of queries to emit.
	Size int
	// Type is the query semantics. When Mixed is set, each query's type is
	// drawn uniformly instead.
	Type  ftv.QueryType
	Mixed bool
	// PoolSize is the number of distinct patterns to draw from.
	PoolSize int
	// ZipfS is the Zipf exponent for pool popularity; values ≤ 1 mean
	// uniform (math/rand's Zipf requires s > 1).
	ZipfS float64
	// ChainFrac is the fraction of the pool organized into containment
	// chains q1 ⊑ q2 ⊑ … (the biochemical "simple molecules → complex
	// proteins" pattern from the paper's introduction).
	ChainFrac float64
	// ChainLen is the length of each containment chain (≥ 2 to matter).
	ChainLen int
	// MinEdges and MaxEdges bound extracted pattern sizes.
	MinEdges, MaxEdges int
}

// DefaultWorkloadConfig mirrors the demo deployment: 10-query workloads of
// subgraph queries over molecule patterns.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		Size:      10,
		Type:      ftv.Subgraph,
		PoolSize:  40,
		ZipfS:     1.1,
		ChainFrac: 0.5,
		ChainLen:  3,
		MinEdges:  4,
		MaxEdges:  16,
	}
}

// NewWorkload generates a workload over the dataset. The dataset must be
// non-empty. Generation is deterministic in rng.
func NewWorkload(rng *rand.Rand, dataset []*graph.Graph, cfg WorkloadConfig) (*Workload, error) {
	if len(dataset) == 0 {
		return nil, fmt.Errorf("gen: empty dataset")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1
	}
	if cfg.ChainLen < 2 {
		cfg.ChainLen = 2
	}
	if cfg.MaxEdges < cfg.MinEdges {
		cfg.MaxEdges = cfg.MinEdges
	}
	sampler := NewAIDSLabelSampler(8)

	edgesIn := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	qtype := func() ftv.QueryType {
		if !cfg.Mixed {
			return cfg.Type
		}
		if rng.Intn(2) == 0 {
			return ftv.Subgraph
		}
		return ftv.Supergraph
	}

	pool := make([]Query, 0, cfg.PoolSize)
	nChained := int(float64(cfg.PoolSize) * cfg.ChainFrac)

	// Containment chains: for subgraph semantics, a chain is built by
	// nesting extractions (each member a subgraph of the next); for
	// supergraph semantics, by successive augmentation.
	for len(pool) < nChained {
		qt := qtype()
		src := dataset[rng.Intn(len(dataset))]
		switch qt {
		case ftv.Subgraph:
			big := ExtractConnectedSubgraph(rng, src, cfg.MaxEdges)
			chain := []*graph.Graph{big}
			for len(chain) < cfg.ChainLen {
				prev := chain[len(chain)-1]
				smaller := ExtractConnectedSubgraph(rng, prev, maxInt(cfg.MinEdges, prev.M()*2/3))
				chain = append(chain, smaller)
			}
			// Emit smallest → largest so later queries are supergraphs of
			// earlier ones (and vice versa on resubmission).
			for i := len(chain) - 1; i >= 0; i-- {
				pool = append(pool, Query{G: chain[i], Type: qt, PoolID: len(pool)})
			}
		case ftv.Supergraph:
			base := Augment(rng, src, 1, 1, sampler)
			chain := []*graph.Graph{base}
			for len(chain) < cfg.ChainLen {
				prev := chain[len(chain)-1]
				chain = append(chain, Augment(rng, prev, 2, 1, sampler))
			}
			for _, g := range chain {
				pool = append(pool, Query{G: g, Type: qt, PoolID: len(pool)})
			}
		}
	}
	// Independent patterns.
	for len(pool) < cfg.PoolSize {
		qt := qtype()
		src := dataset[rng.Intn(len(dataset))]
		var g *graph.Graph
		switch qt {
		case ftv.Subgraph:
			g = ExtractConnectedSubgraph(rng, src, edgesIn(cfg.MinEdges, cfg.MaxEdges))
		case ftv.Supergraph:
			g = Augment(rng, src, 1+rng.Intn(3), rng.Intn(3), sampler)
		}
		pool = append(pool, Query{G: g, Type: qt, PoolID: len(pool)})
	}

	// Draw the query sequence from the pool with the configured skew.
	var draw func() int
	if cfg.ZipfS > 1 {
		z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(pool)-1))
		perm := rng.Perm(len(pool)) // decouple popularity rank from pool order
		draw = func() int { return perm[int(z.Uint64())] }
	} else {
		draw = func() int { return rng.Intn(len(pool)) }
	}
	queries := make([]Query, cfg.Size)
	for i := range queries {
		queries[i] = pool[draw()]
	}
	return &Workload{Queries: queries, Pool: pool}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
