package gen

import (
	"math/rand"
	"testing"

	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// builderFrom returns a fresh builder carrying g's vertex labels but no
// edges, so tests can re-add edges with labels.
func builderFrom(g *graph.Graph) *graph.Builder {
	b := graph.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.SetLabel(v, g.Label(v))
	}
	return b
}

func TestCircuitShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultCircuitConfig()
	for i := 0; i < 30; i++ {
		c := Circuit(rng, cfg)
		if !c.Directed() {
			t.Fatal("circuit must be directed")
		}
		if !c.HasEdgeLabels() {
			t.Fatal("circuit must have wire labels")
		}
		if c.N() < cfg.MinV || c.N() > cfg.MaxV {
			t.Fatalf("circuit size %d outside [%d,%d]", c.N(), cfg.MinV, cfg.MaxV)
		}
		if !c.IsConnected() {
			t.Fatal("circuit should be weakly connected")
		}
		if c.M() == 0 {
			t.Fatal("circuit has no wires")
		}
	}
}

func TestCircuitsIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cs := Circuits(rng, 5, DefaultCircuitConfig())
	for i, c := range cs {
		if c.ID() != i {
			t.Fatalf("circuit %d has id %d", i, c.ID())
		}
	}
}

func TestDirectedExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultCircuitConfig()
	for i := 0; i < 30; i++ {
		c := Circuit(rng, cfg)
		q := ExtractConnectedSubgraph(rng, c, 2+rng.Intn(5))
		if !q.Directed() {
			t.Fatal("extracted pattern lost directedness")
		}
		if q.M() > 0 && !q.HasEdgeLabels() {
			t.Fatal("extracted pattern lost edge labels")
		}
		if !q.IsConnected() {
			t.Fatal("extracted pattern not weakly connected")
		}
		if !iso.SubIso(q, c) {
			t.Fatal("extracted pattern does not embed in source circuit")
		}
	}
}

func TestDirectedAugment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultCircuitConfig()
	cfg.MinV, cfg.MaxV = 8, 12
	wires := NewUniformLabelSampler(3)
	for i := 0; i < 20; i++ {
		c := Circuit(rng, cfg)
		a := Augment(rng, c, 2, 1, wires)
		if !a.Directed() {
			t.Fatal("augmented graph lost directedness")
		}
		if !iso.SubIso(c, a) {
			t.Fatal("circuit does not embed in its augmentation")
		}
	}
}

func TestUndirectedEdgeLabelledExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Build an undirected edge-labelled graph by relabelling a molecule's
	// edges.
	m := Molecule(rng, DefaultMoleculeConfig())
	b := NewUniformLabelSampler(4)
	gb := builderFrom(m)
	for _, e := range m.Edges() {
		gb.AddLabeledEdge(e[0], e[1], b.Sample(rng))
	}
	g := gb.MustBuild()
	for i := 0; i < 20; i++ {
		q := ExtractConnectedSubgraph(rng, g, 3+rng.Intn(5))
		if q.Directed() {
			t.Fatal("undirected source produced directed pattern")
		}
		if !iso.SubIso(q, g) {
			t.Fatal("edge-labelled pattern does not embed in source")
		}
	}
}
