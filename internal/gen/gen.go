// Package gen generates datasets, queries and workloads for GraphCache.
//
// The paper's demo runs over 100 graphs of the AIDS Antiviral Screen
// dataset with workloads "generated from graphs in dataset following
// established principles". The dataset itself is not redistributable, so
// this package synthesizes:
//
//   - AIDS-like molecule graphs (Molecules): sparse connected graphs with
//     chemistry-like degree caps and the skewed atom-label distribution
//     reported for AIDS (carbon ≈ 3/4 of atoms);
//   - Erdős–Rényi and Barabási–Albert graphs (the "synthetic datasets with
//     various characteristics" of §3.1);
//   - queries extracted as connected subgraphs of dataset graphs (the
//     established principle in the FTV literature) and supergraph queries
//     built by augmenting dataset graphs;
//   - workloads with controlled popularity skew (Zipf), containment chains
//     and resubmission — the knobs that differentiate replacement policies
//     in experiment EXP-I.
//
// All generators take an explicit *rand.Rand so every experiment is
// reproducible from a seed.
package gen

import (
	"math/rand"

	"graphcache/internal/graph"
)

// aidsLabelWeights approximates the atom-frequency profile of the AIDS
// antiviral dataset: label 0 ("C") dominates, a handful of heteroatoms
// follow, and a long rare tail completes the alphabet.
var aidsLabelWeights = []float64{
	0.745, // C
	0.090, // O
	0.080, // N
	0.030, // S
	0.020, // Cl
	0.012, // F
	0.008, // P
	0.005, // Br
	0.004, // I
	0.003, // Si
	0.002, // B
	0.001, // Se
}

// LabelSampler draws labels from a fixed discrete distribution.
type LabelSampler struct {
	cum []float64
}

// NewAIDSLabelSampler returns a sampler over the AIDS-like atom alphabet,
// truncated or geometrically extended to exactly labels symbols.
func NewAIDSLabelSampler(labels int) *LabelSampler {
	if labels <= 0 {
		labels = 1
	}
	w := make([]float64, labels)
	for i := 0; i < labels; i++ {
		if i < len(aidsLabelWeights) {
			w[i] = aidsLabelWeights[i]
		} else {
			w[i] = w[i-1] * 0.7 // geometric rare tail
		}
	}
	return NewLabelSampler(w)
}

// NewUniformLabelSampler returns a sampler uniform over labels symbols.
func NewUniformLabelSampler(labels int) *LabelSampler {
	if labels <= 0 {
		labels = 1
	}
	w := make([]float64, labels)
	for i := range w {
		w[i] = 1
	}
	return NewLabelSampler(w)
}

// NewLabelSampler builds a sampler from unnormalized weights.
func NewLabelSampler(weights []float64) *LabelSampler {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		sum += w
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &LabelSampler{cum: cum}
}

// Sample draws one label.
func (s *LabelSampler) Sample(rng *rand.Rand) graph.Label {
	x := rng.Float64()
	for i, c := range s.cum {
		if x <= c {
			return graph.Label(i)
		}
	}
	return graph.Label(len(s.cum) - 1)
}

// Alphabet returns the number of distinct labels the sampler can emit.
func (s *LabelSampler) Alphabet() int { return len(s.cum) }

// AssignIDs returns the graphs re-tagged with their slice positions as ids,
// the convention every dataset consumer in this repo relies on.
func AssignIDs(gs []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(gs))
	for i, g := range gs {
		out[i] = g.WithID(i)
	}
	return out
}
