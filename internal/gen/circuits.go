package gen

import (
	"math/rand"

	"graphcache/internal/graph"
)

// CircuitConfig parameterizes the directed, edge-labelled dataset
// generator — the "computer-aided design of electronic circuits" use case
// from the paper's introduction, and the test bed for the claimed
// generalization to directed graphs with edge labels.
type CircuitConfig struct {
	// MinV and MaxV bound the gate count (inclusive).
	MinV, MaxV int
	// Layers is the number of topological layers; arcs run from earlier
	// layers to later ones (a DAG, as in combinational circuits).
	Layers int
	// FanIn is the expected number of inputs per gate.
	FanIn int
	// GateTypes and WireTypes are the vertex and edge label alphabets.
	GateTypes, WireTypes int
}

// DefaultCircuitConfig returns a small combinational-circuit shape.
func DefaultCircuitConfig() CircuitConfig {
	return CircuitConfig{MinV: 15, MaxV: 35, Layers: 5, FanIn: 2, GateTypes: 6, WireTypes: 3}
}

// Circuit generates one layered DAG with gate-type vertex labels and
// wire-type edge labels. The result is weakly connected.
func Circuit(rng *rand.Rand, cfg CircuitConfig) *graph.Graph {
	if cfg.MaxV < cfg.MinV {
		cfg.MaxV = cfg.MinV
	}
	if cfg.Layers < 2 {
		cfg.Layers = 2
	}
	if cfg.FanIn < 1 {
		cfg.FanIn = 1
	}
	n := cfg.MinV
	if cfg.MaxV > cfg.MinV {
		n += rng.Intn(cfg.MaxV - cfg.MinV + 1)
	}
	gates := NewUniformLabelSampler(cfg.GateTypes)
	wires := NewUniformLabelSampler(cfg.WireTypes)

	// Assign vertices to layers; every layer is non-empty.
	layerOf := make([]int, n)
	for v := 0; v < n; v++ {
		if v < cfg.Layers {
			layerOf[v] = v // seed each layer
		} else {
			layerOf[v] = rng.Intn(cfg.Layers)
		}
	}
	byLayer := make([][]int, cfg.Layers)
	for v, l := range layerOf {
		byLayer[l] = append(byLayer[l], v)
	}

	b := graph.NewBuilder(n).Directed()
	for v := 0; v < n; v++ {
		b.SetLabel(v, gates.Sample(rng))
	}
	// Each non-input gate draws FanIn inputs from strictly earlier layers.
	var earlier []int
	for l := 1; l < cfg.Layers; l++ {
		earlier = append(earlier, byLayer[l-1]...)
		for _, v := range byLayer[l] {
			for k := 0; k < cfg.FanIn; k++ {
				src := earlier[rng.Intn(len(earlier))]
				b.AddLabeledEdge(src, v, wires.Sample(rng))
			}
		}
	}
	g := b.MustBuild()
	if g.IsConnected() {
		return g
	}
	// Stitch stray components onto the main one (rare with FanIn ≥ 2).
	comps := g.ConnectedComponents()
	b2 := graph.NewBuilder(n).Directed()
	for v := 0; v < n; v++ {
		b2.SetLabel(v, g.Label(v))
	}
	for _, e := range g.Edges() {
		b2.AddLabeledEdge(e[0], e[1], g.EdgeLabel(e[0], e[1]))
	}
	for i := 1; i < len(comps); i++ {
		b2.AddLabeledEdge(comps[0][0], comps[i][0], wires.Sample(rng))
	}
	return b2.MustBuild()
}

// Circuits generates count circuits with slice positions as ids.
func Circuits(rng *rand.Rand, count int, cfg CircuitConfig) []*graph.Graph {
	out := make([]*graph.Graph, count)
	for i := range out {
		out[i] = Circuit(rng, cfg).WithID(i)
	}
	return out
}
