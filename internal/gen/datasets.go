package gen

import (
	"math/rand"

	"graphcache/internal/graph"
)

// MoleculeConfig parameterizes the AIDS-like molecule generator.
type MoleculeConfig struct {
	// MinV and MaxV bound the vertex count (inclusive). The AIDS average
	// is ≈ 45 vertices; the demo's 100-graph slice skews smaller.
	MinV, MaxV int
	// RingFrac is the expected number of ring-closing extra edges as a
	// fraction of tree edges; AIDS molecules average ≈ 1.05 edges/vertex,
	// i.e. a small ring fraction.
	RingFrac float64
	// MaxDegree caps vertex degree (typical chemistry valence limit).
	MaxDegree int
	// Labels is the atom alphabet size.
	Labels int
}

// DefaultMoleculeConfig mirrors the AIDS summary statistics.
func DefaultMoleculeConfig() MoleculeConfig {
	return MoleculeConfig{MinV: 20, MaxV: 50, RingFrac: 0.08, MaxDegree: 4, Labels: 12}
}

// Molecule generates one connected AIDS-like molecule graph: a random
// degree-capped tree plus a few ring-closing edges, labelled from the
// skewed atom distribution.
func Molecule(rng *rand.Rand, cfg MoleculeConfig) *graph.Graph {
	if cfg.MaxV < cfg.MinV {
		cfg.MaxV = cfg.MinV
	}
	if cfg.MaxDegree < 2 {
		cfg.MaxDegree = 2
	}
	n := cfg.MinV
	if cfg.MaxV > cfg.MinV {
		n += rng.Intn(cfg.MaxV - cfg.MinV + 1)
	}
	sampler := NewAIDSLabelSampler(cfg.Labels)
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = sampler.Sample(rng)
	}

	b := graph.NewBuilder(n).SetLabels(labels)
	deg := make([]int, n)
	// Random tree: attach vertex i to a uniformly chosen earlier vertex
	// with spare valence (fall back to any earlier vertex if none has).
	for i := 1; i < n; i++ {
		p := -1
		for attempt := 0; attempt < 8; attempt++ {
			c := rng.Intn(i)
			if deg[c] < cfg.MaxDegree {
				p = c
				break
			}
		}
		if p == -1 {
			p = rng.Intn(i)
		}
		b.AddEdge(i, p)
		deg[i]++
		deg[p]++
	}
	// Ring closures between degree-spare vertices.
	rings := int(float64(n-1)*cfg.RingFrac + 0.5)
	for r := 0; r < rings; r++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || deg[u] >= cfg.MaxDegree || deg[v] >= cfg.MaxDegree {
			continue
		}
		b.AddEdge(u, v)
		deg[u]++
		deg[v]++
	}
	return b.MustBuild()
}

// Molecules generates count molecules with ids 0..count-1.
func Molecules(rng *rand.Rand, count int, cfg MoleculeConfig) []*graph.Graph {
	out := make([]*graph.Graph, count)
	for i := range out {
		out[i] = Molecule(rng, cfg).WithID(i)
	}
	return out
}

// ErdosRenyi generates a G(n, p) graph with labels from the sampler.
// The result may be disconnected; callers needing connectivity should use
// Molecule or BarabasiAlbert.
func ErdosRenyi(rng *rand.Rand, n int, p float64, sampler *LabelSampler) *graph.Graph {
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = sampler.Sample(rng)
	}
	b := graph.NewBuilder(n).SetLabels(labels)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// vertex attaches m edges to existing vertices chosen proportionally to
// degree (the "social network" shaped dataset of §3.1). The result is
// connected for m ≥ 1.
func BarabasiAlbert(rng *rand.Rand, n, m int, sampler *LabelSampler) *graph.Graph {
	if n < 2 {
		n = 2
	}
	if m < 1 {
		m = 1
	}
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = sampler.Sample(rng)
	}
	b := graph.NewBuilder(n).SetLabels(labels)
	// repeated holds one entry per edge endpoint: sampling uniformly from
	// it is degree-proportional sampling.
	repeated := make([]int, 0, 2*n*m)
	b.AddEdge(0, 1)
	repeated = append(repeated, 0, 1)
	for v := 2; v < n; v++ {
		attached := map[int]bool{}
		tries := 0
		for len(attached) < m && len(attached) < v && tries < 20*m {
			tries++
			t := repeated[rng.Intn(len(repeated))]
			if t != v && !attached[t] {
				attached[t] = true
			}
		}
		if len(attached) == 0 {
			attached[rng.Intn(v)] = true
		}
		for t := range attached {
			b.AddEdge(v, t)
			repeated = append(repeated, v, t)
		}
	}
	return b.MustBuild()
}

// ERDataset and BADataset generate count-sized datasets with position ids.

// ERDataset generates count Erdős–Rényi graphs.
func ERDataset(rng *rand.Rand, count, n int, p float64, labels int) []*graph.Graph {
	s := NewUniformLabelSampler(labels)
	out := make([]*graph.Graph, count)
	for i := range out {
		out[i] = ErdosRenyi(rng, n, p, s).WithID(i)
	}
	return out
}

// BADataset generates count Barabási–Albert graphs. Labels are uniform:
// hub-heavy topology combined with a near-single-label alphabet makes
// subgraph isomorphism needlessly pathological, which is not the workload
// shape the paper's social scenario implies (demographic labels are
// diverse).
func BADataset(rng *rand.Rand, count, n, m int, labels int) []*graph.Graph {
	s := NewUniformLabelSampler(labels)
	out := make([]*graph.Graph, count)
	for i := range out {
		out[i] = BarabasiAlbert(rng, n, m, s).WithID(i)
	}
	return out
}
