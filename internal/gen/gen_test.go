package gen

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

func TestLabelSamplerDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewAIDSLabelSampler(12)
	counts := make([]int, 12)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	// Carbon (label 0) must dominate, roughly 3/4.
	frac := float64(counts[0]) / draws
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("carbon fraction = %.3f, want ≈ 0.745", frac)
	}
	// Distribution must be monotone non-increasing in expectation; check
	// first few ranks loosely.
	if counts[1] < counts[3] {
		t.Errorf("label 1 (%d) should be more common than label 3 (%d)", counts[1], counts[3])
	}
}

func TestUniformSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewUniformLabelSampler(4)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[s.Sample(rng)]++
	}
	for l, c := range counts {
		if c < 1600 || c > 2400 {
			t.Errorf("label %d count %d, want ≈ 2000", l, c)
		}
	}
}

func TestMoleculeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultMoleculeConfig()
	for i := 0; i < 50; i++ {
		m := Molecule(rng, cfg)
		if m.N() < cfg.MinV || m.N() > cfg.MaxV {
			t.Fatalf("molecule size %d outside [%d,%d]", m.N(), cfg.MinV, cfg.MaxV)
		}
		if !m.IsConnected() {
			t.Fatal("molecule not connected")
		}
		// Sparse: edges close to vertices (tree + few rings).
		if m.M() < m.N()-1 || float64(m.M()) > 1.25*float64(m.N()) {
			t.Fatalf("molecule edges %d for %d vertices not chemistry-like", m.M(), m.N())
		}
		for v := 0; v < m.N(); v++ {
			if m.Degree(v) > cfg.MaxDegree {
				t.Fatalf("degree %d exceeds cap %d", m.Degree(v), cfg.MaxDegree)
			}
		}
	}
}

func TestMoleculesIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ms := Molecules(rng, 10, DefaultMoleculeConfig())
	for i, m := range ms {
		if m.ID() != i {
			t.Fatalf("molecule %d has id %d", i, m.ID())
		}
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ErdosRenyi(rng, 60, 0.2, NewUniformLabelSampler(3))
	want := 0.2 * float64(60*59/2)
	if float64(g.M()) < want*0.6 || float64(g.M()) > want*1.4 {
		t.Errorf("ER edges = %d, want ≈ %.0f", g.M(), want)
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := BarabasiAlbert(rng, 200, 2, NewUniformLabelSampler(5))
	if !g.IsConnected() {
		t.Error("BA graph should be connected")
	}
	// Power-law-ish: max degree should greatly exceed the median.
	ds := g.DegreeSequence()
	if ds[0] < 3*ds[len(ds)/2] {
		t.Errorf("BA max degree %d vs median %d: no hub structure", ds[0], ds[len(ds)/2])
	}
}

func TestExtractConnectedSubgraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultMoleculeConfig()
	for i := 0; i < 40; i++ {
		g := Molecule(rng, cfg)
		target := 2 + rng.Intn(10)
		q := ExtractConnectedSubgraph(rng, g, target)
		if q.M() > target {
			t.Fatalf("extracted %d edges, want ≤ %d", q.M(), target)
		}
		if !q.IsConnected() {
			t.Fatal("extracted subgraph not connected")
		}
		if !iso.SubIso(q, g) {
			t.Fatal("extracted subgraph does not embed in source")
		}
	}
}

func TestExtractFromEdgelessGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.MustNew([]graph.Label{3, 4}, nil)
	q := ExtractConnectedSubgraph(rng, g, 5)
	if q.N() != 1 || q.M() != 0 {
		t.Fatalf("want single vertex, got %v", q)
	}
	empty := graph.MustNew(nil, nil)
	if q := ExtractConnectedSubgraph(rng, empty, 3); q.N() != 0 {
		t.Fatalf("want empty graph, got %v", q)
	}
}

func TestAugmentProducesSupergraph(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewAIDSLabelSampler(8)
	for i := 0; i < 30; i++ {
		g := Molecule(rng, MoleculeConfig{MinV: 6, MaxV: 12, RingFrac: 0.1, MaxDegree: 4, Labels: 8})
		a := Augment(rng, g, 2, 2, s)
		if a.N() != g.N()+2 {
			t.Fatalf("augmented size %d, want %d", a.N(), g.N()+2)
		}
		if !iso.SubIso(g, a) {
			t.Fatal("original does not embed in augmented graph")
		}
	}
}

func TestWorkloadBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := Molecules(rng, 20, DefaultMoleculeConfig())
	cfg := DefaultWorkloadConfig()
	cfg.Size = 50
	w, err := NewWorkload(rng, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 50 {
		t.Fatalf("workload size %d, want 50", len(w.Queries))
	}
	if len(w.Pool) < cfg.PoolSize {
		t.Fatalf("pool size %d, want ≥ %d", len(w.Pool), cfg.PoolSize)
	}
	for _, q := range w.Queries {
		if q.G == nil || q.G.N() == 0 {
			t.Fatal("empty query graph")
		}
		if q.Type != ftv.Subgraph {
			t.Fatal("unexpected query type")
		}
		if q.PoolID < 0 || q.PoolID >= len(w.Pool) {
			t.Fatalf("bad pool id %d", q.PoolID)
		}
	}
}

func TestWorkloadZipfRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := Molecules(rng, 20, DefaultMoleculeConfig())
	cfg := DefaultWorkloadConfig()
	cfg.Size = 200
	cfg.ZipfS = 1.5
	w, err := NewWorkload(rng, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, q := range w.Queries {
		seen[q.PoolID]++
	}
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < 10 {
		t.Errorf("Zipf(1.5) workload should repeat its head pattern; max repeats = %d", max)
	}
	if len(seen) < 5 {
		t.Errorf("workload uses only %d distinct patterns", len(seen))
	}
}

func TestWorkloadChainsContain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := Molecules(rng, 20, DefaultMoleculeConfig())
	cfg := DefaultWorkloadConfig()
	cfg.PoolSize = 12
	cfg.ChainFrac = 1.0
	cfg.ChainLen = 3
	cfg.Size = 10
	w, err := NewWorkload(rng, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Chain members are emitted consecutively smallest→largest; verify at
	// least one adjacent pool pair is in containment.
	found := false
	for i := 0; i+1 < len(w.Pool); i++ {
		a, b := w.Pool[i].G, w.Pool[i+1].G
		if a.N() <= b.N() && iso.SubIso(a, b) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no containment pair found in chained pool")
	}
}

func TestWorkloadSupergraphType(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := Molecules(rng, 10, MoleculeConfig{MinV: 8, MaxV: 14, RingFrac: 0.1, MaxDegree: 4, Labels: 8})
	cfg := DefaultWorkloadConfig()
	cfg.Type = ftv.Supergraph
	cfg.Size = 20
	cfg.PoolSize = 10
	w, err := NewWorkload(rng, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if q.Type != ftv.Supergraph {
			t.Fatal("want supergraph queries")
		}
	}
}

func TestWorkloadEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	if _, err := NewWorkload(rng, nil, DefaultWorkloadConfig()); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestAssignIDs(t *testing.T) {
	g := graph.MustNew([]graph.Label{1}, nil)
	out := AssignIDs([]*graph.Graph{g, g, g})
	for i, h := range out {
		if h.ID() != i {
			t.Fatalf("id %d, want %d", h.ID(), i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []*graph.Graph {
		rng := rand.New(rand.NewSource(99))
		return Molecules(rng, 5, DefaultMoleculeConfig())
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].N() != b[i].N() || a[i].M() != b[i].M() {
			t.Fatal("generation not deterministic")
		}
		if a[i].WLFingerprint(3) != b[i].WLFingerprint(3) {
			t.Fatal("generation not deterministic (fingerprint)")
		}
	}
}
