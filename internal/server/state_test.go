package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postStateSave(t *testing.T, srv *Server) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/state/save", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// POST /api/state/save answers 503 until the daemon injects a saver, then
// delegates to it: 200 on success, 500 when the saver fails.
func TestStateSaveEndpoint(t *testing.T) {
	srv, _ := testServer(t)

	if rec := postStateSave(t, srv); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unconfigured save: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest(http.MethodGet, "/api/state/save", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET save: status %d, want 405", rec.Code)
	}

	calls := 0
	srv.SetStateSaver(func() error { calls++; return nil })
	if rec := postStateSave(t, srv); rec.Code != http.StatusOK {
		t.Fatalf("save: status %d: %s", rec.Code, rec.Body.String())
	} else if !strings.Contains(rec.Body.String(), "entries") {
		t.Fatalf("save response lacks entry count: %s", rec.Body.String())
	}
	if calls != 1 {
		t.Fatalf("saver ran %d times, want 1", calls)
	}

	srv.SetStateSaver(func() error { return errors.New("disk full") })
	rec = postStateSave(t, srv)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing save: status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "disk full") {
		t.Fatalf("failing save hides the cause: %s", rec.Body.String())
	}
}

// The stats payload exposes the lazy-restore fault counter so operators
// can watch a restored cache warm up.
func TestStatsExposeStateBodyFaults(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"stateBodyFaults": 0`) {
		t.Fatalf("stats missing stateBodyFaults:\n%s", rec.Body.String())
	}
}
