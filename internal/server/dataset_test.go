package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphcache/internal/gen"
)

func doJSON(t *testing.T, srv *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	out := map[string]any{}
	if len(rec.Body.Bytes()) > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec, out
}

func TestDatasetMutationEndpoints(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(7))
	newGraph := gen.Molecules(rng, 1, gen.MoleculeConfig{MinV: 10, MaxV: 14, RingFrac: 0.1, MaxDegree: 4, Labels: 6})[0]

	// Baseline stats.
	_, stats := doJSON(t, srv, http.MethodGet, "/api/stats", "")
	if int(stats["datasetSize"].(float64)) != len(dataset) || stats["epoch"].(float64) != 0 {
		t.Fatalf("baseline stats wrong: %v %v", stats["datasetSize"], stats["epoch"])
	}

	// Append a graph.
	body, _ := json.Marshal(map[string]string{"graph": graphText(t, newGraph)})
	rec, out := doJSON(t, srv, http.MethodPost, "/api/dataset/graphs", string(body))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST graph: status %d: %s", rec.Code, rec.Body.String())
	}
	newID := int(out["id"].(float64))
	if newID != len(dataset) {
		t.Fatalf("new graph id %d, want %d", newID, len(dataset))
	}
	if int(out["datasetSize"].(float64)) != len(dataset)+1 || out["epoch"].(float64) != 1 {
		t.Fatalf("mutation response wrong: %v", out)
	}

	// A pattern of the added graph must now answer with it.
	pattern := gen.ExtractConnectedSubgraph(rng, newGraph, 5)
	qbody, _ := json.Marshal(map[string]string{"graph": graphText(t, pattern), "type": "subgraph"})
	rec, qout := doJSON(t, srv, http.MethodPost, "/api/query", string(qbody))
	if rec.Code != http.StatusOK {
		t.Fatalf("query: status %d: %s", rec.Code, rec.Body.String())
	}
	found := false
	for _, a := range qout["answers"].([]any) {
		if int(a.(float64)) == newID {
			found = true
		}
	}
	if !found {
		t.Fatalf("added graph %d missing from answers %v", newID, qout["answers"])
	}

	// The added graph is served by the dataset endpoint (as graph text).
	rawReq := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/api/dataset/%d", newID), nil)
	rawRec := httptest.NewRecorder()
	srv.ServeHTTP(rawRec, rawReq)
	if rawRec.Code != http.StatusOK || !strings.Contains(rawRec.Body.String(), "t #") {
		t.Fatalf("GET added graph: status %d body %q", rawRec.Code, rawRec.Body.String())
	}

	// Remove graph 0; its id turns 410 and stats reflect the tombstone.
	rec, out = doJSON(t, srv, http.MethodDelete, "/api/dataset/graphs/0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE graph 0: status %d: %s", rec.Code, rec.Body.String())
	}
	if int(out["datasetSize"].(float64)) != len(dataset) || out["epoch"].(float64) != 2 {
		t.Fatalf("delete response wrong: %v", out)
	}
	rec, _ = doJSON(t, srv, http.MethodGet, "/api/dataset/0", "")
	if rec.Code != http.StatusGone {
		t.Fatalf("GET removed graph: status %d, want 410", rec.Code)
	}
	_, stats = doJSON(t, srv, http.MethodGet, "/api/stats", "")
	if int(stats["datasetSize"].(float64)) != len(dataset) ||
		int(stats["datasetIdSpace"].(float64)) != len(dataset)+1 ||
		stats["epoch"].(float64) != 2 ||
		stats["datasetAdds"].(float64) != 1 || stats["datasetRemoves"].(float64) != 1 {
		t.Fatalf("post-churn stats wrong: %s", mustJSON(stats))
	}

	// Error paths.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodDelete, "/api/dataset/graphs/0", "", http.StatusGone},       // double remove: gone, like GET
		{http.MethodDelete, "/api/dataset/graphs/999", "", http.StatusNotFound}, // never existed
		{http.MethodDelete, "/api/dataset/graphs/abc", "", http.StatusNotFound}, // bad id
		{http.MethodGet, "/api/dataset/graphs", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/api/dataset/graphs", `{"graph":"not a graph"}`, http.StatusBadRequest},
		{http.MethodPost, "/api/dataset/graphs", `{`, http.StatusBadRequest},
	} {
		rec, _ := doJSON(t, srv, tc.method, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
	}
}

func mustJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestStatsReportFilterMaintenance pins the PR-5 observability surface:
// /api/stats exposes the incremental-insert counters and the addition-log
// length, and they move with dataset mutations — additions are counted as
// filter inserts (never rebuilds: the bundled GGSX filter is insertable)
// and the eager-mode compaction keeps the log drained.
func TestStatsReportFilterMaintenance(t *testing.T) {
	srv, _ := testServer(t)
	rng := rand.New(rand.NewSource(17))
	extra := gen.Molecules(rng, 2, gen.MoleculeConfig{MinV: 10, MaxV: 14, RingFrac: 0.1, MaxDegree: 4, Labels: 6})

	_, stats := doJSON(t, srv, http.MethodGet, "/api/stats", "")
	for _, field := range []string{"filterInserts", "filterRebuilds", "additionLogLen", "logCompactions"} {
		if _, ok := stats[field]; !ok {
			t.Fatalf("/api/stats is missing %q: %s", field, mustJSON(stats))
		}
	}
	if stats["filterInserts"].(float64) != 0 || stats["additionLogLen"].(float64) != 0 {
		t.Fatalf("baseline maintenance stats not zero: %s", mustJSON(stats))
	}

	for _, g := range extra {
		body, _ := json.Marshal(map[string]string{"graph": graphText(t, g)})
		if rec, _ := doJSON(t, srv, http.MethodPost, "/api/dataset/graphs", string(body)); rec.Code != http.StatusCreated {
			t.Fatalf("POST graph: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	_, stats = doJSON(t, srv, http.MethodGet, "/api/stats", "")
	if stats["filterInserts"].(float64) != 2 || stats["filterRebuilds"].(float64) != 0 {
		t.Fatalf("filter counters after 2 adds: %s", mustJSON(stats))
	}
	// The default engine reconciles eagerly: each mutation's stop-the-world
	// pass compacts the record it appended.
	if stats["additionLogLen"].(float64) != 0 {
		t.Fatalf("addition log not drained in eager mode: %s", mustJSON(stats))
	}
	if stats["logCompactions"].(float64) == 0 {
		t.Fatalf("no compaction recorded after additions: %s", mustJSON(stats))
	}
}
