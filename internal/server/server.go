// Package server implements the Dashboard Manager substitute: an HTTP/JSON
// service over a GraphCache instance. The demo paper drives GC through an
// HTML/JavaScript front-end on a cloud deployment; this package exposes
// the same information — query execution with the Query Journey
// quantities, cache contents, operational statistics, and graph
// visualizations — as a JSON API plus a minimal HTML status page.
package server

// The server is context-strict: handlers thread r.Context() into the
// kernel so a disconnected client cancels its own batch; minting a root
// context here would detach that work from the request lifetime.
//
//gclint:ctxstrict

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strconv"
	"strings"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/viz"
)

// maxBatchWorkers caps the per-request worker pool a /api/query/batch
// caller may ask for, bounding the goroutines one request can spawn.
// maxBatchQueries and maxBodyBytes bound how much work and memory one
// unauthenticated request can pin (even the streaming variant buffers up
// to the whole batch when the client reads slowly).
const (
	maxBatchWorkers = 32
	maxBatchQueries = 256
	maxBodyBytes    = 8 << 20
)

// Server wires a cache and its live dataset into an http.Handler.
// Handlers are served concurrently by net/http; the sharded cache kernel
// processes the resulting in-flight queries in parallel. Dataset reads go
// through the cache's method view, so graphs added or removed at runtime
// (POST /api/dataset/graphs, DELETE /api/dataset/graphs/{id}) are visible
// immediately and consistently.
type Server struct {
	cache *core.Cache
	mux   *http.ServeMux
	// logf records server-side failures (JSON encode errors and the like);
	// defaults to log.Printf, overridable for tests.
	logf func(format string, args ...any)
	// stateSaver persists the cache when POST /api/state/save asks for it.
	// The daemon owns the state path (and the temp-file-plus-rename dance),
	// so it injects the closure via SetStateSaver; while nil the endpoint
	// answers 503.
	stateSaver func() error
}

// New builds the handler over the cache (whose method owns the live
// dataset).
func New(cache *core.Cache) *Server {
	s := &Server{cache: cache, mux: http.NewServeMux(), logf: log.Printf}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/entries", s.handleEntries)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("/api/dataset/graphs", s.handleDatasetGraphs)
	s.mux.HandleFunc("/api/dataset/graphs/", s.handleDatasetGraphByID)
	s.mux.HandleFunc("/api/dataset/", s.handleDataset)
	s.mux.HandleFunc("/api/state/save", s.handleStateSave)
	return s
}

// SetStateSaver wires the POST /api/state/save implementation: fn must
// atomically persist the cache's state (the daemon passes a closure over
// its -state path). Call before serving; a nil saver leaves the endpoint
// answering 503.
func (s *Server) SetStateSaver(fn func() error) { s.stateSaver = fn }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON marshals v up front so encode errors surface as a 500 instead
// of a silently truncated 200 (the status line would already be on the
// wire if we streamed the encoder straight into w).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.logf("server: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(buf, '\n')); err != nil {
		// Headers are gone; all that's left is recording the failure.
		s.logf("server: writing response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body capped at maxBodyBytes,
// distinguishing an oversized body (413) from malformed JSON (400). It
// writes the error response itself and reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return false
	}
	s.writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
	return false
}

// statsResponse mirrors core.Snapshot with JSON-friendly names.
type statsResponse struct {
	Queries           int64   `json:"queries"`
	ExactHits         int64   `json:"exactHits"`
	SubHitQueries     int64   `json:"subHitQueries"`
	SuperHitQueries   int64   `json:"superHitQueries"`
	SubHits           int64   `json:"subHits"`
	SuperHits         int64   `json:"superHits"`
	TestsExecuted     int64   `json:"testsExecuted"`
	TestsSaved        int64   `json:"testsSaved"`
	TestSpeedup       float64 `json:"testSpeedup"`
	HitDetectionTests int64   `json:"hitDetectionTests"`
	HitScanEntries    int64   `json:"hitScanEntries"`
	HitFullChecks     int64   `json:"hitFullChecks"`
	HitIndexPruned    int64   `json:"hitIndexPruned"`
	Admissions        int64   `json:"admissions"`
	Evictions         int64   `json:"evictions"`
	WindowTurns       int64   `json:"windowTurns"`
	CachedEntries     int     `json:"cachedEntries"`
	CacheBytes        int     `json:"cacheBytes"`
	Shards            int     `json:"shards"`
	Policy            string  `json:"policy"`
	// WindowPending is the total number of entries staged for admission.
	// ShardWindows and ShardTurns break occupancy and window turns down
	// per shard (turns stay zero per shard in shared-window mode, where
	// only the aggregate windowTurns counts).
	WindowPending int     `json:"windowPending"`
	ShardWindows  []int   `json:"shardWindows"`
	ShardTurns    []int64 `json:"shardTurns"`
	// DatasetSize is the number of live (queryable) dataset graphs;
	// DatasetIDSpace additionally counts tombstoned ids. Epoch counts
	// dataset mutations; DatasetAdds/DatasetRemoves split them and
	// MaintenanceTests prices the answer-set reconciliation work.
	DatasetSize      int   `json:"datasetSize"`
	DatasetIDSpace   int   `json:"datasetIdSpace"`
	Epoch            int64 `json:"epoch"`
	DatasetAdds      int64 `json:"datasetAdds"`
	DatasetRemoves   int64 `json:"datasetRemoves"`
	MaintenanceTests int64 `json:"maintenanceTests"`
	// FilterInserts/FilterRebuilds split how additions maintained the
	// method's filter (incremental O(graph) insert vs full O(dataset)
	// rebuild); AdditionLogLen is the current reconciliation-log length
	// and LogCompactions counts the compactions bounding it.
	FilterInserts  int64 `json:"filterInserts"`
	FilterRebuilds int64 `json:"filterRebuilds"`
	AdditionLogLen int   `json:"additionLogLen"`
	LogCompactions int64 `json:"logCompactions"`
	// AnswerBytes is the intern pool's account — the distinct canonical
	// answer sets, each charged once however many entries share it
	// (cacheBytes = static entry bytes + answerBytes). InternHits and
	// InternMisses count pool acquisitions that reused vs inserted a
	// canonical set.
	AnswerBytes  int64 `json:"answerBytes"`
	InternHits   int64 `json:"internHits"`
	InternMisses int64 `json:"internMisses"`
	// StateBodyFaults counts answer bodies faulted in from the snapshot
	// file after a lazy state restore (0 when the cache booted cold or
	// restored eagerly).
	StateBodyFaults int64 `json:"stateBodyFaults"`
}

func (s *Server) statsResponse() statsResponse {
	snap := s.cache.Stats()
	ds := s.cache.DatasetInfo()
	shardStats := s.cache.ShardStats()
	windows := make([]int, len(shardStats))
	turns := make([]int64, len(shardStats))
	pending := 0
	for i, st := range shardStats {
		windows[i] = st.WindowLen
		turns[i] = st.Turns
		pending += st.WindowLen
	}
	if pending == 0 {
		// Shared-window caches stage outside the shards (their per-shard
		// windows stay empty); fall back to the cache-level count so the
		// field is meaningful in both engines. In per-shard mode the sum
		// above keeps windowPending consistent with shardWindows even
		// under concurrent traffic.
		pending = s.cache.WindowLen()
	}
	return statsResponse{
		Queries:           snap.Queries,
		ExactHits:         snap.ExactHits,
		SubHitQueries:     snap.SubHitQueries,
		SuperHitQueries:   snap.SuperHitQueries,
		SubHits:           snap.SubHits,
		SuperHits:         snap.SuperHits,
		TestsExecuted:     snap.TestsExecuted,
		TestsSaved:        snap.TestsSaved,
		TestSpeedup:       snap.TestSpeedup(),
		HitDetectionTests: snap.HitDetectionTests,
		HitScanEntries:    snap.HitScanEntries,
		HitFullChecks:     snap.HitFullChecks,
		HitIndexPruned:    snap.HitIndexPruned,
		Admissions:        snap.Admissions,
		Evictions:         snap.Evictions,
		WindowTurns:       snap.WindowTurns,
		CachedEntries:     s.cache.Len(),
		CacheBytes:        s.cache.Bytes(),
		Shards:            s.cache.Shards(),
		Policy:            s.cache.PolicyName(),
		WindowPending:     pending,
		ShardWindows:      windows,
		ShardTurns:        turns,
		DatasetSize:       ds.Live,
		DatasetIDSpace:    ds.Size,
		Epoch:             ds.Epoch,
		DatasetAdds:       snap.DatasetAdds,
		DatasetRemoves:    snap.DatasetRemoves,
		MaintenanceTests:  snap.MaintenanceTests,
		FilterInserts:     snap.FilterInserts,
		FilterRebuilds:    snap.FilterRebuilds,
		AdditionLogLen:    snap.AdditionLogLen,
		LogCompactions:    snap.LogCompactions,
		AnswerBytes:       snap.AnswerBytes,
		InternHits:        snap.InternHits,
		InternMisses:      snap.InternMisses,
		StateBodyFaults:   snap.StateBodyFaults,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.writeJSON(w, http.StatusOK, s.statsResponse())
}

type entryResponse struct {
	ID         int     `json:"id"`
	Type       string  `json:"type"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Answers    int     `json:"answers"`
	Hits       int64   `json:"hits"`
	SavedTests float64 `json:"savedTests"`
	LastUsed   int64   `json:"lastUsed"`
}

func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := s.cache.Entries()
	out := make([]entryResponse, 0, len(entries))
	for _, e := range entries {
		out = append(out, entryResponse{
			ID:         e.ID,
			Type:       e.Type.String(),
			Vertices:   e.Graph.N(),
			Edges:      e.Graph.M(),
			Answers:    e.Answers().Count(),
			Hits:       e.Hits,
			SavedTests: e.SavedTests,
			LastUsed:   e.LastUsed,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// queryRequest is the POST /api/query payload: a graph in the text codec
// plus the query type.
type queryRequest struct {
	// Graph holds one graph in the gSpan text format ("t # 0\nv 0 1\n...").
	Graph string `json:"graph"`
	// Type is "subgraph" (default) or "supergraph".
	Type string `json:"type"`
}

type queryResponse struct {
	Answers        []int       `json:"answers"`
	Sure           []int       `json:"sure"`
	Excluded       []int       `json:"excluded"`
	Tests          int         `json:"tests"`
	BaseCandidates int         `json:"baseCandidates"`
	TestSpeedup    float64     `json:"testSpeedup"`
	ExactHit       bool        `json:"exactHit"`
	Hits           []hitDetail `json:"hits"`
}

type hitDetail struct {
	Entry      int    `json:"entry"`
	Kind       string `json:"kind"`
	SavedTests int    `json:"savedTests"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, qt, err := parseQuery(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.cache.Execute(g, qt)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, toQueryResponse(res))
}

// toQueryResponse projects a kernel Result into the JSON shape.
func toQueryResponse(res *core.Result) queryResponse {
	resp := queryResponse{
		Answers:        res.Answers.Indices(),
		Sure:           res.Sure.Indices(),
		Excluded:       res.Excluded.Indices(),
		Tests:          res.Tests,
		BaseCandidates: res.BaseCandidates,
		TestSpeedup:    res.TestSpeedup(),
		ExactHit:       res.ExactHit,
		Hits:           make([]hitDetail, 0, len(res.Hits)),
	}
	for _, h := range res.Hits {
		resp.Hits = append(resp.Hits, hitDetail{Entry: h.EntryID, Kind: h.Kind.String(), SavedTests: h.SavedTests})
	}
	return resp
}

// batchRequest is the POST /api/query/batch payload: a list of queries
// processed through the cache's worker pool in one round trip. With
// ?stream=1 the response is NDJSON — one batchItem per line, written and
// flushed as each query completes — instead of a single buffered
// batchResponse.
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
	// Workers sizes the worker pool; 0 defaults to 4, capped at
	// maxBatchWorkers.
	Workers int `json:"workers"`
}

// batchItem is one per-query outcome; Error is set instead of the result
// fields when that query failed (the rest of the batch still completes).
type batchItem struct {
	Index int            `json:"index"`
	Error string         `json:"error,omitempty"`
	Query *queryResponse `json:"result,omitempty"`
}

type batchResponse struct {
	Results []batchItem `json:"results"`
	Workers int         `json:"workers"`
}

// parseQuery decodes one queryRequest into a pattern graph and semantics.
func parseQuery(req queryRequest) (*graph.Graph, ftv.QueryType, error) {
	gs, err := graph.ReadAll(strings.NewReader(req.Graph))
	if err != nil {
		return nil, 0, fmt.Errorf("bad graph: %v", err)
	}
	if len(gs) != 1 {
		return nil, 0, fmt.Errorf("want exactly one graph, got %d", len(gs))
	}
	switch req.Type {
	case "", "subgraph":
		return gs[0], ftv.Subgraph, nil
	case "supergraph":
		return gs[0], ftv.Supergraph, nil
	default:
		return nil, 0, fmt.Errorf("unknown query type %q", req.Type)
	}
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		s.writeError(w, http.StatusRequestEntityTooLarge, "batch of %d queries exceeds the %d-query limit", len(req.Queries), maxBatchQueries)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > maxBatchWorkers {
		workers = maxBatchWorkers
	}

	// Malformed queries are rejected positionally without aborting the
	// batch; only the well-formed remainder reaches the cache.
	items := make([]batchItem, len(req.Queries))
	reqs := make([]core.Request, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		items[i].Index = i
		g, qt, err := parseQuery(q)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		reqs = append(reqs, core.Request{Graph: g, Type: qt})
		slots = append(slots, i)
	}

	if streamRequested(r) {
		s.streamBatch(w, r, items, reqs, slots, workers)
		return
	}

	for j, out := range s.cache.ExecuteAll(reqs, workers) {
		i := slots[j]
		if out.Err != nil {
			items[i].Error = out.Err.Error()
			continue
		}
		resp := toQueryResponse(out.Result)
		items[i].Query = &resp
	}
	s.writeJSON(w, http.StatusOK, batchResponse{Results: items, Workers: workers})
}

// streamRequested reports whether the batch caller asked for the NDJSON
// streaming variant (?stream=1 / true / yes).
func streamRequested(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("stream")) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// streamBatch is the ?stream=1 pipeline: instead of buffering the whole
// batch, each outcome is written as one NDJSON line — and flushed — the
// moment its query finishes, so clients see the first answers while the
// tail of the batch is still verifying. Malformed queries (already marked
// in items) are emitted first; cache outcomes follow in completion order,
// each tagged with its request index. The batch runs under the request
// context: when the client disconnects (or a write fails, which cancels
// the same context at the next flush), the kernel stops dispatching the
// remaining queries — only the in-flight ones run to completion — instead
// of verifying a whole batch nobody will read.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, items []batchItem, reqs []core.Request, slots []int, workers int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Batch-Workers", strconv.Itoa(workers))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(item batchItem) bool {
		if err := enc.Encode(item); err != nil {
			s.logf("server: streaming batch item %d: %v", item.Index, err)
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, item := range items {
		if item.Error == "" {
			continue // reaches the cache; emitted on completion below
		}
		if !emit(item) {
			return
		}
	}
	for so := range s.cache.ExecuteAllStreamContext(r.Context(), reqs, workers) {
		item := batchItem{Index: slots[so.Index]}
		if so.Err != nil {
			item.Error = so.Err.Error()
		} else {
			resp := toQueryResponse(so.Result)
			item.Query = &resp
		}
		if !emit(item) {
			return
		}
	}
}

// datasetGraphRequest is the POST /api/dataset/graphs payload: one graph
// in the text codec to append to the live dataset.
type datasetGraphRequest struct {
	Graph string `json:"graph"`
}

// datasetMutationResponse reports one dataset mutation: the affected id
// and the dataset shape after the mutation.
type datasetMutationResponse struct {
	ID          int   `json:"id"`
	DatasetSize int   `json:"datasetSize"`
	Epoch       int64 `json:"epoch"`
}

// handleDatasetGraphs serves POST /api/dataset/graphs: append a graph to
// the live dataset. Cached answer sets are maintained exactly by the
// kernel (eagerly or lazily per its configuration).
func (s *Server) handleDatasetGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req datasetGraphRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	gs, err := graph.ReadAll(strings.NewReader(req.Graph))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	if len(gs) != 1 {
		s.writeError(w, http.StatusBadRequest, "want exactly one graph, got %d", len(gs))
		return
	}
	id, err := s.cache.AddGraph(gs[0])
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "add graph: %v", err)
		return
	}
	ds := s.cache.DatasetInfo()
	s.writeJSON(w, http.StatusCreated, datasetMutationResponse{ID: id, DatasetSize: ds.Live, Epoch: ds.Epoch})
}

// handleDatasetGraphByID serves DELETE /api/dataset/graphs/{id}: tombstone
// a live dataset graph. Its bit is cleared from every cached answer set
// before the call returns.
func (s *Server) handleDatasetGraphByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		s.writeError(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/dataset/graphs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "no dataset graph %q", idStr)
		return
	}
	if err := s.cache.RemoveGraph(id); err != nil {
		// An already-tombstoned id is 410 like the GET handler (a retried
		// DELETE reads as "gone", not "never existed"); anything else is
		// an unknown id.
		view := s.cache.Method().View()
		if id >= 0 && id < view.Size() && view.Graph(id) == nil {
			s.writeError(w, http.StatusGone, "remove graph: %v", err)
			return
		}
		s.writeError(w, http.StatusNotFound, "remove graph: %v", err)
		return
	}
	ds := s.cache.DatasetInfo()
	s.writeJSON(w, http.StatusOK, datasetMutationResponse{ID: id, DatasetSize: ds.Live, Epoch: ds.Epoch})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	view := s.cache.Method().View()
	idStr := strings.TrimPrefix(r.URL.Path, "/api/dataset/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= view.Size() {
		s.writeError(w, http.StatusNotFound, "no dataset graph %q", idStr)
		return
	}
	g := view.Graph(id)
	if g == nil {
		s.writeError(w, http.StatusGone, "dataset graph %d was removed", id)
		return
	}
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, viz.ToDOT(g, viz.Options{Name: fmt.Sprintf("g%d", id), VertexNames: viz.AtomNames}))
	case "ascii":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, viz.ASCII(g, viz.Options{VertexNames: viz.AtomNames}))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := graph.WriteGraph(w, g); err != nil {
			s.writeError(w, http.StatusInternalServerError, "write: %v", err)
		}
	}
}

// stateSaveResponse reports one successful POST /api/state/save.
type stateSaveResponse struct {
	// Entries is the number of cached queries the snapshot captured.
	Entries int `json:"entries"`
}

// handleStateSave serves POST /api/state/save: persist the cache's state
// through the daemon-injected saver. 503 when the daemon was started
// without a state path.
func (s *Server) handleStateSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.stateSaver == nil {
		s.writeError(w, http.StatusServiceUnavailable, "state persistence not configured (start the daemon with -state)")
		return
	}
	if err := s.stateSaver(); err != nil {
		s.writeError(w, http.StatusInternalServerError, "saving state: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, stateSaveResponse{Entries: s.cache.Len()})
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>GraphCache</title></head><body>
<h1>GraphCache</h1>
<p>{{.Queries}} queries · speedup {{printf "%.2f" .TestSpeedup}}× in sub-iso tests
· {{.CachedEntries}} cached queries under {{.Policy}} replacement</p>
<ul>
<li>exact hits: {{.ExactHits}}</li>
<li>sub-case hits: {{.SubHits}} (queries: {{.SubHitQueries}})</li>
<li>super-case hits: {{.SuperHits}} (queries: {{.SuperHitQueries}})</li>
<li>tests executed / saved: {{.TestsExecuted}} / {{.TestsSaved}}</li>
<li>dataset: {{.DatasetSize}} live graphs (epoch {{.Epoch}},
{{.DatasetAdds}} added / {{.DatasetRemoves}} removed,
{{.MaintenanceTests}} maintenance tests)</li>
<li>index maintenance: {{.FilterInserts}} incremental inserts /
{{.FilterRebuilds}} rebuilds; addition log {{.AdditionLogLen}} records
({{.LogCompactions}} compactions)</li>
</ul>
<p>API: GET /api/stats · GET /api/entries · POST /api/query
· POST /api/query/batch (add ?stream=1 for NDJSON streaming)
· GET /api/dataset/{id}?format=dot|ascii|text
· POST /api/dataset/graphs (append a graph to the live dataset)
· DELETE /api/dataset/graphs/{id} (tombstone a graph; cached answers are
maintained exactly)
· POST /api/state/save (persist the cache to the daemon's -state file)</p>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		s.writeError(w, http.StatusNotFound, "no route %q", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, s.statsResponse())
}
