// Package server implements the Dashboard Manager substitute: an HTTP/JSON
// service over a GraphCache instance. The demo paper drives GC through an
// HTML/JavaScript front-end on a cloud deployment; this package exposes
// the same information — query execution with the Query Journey
// quantities, cache contents, operational statistics, and graph
// visualizations — as a JSON API plus a minimal HTML status page.
package server

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/viz"
)

// Server wires a cache and its dataset into an http.Handler.
type Server struct {
	cache   *core.Cache
	dataset []*graph.Graph
	mux     *http.ServeMux
}

// New builds the handler. The dataset slice must be the one the cache's
// method was built over.
func New(cache *core.Cache, dataset []*graph.Graph) *Server {
	s := &Server{cache: cache, dataset: dataset, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/entries", s.handleEntries)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/dataset/", s.handleDataset)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// statsResponse mirrors core.Snapshot with JSON-friendly names.
type statsResponse struct {
	Queries           int64   `json:"queries"`
	ExactHits         int64   `json:"exactHits"`
	SubHitQueries     int64   `json:"subHitQueries"`
	SuperHitQueries   int64   `json:"superHitQueries"`
	SubHits           int64   `json:"subHits"`
	SuperHits         int64   `json:"superHits"`
	TestsExecuted     int64   `json:"testsExecuted"`
	TestsSaved        int64   `json:"testsSaved"`
	TestSpeedup       float64 `json:"testSpeedup"`
	HitDetectionTests int64   `json:"hitDetectionTests"`
	Admissions        int64   `json:"admissions"`
	Evictions         int64   `json:"evictions"`
	CachedEntries     int     `json:"cachedEntries"`
	CacheBytes        int     `json:"cacheBytes"`
	Policy            string  `json:"policy"`
}

func (s *Server) statsResponse() statsResponse {
	snap := s.cache.Stats()
	return statsResponse{
		Queries:           snap.Queries,
		ExactHits:         snap.ExactHits,
		SubHitQueries:     snap.SubHitQueries,
		SuperHitQueries:   snap.SuperHitQueries,
		SubHits:           snap.SubHits,
		SuperHits:         snap.SuperHits,
		TestsExecuted:     snap.TestsExecuted,
		TestsSaved:        snap.TestsSaved,
		TestSpeedup:       snap.TestSpeedup(),
		HitDetectionTests: snap.HitDetectionTests,
		Admissions:        snap.Admissions,
		Evictions:         snap.Evictions,
		CachedEntries:     s.cache.Len(),
		CacheBytes:        s.cache.Bytes(),
		Policy:            s.cache.PolicyName(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.statsResponse())
}

type entryResponse struct {
	ID         int     `json:"id"`
	Type       string  `json:"type"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Answers    int     `json:"answers"`
	Hits       int64   `json:"hits"`
	SavedTests float64 `json:"savedTests"`
	LastUsed   int64   `json:"lastUsed"`
}

func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := s.cache.Entries()
	out := make([]entryResponse, 0, len(entries))
	for _, e := range entries {
		out = append(out, entryResponse{
			ID:         e.ID,
			Type:       e.Type.String(),
			Vertices:   e.Graph.N(),
			Edges:      e.Graph.M(),
			Answers:    e.Answers.Count(),
			Hits:       e.Hits,
			SavedTests: e.SavedTests,
			LastUsed:   e.LastUsed,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the POST /api/query payload: a graph in the text codec
// plus the query type.
type queryRequest struct {
	// Graph holds one graph in the gSpan text format ("t # 0\nv 0 1\n...").
	Graph string `json:"graph"`
	// Type is "subgraph" (default) or "supergraph".
	Type string `json:"type"`
}

type queryResponse struct {
	Answers        []int       `json:"answers"`
	Sure           []int       `json:"sure"`
	Excluded       []int       `json:"excluded"`
	Tests          int         `json:"tests"`
	BaseCandidates int         `json:"baseCandidates"`
	TestSpeedup    float64     `json:"testSpeedup"`
	ExactHit       bool        `json:"exactHit"`
	Hits           []hitDetail `json:"hits"`
}

type hitDetail struct {
	Entry      int    `json:"entry"`
	Kind       string `json:"kind"`
	SavedTests int    `json:"savedTests"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	gs, err := graph.ReadAll(strings.NewReader(req.Graph))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	if len(gs) != 1 {
		writeError(w, http.StatusBadRequest, "want exactly one graph, got %d", len(gs))
		return
	}
	qt := ftv.Subgraph
	switch req.Type {
	case "", "subgraph":
	case "supergraph":
		qt = ftv.Supergraph
	default:
		writeError(w, http.StatusBadRequest, "unknown query type %q", req.Type)
		return
	}
	res, err := s.cache.Execute(gs[0], qt)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	resp := queryResponse{
		Answers:        res.Answers.Indices(),
		Sure:           res.Sure.Indices(),
		Excluded:       res.Excluded.Indices(),
		Tests:          res.Tests,
		BaseCandidates: res.BaseCandidates,
		TestSpeedup:    res.TestSpeedup(),
		ExactHit:       res.ExactHit,
		Hits:           make([]hitDetail, 0, len(res.Hits)),
	}
	for _, h := range res.Hits {
		resp.Hits = append(resp.Hits, hitDetail{Entry: h.EntryID, Kind: h.Kind.String(), SavedTests: h.SavedTests})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/dataset/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= len(s.dataset) {
		writeError(w, http.StatusNotFound, "no dataset graph %q", idStr)
		return
	}
	g := s.dataset[id]
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, viz.ToDOT(g, viz.Options{Name: fmt.Sprintf("g%d", id), VertexNames: viz.AtomNames}))
	case "ascii":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, viz.ASCII(g, viz.Options{VertexNames: viz.AtomNames}))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := graph.WriteGraph(w, g); err != nil {
			writeError(w, http.StatusInternalServerError, "write: %v", err)
		}
	}
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>GraphCache</title></head><body>
<h1>GraphCache</h1>
<p>{{.Queries}} queries · speedup {{printf "%.2f" .TestSpeedup}}× in sub-iso tests
· {{.CachedEntries}} cached queries under {{.Policy}} replacement</p>
<ul>
<li>exact hits: {{.ExactHits}}</li>
<li>sub-case hits: {{.SubHits}} (queries: {{.SubHitQueries}})</li>
<li>super-case hits: {{.SuperHits}} (queries: {{.SuperHitQueries}})</li>
<li>tests executed / saved: {{.TestsExecuted}} / {{.TestsSaved}}</li>
</ul>
<p>API: GET /api/stats · GET /api/entries · POST /api/query · GET /api/dataset/{id}?format=dot|ascii|text</p>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, "no route %q", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, s.statsResponse())
}
