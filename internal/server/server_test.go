package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

func testServer(t *testing.T) (*Server, []*graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	dataset := gen.Molecules(rng, 30, gen.MoleculeConfig{MinV: 10, MaxV: 16, RingFrac: 0.1, MaxDegree: 4, Labels: 6})
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := core.DefaultConfig()
	cfg.Window = 1
	c, err := core.New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(c), dataset
}

func graphText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postQuery(t *testing.T, srv *Server, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON response: %v\n%s", err, rec.Body.String())
	}
	return rec, out
}

func TestQueryEndpoint(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(2))
	pattern := gen.ExtractConnectedSubgraph(rng, dataset[0], 5)

	body, _ := json.Marshal(map[string]string{"graph": graphText(t, pattern), "type": "subgraph"})
	rec, out := postQuery(t, srv, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	answers, ok := out["answers"].([]any)
	if !ok || len(answers) == 0 {
		t.Fatalf("no answers: %v", out)
	}
	// Graph 0 must be among the answers.
	found := false
	for _, a := range answers {
		if a.(float64) == 0 {
			found = true
		}
	}
	if !found {
		t.Error("extraction source missing from answers")
	}
	if out["exactHit"].(bool) {
		t.Error("first query cannot be exact hit")
	}

	// Resubmission via the API exact-hits.
	_, out2 := postQuery(t, srv, string(body))
	if !out2["exactHit"].(bool) {
		t.Error("resubmission should exact-hit")
	}
	if out2["tests"].(float64) != 0 {
		t.Error("exact hit should run zero tests")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"bad graph", `{"graph":"nonsense"}`, http.StatusBadRequest},
		{"no graph", `{"graph":""}`, http.StatusBadRequest},
		{"two graphs", `{"graph":"t # 0\nv 0 1\nt # 1\nv 0 1\n"}`, http.StatusBadRequest},
		{"bad type", `{"graph":"t # 0\nv 0 1\n","type":"sideways"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec, out := postQuery(t, srv, c.body)
			if rec.Code != c.wantStatus {
				t.Errorf("status = %d, want %d (%v)", rec.Code, c.wantStatus, out)
			}
			if _, ok := out["error"]; !ok {
				t.Error("error body missing")
			}
		})
	}
	// Method not allowed.
	req := httptest.NewRequest(http.MethodGet, "/api/query", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/query status = %d", rec.Code)
	}
}

func TestStatsAndEntries(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		pattern := gen.ExtractConnectedSubgraph(rng, dataset[i], 4)
		body, _ := json.Marshal(map[string]string{"graph": graphText(t, pattern)})
		postQuery(t, srv, string(body))
	}

	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 3 {
		t.Errorf("queries = %d", stats.Queries)
	}
	if stats.Policy != "hd" {
		t.Errorf("policy = %q", stats.Policy)
	}
	if stats.CachedEntries == 0 {
		t.Error("no cached entries after window-1 executions")
	}
	// Per-shard window occupancy and turn counts are exposed alongside
	// the aggregate windowTurns.
	if len(stats.ShardWindows) != stats.Shards || len(stats.ShardTurns) != stats.Shards {
		t.Errorf("per-shard stats sized %d/%d, want %d", len(stats.ShardWindows), len(stats.ShardTurns), stats.Shards)
	}
	var turns int64
	for _, n := range stats.ShardTurns {
		turns += n
	}
	if turns != stats.WindowTurns {
		t.Errorf("per-shard turns sum %d != aggregate windowTurns %d", turns, stats.WindowTurns)
	}
	pending := 0
	for _, n := range stats.ShardWindows {
		pending += n
	}
	if pending != stats.WindowPending {
		t.Errorf("per-shard occupancy sum %d != windowPending %d", pending, stats.WindowPending)
	}

	req = httptest.NewRequest(http.MethodGet, "/api/entries", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var entries []entryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != stats.CachedEntries {
		t.Errorf("entries %d != stats %d", len(entries), stats.CachedEntries)
	}
	for _, e := range entries {
		if e.Vertices == 0 || e.Type == "" {
			t.Errorf("bad entry %+v", e)
		}
	}
}

func TestDatasetEndpoint(t *testing.T) {
	srv, dataset := testServer(t)
	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	rec := get("/api/dataset/0")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "t # 0") {
		t.Errorf("text format wrong: %d %q", rec.Code, rec.Body.String()[:20])
	}
	// The text round-trips through the codec.
	back, err := graph.ReadAll(bytes.NewReader(rec.Body.Bytes()))
	if err != nil || len(back) != 1 || back[0].N() != dataset[0].N() {
		t.Errorf("dataset text not parseable: %v", err)
	}

	rec = get("/api/dataset/0?format=dot")
	if !strings.Contains(rec.Body.String(), "graph g0 {") {
		t.Errorf("dot format wrong: %q", rec.Body.String()[:30])
	}
	rec = get("/api/dataset/0?format=ascii")
	if !strings.Contains(rec.Body.String(), "—") {
		t.Error("ascii format wrong")
	}
	if rec := get("/api/dataset/9999"); rec.Code != http.StatusNotFound {
		t.Errorf("missing graph status = %d", rec.Code)
	}
	if rec := get("/api/dataset/abc"); rec.Code != http.StatusNotFound {
		t.Errorf("bad id status = %d", rec.Code)
	}
}

func TestIndexPage(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "GraphCache") {
		t.Error("index page missing title")
	}
	if rec := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/nope", nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}(); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route status = %d", rec.Code)
	}
}

func TestSupergraphQueryViaAPI(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(4))
	super := gen.Augment(rng, dataset[2], 2, 1, gen.NewAIDSLabelSampler(6))
	body, _ := json.Marshal(map[string]string{"graph": graphText(t, super), "type": "supergraph"})
	rec, out := postQuery(t, srv, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	answers := out["answers"].([]any)
	found := false
	for _, a := range answers {
		if a.(float64) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("augmented source graph 2 missing from supergraph answers: %v", answers)
	}
}

func ExampleServer() {
	// Build a tiny deployment and ask it a question end to end.
	rng := rand.New(rand.NewSource(9))
	dataset := gen.Molecules(rng, 10, gen.MoleculeConfig{MinV: 8, MaxV: 10, RingFrac: 0, MaxDegree: 4, Labels: 4})
	method := ftv.NewGGSXMethod(dataset, 2)
	c, _ := core.New(method, core.DefaultConfig())
	srv := httptest.NewServer(New(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer resp.Body.Close()
	var stats struct {
		Queries int64 `json:"queries"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&stats)
	fmt.Println("queries so far:", stats.Queries)
	// Output: queries so far: 0
}
