package server

import (
	"bufio"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// TestStreamBatchClientDisconnect: when an NDJSON batch client drops the
// connection, the request context cancels and the kernel stops
// dispatching the remaining queries instead of executing the whole batch
// for nobody.
func TestStreamBatchClientDisconnect(t *testing.T) {
	star := func(leaves int) *graph.Graph {
		labels := make([]graph.Label, leaves+1)
		labels[0] = 1
		edges := make([][2]int, leaves)
		for i := 1; i <= leaves; i++ {
			labels[i] = graph.Label(1 + i%3)
			edges[i-1] = [2]int{0, i}
		}
		return graph.MustNew(labels, edges)
	}
	// A gated verifier makes query progress observable: each dataset
	// verification consumes one token. NoFilter over a one-graph dataset
	// means exactly one verification per query.
	gate := make(chan struct{}, 64)
	verify := func(pattern, target *graph.Graph) bool {
		<-gate
		return ftv.VF2Verifier(pattern, target)
	}
	dataset := []*graph.Graph{star(9)}
	method := ftv.NewMethod("gated/vf2", dataset, ftv.NewNoFilter(len(dataset)), verify)
	cfg := core.DefaultConfig()
	cfg.Shards = 1
	cache := core.MustNew(method, cfg)
	ts := httptest.NewServer(New(cache))
	defer ts.Close()

	const total = 8
	queries := make([]map[string]string, total)
	for i := range queries {
		var sb strings.Builder
		if err := graph.WriteGraph(&sb, star(i+1)); err != nil {
			t.Fatal(err)
		}
		queries[i] = map[string]string{"graph": sb.String(), "type": "subgraph"}
	}
	body, _ := json.Marshal(map[string]any{"queries": queries, "workers": 1})

	// Pre-fund exactly one verification: the response headers are not
	// flushed until the first outcome is emitted, so the token must be
	// available before the request goes out.
	gate <- struct{}{}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/query/batch?stream=1", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read the first query's NDJSON line.
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil || !strings.Contains(line, `"index"`) {
		t.Fatalf("first stream line: %q, %v", line, err)
	}
	// Drop the connection mid-stream, give cancellation time to
	// propagate, then release everything still blocked.
	resp.Body.Close()
	time.Sleep(300 * time.Millisecond)
	close(gate)

	// The executed-query count must settle strictly below the batch size:
	// without context threading all 8 would run.
	deadline := time.Now().Add(5 * time.Second)
	var last, stable int64
	for time.Now().Before(deadline) {
		q := cache.Stats().Queries
		if q == last {
			stable++
			if stable >= 5 {
				break
			}
		} else {
			last, stable = q, 0
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := cache.Stats().Queries; got >= total {
		t.Fatalf("client disconnected after 1 outcome but %d/%d queries executed", got, total)
	} else if got < 1 {
		t.Fatalf("no query executed at all (%d)", got)
	} else {
		t.Logf("executed %d/%d queries after disconnect", got, total)
	}
}
