package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"graphcache/internal/gen"
)

// TestConcurrentQueryRequests fires many simultaneous /api/query POSTs at
// one handler — the way net/http actually drives it — interleaved with
// /api/stats and /api/entries reads, and checks every response is a
// well-formed 200 whose answers match the uncached method. Run under
// -race this covers the whole handler → kernel path.
func TestConcurrentQueryRequests(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(11))
	type job struct {
		body   string
		source int
	}
	var jobs []job
	for i := 0; i < 40; i++ {
		src := i % len(dataset)
		pattern := gen.ExtractConnectedSubgraph(rng, dataset[src], 5)
		body, err := json.Marshal(map[string]string{"graph": graphText(t, pattern), "type": "subgraph"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{string(body), src})
	}

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(jobs); i += clients {
				req := httptest.NewRequest(http.MethodPost, "/api/query", strings.NewReader(jobs[i].body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("client %d query %d: status %d: %s", c, i, rec.Code, rec.Body.String())
					return
				}
				var out struct {
					Answers []int `json:"answers"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					t.Errorf("client %d query %d: bad JSON: %v", c, i, err)
					return
				}
				// The extraction source must always be among the answers.
				found := false
				for _, a := range out.Answers {
					if a == jobs[i].source {
						found = true
					}
				}
				if !found {
					t.Errorf("client %d query %d: source %d missing from answers %v", c, i, jobs[i].source, out.Answers)
					return
				}
				// Interleave reads the way dashboards do.
				for _, path := range []string{"/api/stats", "/api/entries"} {
					req := httptest.NewRequest(http.MethodGet, path, nil)
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("GET %s: status %d", path, rec.Code)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != int64(len(jobs)) {
		t.Errorf("queries = %d, want %d", stats.Queries, len(jobs))
	}
}

// answersEqual compares two answer-id slices element-wise.
func answersEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryBatchEndpoint exercises /api/query/batch: positional results,
// per-item errors that do not abort the batch, and the workers cap.
func TestQueryBatchEndpoint(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(12))
	good := func(i int) map[string]string {
		pattern := gen.ExtractConnectedSubgraph(rng, dataset[i], 4)
		return map[string]string{"graph": graphText(t, pattern), "type": "subgraph"}
	}
	payload := map[string]any{
		"queries": []map[string]string{
			good(0),
			{"graph": "nonsense"}, // malformed: fails positionally
			good(1),
			{"graph": "t # 0\nv 0 1\n", "type": "sideways"}, // bad type
		},
		"workers": 100, // above the cap; must be clamped, not rejected
	}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/query/batch", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Workers != maxBatchWorkers {
		t.Errorf("workers = %d, want clamped to %d", out.Workers, maxBatchWorkers)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(out.Results))
	}
	for i, want := range []bool{true, false, true, false} {
		item := out.Results[i]
		if item.Index != i {
			t.Errorf("result %d: index %d", i, item.Index)
		}
		if want && (item.Error != "" || item.Query == nil) {
			t.Errorf("result %d: want success, got error %q", i, item.Error)
		}
		if !want && (item.Error == "" || item.Query != nil) {
			t.Errorf("result %d: want error, got %+v", i, item.Query)
		}
	}

	// The streaming variant must deliver the same outcomes as NDJSON —
	// one JSON object per line, every index exactly once, malformed
	// queries errored positionally — under the streaming content type.
	req = httptest.NewRequest(http.MethodPost, "/api/query/batch?stream=1", strings.NewReader(string(body)))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("stream delivered %d lines, want 4:\n%s", len(lines), rec.Body.String())
	}
	streamed := map[int]batchItem{}
	for _, line := range lines {
		var item batchItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, dup := streamed[item.Index]; dup {
			t.Fatalf("index %d streamed twice", item.Index)
		}
		streamed[item.Index] = item
	}
	for i, want := range []bool{true, false, true, false} {
		item, ok := streamed[i]
		if !ok {
			t.Fatalf("index %d missing from the stream", i)
		}
		if want && (item.Error != "" || item.Query == nil) {
			t.Errorf("stream result %d: want success, got error %q", i, item.Error)
		}
		if !want && item.Error == "" {
			t.Errorf("stream result %d: want error", i)
		}
		// The streamed answers must match the buffered endpoint's.
		if want && !answersEqual(item.Query.Answers, out.Results[i].Query.Answers) {
			t.Errorf("stream result %d: answers diverge from buffered batch", i)
		}
	}

	// Degenerate batches. The oversized cases pin the abuse bounds: more
	// than maxBatchQueries items, and a body past maxBodyBytes.
	hugeBatch := `{"queries":[` + strings.Repeat(`{"graph":"t # 0\nv 0 1\n"},`, maxBatchQueries) + `{"graph":"t # 0\nv 0 1\n"}]}`
	hugeBody := `{"queries":[{"graph":"` + strings.Repeat("x", maxBodyBytes) + `"}]}`
	for _, tc := range []struct {
		name, body string
		wantStatus int
	}{
		{"empty", `{"queries":[]}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"too many queries", hugeBatch, http.StatusRequestEntityTooLarge},
		{"oversized body", hugeBody, http.StatusRequestEntityTooLarge},
	} {
		req := httptest.NewRequest(http.MethodPost, "/api/query/batch", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.wantStatus)
		}
	}
	if req := httptest.NewRequest(http.MethodGet, "/api/query/batch", nil); true {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET batch status = %d", rec.Code)
		}
	}
}

// TestConcurrentBatchRequests overlaps several batch submissions, each
// running its own worker pool against the shared cache.
func TestConcurrentBatchRequests(t *testing.T) {
	srv, dataset := testServer(t)
	rng := rand.New(rand.NewSource(13))
	var queries []map[string]string
	for i := 0; i < 10; i++ {
		pattern := gen.ExtractConnectedSubgraph(rng, dataset[i], 4)
		queries = append(queries, map[string]string{"graph": graphText(t, pattern)})
	}
	body, err := json.Marshal(map[string]any{"queries": queries, "workers": 4})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/api/query/batch", strings.NewReader(string(body)))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
			var out batchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Errorf("bad JSON: %v", err)
				return
			}
			for _, item := range out.Results {
				if item.Error != "" || item.Query == nil {
					t.Errorf("item %d failed: %q", item.Index, item.Error)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestWriteJSONSurfacesEncodeErrors pins the writeJSON contract: an
// unencodable value produces a 500 with a JSON error body and a log line,
// not a silent 200.
func TestWriteJSONSurfacesEncodeErrors(t *testing.T) {
	srv, _ := testServer(t)
	var logged []string
	srv.logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, map[string]any{"bad": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body.String())
	}
	if out["error"] == "" {
		t.Error("error body missing")
	}
	if len(logged) == 0 {
		t.Error("encode failure not logged")
	}

	// The happy path still produces clean JSON with the requested status.
	rec = httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusTeapot, map[string]int{"ok": 1})
	if rec.Code != http.StatusTeapot {
		t.Errorf("status = %d, want 418", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("content type %q", got)
	}
}
