package viz

import (
	"strings"
	"testing"

	"graphcache/internal/graph"
)

func TestToDOTUndirected(t *testing.T) {
	g := graph.MustNew([]graph.Label{0, 1}, [][2]int{{0, 1}})
	dot := ToDOT(g, Options{VertexNames: AtomNames})
	for _, want := range []string{"graph g {", `n0 [label="C"]`, `n1 [label="O"]`, "n0 -- n1;"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "->") {
		t.Error("undirected graph rendered with arrows")
	}
}

func TestToDOTDirectedLabelled(t *testing.T) {
	g := graph.NewBuilder(2).Directed().SetLabels([]graph.Label{0, 1}).
		AddLabeledEdge(0, 1, 2).MustBuild()
	dot := ToDOT(g, Options{Name: "circ", EdgeNames: map[graph.Label]string{2: "bus"}})
	for _, want := range []string{"digraph circ {", `n0 -> n1 [label="bus"]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestASCII(t *testing.T) {
	g := graph.MustNew([]graph.Label{0, 1, 2}, [][2]int{{0, 1}})
	out := ASCII(g, Options{VertexNames: AtomNames})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "0[C] — 1[O]") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[2], "∅") {
		t.Errorf("isolated vertex should render ∅: %q", lines[2])
	}
}

func TestASCIIDirectedEdgeLabels(t *testing.T) {
	g := graph.NewBuilder(2).Directed().SetLabels([]graph.Label{0, 0}).
		AddLabeledEdge(0, 1, 9).MustBuild()
	out := ASCII(g, Options{})
	if !strings.Contains(out, "→") || !strings.Contains(out, ":9") {
		t.Errorf("directed labelled rendering wrong:\n%s", out)
	}
}

func TestStrip(t *testing.T) {
	s := Strip(2, 4, 8)
	if !strings.Contains(s, "2/4") {
		t.Errorf("Strip = %q", s)
	}
	if strings.Count(s, "█") != 4 {
		t.Errorf("fill = %d, want 4: %q", strings.Count(s, "█"), s)
	}
	// Clamping.
	if !strings.Contains(Strip(9, 4, 8), "4/4") {
		t.Error("overfull strip should clamp")
	}
	if !strings.Contains(Strip(-1, 4, 8), "0/4") {
		t.Error("negative strip should clamp")
	}
	if !strings.Contains(Strip(1, 0, 4), "1/1") {
		t.Error("zero whole should clamp to 1")
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.MustNew([]graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if ToDOT(g, Options{}) != ToDOT(g, Options{}) {
		t.Error("DOT not deterministic")
	}
	if ASCII(g, Options{}) != ASCII(g, Options{}) {
		t.Error("ASCII not deterministic")
	}
}
