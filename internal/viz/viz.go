// Package viz renders graphs for the demonstrators — the substitute for
// the demo paper's "automatic visualization for graphs" (the HTML/JS
// front-end draws molecules; this package emits Graphviz DOT for external
// rendering and a deterministic ASCII adjacency view for terminals).
package viz

import (
	"fmt"
	"sort"
	"strings"

	"graphcache/internal/graph"
)

// Options controls rendering.
type Options struct {
	// Name is the DOT graph name (default "g").
	Name string
	// VertexNames maps labels to display names (e.g. atom symbols);
	// missing labels render numerically.
	VertexNames map[graph.Label]string
	// EdgeNames maps edge labels to display names.
	EdgeNames map[graph.Label]string
}

// AtomNames is a convenience VertexNames table for the AIDS-like molecule
// alphabet of internal/gen.
var AtomNames = map[graph.Label]string{
	0: "C", 1: "O", 2: "N", 3: "S", 4: "Cl", 5: "F",
	6: "P", 7: "Br", 8: "I", 9: "Si", 10: "B", 11: "Se",
}

func (o Options) vertexName(l graph.Label) string {
	if n, ok := o.VertexNames[l]; ok {
		return n
	}
	return fmt.Sprintf("%d", l)
}

func (o Options) edgeName(l graph.Label) string {
	if n, ok := o.EdgeNames[l]; ok {
		return n
	}
	return fmt.Sprintf("%d", l)
}

// ToDOT renders the graph in Graphviz DOT format, honoring directedness
// and labels. Output is deterministic.
func ToDOT(g *graph.Graph, opts Options) string {
	name := opts.Name
	if name == "" {
		name = "g"
	}
	var b strings.Builder
	kind, arrow := "graph", "--"
	if g.Directed() {
		kind, arrow = "digraph", "->"
	}
	fmt.Fprintf(&b, "%s %s {\n", kind, name)
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, opts.vertexName(g.Label(v)))
	}
	for _, e := range g.Edges() {
		if g.HasEdgeLabels() {
			fmt.Fprintf(&b, "  n%d %s n%d [label=%q];\n", e[0], arrow, e[1], opts.edgeName(g.EdgeLabel(e[0], e[1])))
		} else {
			fmt.Fprintf(&b, "  n%d %s n%d;\n", e[0], arrow, e[1])
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a deterministic adjacency-list view, one vertex per line:
//
//	0[C] — 1[O], 2[C]
//
// Directed graphs use → and list out-neighbors only.
func ASCII(g *graph.Graph, opts Options) string {
	var b strings.Builder
	dash := "—"
	if g.Directed() {
		dash = "→"
	}
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&b, "%d[%s] %s ", v, opts.vertexName(g.Label(v)), dash)
		ns := append([]int32(nil), g.OutNeighbors(v)...)
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		parts := make([]string, 0, len(ns))
		for _, w := range ns {
			p := fmt.Sprintf("%d[%s]", w, opts.vertexName(g.Label(int(w))))
			if g.HasEdgeLabels() {
				p += ":" + opts.edgeName(g.EdgeLabel(v, int(w)))
			}
			parts = append(parts, p)
		}
		if len(parts) == 0 {
			b.WriteString("∅")
		} else {
			b.WriteString(strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Strip draws a proportional bar comparing part against whole — the
// dataset-wide set visualizations of the Query Journey panels.
func Strip(part, whole, width int) string {
	if whole <= 0 {
		whole = 1
	}
	if part < 0 {
		part = 0
	}
	if part > whole {
		part = whole
	}
	fill := part * width / whole
	return fmt.Sprintf("[%s%s] %d/%d",
		strings.Repeat("█", fill), strings.Repeat("·", width-fill), part, whole)
}
