// Package ctxflow enforces request-context propagation, pinning the
// NDJSON-streaming cancellation fix (a handler that dispatched batch
// work with context.Background() kept burning CPU after the client
// hung up) as a build-time invariant:
//
//   - a function that receives a context.Context (or an *http.Request,
//     which carries one) must not manufacture a root context with
//     context.Background() or context.TODO() — that discards the
//     caller's cancellation and deadline;
//   - such a function must also not call a callee F when a sibling
//     FContext accepting a context exists (the ExecuteAllStream /
//     ExecuteAllStreamContext shape): calling the context-less variant
//     silently drops the request context at the API seam;
//   - in packages declaring //gclint:ctxstrict, Background()/TODO()
//     are diagnostics in ANY function — kernel and server code never
//     originates root contexts; only edges (main, tests, public
//     compatibility wrappers with a waiver) may.
package ctxflow

import (
	"go/ast"
	"go/types"

	"graphcache/internal/lint"
)

// Analyzer is the ctxflow pass.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "forbid discarding a received context.Context via " +
		"context.Background/TODO or a context-less sibling callee, and " +
		"forbid root contexts entirely in //gclint:ctxstrict packages",
	Run: run,
}

func run(pass *lint.Pass) error {
	info := pass.Prog.Info
	strict := pass.Ann.CtxStrict[pass.Pkg.Path]
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			carrier := contextCarrier(obj)
			if carrier == "" && !strict {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lint.CalleeObject(info, call)
				if callee == nil {
					return true
				}
				if name, root := rootContextCall(callee); root {
					switch {
					case carrier != "":
						pass.Reportf(call.Pos(), "context.%s discards the %s %s already receives; thread it through", name, carrier, fd.Name.Name)
					case strict:
						pass.Reportf(call.Pos(), "context.%s in //gclint:ctxstrict package %s; accept a caller context instead", name, pass.Pkg.Path)
					}
					return true
				}
				if carrier != "" {
					if sib := contextSibling(callee); sib != "" {
						pass.Reportf(call.Pos(), "call to %s drops the request context; use %s", callee.Name(), sib)
					}
				}
				return true
			})
		}
	}
	return nil
}

// contextCarrier names what hands obj a request context: a
// context.Context parameter, an *http.Request parameter, or "" for
// neither.
func contextCarrier(obj types.Object) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ""
	}
	for i := 0; i < sig.Params().Len(); i++ {
		switch t := sig.Params().At(i).Type(); {
		case isContextType(t):
			return "context.Context"
		case isHTTPRequest(t):
			return "*http.Request"
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequest reports whether t is *net/http.Request.
func isHTTPRequest(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// rootContextCall recognizes context.Background/context.TODO.
func rootContextCall(callee types.Object) (string, bool) {
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// contextSibling returns the name of callee's context-accepting sibling
// — the function or method named callee.Name()+"Context" in the same
// scope — or "" when callee already takes a context or no such sibling
// exists.
func contextSibling(callee types.Object) string {
	fn, ok := callee.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return ""
	}
	target := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return ""
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == target && signatureTakesContext(m.Type().(*types.Signature)) {
				return named.Obj().Name() + "." + target
			}
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	sib, ok := fn.Pkg().Scope().Lookup(target).(*types.Func)
	if !ok {
		return ""
	}
	if sibSig, ok := sib.Type().(*types.Signature); ok && signatureTakesContext(sibSig) {
		return target
	}
	return ""
}

// signatureTakesContext reports whether sig has a context.Context
// parameter.
func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
