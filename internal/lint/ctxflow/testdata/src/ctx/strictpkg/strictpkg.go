// Package strictpkg exercises //gclint:ctxstrict: root contexts are
// banned everywhere, context parameter or not.
package strictpkg

//gclint:ctxstrict

import "context"

// launch has no context parameter, but the package contract says root
// contexts only enter at the edges.
func launch() context.Context {
	return context.Background() // want "context.Background in //gclint:ctxstrict package graphcache/internal/lint/ctxflow/testdata/src/ctx/strictpkg"
}

// waivedLaunch is the documented compatibility edge.
func waivedLaunch() context.Context {
	//gclint:ignore ctxflow -- harness check: waivers must suppress the line below
	return context.Background()
}

// forward stays clean by accepting its context.
func forward(ctx context.Context) error {
	return ctx.Err()
}
