// Package ctx exercises the ctxflow analyzer in a non-strict package:
// only functions that already receive a request context are checked.
package ctx

import (
	"context"
	"net/http"

	_ "graphcache/internal/lint/ctxflow/testdata/src/ctx/strictpkg"
)

type client struct{}

// Run is the context-less compatibility entry point.
func (c *client) Run(q string) error { return nil }

// RunContext is its cancellable sibling.
func (c *client) RunContext(ctx context.Context, q string) error { return ctx.Err() }

// Fetch / FetchContext are the package-level pair.
func Fetch(q string) error                             { return nil }
func FetchContext(ctx context.Context, q string) error { return ctx.Err() }

// forward is the conforming shape: the received context reaches every
// context-accepting callee.
func forward(ctx context.Context, c *client, q string) error {
	if err := c.RunContext(ctx, q); err != nil {
		return err
	}
	return FetchContext(ctx, q)
}

// reroot discards the caller's cancellation.
func reroot(ctx context.Context, c *client, q string) error {
	return c.RunContext(context.Background(), q) // want "context.Background discards the context.Context reroot already receives"
}

// todoRoot is the same bug via TODO.
func todoRoot(ctx context.Context) context.Context {
	return context.TODO() // want "context.TODO discards the context.Context todoRoot already receives"
}

// handler receives the context through *http.Request.
func handler(w http.ResponseWriter, r *http.Request) {
	_ = context.Background() // want "context.Background discards the \\*http.Request handler already receives"
}

// dropsViaSibling calls the context-less variant of a method that has
// a Context sibling.
func dropsViaSibling(ctx context.Context, c *client, q string) error {
	return c.Run(q) // want "call to Run drops the request context; use client.RunContext"
}

// dropsViaFunc is the package-level version of the same shape.
func dropsViaFunc(ctx context.Context, q string) error {
	return Fetch(q) // want "call to Fetch drops the request context; use FetchContext"
}

// noCtx receives no context: manufacturing a root here is fine outside
// //gclint:ctxstrict packages.
func noCtx(c *client, q string) error {
	return c.RunContext(context.Background(), q)
}
