package ctxflow_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/ctxflow"
	"graphcache/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{ctxflow.Analyzer}, "ctx")
}
