// Package grammar holds deliberately malformed //gclint: annotations;
// the collector must reject every one of them.
package grammar

import "sync"

//gclint:hierarchy alpha beta

type s struct {
	// a is declared and ranked.
	//gclint:lock alpha
	a sync.Mutex
	// g is named but neither ranked nor leaf.
	//gclint:lock gamma
	g sync.Mutex
}

// f carries a typo'd directive.
//
//gclint:bogus
func f() {}

// h references a lock nobody declared.
//
//gclint:acquires delta
func h() {}

// bare carries a reasonless waiver.
func bare() {
	//gclint:ignore lockorder
	_ = 0
}

//gclint:requires alpha

// stray above: the requires floats free of any declaration.
func stray() {}

// cell is a declared snapshot cell the valid directives below refer to.
type cell struct {
	//gclint:snapshot real
	p int
}

// nameless snapshot: the directive needs a cell name.
type nameless struct {
	//gclint:snapshot
	q int
}

// loadsGhost references a cell nobody declared.
//
//gclint:loads ghost
func loadsGhost() {}

// loadsBadParam names a parameter the function does not have.
//
//gclint:loads real missing
func loadsBadParam(c *cell) {}

// pinsGhost pins a cell nobody declared.
//
//gclint:pins phantom
func pinsGhost() {}

// viewGhost claims to view a cell nobody declared.
//
//gclint:view specter
type viewGhost struct{}

//gclint:ctxstrict with args

// argful above: ctxstrict takes no arguments.
func argful() {}
