// Package grammar holds deliberately malformed //gclint: annotations;
// the collector must reject every one of them.
package grammar

import "sync"

//gclint:hierarchy alpha beta

type s struct {
	// a is declared and ranked.
	//gclint:lock alpha
	a sync.Mutex
	// g is named but neither ranked nor leaf.
	//gclint:lock gamma
	g sync.Mutex
}

// f carries a typo'd directive.
//
//gclint:bogus
func f() {}

// h references a lock nobody declared.
//
//gclint:acquires delta
func h() {}

// bare carries a reasonless waiver.
func bare() {
	//gclint:ignore lockorder
	_ = 0
}

//gclint:requires alpha

// stray above: the requires floats free of any declaration.
func stray() {}
