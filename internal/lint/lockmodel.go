package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOp distinguishes acquisitions from releases.
type LockOp int

const (
	AcquireOp LockOp = iota
	ReleaseOp
)

// LockEvent is one mutex operation found in source.
type LockEvent struct {
	Pos token.Pos
	// Lock is the annotated lock operated on, nil when the mutex carries
	// no //gclint:lock annotation (still relevant inside nolocks/leaf
	// contexts).
	Lock *LockInfo
	Op   LockOp
	// Read marks RLock/RUnlock.
	Read bool
}

var lockMethods = map[string]struct {
	op   LockOp
	read bool
}{
	"Lock":    {AcquireOp, false},
	"RLock":   {AcquireOp, true},
	"Unlock":  {ReleaseOp, false},
	"RUnlock": {ReleaseOp, true},
}

// ClassifyLockCall reports whether call is a mutex operation — a
// Lock/RLock/Unlock/RUnlock method call on an annotated lock
// declaration or on a sync.Mutex/sync.RWMutex value.
func ClassifyLockCall(info *types.Info, ann *Annotations, call *ast.CallExpr) (LockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockEvent{}, false
	}
	m, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return LockEvent{}, false
	}
	base := lockTargetObject(info, sel.X)
	if base != nil {
		if li, ok := ann.Locks[base]; ok {
			return LockEvent{Pos: call.Pos(), Lock: li, Op: m.op, Read: m.read}, true
		}
	}
	if isSyncMutexType(info.TypeOf(sel.X)) {
		return LockEvent{Pos: call.Pos(), Op: m.op, Read: m.read}, true
	}
	return LockEvent{}, false
}

// lockTargetObject resolves the declaration object of a lock expression
// like c.dsMu, sh.mu, c.shards[i].mu or a package-level var.
func lockTargetObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.StarExpr:
		return lockTargetObject(info, e.X)
	case *ast.IndexExpr:
		return lockTargetObject(info, e.X)
	}
	return nil
}

// isSyncMutexType reports whether t (or *t) is sync.Mutex or
// sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// CalleeObject resolves call's callee to its declaration object
// (function or method), or nil for indirect calls and builtins.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[f]; obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		if obj := info.Uses[f.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	}
	return nil
}
