package cowpublish_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/cowpublish"
	"graphcache/internal/lint/linttest"
)

func TestCowPublish(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{cowpublish.Analyzer}, "d")
}
