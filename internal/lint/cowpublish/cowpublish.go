// Package cowpublish enforces the kernel's copy-on-write publication
// rule: a value published through an atomic.Pointer is immutable from
// the moment of publication. Readers Load() and must never write
// through the result; mutators clone, modify the clone, and republish.
//
// The check is a source-ordered taint walk per function. Tainted
// (published) values are: results of Load() on a sync/atomic.Pointer,
// results of //gclint:cowview functions, parameters and selections of
// //gclint:cow-annotated types, and anything derived from those by
// selection, indexing, dereference, or slicing. Ordinary function calls
// launder taint (clone-then-republish constructors come back clean), as
// do composite literals (fresh, unpublished values). Violations are
// writes through a tainted base, //gclint:mutates method calls on a
// tainted receiver, copy into a tainted destination, and append whose
// first operand is tainted — unless it is a full (3-index) slice
// expression, which caps capacity and forces append to reallocate
// rather than scribble into the published array's spare room.
package cowpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphcache/internal/lint"
)

// Analyzer is the cowpublish pass.
var Analyzer = &lint.Analyzer{
	Name: "cowpublish",
	Doc: "forbid writes through values published via atomic.Pointer or " +
		"annotated //gclint:cow — published state is immutable; " +
		"clone-then-republish instead",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, info: pass.Prog.Info, ann: pass.Ann, tainted: map[*types.Var]bool{}}
			obj := pass.Prog.Info.Defs[fd.Name]
			// A //gclint:mutates method's whole purpose is to write its
			// receiver; it is only ever called on unpublished clones
			// (that is what call sites are checked for), so its receiver
			// is not seeded as published.
			c.seedParams(fd, obj != nil && pass.Ann.Mutates[obj])
			c.walk(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass    *lint.Pass
	info    *types.Info
	ann     *lint.Annotations
	tainted map[*types.Var]bool
}

// seedParams taints parameters (and, except in mutates methods, the
// receiver) whose type is //gclint:cow: a cow value handed to a
// function is presumed already published.
func (c *checker) seedParams(fd *ast.FuncDecl, mutates bool) {
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := c.info.Defs[name].(*types.Var); ok && c.isCowType(v.Type()) {
					c.tainted[v] = true
				}
			}
		}
	}
	if !mutates {
		seed(fd.Recv)
	}
	seed(fd.Type.Params)
}

// walk visits the body in source order, updating taint at assignments
// and checking writes, mutates calls, append and copy.
func (c *checker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.handleAssign(n)
		case *ast.IncDecStmt:
			c.checkWrite(n.X, n.Pos())
		case *ast.RangeStmt:
			if c.taintedExpr(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok {
					if v, ok := c.info.Defs[id].(*types.Var); ok {
						c.tainted[v] = true
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
						for i, name := range vs.Names {
							if v, ok := c.info.Defs[name].(*types.Var); ok {
								c.tainted[v] = c.taintedExpr(vs.Values[i])
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

func (c *checker) handleAssign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			t := c.taintedExpr(n.Rhs[i])
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				// Rebinding a variable: it now refers to whatever the
				// RHS produced (a reassignment from a clone untaints).
				if v := c.identVar(id); v != nil {
					c.tainted[v] = t
				}
				continue
			}
			c.checkWrite(lhs, lhs.Pos())
		}
		return
	}
	// Multi-value form: RHS is one call; calls launder, so every plain
	// LHS variable comes back clean. Non-ident LHS is still a write.
	for _, lhs := range n.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v := c.identVar(id); v != nil {
				c.tainted[v] = false
			}
			continue
		}
		c.checkWrite(lhs, lhs.Pos())
	}
}

func (c *checker) identVar(id *ast.Ident) *types.Var {
	if v, ok := c.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// checkWrite reports a write whose target is reached through a
// published value: st.field = x, st.slice[i] = x, *p = x.
func (c *checker) checkWrite(lhs ast.Expr, pos token.Pos) {
	var base ast.Expr
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		base = e.X
	case *ast.IndexExpr:
		base = e.X
	case *ast.StarExpr:
		base = e.X
	default:
		return
	}
	if c.taintedExpr(base) {
		c.pass.Reportf(pos, "write through published copy-on-write value; clone then republish instead")
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins: append and copy can scribble into published backing
	// arrays.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 && c.taintedExpr(call.Args[0]) && !isFullSliceExpr(call.Args[0]) {
					c.pass.Reportf(call.Pos(), "append to published copy-on-write slice may write into its spare capacity; use a full slice expression s[:len:len] or clone first")
				}
			case "copy":
				if len(call.Args) > 0 && c.taintedExpr(call.Args[0]) {
					c.pass.Reportf(call.Pos(), "copy into published copy-on-write slice mutates shared state")
				}
			}
			return
		}
	}
	// //gclint:mutates methods on a published receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := lint.CalleeObject(c.info, call); obj != nil && c.ann.Mutates[obj] && c.taintedExpr(sel.X) {
			c.pass.Reportf(call.Pos(), "calling //gclint:mutates method %s on published copy-on-write value; clone then republish instead", obj.Name())
		}
	}
}

// taintedExpr reports whether e denotes (part of) a published value.
func (c *checker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := c.identVar(e)
		return v != nil && c.tainted[v]
	case *ast.SelectorExpr:
		if c.isCowType(c.info.TypeOf(e)) {
			return true
		}
		return c.taintedExpr(e.X)
	case *ast.IndexExpr:
		return c.taintedExpr(e.X)
	case *ast.SliceExpr:
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return c.taintedExpr(e.X)
	case *ast.TypeAssertExpr:
		return c.taintedExpr(e.X)
	case *ast.CallExpr:
		if c.isAtomicPointerLoad(e) {
			return true
		}
		if obj := lint.CalleeObject(c.info, e); obj != nil && c.ann.CowView[obj] {
			return true
		}
		return false
	}
	return false
}

// isAtomicPointerLoad matches x.Load() where x is a
// sync/atomic.Pointer[T].
func (c *checker) isAtomicPointerLoad(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := c.info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// isCowType reports whether t is (a pointer to) a //gclint:cow type.
func (c *checker) isCowType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return c.ann.Cow[named.Obj()]
}

// isFullSliceExpr matches the deliberate s[:len(s):len(s)] idiom: a
// 3-index slice expression caps capacity so a later append must
// reallocate instead of writing into the published array.
func isFullSliceExpr(e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	return ok && se.Slice3 && se.Max != nil
}
