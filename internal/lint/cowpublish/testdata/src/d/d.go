// Package d exercises the cowpublish analyzer: published snapshots may
// be read freely, but every mutation path — field writes, element
// writes, mutates-methods, append into spare capacity, copy — must go
// through clone-then-republish.
package d

import "sync/atomic"

// state is the COW-published snapshot.
//
//gclint:cow
type state struct {
	vals  []int
	count int
}

type holder struct {
	p atomic.Pointer[state]
}

// bump mutates its receiver; callers may only use it on unpublished
// clones.
//
//gclint:mutates
func (s *state) bump() {
	s.count++
}

// clone launders: the copy is fresh and mutable.
func (s *state) clone() *state {
	return &state{vals: append([]int(nil), s.vals...), count: s.count}
}

// view returns published state.
//
//gclint:cowview
func (h *holder) view() *state {
	return h.p.Load()
}

// read is a conforming lock-free reader.
func (h *holder) read() int {
	st := h.p.Load()
	return st.count
}

// update is the conforming clone-then-republish path; the full slice
// expression caps capacity so append reallocates instead of writing
// into the published array.
func (h *holder) update() {
	old := h.p.Load()
	next := &state{
		vals:  append(old.vals[:len(old.vals):len(old.vals)], 1),
		count: old.count + 1,
	}
	h.p.Store(next)
}

// viaClone mutates a laundered copy.
func (h *holder) viaClone() {
	st := h.p.Load()
	cp := st.clone()
	cp.count++
	cp.bump()
	h.p.Store(cp)
}

// badWrite writes a field of a published snapshot.
func (h *holder) badWrite() {
	st := h.p.Load()
	st.count++ // want "write through published copy-on-write value"
}

// badElem writes an element of a published slice.
func (h *holder) badElem() {
	st := h.p.Load()
	st.vals[0] = 9 // want "write through published copy-on-write value"
}

// badMutates calls a mutates-method on a published snapshot.
func (h *holder) badMutates() {
	st := h.p.Load()
	st.bump() // want "calling //gclint:mutates method bump on published copy-on-write value"
}

// badAppend may scribble into the published array's spare capacity.
func (h *holder) badAppend() {
	st := h.p.Load()
	grown := append(st.vals, 1) // want "append to published copy-on-write slice"
	_ = grown
}

// badCopy overwrites published elements in place.
func (h *holder) badCopy(src []int) {
	st := h.p.Load()
	copy(st.vals, src) // want "copy into published copy-on-write slice"
}

// badParam shows that cow-typed parameters are presumed published.
func badParam(st *state) {
	st.count = 1 // want "write through published copy-on-write value"
}

// badView mutates through a cowview accessor.
func (h *holder) badView() {
	h.view().count = 2 // want "write through published copy-on-write value"
}

// waived documents an accepted in-place mutation with a reason.
func (h *holder) waived() {
	st := h.p.Load()
	//gclint:ignore cowpublish -- harness check: waivers must suppress the line below
	st.count = 3
}
