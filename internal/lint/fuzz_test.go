package lint

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzParseAnnotation drives the grammar's tokenization point
// (parseDirectiveText) and the two structured-payload parsers behind it
// with arbitrary comment text. Beyond no-panic, it checks the parsers'
// structural invariants — the properties CollectAnnotations relies on
// without re-checking:
//
//   - only text carrying the literal //gclint: prefix parses at all, and
//     the recovered name/args never contain the prefix or leading or
//     trailing space;
//   - a successful ignore parse always yields at least one analyzer name
//     and a non-empty reason, with no separator residue in the names;
//   - a successful loads parse always yields a non-empty cell and
//     space-free fields.
func FuzzParseAnnotation(f *testing.F) {
	seeds := []string{
		"//gclint:hierarchy serialMu dsMu windowMu policyMu shard",
		"//gclint:lock policyMu",
		"//gclint:leaf",
		"//gclint:acquires windowMu shard",
		"//gclint:ignore lockorder -- reason with -- inner dashes",
		"//gclint:ignore lockorder,noalloc -- two analyzers",
		"//gclint:ignore -- missing names",
		"//gclint:ignore lockorder --",
		"//gclint:snapshot answers",
		"//gclint:loads answers",
		"//gclint:loads answers cands",
		"//gclint:loads a b c",
		"//gclint:pins dataset",
		"//gclint:view dataset",
		"//gclint:deterministic",
		"//gclint:ctxstrict",
		"//gclint:",
		"//gclint:  ",
		"// not a directive",
		"//gclint:unknown \t weird args",
		"//gclint:ignore a—b -- unicode dash is not the separator",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		name, args, ok := parseDirectiveText(text)
		if !ok {
			if strings.HasPrefix(text, "//gclint:") {
				t.Fatalf("prefix-carrying text %q did not parse", text)
			}
			if name != "" || args != "" {
				t.Fatalf("failed parse leaked values %q/%q", name, args)
			}
			return
		}
		if !strings.HasPrefix(text, "//gclint:") {
			t.Fatalf("parsed text without the directive prefix: %q", text)
		}
		if strings.Contains(name, " ") {
			t.Fatalf("directive name %q contains a space", name)
		}
		if args != strings.TrimSpace(args) {
			t.Fatalf("args %q not trimmed", args)
		}

		switch name {
		case "ignore":
			names, reason, err := parseIgnoreArgs(args)
			if err != nil {
				return
			}
			if len(names) == 0 {
				t.Fatalf("ignore parse of %q accepted zero analyzer names", args)
			}
			for _, n := range names {
				if n == "" || strings.ContainsAny(n, ", ") {
					t.Fatalf("ignore parse of %q produced bad name %q", args, n)
				}
			}
			if strings.TrimSpace(reason) == "" {
				t.Fatalf("ignore parse of %q accepted an empty reason", args)
			}
		case "loads":
			cell, param, err := parseLoadsArgs(args)
			if err != nil {
				return
			}
			if cell == "" {
				t.Fatalf("loads parse of %q accepted an empty cell", args)
			}
			for _, fld := range []string{cell, param} {
				if strings.IndexFunc(fld, unicode.IsSpace) >= 0 {
					t.Fatalf("loads parse of %q produced space-carrying field %q", args, fld)
				}
			}
		}
	})
}
