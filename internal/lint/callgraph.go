package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// The cross-package call-graph fact store. PR 7's analyzers walked call
// sites per function, source-ordered within one package; the snapshot-
// coherence and determinism checks need whole-program reachability (a
// //gclint:deterministic ranking function in internal/core calling a
// helper in internal/graph must drag the helper into the checked set).
// The graph is built once per Program and shared by every analyzer that
// asks, alongside the generic Fact cache for derived data such as
// determinism's transitive closure.

// CallEdge is one resolved call site: Caller's body invokes Callee at
// Pos. Indirect calls (function values, interface methods) and builtins
// do not resolve and carry no edge.
type CallEdge struct {
	Callee types.Object
	Pos    token.Pos
}

// CallGraph maps every function declared in the program to its resolved
// call sites, in source order. Calls inside function literals are
// attributed to the enclosing declaration: the literal runs with the
// declaration's obligations as far as the whole-program analyzers are
// concerned.
type CallGraph struct {
	// Callees lists the resolved out-edges per declared function.
	Callees map[types.Object][]CallEdge
	// Decls maps each declared function to its syntax, so analyzers can
	// scan the bodies of functions the closure reached.
	Decls map[types.Object]*ast.FuncDecl
	// DeclPkg maps each declared function to its Package, so a
	// whole-program consumer can report in the right file context.
	DeclPkg map[types.Object]*Package
}

// CallGraph returns the program's call graph, building it on first use.
// The build walks every declaration exactly once; all analyzers share
// the one result.
func (prog *Program) CallGraph() *CallGraph {
	prog.cgOnce.Do(func() {
		cg := &CallGraph{
			Callees: map[types.Object][]CallEdge{},
			Decls:   map[types.Object]*ast.FuncDecl{},
			DeclPkg: map[types.Object]*Package{},
		}
		for _, pkg := range prog.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj := prog.Info.Defs[fd.Name]
					if obj == nil {
						continue
					}
					cg.Decls[obj] = fd
					cg.DeclPkg[obj] = pkg
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if callee := CalleeObject(prog.Info, call); callee != nil {
							cg.Callees[obj] = append(cg.Callees[obj], CallEdge{Callee: callee, Pos: call.Pos()})
						}
						return true
					})
				}
			}
		}
		prog.cg = cg
	})
	return prog.cg
}

// Fact returns the cached value under key, computing it with build on
// first use. Analyzers use it to share whole-program derived data (the
// determinism closure, view-type tables) across their per-package
// passes instead of recomputing per Pass.
func (prog *Program) Fact(key string, build func() any) any {
	prog.factMu.Lock()
	defer prog.factMu.Unlock()
	if prog.facts == nil {
		prog.facts = map[string]any{}
	}
	if v, ok := prog.facts[key]; ok {
		return v
	}
	v := build()
	prog.facts[key] = v
	return v
}

// factState carries the lazily built whole-program caches embedded in
// Program.
type factState struct {
	cgOnce sync.Once
	cg     *CallGraph

	factMu sync.Mutex
	facts  map[string]any
}
