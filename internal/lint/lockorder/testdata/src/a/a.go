// Package a exercises the lockorder analyzer: hierarchy violations,
// acquires/requires call-site checks, nolocks stages, early-release
// branches, goroutine isolation, and waivers.
package a

import "sync"

//gclint:hierarchy outer middle inner

type server struct {
	// outerMu guards configuration.
	//gclint:lock outer
	outerMu sync.Mutex
	// midMu guards the working set.
	//gclint:lock middle
	midMu sync.RWMutex
	// innerMu guards per-entry state.
	//gclint:lock inner
	innerMu sync.Mutex
}

// good acquires in descending order; skipping levels is allowed.
func (s *server) good() {
	s.outerMu.Lock()
	defer s.outerMu.Unlock()
	s.innerMu.Lock()
	s.innerMu.Unlock()
}

// goodRead takes the middle lock in read mode under outer.
func (s *server) goodRead() {
	s.outerMu.Lock()
	defer s.outerMu.Unlock()
	s.midMu.RLock()
	defer s.midMu.RUnlock()
}

// bad nests in reverse.
func (s *server) bad() {
	s.innerMu.Lock()
	defer s.innerMu.Unlock()
	s.outerMu.Lock() // want "acquiring outer while inner is held"
	s.outerMu.Unlock()
}

// reentrant re-acquires a held non-reentrant lock.
func (s *server) reentrant() {
	s.midMu.Lock()
	s.midMu.Lock() // want "acquiring middle while middle is held"
	s.midMu.Unlock()
	s.midMu.Unlock()
}

// touchMiddle briefly takes the middle lock.
//
//gclint:acquires middle
func (s *server) touchMiddle() {
	s.midMu.Lock()
	defer s.midMu.Unlock()
}

// needsOuter must run under the outer lock.
//
//gclint:requires outer
func (s *server) needsOuter() {}

// viaHelpers is the conforming use of both helpers.
func (s *server) viaHelpers() {
	s.outerMu.Lock()
	defer s.outerMu.Unlock()
	s.touchMiddle()
	s.needsOuter()
}

// helperViolations trips both call-site checks.
func (s *server) helperViolations() {
	s.midMu.Lock()
	defer s.midMu.Unlock()
	s.touchMiddle() // want "call to touchMiddle acquires middle while middle is held"
	s.needsOuter()  // want "call to needsOuter requires outer, which is not held here"
}

// stage is a no-lock stage: nothing may be acquired, directly or via
// helpers.
//
//gclint:nolocks
func (s *server) stage() {
	s.innerMu.Lock() // want "lock acquisition in //gclint:nolocks function"
	s.innerMu.Unlock()
	s.touchMiddle() // want "call to touchMiddle acquires middle inside //gclint:nolocks function"
}

// lockPair acquires the middle lock and leaves it held for the caller.
//
//gclint:holds middle
func (s *server) lockPair() {
	s.midMu.Lock()
}

// unlockPair releases the middle lock lockPair left held.
//
//gclint:releases middle
func (s *server) unlockPair() {
	s.midMu.Unlock()
}

// viaPair holds middle across the pair; inner nests correctly under it,
// and after the release outer is acquirable again.
func (s *server) viaPair() {
	s.lockPair()
	s.innerMu.Lock()
	s.innerMu.Unlock()
	s.unlockPair()
	s.outerMu.Lock()
	s.outerMu.Unlock()
}

// deferPair releases via defer: middle stays held to function end.
func (s *server) deferPair() {
	s.lockPair()
	defer s.unlockPair()
	s.needsMiddle()
}

// needsMiddle must run under the middle lock.
//
//gclint:requires middle
func (s *server) needsMiddle() {}

// badPair calls the holds helper in reverse hierarchy order, and the
// held lock persists past the call: outer is still blocked after it.
func (s *server) badPair() {
	s.innerMu.Lock()
	s.lockPair()     // want "call to lockPair acquires middle while inner is held"
	s.outerMu.Lock() // want "acquiring outer while middle is held" "acquiring outer while inner is held"
	s.outerMu.Unlock()
	s.unlockPair()
	s.innerMu.Unlock()
}

// earlyOut releases and returns inside a branch; the fall-through path
// still holds the lock, so the requires call is fine.
func (s *server) earlyOut(c bool) {
	s.outerMu.Lock()
	if c {
		s.outerMu.Unlock()
		return
	}
	s.needsOuter()
	s.outerMu.Unlock()
}

// spawn starts a goroutine, which holds none of the spawner's locks.
func (s *server) spawn() {
	s.innerMu.Lock()
	defer s.innerMu.Unlock()
	go func() {
		s.outerMu.Lock()
		s.outerMu.Unlock()
	}()
}

// waived shows a written-reason waiver suppressing a real finding.
func (s *server) waived() {
	s.innerMu.Lock()
	defer s.innerMu.Unlock()
	//gclint:ignore lockorder -- harness check: waivers must suppress the line below
	s.outerMu.Lock()
	s.outerMu.Unlock()
}
