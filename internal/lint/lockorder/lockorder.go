// Package lockorder enforces the declared lock hierarchy: locks may
// only be acquired in strictly descending //gclint:hierarchy position,
// //gclint:requires obligations must be satisfied at call sites, and
// //gclint:nolocks stages may not acquire anything.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"graphcache/internal/lint"
)

// Analyzer is the lockorder pass.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "check every lock acquisition (direct Lock/RLock or via a " +
		"//gclint:acquires call) against the declared hierarchy, enforce " +
		"//gclint:requires at call sites, and forbid acquisition inside " +
		"//gclint:nolocks stages",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Prog.Info.Defs[fd.Name]
			w := &walker{pass: pass, info: pass.Prog.Info, ann: pass.Ann}
			held := map[string]int{}
			for _, name := range pass.Ann.Requires[obj] {
				held[name]++
			}
			w.nolocks = pass.Ann.NoLocks[obj]
			w.walkStmt(fd.Body, held, false)
		}
	}
	return nil
}

// walker carries one function's analysis state. The walk is textual
// and source-ordered: no loop-carried or branch-merged lock state, which
// matches how the kernel writes its critical sections (acquire, work,
// release in straight lines; deferred unlocks hold to function end).
type walker struct {
	pass    *lint.Pass
	info    *types.Info
	ann     *lint.Annotations
	nolocks bool
}

// walkStmt threads the held-set through one statement. inLit suppresses
// //gclint:requires checks: function literals are invoked in their
// callee's lock context, not their definition site's.
func (w *walker) walkStmt(s ast.Stmt, held map[string]int, inLit bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st, held, inLit)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held, inLit)
		}
		w.walkExpr(s.Cond, held, inLit)
		// A branch that cannot fall through (early unlock-and-return)
		// must not leak its lock-state changes into the code after the
		// if; walk it on a copy.
		if terminates(s.Body) {
			w.walkStmt(s.Body, clone(held), inLit)
		} else {
			w.walkStmt(s.Body, held, inLit)
		}
		if s.Else != nil {
			w.walkStmt(s.Else, held, inLit)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held, inLit)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, held, inLit)
		}
		if s.Post != nil {
			w.walkStmt(s.Post, held, inLit)
		}
		w.walkStmt(s.Body, held, inLit)
	case *ast.RangeStmt:
		w.walkExpr(s.X, held, inLit)
		w.walkStmt(s.Body, held, inLit)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held, inLit)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, held, inLit)
		}
		w.walkClauses(s.Body, held, inLit)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held, inLit)
		}
		w.walkClauses(s.Body, held, inLit)
	case *ast.SelectStmt:
		w.walkClauses(s.Body, held, inLit)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held, inLit)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held until function end from
		// the walk's perspective: skip the release, still walk the
		// receiver chain and arguments (evaluated at defer time). The
		// same goes for a deferred call to a pure //gclint:releases
		// function (defer c.unlockAll()).
		if ev, ok := lint.ClassifyLockCall(w.info, w.ann, s.Call); ok && ev.Op == lint.ReleaseOp {
			w.walkCallParts(s.Call, held, inLit)
			return
		}
		if callee := lint.CalleeObject(w.info, s.Call); callee != nil &&
			len(w.ann.Releases[callee]) > 0 && len(w.ann.Acquires[callee]) == 0 && len(w.ann.Holds[callee]) == 0 {
			w.walkCallParts(s.Call, held, inLit)
			return
		}
		w.handleCall(s.Call, held, inLit)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's held locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && len(s.Call.Args) == 0 {
			w.walkStmt(lit.Body, map[string]int{}, true)
			return
		}
		w.handleCallWith(s.Call, held, map[string]int{}, inLit)
	case nil:
	default:
		// Simple statements (assign, return, expr, send, decl, incdec):
		// no nested statements outside function literals, which walkExpr
		// intercepts.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				w.handleCall(n, held, inLit)
				return false
			case *ast.FuncLit:
				w.walkStmt(n.Body, map[string]int{}, true)
				return false
			}
			return true
		})
	}
}

// walkClauses walks each case/comm clause on a copy of the held-set:
// clauses are alternatives, and none of the kernel's switches leak lock
// state past the switch.
func (w *walker) walkClauses(body *ast.BlockStmt, held map[string]int, inLit bool) {
	for _, cl := range body.List {
		h := clone(held)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.walkExpr(e, h, inLit)
			}
			for _, st := range cl.Body {
				w.walkStmt(st, h, inLit)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				w.walkStmt(cl.Comm, h, inLit)
			}
			for _, st := range cl.Body {
				w.walkStmt(st, h, inLit)
			}
		}
	}
}

func (w *walker) walkExpr(e ast.Expr, held map[string]int, inLit bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.handleCall(n, held, inLit)
			return false
		case *ast.FuncLit:
			w.walkStmt(n.Body, map[string]int{}, true)
			return false
		}
		return true
	})
}

// walkCallParts visits a call's receiver chain and arguments without
// interpreting the call itself.
func (w *walker) walkCallParts(call *ast.CallExpr, held map[string]int, inLit bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X, held, inLit)
	} else if _, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok {
		w.walkExpr(call.Fun, held, inLit)
	}
	for _, arg := range call.Args {
		w.walkExpr(arg, held, inLit)
	}
}

func (w *walker) handleCall(call *ast.CallExpr, held map[string]int, inLit bool) {
	w.handleCallWith(call, held, held, inLit)
}

// handleCallWith interprets one call. calleeHeld is the held-set the
// callee runs under — identical to held except for `go` calls, whose
// callee starts with nothing held.
func (w *walker) handleCallWith(call *ast.CallExpr, held, calleeHeld map[string]int, inLit bool) {
	w.walkCallParts(call, held, inLit)

	if ev, ok := lint.ClassifyLockCall(w.info, w.ann, call); ok {
		switch ev.Op {
		case lint.AcquireOp:
			if w.nolocks {
				w.pass.Reportf(call.Pos(), "lock acquisition in //gclint:nolocks function")
			}
			if ev.Lock == nil {
				return
			}
			w.checkAcquire(call.Pos(), ev.Lock.Name, ev.Lock.Leaf, held, "acquiring")
			held[ev.Lock.Name]++
		case lint.ReleaseOp:
			if ev.Lock != nil && held[ev.Lock.Name] > 0 {
				held[ev.Lock.Name]--
			}
		}
		return
	}

	callee := lint.CalleeObject(w.info, call)
	if callee == nil {
		return
	}
	for _, name := range w.ann.Acquires[callee] {
		if w.nolocks {
			w.pass.Reportf(call.Pos(), "call to %s acquires %s inside //gclint:nolocks function", callee.Name(), name)
			continue
		}
		leaf := false
		if li := w.ann.LockByName(name); li != nil {
			leaf = li.Leaf
		}
		w.checkAcquire(call.Pos(), name, leaf, calleeHeld, "call to "+callee.Name()+" acquires")
	}
	// A //gclint:holds callee checks like an acquisition but leaves the
	// lock in the caller's held-set; //gclint:releases removes it.
	for _, name := range w.ann.Holds[callee] {
		if w.nolocks {
			w.pass.Reportf(call.Pos(), "call to %s acquires %s inside //gclint:nolocks function", callee.Name(), name)
			continue
		}
		leaf := false
		if li := w.ann.LockByName(name); li != nil {
			leaf = li.Leaf
		}
		w.checkAcquire(call.Pos(), name, leaf, calleeHeld, "call to "+callee.Name()+" acquires")
		calleeHeld[name]++
	}
	for _, name := range w.ann.Releases[callee] {
		if calleeHeld[name] > 0 {
			calleeHeld[name]--
		}
	}
	if !inLit {
		for _, name := range w.ann.Requires[callee] {
			if calleeHeld[name] == 0 {
				w.pass.Reportf(call.Pos(), "call to %s requires %s, which is not held here", callee.Name(), name)
			}
		}
	}
}

// checkAcquire reports hierarchy violations: a ranked lock may only be
// taken while every held ranked lock sits strictly outward (lower
// hierarchy index) of it. Leaf locks are acquirable under anything;
// what happens UNDER them is the leaflock analyzer's concern.
func (w *walker) checkAcquire(pos token.Pos, name string, leaf bool, held map[string]int, how string) {
	if leaf {
		return
	}
	rank, ranked := w.ann.HierarchyRank(name)
	if !ranked {
		return
	}
	for heldName, n := range held {
		if n == 0 {
			continue
		}
		heldRank, ok := w.ann.HierarchyRank(heldName)
		if !ok {
			continue
		}
		if heldRank >= rank {
			w.pass.Reportf(pos, "%s %s while %s is held: hierarchy is %s",
				how, name, heldName, strings.Join(w.ann.Hierarchy, " -> "))
		}
	}
}

func clone(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// terminates reports whether a block's last statement prevents falling
// through (return, branch, or a panic call).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
