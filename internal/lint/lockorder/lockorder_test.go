package lockorder_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/linttest"
	"graphcache/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{lockorder.Analyzer}, "a")
}
