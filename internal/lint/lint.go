// Package lint is gclint's analysis framework: a self-contained,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic, a driver and an analysistest-style
// harness) sized to this repository's needs. The sandbox ships no module
// dependencies, so rather than vendoring x/tools the framework builds on
// go/ast + go/types directly and loads type information through the go
// toolchain's own export data (see load.go).
//
// The analyzers it hosts enforce the kernel's hand-documented invariants
// at build time, driven by a small comment-annotation grammar:
//
//	//gclint:hierarchy L1 L2 ... Ln
//	    Declares the lock hierarchy, outermost first. At most one
//	    declaration per program. Locks may only be acquired in strictly
//	    descending hierarchy position (skipping levels is fine; reverse
//	    nesting is a build error).
//	//gclint:lock <name>
//	    On a mutex-like struct field or package-level var: names the lock
//	    for the hierarchy and for acquires/requires annotations. Every
//	    named lock must either appear in the hierarchy or be marked leaf.
//	//gclint:leaf
//	    On a //gclint:lock declaration: the lock may be acquired under any
//	    other lock, but NOTHING may be acquired while it is held
//	    (enforced by the leaflock analyzer).
//	//gclint:acquires <lock> [<lock>...]
//	    On a function: it internally acquires (and releases) the named
//	    locks. Call sites are checked against the hierarchy exactly like
//	    direct acquisitions.
//	//gclint:requires <lock> [<lock>...]
//	    On a function: callers must already hold the named locks. Seeds
//	    the function's own held-set; call sites missing the lock are
//	    reported (except inside function literals passed as callbacks,
//	    whose true lock context is the callee's).
//	//gclint:holds <lock> [<lock>...]
//	    On a function: it acquires the named locks and LEAVES them held
//	    on return (lockAll). Call sites are checked like acquisitions and
//	    the locks join the caller's held-set.
//	//gclint:releases <lock> [<lock>...]
//	    On a function: it releases the named locks the caller holds
//	    (unlockAll) — the //gclint:holds counterpart. A deferred call
//	    keeps the locks held to function end, like a deferred Unlock.
//	//gclint:nolocks
//	    On a function: a no-lock stage (filtering, iso testing,
//	    verification). Any lock acquisition — direct, or via a call to an
//	    acquires-annotated function — is a build error.
//	//gclint:noalloc
//	    On a function: hot-path allocation budget is zero; allocation-
//	    introducing constructs (make/new, composite literals, growing
//	    append, string concatenation, capturing closures, interface
//	    boxing) are build errors. See the noalloc analyzer.
//	//gclint:cow
//	    On a type: values are copy-on-write published state — immutable
//	    after publication. Writes through them are build errors
//	    (cowpublish analyzer).
//	//gclint:cowview
//	    On a function: its result is a view of COW-published state and is
//	    checked like a //gclint:cow value.
//	//gclint:mutates
//	    On a method: it mutates its receiver. Calling it on a
//	    COW-published value is a build error.
//	//gclint:ignore <analyzer>[,<analyzer>...] -- <reason>
//	    Waives findings of the named analyzers on the comment's line and
//	    the line below it. The reason is mandatory; a bare ignore is
//	    itself a build error.
//
// Analyzers see the whole program at once: the driver type-checks every
// module-local package into one shared FileSet + types.Info, collects
// annotations globally, and then runs each analyzer per package. That
// keeps cross-package facts (a leaf lock declared in internal/ftv,
// consulted from internal/core) trivially available without an
// export-fact protocol.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	// Name identifies the analyzer in reports and in //gclint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run analyzes one package (Pass.Pkg) and reports findings through
	// pass.Reportf. A non-nil error aborts the whole lint run.
	Run func(pass *Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the whole loaded program; Pkg is the package under
	// analysis (one of Prog.Packages).
	Prog *Program
	Pkg  *Package
	// Ann holds the program-wide annotation facts.
	Ann *Annotations

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Program is a fully type-checked set of module-local packages sharing
// one FileSet and one merged types.Info, in dependency order. It also
// owns the lazily built whole-program caches (call graph, analyzer
// facts) so one load serves every analyzer — see callgraph.go.
type Program struct {
	Fset     *token.FileSet
	Info     *types.Info
	Packages []*Package

	factState
}

// Package is one parsed, type-checked module-local package.
type Package struct {
	Path  string
	Types *types.Package
	Files []*ast.File
}

// Position resolves pos against the program's FileSet.
func (prog *Program) Position(pos token.Pos) token.Position {
	return prog.Fset.Position(pos)
}

// AnalyzerTiming is one analyzer's wall-clock cost over the whole
// program — the per-analyzer budget `gclint` prints so CI regressions
// in lint cost are visible, not just lint findings.
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// Run collects annotations, runs every analyzer over every package, and
// returns the surviving findings (waivers applied) sorted by position.
// Annotation-grammar errors (unknown directives, reasonless ignores,
// undeclared lock names) are returned as diagnostics of the pseudo
// analyzer "gclint" and are never waivable.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, _, err := RunTimed(prog, analyzers)
	return diags, err
}

// RunTimed is Run, additionally returning the program-wide annotation
// fact base (waiver inventory included) and per-analyzer wall times.
// The program is loaded and annotated exactly once; every analyzer
// works off the shared Program, its types.Info, and its lazily built
// call graph.
func RunTimed(prog *Program, analyzers []*Analyzer) ([]Diagnostic, *Annotations, []AnalyzerTiming, error) {
	ann, annDiags := CollectAnnotations(prog)
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, Ann: ann, report: collect}
			if err := a.Run(pass); err != nil {
				return nil, nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		timings = append(timings, AnalyzerTiming{Name: a.Name, Duration: time.Since(start)})
	}
	kept := annDiags
	for _, d := range diags {
		if !ann.ignored(prog.Fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := prog.Position(kept[i].Pos), prog.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, ann, timings, nil
}
