package snapshotonce_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/linttest"
	"graphcache/internal/lint/snapshotonce"
)

func TestSnapshotOnce(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{snapshotonce.Analyzer}, "s")
}
