// Package snapshotonce enforces the single-snapshot read discipline on
// //gclint:snapshot cells: within an annotated operation scope (a
// function carrying //gclint:pins or //gclint:loads), each cell
// instance may be loaded at most once, never inside a loop unless the
// instance varies with the loop variable, and never at all when the
// function already holds a caller-pinned view parameter
// (//gclint:view). Re-deriving published state mid-operation is exactly
// the torn-snapshot bug class the dsMu read-side discipline exists to
// prevent: two loads of the same atomic.Pointer can observe different
// epochs, and an answer set reconciled against one epoch must never be
// interpreted under another.
//
// Three rules, in order of application per load event:
//
//  1. view: the enclosing function has a parameter whose type is
//     annotated //gclint:view <cell> and the event loads <cell> — the
//     caller already pinned a snapshot; loading fresh forks the world.
//     This rule applies program-wide, annotated scope or not.
//  2. loop: the event sits inside a for/range body (or a function
//     literal, which may run repeatedly — sort comparators are the
//     canonical offender) and its instance expression does not depend
//     on an enclosing loop variable. Loading `sh.summaries` while
//     ranging over shards with loop variable sh is one load per
//     distinct cell and is exempt; reloading a fixed instance each
//     iteration is not.
//  3. twice: two non-loop events with the same (cell, instance) in one
//     scope.
//
// A load event is either a direct `x.cell.Load()` on an annotated
// field/var, or a call to a //gclint:loads-annotated function; the
// instance is the owner expression (x above), the argument bound to
// the fact's named parameter, or the method receiver.
package snapshotonce

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphcache/internal/lint"
)

// Analyzer is the snapshotonce pass.
var Analyzer = &lint.Analyzer{
	Name: "snapshotonce",
	Doc: "forbid loading a //gclint:snapshot cell twice, in a loop, or " +
		"past a caller-pinned //gclint:view parameter within one " +
		"annotated operation scope",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Prog.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			c := &checker{
				pass:       pass,
				info:       pass.Prog.Info,
				ann:        pass.Ann,
				scoped:     len(pass.Ann.Pins[obj]) > 0 || len(pass.Ann.Loads[obj]) > 0,
				viewParams: viewParams(pass.Ann, obj),
				seen:       map[string]bool{},
				loopVars:   map[types.Object]bool{},
			}
			if !c.scoped && len(c.viewParams) == 0 {
				continue
			}
			c.walk(fd.Body)
		}
	}
	return nil
}

// viewParams maps snapshot cell name -> parameter name for every
// parameter of obj whose (possibly pointer-wrapped) named type carries
// //gclint:view <cell>.
func viewParams(ann *lint.Annotations, obj types.Object) map[string]string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out map[string]string
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		t := p.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			continue
		}
		if cell, ok := ann.Views[named.Obj()]; ok {
			if out == nil {
				out = map[string]string{}
			}
			out[cell] = p.Name()
		}
	}
	return out
}

type checker struct {
	pass *lint.Pass
	info *types.Info
	ann  *lint.Annotations

	// scoped marks a //gclint:pins or //gclint:loads function, whose
	// whole body is one operation scope.
	scoped bool
	// viewParams maps cell name -> view parameter name (rule 1).
	viewParams map[string]string
	// seen records (cell, instance) keys already loaded outside loops.
	seen map[string]bool
	// loopVars holds the variables bound by enclosing for/range
	// statements; loopDepth > 0 means the walk is inside a loop body or
	// a function literal.
	loopVars  map[types.Object]bool
	loopDepth int
}

// walk traverses n in source order, tracking loop context.
func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				c.walk(n.Init)
			}
			vars := defineVars(c.info, n.Init)
			c.enterLoop(vars, func() {
				if n.Cond != nil {
					c.walk(n.Cond)
				}
				if n.Post != nil {
					c.walk(n.Post)
				}
				c.walk(n.Body)
			})
			return false
		case *ast.RangeStmt:
			c.walk(n.X)
			var vars []types.Object
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := c.info.Defs[id]; obj != nil {
						vars = append(vars, obj)
					} else if obj := c.info.Uses[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
			c.enterLoop(vars, func() { c.walk(n.Body) })
			return false
		case *ast.FuncLit:
			// A literal's body may run any number of times (callbacks,
			// comparators), so it counts as loop context. Its own
			// parameters deliberately do NOT exempt instances: a sort
			// comparator indexing by its i/j parameters reloads cells
			// mid-sort, which is the bug.
			c.enterLoop(nil, func() { c.walk(n.Body) })
			return false
		case *ast.CallExpr:
			c.checkCall(n)
			return true
		}
		return true
	})
}

// enterLoop runs body one loop level deeper with vars bound.
func (c *checker) enterLoop(vars []types.Object, body func()) {
	for _, v := range vars {
		c.loopVars[v] = true
	}
	c.loopDepth++
	body()
	c.loopDepth--
	for _, v := range vars {
		delete(c.loopVars, v)
	}
}

// defineVars extracts the variables defined by a for-init statement.
func defineVars(info *types.Info, init ast.Stmt) []types.Object {
	as, ok := init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return nil
	}
	var out []types.Object
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkCall recognizes the two load-event shapes and applies the rules.
func (c *checker) checkCall(call *ast.CallExpr) {
	// Shape 1: direct x.cell.Load() on an annotated field or var.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" && len(call.Args) == 0 {
		switch inner := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			if si := c.ann.SnapshotCell(c.info.Uses[inner.Sel]); si != nil {
				c.event(si.Name, inner.X, call.Pos())
				return
			}
		case *ast.Ident:
			if si := c.ann.SnapshotCell(c.info.Uses[inner]); si != nil {
				c.event(si.Name, nil, call.Pos())
				return
			}
		}
	}

	// Shape 2: a call to a //gclint:loads-annotated function.
	callee := lint.CalleeObject(c.info, call)
	if callee == nil {
		return
	}
	for _, fact := range c.ann.Loads[callee] {
		c.event(fact.Cell, instanceExpr(call, callee, fact), call.Pos())
	}
}

// instanceExpr resolves the expression that identifies WHICH cell
// instance a //gclint:loads call touches: the argument bound to the
// fact's named parameter, or the method receiver, or nil (a global /
// unattributable instance).
func instanceExpr(call *ast.CallExpr, callee types.Object, fact lint.LoadFact) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if fact.Param != "" {
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == fact.Param && i < len(call.Args) {
				return call.Args[i]
			}
		}
		return nil
	}
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
	}
	return nil
}

// event applies the three rules to one load of cell at pos with
// instance inst (nil for package-global cells).
func (c *checker) event(cell string, inst ast.Expr, pos token.Pos) {
	if param, ok := c.viewParams[cell]; ok {
		c.pass.Reportf(pos, "fresh load of snapshot cell %q despite caller-pinned view parameter %q; use the view", cell, param)
		return
	}
	if !c.scoped {
		return
	}
	text := ""
	if inst != nil {
		text = types.ExprString(inst)
	}
	if c.loopDepth > 0 {
		if !c.referencesLoopVar(inst) {
			c.pass.Reportf(pos, "snapshot cell %q (instance %s) loaded inside a loop; pin one view before the loop", cell, instanceLabel(text))
		}
		return
	}
	key := cell + "\x00" + text
	if c.seen[key] {
		c.pass.Reportf(pos, "snapshot cell %q (instance %s) loaded more than once in one operation scope; pin a single view", cell, instanceLabel(text))
		return
	}
	c.seen[key] = true
}

func instanceLabel(text string) string {
	if text == "" {
		return "<global>"
	}
	return text
}

// referencesLoopVar reports whether inst mentions any variable bound by
// an enclosing loop — such instances denote a different cell per
// iteration and are exempt from the loop rule.
func (c *checker) referencesLoopVar(inst ast.Expr) bool {
	if inst == nil {
		return false
	}
	found := false
	ast.Inspect(inst, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.info.Uses[id]; obj != nil && c.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
