// Package s exercises the snapshotonce analyzer: //gclint:snapshot
// cells may be loaded at most once per annotated operation scope, never
// inside loops (unless the instance varies with the loop variable), and
// never when the caller already passed a pinned //gclint:view.
package s

import (
	"sort"
	"sync/atomic"
)

// data is a published dataset snapshot.
type data struct {
	epoch uint64
	vals  []int
}

// view is the pinned read-side handle over one dataset snapshot.
//
//gclint:view dataset
type view struct {
	d *data
}

func (v view) epoch() uint64 { return v.d.epoch }

// ans is one entry's compressed answer state.
type ans struct {
	epoch uint64
	ids   []uint32
}

type entry struct {
	// p publishes the entry's reconciled answers.
	//
	//gclint:snapshot answers
	p atomic.Pointer[ans]
}

// answers pins the entry's current answer state.
//
//gclint:loads answers
func (e *entry) answers() *ans {
	return e.p.Load()
}

type shard struct {
	// sum publishes the shard's summary vector.
	//
	//gclint:snapshot summaries
	sum atomic.Pointer[data]
}

type method struct {
	// state publishes the dataset.
	//
	//gclint:snapshot dataset
	state atomic.Pointer[data]

	shards  []*shard
	entries []*entry
}

// View pins one dataset snapshot.
//
//gclint:loads dataset
func (m *method) View() view {
	return view{d: m.state.Load()}
}

// reconciled reads one entry's answers under the pinned view.
//
//gclint:loads answers e
func reconciled(e *entry, v view) *ans {
	st := e.answers()
	if st.epoch == v.epoch() {
		return st
	}
	return &ans{epoch: v.epoch(), ids: st.ids}
}

// global is a package-level published cell.
//
//gclint:snapshot config
var global atomic.Pointer[data]

// execute is the conforming operation shape: one View, per-entry and
// per-shard loads keyed by the loop variable.
//
//gclint:pins dataset
func (m *method) execute() int {
	v := m.View()
	total := 0
	for _, e := range m.entries {
		total += len(reconciled(e, v).ids)
	}
	for _, sh := range m.shards {
		total += len(sh.sum.Load().vals)
	}
	return total
}

// doubleView loads the dataset cell twice in one scope.
//
//gclint:pins dataset
func (m *method) doubleView() uint64 {
	a := m.View()
	b := m.View() // want "snapshot cell \"dataset\" \\(instance m\\) loaded more than once"
	return a.epoch() + b.epoch()
}

// doubleDirect mixes an annotated accessor with a direct Load of the
// same instance.
//
//gclint:pins dataset
func (m *method) doubleDirect() uint64 {
	v := m.View()
	d := m.state.Load() // want "snapshot cell \"dataset\" \\(instance m\\) loaded more than once"
	return v.epoch() + d.epoch
}

// loopLoad re-derives the dataset once per iteration.
//
//gclint:pins dataset
func (m *method) loopLoad() uint64 {
	var last uint64
	for i := 0; i < 3; i++ {
		last = m.state.Load().epoch // want "snapshot cell \"dataset\" \\(instance m\\) loaded inside a loop"
	}
	return last
}

// comparatorLoad reloads entry answers from inside a sort comparator —
// the comparator runs O(n log n) times and each call may observe a
// different published state.
//
//gclint:pins dataset
func (m *method) comparatorLoad() {
	es := append([]*entry(nil), m.entries...)
	sort.Slice(es, func(i, j int) bool {
		return len(es[i].answers().ids) < len(es[j].answers().ids) // want "snapshot cell \"answers\" \\(instance es\\[i\\]\\) loaded inside a loop" "snapshot cell \"answers\" \\(instance es\\[j\\]\\) loaded inside a loop"
	})
}

// globalTwice loads a package-level cell twice.
//
//gclint:pins config
func globalTwice() int {
	a := global.Load()
	b := global.Load() // want "snapshot cell \"config\" \\(instance <global>\\) loaded more than once"
	return len(a.vals) + len(b.vals)
}

// freshUnderView loads the dataset even though the caller pinned a
// view; the rule applies with or without a pins annotation.
func (m *method) freshUnderView(v view) bool {
	return m.state.Load().epoch == v.epoch() // want "fresh load of snapshot cell \"dataset\" despite caller-pinned view parameter \"v\""
}

// freshViaAccessor drops to the accessor under a pinned view.
func (m *method) freshViaAccessor(v view) bool {
	return m.View().epoch() == v.epoch() // want "fresh load of snapshot cell \"dataset\" despite caller-pinned view parameter \"v\""
}

// unscoped is not an operation scope: double loads are the caller's
// concern unless annotated.
func (m *method) unscoped() uint64 {
	return m.state.Load().epoch + m.state.Load().epoch
}

// waived documents an accepted re-load with a reason.
//
//gclint:pins dataset
func (m *method) waived() uint64 {
	v := m.View()
	//gclint:ignore snapshotonce -- harness check: waivers must suppress the line below
	d := m.state.Load()
	return v.epoch() + d.epoch
}
