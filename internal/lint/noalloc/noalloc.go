// Package noalloc gives the runtime alloc budgets (testing.AllocsPerRun
// gates from PR 6) a compile-time twin: functions annotated
// //gclint:noalloc are rejected if they contain allocation-introducing
// constructs, and the diagnostic names the offending line instead of a
// failed count.
//
// Flagged constructs: make/new, slice and map composite literals,
// address-taken composite literals, append that does not reuse a
// caller-owned buffer (first operand rooted at a parameter or the
// receiver), non-constant string concatenation, string<->[]byte/[]rune
// conversions, function literals that capture locals, `go` statements,
// and interface boxing at call arguments or conversions. Plain struct
// literals stay on the stack and are allowed. The check is
// intraprocedural by design — callees keep their own annotations, and
// the runtime budgets still backstop whatever escapes the grammar.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphcache/internal/lint"
)

// Analyzer is the noalloc pass.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc: "reject allocation-introducing constructs inside functions " +
		"annotated //gclint:noalloc",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Prog.Info.Defs[fd.Name]
			if obj == nil || !pass.Ann.NoAlloc[obj] {
				continue
			}
			c := &checker{pass: pass, info: pass.Prog.Info, owned: map[types.Object]bool{}}
			c.seedOwned(fd)
			c.check(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *lint.Pass
	info *types.Info
	// owned holds objects whose backing storage the caller provides:
	// parameters and the receiver. Appending into them is the sanctioned
	// amortized-scratch pattern; appending anywhere else allocates.
	owned map[types.Object]bool
}

func (c *checker) seedOwned(fd *ast.FuncDecl) {
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
}

func (c *checker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in //gclint:noalloc function")
		case *ast.FuncLit:
			if c.captures(n) {
				c.pass.Reportf(n.Pos(), "capturing function literal allocates in //gclint:noalloc function")
			}
			return false
		case *ast.CompositeLit:
			c.checkCompositeLit(n, false)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.checkCompositeLit(lit, true)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.info.Types[n].Value == nil && isString(c.info.TypeOf(n)) {
				c.pass.Reportf(n.Pos(), "non-constant string concatenation allocates in //gclint:noalloc function")
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkCompositeLit flags literals whose storage is heap-prone: slice
// and map literals always allocate; an address-taken struct literal
// usually escapes. A plain struct (or array) value literal is
// stack-allocated and allowed.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit, addressTaken bool) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates in //gclint:noalloc function")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in //gclint:noalloc function")
	default:
		if addressTaken {
			c.pass.Reportf(lit.Pos(), "address-taken composite literal allocates in //gclint:noalloc function")
		}
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Conversions: string concatenation's cousins.
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := c.info.TypeOf(call.Fun), c.info.TypeOf(call.Args[0])
		if convAllocates(to, from) {
			c.pass.Reportf(call.Pos(), "conversion between string and byte/rune slice allocates in //gclint:noalloc function")
		}
		if isInterface(to) && from != nil && !isInterface(from) && !isUntypedNil(c.info, call.Args[0]) {
			c.pass.Reportf(call.Pos(), "conversion to interface boxes the value in //gclint:noalloc function")
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates in //gclint:noalloc function")
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in //gclint:noalloc function")
			case "append":
				if len(call.Args) > 0 && !c.callerOwned(call.Args[0]) {
					c.pass.Reportf(call.Pos(), "append to a non-caller-owned slice allocates in //gclint:noalloc function")
				}
			}
			return
		}
	}

	// Interface boxing at call arguments: passing a concrete value where
	// the parameter is an interface materializes it on the heap (absent
	// inlining luck the budgets must not rely on).
	sig, _ := c.info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := c.info.TypeOf(arg)
		if isInterface(pt) && at != nil && !isInterface(at) && !isUntypedNil(c.info, arg) {
			c.pass.Reportf(arg.Pos(), "passing %s as interface argument boxes it in //gclint:noalloc function", at)
		}
	}
}

// callerOwned reports whether expr's storage is rooted at a parameter
// or the receiver (possibly through selectors, indexing, or
// dereference): s, s.scratch, w.bufs[i], (*p).spill.
func (c *checker) callerOwned(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		return obj != nil && c.owned[obj]
	case *ast.SelectorExpr:
		return c.callerOwned(e.X)
	case *ast.IndexExpr:
		return c.callerOwned(e.X)
	case *ast.StarExpr:
		return c.callerOwned(e.X)
	case *ast.SliceExpr:
		return c.callerOwned(e.X)
	}
	return false
}

// captures reports whether a function literal references a variable
// declared outside it (forcing a heap-allocated closure). Package-level
// variables don't count — referencing them needs no environment.
func (c *checker) captures(lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// convAllocates reports string <-> []byte / []rune conversions.
func convAllocates(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
