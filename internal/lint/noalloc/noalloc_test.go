package noalloc_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/linttest"
	"graphcache/internal/lint/noalloc"
)

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{noalloc.Analyzer}, "c")
}
