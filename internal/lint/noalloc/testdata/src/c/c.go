// Package c exercises the noalloc analyzer: conforming hot-path shapes
// (caller-owned scratch, constant folding, stack struct values) and
// every flagged allocation-introducing construct.
package c

type buf struct {
	scratch []int
}

// sink is an interface-taking helper for the boxing cases.
func sink(v any) { _ = v }

// sum is a conforming zero-alloc reduction.
//
//gclint:noalloc
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// fill reuses the caller-owned scratch buffer: the sanctioned amortized
// append pattern.
//
//gclint:noalloc
func fill(b *buf, xs []int) {
	b.scratch = b.scratch[:0]
	for _, x := range xs {
		b.scratch = append(b.scratch, x)
	}
}

// constFold concatenates constants only, which folds at compile time.
//
//gclint:noalloc
func constFold() string {
	return "graph" + "cache"
}

// stackStruct builds a plain struct value, which stays on the stack.
//
//gclint:noalloc
func stackStruct() buf {
	return buf{}
}

// badBuiltins trips make/new/literal/append findings.
//
//gclint:noalloc
func badBuiltins(n int) []int {
	out := make([]int, 0, n) // want "make allocates"
	m := map[int]bool{}      // want "map literal allocates"
	_ = m
	s := []int{1, 2, 3} // want "slice literal allocates"
	p := new(buf)       // want "new allocates"
	_ = p
	var local []int
	local = append(local, n) // want "append to a non-caller-owned slice allocates"
	_ = local
	return append(out, s...) // want "append to a non-caller-owned slice allocates"
}

// badConcat concatenates non-constant strings.
//
//gclint:noalloc
func badConcat(a, b string) string {
	return a + b // want "non-constant string concatenation allocates"
}

// badBox passes a concrete value to an interface parameter.
//
//gclint:noalloc
func badBox(x int) {
	sink(x) // want "passing int as interface argument boxes it"
}

// badClosure returns a closure over a local.
//
//gclint:noalloc
func badClosure(n int) func() int {
	return func() int { return n } // want "capturing function literal allocates"
}

// badEscape takes the address of a composite literal.
//
//gclint:noalloc
func badEscape() *buf {
	return &buf{} // want "address-taken composite literal allocates"
}

// badConv converts between string and byte slice.
//
//gclint:noalloc
func badConv(s string) []byte {
	return []byte(s) // want "conversion between string and byte/rune slice allocates"
}

// badSpawn starts a goroutine.
//
//gclint:noalloc
func badSpawn() {
	go sink(nil) // want "go statement allocates"
}

// containerSet mimics the adaptive bitset's mode-tagged containers: one
// struct, several payloads, a tag selecting the active one.
type containerSet struct {
	mode   uint8
	sparse []uint32
	words  []uint64
}

// cursor is the stack-struct iteration state the read paths thread
// through per-container dispatch.
type cursor struct {
	s   *containerSet
	pos int
}

// containerDispatch is the conforming container-dispatch shape from the
// adaptive bitset's read paths: switch on the mode tag, walk the active
// payload through a stack cursor value — no arm allocates.
//
//gclint:noalloc
func containerDispatch(s *containerSet) int {
	cur := cursor{s: s}
	n := 0
	switch s.mode {
	case 0:
		for _, v := range s.sparse {
			n += int(v)
			cur.pos++
		}
	default:
		for _, w := range s.words {
			for ; w != 0; w &= w - 1 {
				n++
			}
			cur.pos++
		}
	}
	return n
}

// badContainerUpgrade materializes a new container inside a dispatch arm:
// migration belongs on the mutation path, never under a noalloc read.
//
//gclint:noalloc
func badContainerUpgrade(s *containerSet) {
	if s.mode == 0 {
		s.words = make([]uint64, 4) // want "make allocates"
		s.mode = 1
	}
}

// waived documents an accepted allocation with a reason.
//
//gclint:noalloc
func waived() *buf {
	//gclint:ignore noalloc -- harness check: waivers must suppress the line below
	return &buf{}
}
