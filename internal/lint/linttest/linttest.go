// Package linttest is gclint's analysistest counterpart: it loads a
// package from an analyzer's testdata/src tree, runs a set of analyzers
// over it, and matches the findings against `// want "regex"` comments
// in the testdata source. Every finding must be wanted and every want
// must find — extra or missing diagnostics fail the test.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"graphcache/internal/lint"
)

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> relative to dir (the analyzer package's
// directory), runs the analyzers, and compares diagnostics against the
// `// want` comments. Annotation-grammar errors surface as diagnostics
// of the pseudo-analyzer "gclint" and can be wanted like any other.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, pkg string) {
	t.Helper()
	prog, err := lint.LoadModule(dir, "./"+filepath.ToSlash(filepath.Join("testdata", "src", pkg)))
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", pkg, err)
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, prog)
	for _, d := range diags {
		pos := prog.Position(d.Pos)
		if !match(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `want %q`", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// match marks and reports the first unmatched expectation at file:line
// whose pattern matches msg.
func match(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "p1" "p2"` comments across the program.
func collectWants(t *testing.T, prog *lint.Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Position(c.Pos())
					pats, err := parsePatterns(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					for _, p := range pats {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// parsePatterns splits a want payload into its quoted regexps.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted pattern, found %q", s)
		}
		// strconv.QuotedPrefix finds the extent of the leading quoted
		// string, escapes included.
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, err
		}
		p, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = s[len(q):]
	}
}
