// Package b exercises the leaflock analyzer: a leaf lock's critical
// section must be terminal — no direct acquisitions and no calls into
// lock-acquiring or lock-requiring helpers while it is held.
package b

import "sync"

//gclint:hierarchy big

type thing struct {
	// bigMu is the ranked lock.
	//gclint:lock big
	bigMu sync.Mutex
	// mu is the leaf: acquirable under anything, terminal once held.
	//gclint:lock tiny
	//gclint:leaf
	mu sync.Mutex
}

// lockBig briefly takes the ranked lock.
//
//gclint:acquires big
func (t *thing) lockBig() {
	t.bigMu.Lock()
	t.bigMu.Unlock()
}

// good takes the leaf under the ranked lock and keeps the leaf section
// terminal.
func (t *thing) good() {
	t.bigMu.Lock()
	defer t.bigMu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

// badDirect acquires a ranked lock inside the leaf section.
func (t *thing) badDirect() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bigMu.Lock() // want "lock acquisition while leaf lock tiny is held"
	t.bigMu.Unlock()
}

// badCall reaches a lock acquisition through a helper.
func (t *thing) badCall() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lockBig() // want "call to lockBig acquires big while leaf lock tiny is held"
}

// underLeaf inherits the held leaf from its contract.
//
//gclint:requires tiny
func (t *thing) underLeaf() {
	t.lockBig() // want "call to lockBig acquires big while leaf lock tiny is held"
}

// sequenced releases the leaf before touching the ranked lock.
func (t *thing) sequenced() {
	t.mu.Lock()
	t.mu.Unlock()
	t.lockBig()
}

// waived demonstrates a reasoned waiver.
func (t *thing) waived() {
	t.mu.Lock()
	defer t.mu.Unlock()
	//gclint:ignore leaflock -- harness check: waivers must suppress the line below
	t.bigMu.Lock()
	t.bigMu.Unlock()
}
