// Package leaflock enforces the leaf-lock rule: while a //gclint:leaf
// lock is held, nothing else may be acquired — not directly, and not by
// calling into a //gclint:acquires or //gclint:requires function. Leaf
// locks sit below the whole hierarchy precisely because their critical
// sections are guaranteed terminal.
package leaflock

import (
	"go/ast"
	"go/types"

	"graphcache/internal/lint"
)

// Analyzer is the leaflock pass.
var Analyzer = &lint.Analyzer{
	Name: "leaflock",
	Doc: "forbid acquiring any lock, or calling anything annotated as " +
		"acquiring one, while a //gclint:leaf lock is held",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Prog.Info.Defs[fd.Name]
			w := &walker{pass: pass, info: pass.Prog.Info, ann: pass.Ann}
			held := map[string]bool{}
			for _, name := range pass.Ann.Requires[obj] {
				if li := pass.Ann.LockByName(name); li != nil && li.Leaf {
					held[name] = true
				}
			}
			w.walk(fd.Body, held)
		}
	}
	return nil
}

type walker struct {
	pass *lint.Pass
	info *types.Info
	ann  *lint.Annotations
}

// walk threads the set of held leaf locks through the statement tree in
// source order. The same textual model as lockorder applies: deferred
// releases hold to function end, goroutine and function-literal bodies
// start with nothing held.
func (w *walker) walk(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := lint.ClassifyLockCall(w.info, w.ann, n.Call); ok && ev.Op == lint.ReleaseOp {
				for _, arg := range n.Call.Args {
					w.walk(arg, held)
				}
				return false
			}
			return true
		case *ast.FuncLit:
			w.walk(n.Body, map[string]bool{})
			return false
		case *ast.CallExpr:
			w.handleCall(n, held)
			return false
		}
		return true
	})
}

func (w *walker) handleCall(call *ast.CallExpr, held map[string]bool) {
	// Visit the receiver chain and arguments first (nested calls,
	// callback literals).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walk(sel.X, held)
	}
	for _, arg := range call.Args {
		w.walk(arg, held)
	}

	anyLeafHeld := func() string {
		for name, h := range held {
			if h {
				return name
			}
		}
		return ""
	}

	if ev, ok := lint.ClassifyLockCall(w.info, w.ann, call); ok {
		switch ev.Op {
		case lint.AcquireOp:
			if leaf := anyLeafHeld(); leaf != "" {
				w.pass.Reportf(call.Pos(), "lock acquisition while leaf lock %s is held", leaf)
			}
			if ev.Lock != nil && ev.Lock.Leaf {
				held[ev.Lock.Name] = true
			}
		case lint.ReleaseOp:
			if ev.Lock != nil && ev.Lock.Leaf {
				delete(held, ev.Lock.Name)
			}
		}
		return
	}

	callee := lint.CalleeObject(w.info, call)
	if callee == nil {
		return
	}
	if leaf := anyLeafHeld(); leaf != "" {
		for _, name := range w.ann.Acquires[callee] {
			w.pass.Reportf(call.Pos(), "call to %s acquires %s while leaf lock %s is held", callee.Name(), name, leaf)
		}
		for _, name := range w.ann.Holds[callee] {
			w.pass.Reportf(call.Pos(), "call to %s acquires %s while leaf lock %s is held", callee.Name(), name, leaf)
		}
		for _, name := range w.ann.Requires[callee] {
			if name != leaf {
				w.pass.Reportf(call.Pos(), "call to %s (requires %s) while leaf lock %s is held", callee.Name(), name, leaf)
			}
		}
	}
}
