package leaflock_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/leaflock"
	"graphcache/internal/lint/linttest"
)

func TestLeafLock(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{leaflock.Analyzer}, "b")
}
