package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Module     *struct{ Path string }
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadModuleTimed is LoadModule, additionally reporting how long the
// one shared load+typecheck took so `gclint -timings` can show it next
// to the per-analyzer costs.
func LoadModuleTimed(dir string, patterns ...string) (*Program, time.Duration, error) {
	start := time.Now()
	prog, err := LoadModule(dir, patterns...)
	return prog, time.Since(start), err
}

// LoadModule type-checks the packages matched by patterns (and their
// module-local dependencies) from source into one shared FileSet and
// merged types.Info. Standard-library dependencies are imported from
// the toolchain's export data, which `go list -export` materializes in
// the build cache — no network, no source re-check.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,Name,Module,Standard,Export,GoFiles,Imports,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	// go list -deps emits packages in dependency order: every import of a
	// package precedes it in the stream.
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}

	// Export data for non-module packages, keyed by import path.
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	stdImporter := importer.ForCompiler(fset, "gc", lookup)

	// checked accumulates source-checked module-local packages so later
	// packages in the deps stream resolve imports to the SAME
	// types.Package (and hence the same types.Objects).
	checked := map[string]*types.Package{}
	imp := &hybridImporter{std: stdImporter, local: checked}

	var prog Program
	prog.Fset = fset
	prog.Info = info
	for _, lp := range listed {
		if lp.Module == nil || lp.Standard {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = tpkg
		prog.Packages = append(prog.Packages, &Package{Path: lp.ImportPath, Types: tpkg, Files: files})
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("no module-local packages matched %v", patterns)
	}
	return &prog, nil
}

// hybridImporter resolves module-local imports to already source-checked
// packages and everything else through gc export data.
type hybridImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (h *hybridImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := h.local[path]; ok {
		return pkg, nil
	}
	return h.std.Import(path)
}
