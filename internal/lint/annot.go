package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockInfo describes one //gclint:lock declaration.
type LockInfo struct {
	// Name is the hierarchy/annotation name of the lock.
	Name string
	// Leaf marks a //gclint:leaf lock: acquirable under anything,
	// nothing acquirable under it.
	Leaf bool
}

// SnapshotInfo describes one //gclint:snapshot declaration: an atomic
// cell publishing copy-on-write state that operations must load exactly
// once per scope (the snapshotonce analyzer).
type SnapshotInfo struct {
	// Name is the annotation name of the cell.
	Name string
}

// LoadFact is one //gclint:loads record on a function: calling it loads
// the named snapshot cell. Param optionally names the parameter that
// carries the cell's owner (e.g. the entry whose answer cell is read);
// empty means the method receiver owns the cell.
type LoadFact struct {
	Cell  string
	Param string
}

// Waiver is one //gclint:ignore directive with its mandatory reason —
// the unit of the `gclint -waivers` inventory.
type Waiver struct {
	// File and Line locate the directive (the waiver covers that line
	// and the one below).
	File string
	Line int
	// Analyzers are the waived analyzer names.
	Analyzers []string
	// Reason is the text after "--".
	Reason string
}

// Annotations is the program-wide fact base collected from //gclint:
// comments. Maps are keyed by types.Object, which the shared-importer
// loader keeps identical across packages.
type Annotations struct {
	// Hierarchy lists the ordered lock names, outermost first.
	Hierarchy []string
	rank      map[string]int

	// Locks maps a lock field/var object to its declaration.
	Locks map[types.Object]*LockInfo
	// lockNames is every declared lock name (hierarchy validation).
	lockNames map[string]bool

	// Acquires/Requires map function objects to lock names. Holds marks
	// functions that acquire locks and LEAVE them held on return;
	// Releases marks their unlocking counterparts.
	Acquires map[types.Object][]string
	Requires map[types.Object][]string
	Holds    map[types.Object][]string
	Releases map[types.Object][]string
	// NoLocks marks no-lock stage functions.
	NoLocks map[types.Object]bool
	// NoAlloc marks zero-allocation hot-path functions.
	NoAlloc map[types.Object]bool
	// Cow marks COW-published types; CowView marks functions returning
	// views of COW-published state; Mutates marks receiver-mutating
	// methods.
	Cow     map[types.Object]bool
	CowView map[types.Object]bool
	Mutates map[types.Object]bool

	// Snapshots maps an atomic-cell field/var object to its
	// //gclint:snapshot declaration; snapshotNames is every declared
	// cell name (reference validation).
	Snapshots     map[types.Object]*SnapshotInfo
	snapshotNames map[string]bool
	// Loads maps function objects to the snapshot cells a call loads;
	// Pins marks operation-scope functions that must pin ONE snapshot of
	// the named cells (snapshotonce analyzer).
	Loads map[types.Object][]LoadFact
	Pins  map[types.Object][]string
	// Views maps a type object to the snapshot cell it is the pinned
	// view of: a function holding a parameter of that type must not
	// re-load the cell.
	Views map[types.Object]string
	// Deterministic marks functions whose output must be a deterministic
	// function of their inputs, transitively (determinism analyzer).
	Deterministic map[types.Object]bool
	// CtxStrict is the set of package paths declaring //gclint:ctxstrict:
	// context.Background/TODO are diagnostics there (ctxflow analyzer).
	CtxStrict map[string]bool

	// Waivers inventories every //gclint:ignore with its reason.
	Waivers []Waiver

	// ignores maps filename -> line -> analyzer names waived there.
	ignores map[string]map[int][]string
}

// HierarchyRank returns the hierarchy position of lock name (0 =
// outermost) and whether the name is ranked at all. Leaf locks are
// unranked by construction.
func (a *Annotations) HierarchyRank(name string) (int, bool) {
	r, ok := a.rank[name]
	return r, ok
}

// LockByName returns the LockInfo declared under name, or nil.
func (a *Annotations) LockByName(name string) *LockInfo {
	for _, li := range a.Locks {
		if li.Name == name {
			return li
		}
	}
	return nil
}

// SnapshotCell returns the SnapshotInfo of the cell declared on obj, or
// nil when obj is not an annotated snapshot cell.
func (a *Annotations) SnapshotCell(obj types.Object) *SnapshotInfo {
	if obj == nil {
		return nil
	}
	return a.Snapshots[obj]
}

// ignored reports whether d is waived by a //gclint:ignore directive on
// its line or the line above (a standalone ignore covers the next line).
func (a *Annotations) ignored(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines, ok := a.ignores[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

const directivePrefix = "//gclint:"

// knownDirectives guards against typos: an unknown //gclint: directive
// is itself an error, so a misspelled annotation can never silently
// disable a check.
var knownDirectives = map[string]bool{
	"hierarchy": true, "lock": true, "leaf": true,
	"acquires": true, "requires": true, "holds": true,
	"releases": true, "nolocks": true,
	"noalloc": true, "cow": true, "cowview": true,
	"mutates": true, "ignore": true,
	"snapshot": true, "loads": true, "pins": true, "view": true,
	"deterministic": true, "ctxstrict": true,
}

// directive is one parsed //gclint: comment line.
type directive struct {
	pos  token.Pos
	name string
	args string
}

// parseDirectiveText parses one raw comment text ("//gclint:name args")
// into a directive, reporting whether the text carries the gclint
// prefix at all. This is the grammar's single tokenization point — the
// FuzzParseAnnotation target drives it directly.
func parseDirectiveText(text string) (name, args string, ok bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", "", false
	}
	name, args, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(args), true
}

// parseIgnoreArgs splits a //gclint:ignore payload into the waived
// analyzer names and the mandatory reason. err is non-nil when the
// reason separator or the names are missing.
func parseIgnoreArgs(args string) (names []string, reason string, err error) {
	before, after, found := strings.Cut(args, "--")
	reason = strings.TrimSpace(after)
	if !found || reason == "" {
		return nil, "", fmt.Errorf("//gclint:ignore needs a reason: //gclint:ignore <analyzer> -- <why>")
	}
	names = strings.FieldsFunc(before, func(r rune) bool { return r == ',' || r == ' ' })
	if len(names) == 0 {
		return nil, "", fmt.Errorf("//gclint:ignore needs at least one analyzer name")
	}
	return names, reason, nil
}

// parseLoadsArgs splits a //gclint:loads payload into the cell name and
// the optional instance-carrying parameter name.
func parseLoadsArgs(args string) (cell, param string, err error) {
	fields := strings.Fields(args)
	switch len(fields) {
	case 1:
		return fields[0], "", nil
	case 2:
		return fields[0], fields[1], nil
	default:
		return "", "", fmt.Errorf("//gclint:loads needs a cell name and at most one parameter name")
	}
}

// parseDirectives extracts the //gclint: lines from a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		name, args, ok := parseDirectiveText(c.Text)
		if !ok {
			continue
		}
		out = append(out, directive{pos: c.Pos(), name: name, args: args})
	}
	return out
}

// CollectAnnotations walks every file of the program and builds the
// fact base. Grammar errors come back as diagnostics under the pseudo
// analyzer "gclint".
func CollectAnnotations(prog *Program) (*Annotations, []Diagnostic) {
	a := &Annotations{
		rank:          map[string]int{},
		Locks:         map[types.Object]*LockInfo{},
		lockNames:     map[string]bool{},
		Acquires:      map[types.Object][]string{},
		Requires:      map[types.Object][]string{},
		Holds:         map[types.Object][]string{},
		Releases:      map[types.Object][]string{},
		NoLocks:       map[types.Object]bool{},
		NoAlloc:       map[types.Object]bool{},
		Cow:           map[types.Object]bool{},
		CowView:       map[types.Object]bool{},
		Mutates:       map[types.Object]bool{},
		Snapshots:     map[types.Object]*SnapshotInfo{},
		snapshotNames: map[string]bool{},
		Loads:         map[types.Object][]LoadFact{},
		Pins:          map[types.Object][]string{},
		Views:         map[types.Object]string{},
		Deterministic: map[types.Object]bool{},
		CtxStrict:     map[string]bool{},
		ignores:       map[string]map[int][]string{},
	}
	var diags []Diagnostic
	errf := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "gclint", Message: fmt.Sprintf(format, args...)})
	}

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			a.collectFile(prog, pkg.Path, f, errf)
		}
	}
	a.validate(errf)
	return a, diags
}

// collectFile gathers every directive in one file: declaration-attached
// ones are resolved to their objects; ignore/hierarchy/ctxstrict
// directives can appear in any comment group.
func (a *Annotations) collectFile(prog *Program, pkgPath string, f *ast.File, errf func(token.Pos, string, ...any)) {
	info := prog.Info

	// Attached directives: function declarations and lock declarations
	// (struct fields or package-level vars). consumed records which
	// comment groups were interpreted as declaration docs, so the
	// free-floating pass can flag attachment-required directives that
	// ended up attached to nothing.
	consumed := map[*ast.CommentGroup]bool{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			consumed[d.Doc] = true
			a.applyFuncDirectives(info.Defs[d.Name], parseDirectives(d.Doc), errf)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					consumed[doc] = true
					a.applyTypeDirectives(info.Defs[s.Name], parseDirectives(doc), errf)
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, fld := range st.Fields.List {
							consumed[fld.Doc] = true
							consumed[fld.Comment] = true
							a.applyLockDirectives(info, fld.Names, parseDirectives(fld.Doc), errf)
							a.applyLockDirectives(info, fld.Names, parseDirectives(fld.Comment), errf)
						}
					}
				case *ast.ValueSpec:
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					consumed[doc] = true
					a.applyLockDirectives(info, s.Names, parseDirectives(doc), errf)
				}
			}
		}
	}

	// Free-floating directives: hierarchy declarations and ignores.
	for _, cg := range f.Comments {
		for _, dir := range parseDirectives(cg) {
			switch dir.name {
			case "hierarchy":
				names := strings.Fields(dir.args)
				if len(names) == 0 {
					errf(dir.pos, "//gclint:hierarchy needs at least one lock name")
					continue
				}
				if len(a.Hierarchy) > 0 {
					errf(dir.pos, "duplicate //gclint:hierarchy declaration (first: %v)", a.Hierarchy)
					continue
				}
				a.Hierarchy = names
				for i, n := range names {
					a.rank[n] = i
				}
			case "ignore":
				names, reason, err := parseIgnoreArgs(dir.args)
				if err != nil {
					errf(dir.pos, "%s", err)
					continue
				}
				pos := prog.Position(dir.pos)
				byLine := a.ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					a.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				a.Waivers = append(a.Waivers, Waiver{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: names,
					Reason:    reason,
				})
			case "ctxstrict":
				if dir.args != "" {
					errf(dir.pos, "//gclint:ctxstrict takes no arguments")
					continue
				}
				a.CtxStrict[pkgPath] = true
			case "lock", "leaf", "acquires", "requires", "holds", "releases", "nolocks", "noalloc", "cow", "cowview", "mutates",
				"snapshot", "loads", "pins", "view", "deterministic":
				// Attached directives are handled in the declaration pass
				// above; one that floats free of any declaration is dead
				// annotation and gets flagged here.
				if !consumed[cg] {
					errf(dir.pos, "//gclint:%s is not attached to a declaration", dir.name)
				}
			default:
				errf(dir.pos, "unknown directive //gclint:%s", dir.name)
			}
		}
	}
}

// applyFuncDirectives records function-level annotations.
func (a *Annotations) applyFuncDirectives(obj types.Object, dirs []directive, errf func(token.Pos, string, ...any)) {
	for _, dir := range dirs {
		switch dir.name {
		case "acquires", "requires", "holds", "releases":
			names := strings.Fields(dir.args)
			if obj == nil || len(names) == 0 {
				errf(dir.pos, "//gclint:%s needs lock names and a function declaration", dir.name)
				continue
			}
			switch dir.name {
			case "acquires":
				a.Acquires[obj] = append(a.Acquires[obj], names...)
			case "requires":
				a.Requires[obj] = append(a.Requires[obj], names...)
			case "holds":
				a.Holds[obj] = append(a.Holds[obj], names...)
			case "releases":
				a.Releases[obj] = append(a.Releases[obj], names...)
			}
		case "nolocks", "noalloc", "cowview", "mutates", "deterministic":
			if obj == nil {
				errf(dir.pos, "//gclint:%s must be attached to a function declaration", dir.name)
				continue
			}
			switch dir.name {
			case "nolocks":
				a.NoLocks[obj] = true
			case "noalloc":
				a.NoAlloc[obj] = true
			case "cowview":
				a.CowView[obj] = true
			case "mutates":
				a.Mutates[obj] = true
			case "deterministic":
				a.Deterministic[obj] = true
			}
		case "loads":
			cell, param, err := parseLoadsArgs(dir.args)
			if obj == nil || err != nil || cell == "" {
				if err != nil {
					errf(dir.pos, "%s", err)
				} else {
					errf(dir.pos, "//gclint:loads needs a cell name and a function declaration")
				}
				continue
			}
			if param != "" && !hasParam(obj, param) {
				errf(dir.pos, "//gclint:loads parameter %q is not a parameter of %s", param, obj.Name())
				continue
			}
			a.Loads[obj] = append(a.Loads[obj], LoadFact{Cell: cell, Param: param})
		case "pins":
			names := strings.Fields(dir.args)
			if obj == nil || len(names) == 0 {
				errf(dir.pos, "//gclint:pins needs cell names and a function declaration")
				continue
			}
			a.Pins[obj] = append(a.Pins[obj], names...)
		case "lock", "leaf", "cow", "snapshot", "view":
			errf(dir.pos, "//gclint:%s cannot be attached to a function", dir.name)
		default:
			// hierarchy/ignore and unknown directives are handled by the
			// whole-file comments pass.
		}
	}
}

// applyTypeDirectives records type-level annotations (//gclint:cow).
func (a *Annotations) applyTypeDirectives(obj types.Object, dirs []directive, errf func(token.Pos, string, ...any)) {
	for _, dir := range dirs {
		switch dir.name {
		case "cow":
			if obj == nil {
				errf(dir.pos, "//gclint:cow must be attached to a type declaration")
				continue
			}
			a.Cow[obj] = true
		case "view":
			cell := strings.TrimSpace(dir.args)
			if obj == nil || cell == "" {
				errf(dir.pos, "//gclint:view needs a cell name and a type declaration")
				continue
			}
			a.Views[obj] = cell
		case "lock", "leaf", "acquires", "requires", "holds", "releases", "nolocks", "noalloc", "cowview", "mutates",
			"snapshot", "loads", "pins", "deterministic":
			errf(dir.pos, "//gclint:%s cannot be attached to a type", dir.name)
		default:
			// Handled by the whole-file comments pass.
		}
	}
}

// applyLockDirectives records //gclint:lock (+ optional //gclint:leaf)
// on a struct field or package-level var declaration.
func (a *Annotations) applyLockDirectives(info *types.Info, names []*ast.Ident, dirs []directive, errf func(token.Pos, string, ...any)) {
	var li *LockInfo
	for _, dir := range dirs {
		switch dir.name {
		case "lock":
			name := strings.TrimSpace(dir.args)
			if name == "" || len(names) != 1 {
				errf(dir.pos, "//gclint:lock needs a name and a single-identifier declaration")
				continue
			}
			obj := info.Defs[names[0]]
			if obj == nil {
				errf(dir.pos, "//gclint:lock target did not resolve")
				continue
			}
			li = &LockInfo{Name: name}
			a.Locks[obj] = li
			a.lockNames[name] = true
		case "leaf":
			if li == nil {
				errf(dir.pos, "//gclint:leaf must follow //gclint:lock on the same declaration")
				continue
			}
			li.Leaf = true
		case "snapshot":
			name := strings.TrimSpace(dir.args)
			if name == "" || len(names) != 1 {
				errf(dir.pos, "//gclint:snapshot needs a name and a single-identifier declaration")
				continue
			}
			obj := info.Defs[names[0]]
			if obj == nil {
				errf(dir.pos, "//gclint:snapshot target did not resolve")
				continue
			}
			a.Snapshots[obj] = &SnapshotInfo{Name: name}
			a.snapshotNames[name] = true
		case "acquires", "requires", "holds", "releases", "nolocks", "noalloc", "cow", "cowview", "mutates",
			"loads", "pins", "view", "deterministic":
			errf(dir.pos, "//gclint:%s cannot be attached to a lock declaration", dir.name)
		default:
			// Handled by the whole-file comments pass.
		}
	}
}

// validate cross-checks the fact base: hierarchy names must be declared
// locks, declared non-leaf locks must be ranked, and acquires/requires
// must reference declared names.
func (a *Annotations) validate(errf func(token.Pos, string, ...any)) {
	for _, n := range a.Hierarchy {
		if !a.lockNames[n] {
			errf(token.NoPos, "hierarchy lock %q has no //gclint:lock declaration", n)
		}
	}
	for obj, li := range a.Locks {
		if _, ranked := a.rank[li.Name]; !ranked && !li.Leaf {
			errf(obj.Pos(), "lock %q is neither in the //gclint:hierarchy nor marked //gclint:leaf", li.Name)
		}
		if _, ranked := a.rank[li.Name]; ranked && li.Leaf {
			errf(obj.Pos(), "lock %q cannot be both leaf and ranked in the hierarchy", li.Name)
		}
	}
	check := func(m map[types.Object][]string, what string) {
		for obj, names := range m {
			for _, n := range names {
				if !a.lockNames[n] {
					errf(obj.Pos(), "//gclint:%s references undeclared lock %q", what, n)
				}
			}
		}
	}
	check(a.Acquires, "acquires")
	check(a.Requires, "requires")
	check(a.Holds, "holds")
	check(a.Releases, "releases")

	for obj, facts := range a.Loads {
		for _, f := range facts {
			if !a.snapshotNames[f.Cell] {
				errf(obj.Pos(), "//gclint:loads references undeclared snapshot cell %q", f.Cell)
			}
		}
	}
	for obj, cells := range a.Pins {
		for _, c := range cells {
			if !a.snapshotNames[c] {
				errf(obj.Pos(), "//gclint:pins references undeclared snapshot cell %q", c)
			}
		}
	}
	for obj, cell := range a.Views {
		if !a.snapshotNames[cell] {
			errf(obj.Pos(), "//gclint:view references undeclared snapshot cell %q", cell)
		}
	}
}

// hasParam reports whether obj (a function) declares a parameter named
// param.
func hasParam(obj types.Object, param string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == param {
			return true
		}
	}
	return false
}
