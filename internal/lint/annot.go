package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockInfo describes one //gclint:lock declaration.
type LockInfo struct {
	// Name is the hierarchy/annotation name of the lock.
	Name string
	// Leaf marks a //gclint:leaf lock: acquirable under anything,
	// nothing acquirable under it.
	Leaf bool
}

// Annotations is the program-wide fact base collected from //gclint:
// comments. Maps are keyed by types.Object, which the shared-importer
// loader keeps identical across packages.
type Annotations struct {
	// Hierarchy lists the ordered lock names, outermost first.
	Hierarchy []string
	rank      map[string]int

	// Locks maps a lock field/var object to its declaration.
	Locks map[types.Object]*LockInfo
	// lockNames is every declared lock name (hierarchy validation).
	lockNames map[string]bool

	// Acquires/Requires map function objects to lock names. Holds marks
	// functions that acquire locks and LEAVE them held on return;
	// Releases marks their unlocking counterparts.
	Acquires map[types.Object][]string
	Requires map[types.Object][]string
	Holds    map[types.Object][]string
	Releases map[types.Object][]string
	// NoLocks marks no-lock stage functions.
	NoLocks map[types.Object]bool
	// NoAlloc marks zero-allocation hot-path functions.
	NoAlloc map[types.Object]bool
	// Cow marks COW-published types; CowView marks functions returning
	// views of COW-published state; Mutates marks receiver-mutating
	// methods.
	Cow     map[types.Object]bool
	CowView map[types.Object]bool
	Mutates map[types.Object]bool

	// ignores maps filename -> line -> analyzer names waived there.
	ignores map[string]map[int][]string
}

// HierarchyRank returns the hierarchy position of lock name (0 =
// outermost) and whether the name is ranked at all. Leaf locks are
// unranked by construction.
func (a *Annotations) HierarchyRank(name string) (int, bool) {
	r, ok := a.rank[name]
	return r, ok
}

// LockByName returns the LockInfo declared under name, or nil.
func (a *Annotations) LockByName(name string) *LockInfo {
	for _, li := range a.Locks {
		if li.Name == name {
			return li
		}
	}
	return nil
}

// ignored reports whether d is waived by a //gclint:ignore directive on
// its line or the line above (a standalone ignore covers the next line).
func (a *Annotations) ignored(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines, ok := a.ignores[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

const directivePrefix = "//gclint:"

// knownDirectives guards against typos: an unknown //gclint: directive
// is itself an error, so a misspelled annotation can never silently
// disable a check.
var knownDirectives = map[string]bool{
	"hierarchy": true, "lock": true, "leaf": true,
	"acquires": true, "requires": true, "holds": true,
	"releases": true, "nolocks": true,
	"noalloc": true, "cow": true, "cowview": true,
	"mutates": true, "ignore": true,
}

// directive is one parsed //gclint: comment line.
type directive struct {
	pos  token.Pos
	name string
	args string
}

// parseDirectives extracts the //gclint: lines from a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(text, " ")
		out = append(out, directive{pos: c.Pos(), name: name, args: strings.TrimSpace(args)})
	}
	return out
}

// CollectAnnotations walks every file of the program and builds the
// fact base. Grammar errors come back as diagnostics under the pseudo
// analyzer "gclint".
func CollectAnnotations(prog *Program) (*Annotations, []Diagnostic) {
	a := &Annotations{
		rank:      map[string]int{},
		Locks:     map[types.Object]*LockInfo{},
		lockNames: map[string]bool{},
		Acquires:  map[types.Object][]string{},
		Requires:  map[types.Object][]string{},
		Holds:     map[types.Object][]string{},
		Releases:  map[types.Object][]string{},
		NoLocks:   map[types.Object]bool{},
		NoAlloc:   map[types.Object]bool{},
		Cow:       map[types.Object]bool{},
		CowView:   map[types.Object]bool{},
		Mutates:   map[types.Object]bool{},
		ignores:   map[string]map[int][]string{},
	}
	var diags []Diagnostic
	errf := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "gclint", Message: fmt.Sprintf(format, args...)})
	}

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			a.collectFile(prog, f, errf)
		}
	}
	a.validate(errf)
	return a, diags
}

// collectFile gathers every directive in one file: declaration-attached
// ones are resolved to their objects, ignore/hierarchy directives can
// appear in any comment group.
func (a *Annotations) collectFile(prog *Program, f *ast.File, errf func(token.Pos, string, ...any)) {
	info := prog.Info

	// Attached directives: function declarations and lock declarations
	// (struct fields or package-level vars). consumed records which
	// comment groups were interpreted as declaration docs, so the
	// free-floating pass can flag attachment-required directives that
	// ended up attached to nothing.
	consumed := map[*ast.CommentGroup]bool{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			consumed[d.Doc] = true
			a.applyFuncDirectives(info.Defs[d.Name], parseDirectives(d.Doc), errf)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					consumed[doc] = true
					a.applyTypeDirectives(info.Defs[s.Name], parseDirectives(doc), errf)
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, fld := range st.Fields.List {
							consumed[fld.Doc] = true
							consumed[fld.Comment] = true
							a.applyLockDirectives(info, fld.Names, parseDirectives(fld.Doc), errf)
							a.applyLockDirectives(info, fld.Names, parseDirectives(fld.Comment), errf)
						}
					}
				case *ast.ValueSpec:
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					consumed[doc] = true
					a.applyLockDirectives(info, s.Names, parseDirectives(doc), errf)
				}
			}
		}
	}

	// Free-floating directives: hierarchy declarations and ignores.
	for _, cg := range f.Comments {
		for _, dir := range parseDirectives(cg) {
			switch dir.name {
			case "hierarchy":
				names := strings.Fields(dir.args)
				if len(names) == 0 {
					errf(dir.pos, "//gclint:hierarchy needs at least one lock name")
					continue
				}
				if len(a.Hierarchy) > 0 {
					errf(dir.pos, "duplicate //gclint:hierarchy declaration (first: %v)", a.Hierarchy)
					continue
				}
				a.Hierarchy = names
				for i, n := range names {
					a.rank[n] = i
				}
			case "ignore":
				before, reason, found := strings.Cut(dir.args, "--")
				names := strings.FieldsFunc(before, func(r rune) bool { return r == ',' || r == ' ' })
				if !found || strings.TrimSpace(reason) == "" {
					errf(dir.pos, "//gclint:ignore needs a reason: //gclint:ignore <analyzer> -- <why>")
					continue
				}
				if len(names) == 0 {
					errf(dir.pos, "//gclint:ignore needs at least one analyzer name")
					continue
				}
				pos := prog.Position(dir.pos)
				byLine := a.ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					a.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			case "lock", "leaf", "acquires", "requires", "holds", "releases", "nolocks", "noalloc", "cow", "cowview", "mutates":
				// Attached directives are handled in the declaration pass
				// above; one that floats free of any declaration is dead
				// annotation and gets flagged here.
				if !consumed[cg] {
					errf(dir.pos, "//gclint:%s is not attached to a declaration", dir.name)
				}
			default:
				errf(dir.pos, "unknown directive //gclint:%s", dir.name)
			}
		}
	}
}

// applyFuncDirectives records function-level annotations.
func (a *Annotations) applyFuncDirectives(obj types.Object, dirs []directive, errf func(token.Pos, string, ...any)) {
	for _, dir := range dirs {
		switch dir.name {
		case "acquires", "requires", "holds", "releases":
			names := strings.Fields(dir.args)
			if obj == nil || len(names) == 0 {
				errf(dir.pos, "//gclint:%s needs lock names and a function declaration", dir.name)
				continue
			}
			switch dir.name {
			case "acquires":
				a.Acquires[obj] = append(a.Acquires[obj], names...)
			case "requires":
				a.Requires[obj] = append(a.Requires[obj], names...)
			case "holds":
				a.Holds[obj] = append(a.Holds[obj], names...)
			case "releases":
				a.Releases[obj] = append(a.Releases[obj], names...)
			}
		case "nolocks", "noalloc", "cowview", "mutates":
			if obj == nil {
				errf(dir.pos, "//gclint:%s must be attached to a function declaration", dir.name)
				continue
			}
			switch dir.name {
			case "nolocks":
				a.NoLocks[obj] = true
			case "noalloc":
				a.NoAlloc[obj] = true
			case "cowview":
				a.CowView[obj] = true
			case "mutates":
				a.Mutates[obj] = true
			}
		case "lock", "leaf", "cow":
			errf(dir.pos, "//gclint:%s cannot be attached to a function", dir.name)
		default:
			// hierarchy/ignore and unknown directives are handled by the
			// whole-file comments pass.
		}
	}
}

// applyTypeDirectives records type-level annotations (//gclint:cow).
func (a *Annotations) applyTypeDirectives(obj types.Object, dirs []directive, errf func(token.Pos, string, ...any)) {
	for _, dir := range dirs {
		switch dir.name {
		case "cow":
			if obj == nil {
				errf(dir.pos, "//gclint:cow must be attached to a type declaration")
				continue
			}
			a.Cow[obj] = true
		case "lock", "leaf", "acquires", "requires", "holds", "releases", "nolocks", "noalloc", "cowview", "mutates":
			errf(dir.pos, "//gclint:%s cannot be attached to a type", dir.name)
		default:
			// Handled by the whole-file comments pass.
		}
	}
}

// applyLockDirectives records //gclint:lock (+ optional //gclint:leaf)
// on a struct field or package-level var declaration.
func (a *Annotations) applyLockDirectives(info *types.Info, names []*ast.Ident, dirs []directive, errf func(token.Pos, string, ...any)) {
	var li *LockInfo
	for _, dir := range dirs {
		switch dir.name {
		case "lock":
			name := strings.TrimSpace(dir.args)
			if name == "" || len(names) != 1 {
				errf(dir.pos, "//gclint:lock needs a name and a single-identifier declaration")
				continue
			}
			obj := info.Defs[names[0]]
			if obj == nil {
				errf(dir.pos, "//gclint:lock target did not resolve")
				continue
			}
			li = &LockInfo{Name: name}
			a.Locks[obj] = li
			a.lockNames[name] = true
		case "leaf":
			if li == nil {
				errf(dir.pos, "//gclint:leaf must follow //gclint:lock on the same declaration")
				continue
			}
			li.Leaf = true
		case "acquires", "requires", "holds", "releases", "nolocks", "noalloc", "cow", "cowview", "mutates":
			errf(dir.pos, "//gclint:%s cannot be attached to a lock declaration", dir.name)
		default:
			// Handled by the whole-file comments pass.
		}
	}
}

// validate cross-checks the fact base: hierarchy names must be declared
// locks, declared non-leaf locks must be ranked, and acquires/requires
// must reference declared names.
func (a *Annotations) validate(errf func(token.Pos, string, ...any)) {
	for _, n := range a.Hierarchy {
		if !a.lockNames[n] {
			errf(token.NoPos, "hierarchy lock %q has no //gclint:lock declaration", n)
		}
	}
	for obj, li := range a.Locks {
		if _, ranked := a.rank[li.Name]; !ranked && !li.Leaf {
			errf(obj.Pos(), "lock %q is neither in the //gclint:hierarchy nor marked //gclint:leaf", li.Name)
		}
		if _, ranked := a.rank[li.Name]; ranked && li.Leaf {
			errf(obj.Pos(), "lock %q cannot be both leaf and ranked in the hierarchy", li.Name)
		}
	}
	check := func(m map[types.Object][]string, what string) {
		for obj, names := range m {
			for _, n := range names {
				if !a.lockNames[n] {
					errf(obj.Pos(), "//gclint:%s references undeclared lock %q", what, n)
				}
			}
		}
	}
	check(a.Acquires, "acquires")
	check(a.Requires, "requires")
	check(a.Holds, "holds")
	check(a.Releases, "releases")
}
