package determinism_test

import (
	"testing"

	"graphcache/internal/lint"
	"graphcache/internal/lint/determinism"
	"graphcache/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, ".", []*lint.Analyzer{determinism.Analyzer}, "det")
}
