// Package impure hosts a cross-package helper for the determinism
// suite: the violation is here, the //gclint:deterministic root is in
// package det.
package impure

import "math/rand"

// Shuffle permutes xs with the global PRNG.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "nondeterministic call to math/rand.Shuffle in Shuffle, reachable from //gclint:deterministic crossPkg"
		xs[i], xs[j] = xs[j], xs[i]
	})
}
