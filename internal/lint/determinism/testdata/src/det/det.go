// Package det exercises the determinism analyzer: //gclint:deterministic
// functions and everything statically reachable from them must not
// depend on map iteration order, wall clocks, PRNGs, scheduling, or
// select-case choice.
package det

import (
	"sort"
	"time"

	"graphcache/internal/lint/determinism/testdata/src/det/impure"
)

// rankGood uses the sorted-key idiom: collect, then order.
//
//gclint:deterministic
func rankGood(scores map[string]int) []string {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rankBad emits in map iteration order.
//
//gclint:deterministic
func rankBad(scores map[string]int) []string {
	var keys []string
	for k := range scores { // want "nondeterministic range over map \\(no sorted-key idiom\\) in //gclint:deterministic function rankBad"
		keys = append(keys, k)
		keys = append(keys, k)
	}
	return keys
}

// stamped mixes wall-clock time into its output.
//
//gclint:deterministic
func stamped(x int) int64 {
	return int64(x) + time.Now().UnixNano() // want "nondeterministic call to time.Now in //gclint:deterministic function stamped"
}

// helper is unannotated but reachable from viaHelper below; its map
// range is charged to the root.
func helper(m map[int]int) int {
	total := 0
	for _, v := range m { // want "nondeterministic range over map \\(no sorted-key idiom\\) in helper, reachable from //gclint:deterministic viaHelper"
		total += v
	}
	return total
}

// viaHelper is clean itself; the violation lives two hops down.
//
//gclint:deterministic
func viaHelper(m map[int]int) int {
	return helper(m)
}

// crossPkg drags a helper from another package into the closure.
//
//gclint:deterministic
func crossPkg(xs []int) {
	impure.Shuffle(xs)
}

// spawned forks output ordering onto the scheduler.
//
//gclint:deterministic
func spawned(ch chan int) {
	go func() { ch <- 1 }() // want "nondeterministic goroutine spawn in //gclint:deterministic function spawned"
}

// racySelect lets the runtime pick a ready case.
//
//gclint:deterministic
func racySelect(a, b chan int) int {
	select { // want "nondeterministic multi-case select in //gclint:deterministic function racySelect"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// singleSelect has exactly one case and stays deterministic.
//
//gclint:deterministic
func singleSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// unchecked is not annotated and not reachable from any root: map
// order is its caller's problem.
func unchecked(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// indirect takes the nondeterminism as a callback; function values do
// not resolve, so the closure stops here by design.
//
//gclint:deterministic
func indirect(m map[string]int, f func(map[string]int) int) int {
	return f(m)
}

// waived documents an accepted map range with a reason.
//
//gclint:deterministic
func waived(m map[string]int) int {
	total := 0
	//gclint:ignore determinism -- harness check: waivers must suppress the line below
	for _, v := range m {
		total += v
	}
	return total
}
