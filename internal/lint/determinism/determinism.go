// Package determinism enforces //gclint:deterministic: the annotated
// function's output must be a pure function of its inputs, transitively
// through every statically resolvable callee. Benefit ranking, eviction
// ordering, dominance merges, fingerprints, and state serialization all
// carry the exactness guarantee — two replicas ranking the same
// candidate set must agree byte for byte, so iteration-order and
// wall-clock effects are build errors:
//
//   - `range` over a map, unless it is the sorted-key idiom (the loop
//     body is a single append into a slice and the next statement sorts
//     it);
//   - calls to time.Now / time.Since, or anything in math/rand or
//     math/rand/v2;
//   - goroutine spawns (scheduling order leaks into output order);
//   - select with more than one case (case choice is runtime-random).
//
// The check is whole-program: the closure is computed once over the
// shared Program call graph (callgraph.go) and walks every declared
// function reachable from an annotated root. Indirect calls — function
// values, interface methods — do not resolve and bound the closure;
// injecting nondeterminism through an unannotated callback remains the
// caller's responsibility.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"graphcache/internal/lint"
)

// Analyzer is the determinism pass.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc: "forbid unordered map ranges, wall-clock and math/rand calls, " +
		"goroutine spawns, and multi-case selects in functions reachable " +
		"from a //gclint:deterministic root",
	Run: run,
}

// finding is one violation, pinned to the package that declares the
// offending function so each per-package pass reports only its own.
type finding struct {
	pkg string
	pos token.Pos
	msg string
}

func run(pass *lint.Pass) error {
	findings := pass.Prog.Fact("determinism.findings", func() any {
		return compute(pass.Prog, pass.Ann)
	}).([]finding)
	for _, f := range findings {
		if f.pkg == pass.Pkg.Path {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// compute walks the deterministic closure once for the whole program.
func compute(prog *lint.Program, ann *lint.Annotations) []finding {
	cg := prog.CallGraph()

	// Roots in source order, so multi-root attribution is stable.
	var roots []types.Object
	for obj := range ann.Deterministic {
		roots = append(roots, obj)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })

	// BFS; every root owns itself, and the first root to reach a
	// non-root function owns its attribution.
	rootOf := map[types.Object]types.Object{}
	for _, r := range roots {
		rootOf[r] = r
	}
	var order []types.Object
	for _, r := range roots {
		queue := []types.Object{r}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			order = append(order, fn)
			for _, edge := range cg.Callees[fn] {
				if _, seen := rootOf[edge.Callee]; seen {
					continue
				}
				if _, declared := cg.Decls[edge.Callee]; !declared {
					continue
				}
				rootOf[edge.Callee] = r
				queue = append(queue, edge.Callee)
			}
		}
	}

	var out []finding
	for _, fn := range order {
		fd, pkg := cg.Decls[fn], cg.DeclPkg[fn]
		if fd == nil || fd.Body == nil || pkg == nil {
			continue
		}
		out = append(out, scanBody(prog.Info, fd, pkg.Path, fn, rootOf[fn])...)
	}
	return out
}

// scanBody flags the nondeterministic constructs in one function body.
func scanBody(info *types.Info, fd *ast.FuncDecl, pkgPath string, fn, root types.Object) []finding {
	var out []finding
	report := func(pos token.Pos, what string) {
		msg := "nondeterministic " + what + " in //gclint:deterministic function " + fn.Name()
		if root != fn {
			msg = "nondeterministic " + what + " in " + fn.Name() + ", reachable from //gclint:deterministic " + root.Name()
		}
		out = append(out, finding{pkg: pkgPath, pos: pos, msg: msg})
	}
	next := nextStmts(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(n.X)) && !sortedKeyIdiom(info, n, next) {
				report(n.Pos(), "range over map (no sorted-key idiom)")
			}
		case *ast.GoStmt:
			report(n.Pos(), "goroutine spawn")
		case *ast.SelectStmt:
			if n.Body != nil && len(n.Body.List) > 1 {
				report(n.Pos(), "multi-case select")
			}
		case *ast.CallExpr:
			if what := impureCall(info, n); what != "" {
				report(n.Pos(), "call to "+what)
			}
		}
		return true
	})
	return out
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// impureCall names the wall-clock or PRNG callee, or returns "".
func impureCall(info *types.Info, call *ast.CallExpr) string {
	callee := lint.CalleeObject(info, call)
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return ""
}

// nextStmts maps each statement to its next sibling across every
// statement list in body — the sorted-key idiom needs one statement of
// lookahead.
func nextStmts(body *ast.BlockStmt) map[ast.Stmt]ast.Stmt {
	next := map[ast.Stmt]ast.Stmt{}
	link := func(list []ast.Stmt) {
		for i := 0; i+1 < len(list); i++ {
			next[list[i]] = list[i+1]
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			link(n.List)
		case *ast.CaseClause:
			link(n.Body)
		case *ast.CommClause:
			link(n.Body)
		}
		return true
	})
	return next
}

// sortedKeyIdiom recognizes the one permitted map range:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)   // or any sort./slices. call
//
// — collect the keys, then impose a total order before use.
func sortedKeyIdiom(info *types.Info, rs *ast.RangeStmt, next map[ast.Stmt]ast.Stmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return false
	} else if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	es, ok := next[ast.Stmt(rs)].(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := lint.CalleeObject(info, sortCall).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices"
}
