package lint_test

import (
	"strings"
	"testing"

	"graphcache/internal/lint"
)

// TestGrammarErrors loads the deliberately malformed testdata package
// and checks the collector rejects every bad annotation. Grammar errors
// are never waivable, so they come straight out of CollectAnnotations.
func TestGrammarErrors(t *testing.T) {
	prog, err := lint.LoadModule(".", "./testdata/src/grammar")
	if err != nil {
		t.Fatalf("loading grammar testdata: %v", err)
	}
	_, diags := lint.CollectAnnotations(prog)
	wantSubstrings := []string{
		`lock "gamma" is neither in the //gclint:hierarchy nor marked //gclint:leaf`,
		`hierarchy lock "beta" has no //gclint:lock declaration`,
		"unknown directive //gclint:bogus",
		`//gclint:acquires references undeclared lock "delta"`,
		"//gclint:ignore needs a reason",
		"//gclint:requires is not attached to a declaration",
		"//gclint:snapshot needs a name and a single-identifier declaration",
		`//gclint:loads references undeclared snapshot cell "ghost"`,
		`//gclint:loads parameter "missing" is not a parameter of loadsBadParam`,
		`//gclint:pins references undeclared snapshot cell "phantom"`,
		`//gclint:view references undeclared snapshot cell "specter"`,
		"//gclint:ctxstrict takes no arguments",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q; got:\n%s", want, render(prog, diags))
		}
	}
	if len(diags) != len(wantSubstrings) {
		t.Errorf("want %d diagnostics, got %d:\n%s", len(wantSubstrings), len(diags), render(prog, diags))
	}
}

func render(prog *lint.Program, diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		pos := prog.Position(d.Pos)
		b.WriteString(pos.String() + ": " + d.Message + "\n")
	}
	return b.String()
}
