package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"graphcache/internal/bitset"
)

// rankEntry builds a bare entry whose answer set has exactly count bits.
func rankEntry(id int, count int) *Entry {
	e := &Entry{ID: id, ans: &answersCell{}}
	idx := make([]int, count)
	for i := range idx {
		idx[i] = i
	}
	e.setAnswers(bitset.FromIndices(count+1, idx), 0)
	return e
}

// TestRankCandidatesDeterministic is the regression test for the
// detectHits ranking extraction: the order must be a pure function of the
// candidate set — (answer count, entry ID) with the direction chosen by
// largerFirst — regardless of input permutation.
func TestRankCandidatesDeterministic(t *testing.T) {
	build := func() []*Entry {
		return []*Entry{
			rankEntry(3, 5), rankEntry(1, 5), rankEntry(7, 0),
			rankEntry(2, 9), rankEntry(5, 2), rankEntry(4, 9),
		}
	}
	wantLarger := []int{2, 4, 1, 3, 5, 7}  // count desc, ID asc on ties
	wantSmaller := []int{7, 5, 1, 3, 2, 4} // count asc, ID asc on ties
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		for _, tc := range []struct {
			largerFirst bool
			want        []int
		}{{true, wantLarger}, {false, wantSmaller}} {
			cands := build()
			rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			rankCandidates(cands, tc.largerFirst)
			for i, e := range cands {
				if e.ID != tc.want[i] {
					t.Fatalf("trial %d largerFirst=%v: got order %v at %d, want %v",
						trial, tc.largerFirst, ids(cands), i, tc.want)
				}
			}
		}
	}
}

func ids(es []*Entry) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// TestRankCandidatesConcurrentSwap reproduces the bug shape the
// extraction fixed: a lazy reconciler republishing answer sets while the
// ranking sorts. The pre-fix comparator reloaded each entry's answer cell
// per comparison, so a mid-sort swap could make the comparator
// inconsistent (sort.Slice behavior is then unspecified); the fixed
// version snapshots every count once, so concurrent swaps must never
// change the outcome: the result is always the exact (count, ID) order of
// SOME single snapshot — which here means a permutation of the input with
// IDs strictly sorted within each count class observed at sample time.
func TestRankCandidatesConcurrentSwap(t *testing.T) {
	const n = 64
	var stop atomic.Bool
	var wg sync.WaitGroup
	cands := make([]*Entry, n)
	for i := range cands {
		cands[i] = rankEntry(i+1, i%7)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; !stop.Load(); k++ {
			e := cands[k%n]
			e.setAnswers(bitset.FromIndices(16, []int{k % 16}), int64(k))
		}
	}()
	for trial := 0; trial < 50; trial++ {
		work := append([]*Entry(nil), cands...)
		rankCandidates(work, trial%2 == 0)
		seen := map[int]bool{}
		for _, e := range work {
			if e == nil {
				t.Fatal("nil entry after ranking")
			}
			if seen[e.ID] {
				t.Fatalf("entry %d duplicated after ranking under concurrent swaps", e.ID)
			}
			seen[e.ID] = true
		}
		if len(seen) != n {
			t.Fatalf("ranking lost entries: %d of %d survive", len(seen), n)
		}
	}
	stop.Store(true)
	wg.Wait()
}
