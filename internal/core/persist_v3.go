package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/mmap"
)

// State format v3 ("GCS3"): the binary, mmap-friendly snapshot format.
//
// The v2 text format rewrites and re-parses every entry on save/restore;
// at production cache sizes the restart cost is dominated by that
// serialization, not by queries (ROADMAP open item 2). GCS3 splits the
// snapshot into a fixed-size header, a fixed-size per-entry INDEX section
// and a variable BODY section, so a restore can consume the index — and
// everything hit detection needs — without touching the bodies at all:
//
//	header (64 bytes, little-endian):
//	  [0,4)    magic "GCS3"
//	  [4,8)    version (uint32, = 3)
//	  [8,16)   dataset size (uint64) — must equal the restoring cache's
//	  [16,24)  dataset epoch at write (int64) — diagnostic only: epochs
//	           restart with the process, so inequality is normal
//	  [24,32)  entry count (uint64)
//	  [32,40)  body section offset (uint64) = 64 + 136·entryCount
//	  [40,48)  file size (uint64)
//	  [48,56)  FNV-1a of the index section (uint64)
//	  [56,64)  FNV-1a of header bytes [0,56) (uint64)
//
//	index record (136 bytes per entry, little-endian):
//	  [0,8)     graph fingerprint (uint64)
//	  [8,12)    query type (uint32)
//	  [12,16)   base candidates |C_M| (uint32)
//	  [16,72)   ftv.FeatureVector (fixed 56-byte codec, internal/ftv)
//	  [72,80)   hits (int64)
//	  [80,88)   saved tests (float64 bits)
//	  [88,96)   saved cost ns (float64 bits)
//	  [96,104)  absolute offset of the entry's body (uint64)
//	  [104,112) graph byte length (uint64)
//	  [112,120) answer byte length (uint64)
//	  [120,128) FNV-1a of the graph bytes (uint64)
//	  [128,136) FNV-1a of the answer bytes (uint64)
//
//	body, per entry, contiguous and in index order:
//	  graph in the text codec (internal/graph), then the answer set in
//	  the bitset binary container encoding (internal/bitset) — the set's
//	  NATIVE container (sparse/run/dense tag + payload), so a round-trip
//	  preserves the adaptive compression instead of re-encoding index
//	  lists.
//
// Corruption detection is all-or-nothing, like v2: the header checksum
// covers the section geometry, the index checksum covers every record,
// record offsets must tile the body section exactly to the recorded file
// size, and each graph and answer blob carries its own checksum — a
// single flipped or truncated byte anywhere fails the restore with a
// descriptive error and leaves the cache untouched.
//
// # Lazy restore
//
// RestoreStateLazy reads the header, index and graph blobs eagerly — the
// signatures, feature summaries and hit index are rebuilt from the
// graphs, never trusted from disk, so admission, feature-index rebuild
// and hit detection work immediately — but leaves every ANSWER body in
// the file (mmapped on Unix via internal/mmap, plain pread elsewhere).
// An entry's answer state is published as a PENDING body (answerState
// with set nil); the first loadAnswers faults the body in: read, verify
// checksum, decode, publish through the cell's CAS — the same
// epoch-stamped publish discipline lazy reconciliation uses, and equally
// lock-free, so fault-in is legal on the //gclint:nolocks query path.
// Decoded sets dedup through the source's registry (keyed by checksum,
// confirmed by Equal), applying the interning idea at fault-in time; the
// pool's counted references catch up at the next true-up
// (rechargeLocked), exactly like lazily reconciled sets do.
//
// Dataset mutations between restore and fault-in stay exact: removals
// append the tombstoned id to the pending state's drop list (applied
// after decode), and additions are reconciled from the addition log on
// the read path — the pending epoch holds the log's compaction floor
// down until the entry faults in. A body that fails verification at
// fault-in time panics: the restore-time validation accepted the file,
// so the backing file was corrupted or truncated AFTER restore, and no
// exact answer can be produced (the kernel never returns approximate
// answers — the same contract as the SelfCheck panic).

const (
	stateMagicV3   = "GCS3"
	stateVersionV3 = 3
	v3HeaderLen    = 64
	v3IndexLen     = 136
)

// fnv1a is the 64-bit FNV-1a hash of data — the checksum used by every
// GCS3 section. Not cryptographic: it detects corruption, not tampering.
func fnv1a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// stateSource is one open snapshot backing a restore: the random-access
// reader (an mmap.File for RestoreStateLazy, an in-memory buffer for
// ReadState), plus the fault-in dedup registry and the Monitor the fault
// counter reports to. For a lazy restore the source must stay open for
// the cache's lifetime — Close only after the cache is done (or after a
// later WriteState materialized everything).
type stateSource struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer
	mon    *Monitor

	// dedup collapses equal decoded answer bodies across entries at
	// fault-in time, keyed by (checksum, length) and confirmed by Equal.
	// sync.Map, not a mutex: fault-in runs on the lock-free query path.
	dedup sync.Map
}

// Close releases the backing reader (a no-op for in-memory sources).
func (s *stateSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

func newMemStateSource(data []byte) *stateSource {
	return &stateSource{r: bytes.NewReader(data), size: int64(len(data))}
}

// bodyKey keys the fault-in dedup registry.
type bodyKey struct {
	sum    uint64
	length int64
}

// lazyBody locates one entry's still-on-disk answer set. Immutable after
// publication (a removal publishes a fresh lazyBody via withDrop — see
// RemoveGraph); the whole struct is part of the COW answerState.
type lazyBody struct {
	src    *stateSource
	off    int64
	length int64
	sum    uint64
	// cap is the answer set's capacity: the dataset size at write time
	// (== at restore time; growth since restore is reconciled from the
	// addition log after fault-in, like any stale entry).
	cap int
	// drops are ids tombstoned AFTER the snapshot was written (at restore
	// time: the complement of the live mask; afterwards: appended by
	// RemoveGraph), cleared from the decoded set at fault-in.
	drops []int
}

// withDrop returns a copy of b with gid appended to the drop list. The
// receiver is never mutated — it may be published.
func (b *lazyBody) withDrop(gid int) *lazyBody {
	nb := *b
	nb.drops = append(append([]int(nil), b.drops...), gid)
	return &nb
}

// materialize reads, verifies and decodes the body into an owned set,
// with drops applied. Panics on verification failure: restore validated
// this file, so a mismatch means the backing file changed underneath a
// live lazy cache — no exact answer exists (see the package comment).
func (b *lazyBody) materialize() *bitset.Set {
	buf := make([]byte, b.length)
	if _, err := b.src.r.ReadAt(buf, b.off); err != nil {
		panic(fmt.Sprintf("core: lazy state body at offset %d: %v (snapshot file truncated since restore?)", b.off, err))
	}
	if got := fnv1a(buf); got != b.sum {
		panic(fmt.Sprintf("core: lazy state body at offset %d: checksum mismatch (snapshot file corrupted since restore)", b.off))
	}
	set, n, err := bitset.FromBinary(buf)
	if err != nil || n != len(buf) {
		panic(fmt.Sprintf("core: lazy state body at offset %d: %v", b.off, err))
	}
	if set.Len() != b.cap {
		panic(fmt.Sprintf("core: lazy state body at offset %d: capacity %d, want %d", b.off, set.Len(), b.cap))
	}
	if len(b.drops) == 0 {
		// Share one decoded allocation across entries with equal bodies —
		// interning at fault-in time. The checksum keys the registry; Equal
		// confirms (FNV is not collision-free), falling back to the private
		// copy on the astronomically unlikely mismatch.
		if prev, loaded := b.src.dedup.LoadOrStore(bodyKey{b.sum, b.length}, set); loaded {
			if ps := prev.(*bitset.Set); ps.Equal(set) {
				return ps
			}
		}
		return set
	}
	for _, gid := range b.drops {
		if gid < set.Len() {
			set.Remove(gid)
		}
	}
	// The drop-adjusted set is owned until published; re-encode it into
	// its smallest container like every publication point does.
	set.Compact()
	return set
}

// faultAnswers materializes a pending answer state and publishes it
// through the cell's CAS, returning the resulting state. Lock-free; safe
// to race with other faulters (first publish wins, the loser re-reads)
// and with RemoveGraph's drop-list republish (the CAS fails against the
// superseded pending state and the retry sees the new drop list).
func (e *Entry) faultAnswers(st *answerState) *answerState {
	for {
		b := st.body
		next := &answerState{set: b.materialize(), epoch: st.epoch}
		if e.ans.p.CompareAndSwap(st, next) {
			if b.src.mon != nil {
				b.src.mon.stateBodyFaults.Add(1)
			}
			return next
		}
		st = e.ans.p.Load()
		if st.body == nil {
			return st
		}
	}
}

// WriteState serializes the cache's admitted entries to w in the binary
// v3 format. Locking and consistency match WriteStateV2: the read side
// of the dataset mutex plus policyMu plus every shard lock, entries
// reconciled to the pinned view before serialization (on a lazily
// restored cache this faults every remaining body in — the new snapshot
// must not depend on the old backing file). Answer sets are written in
// their native containers, so save→restore preserves the adaptive
// compression byte-for-byte.
//
//gclint:acquires dsMu policyMu shard
//gclint:pins dataset
//gclint:deterministic
func (c *Cache) WriteState(w io.Writer) error {
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.lockAll()
	defer c.unlockAll()

	all := c.gatherLocked()
	index := make([]byte, 0, len(all)*v3IndexLen)
	var body []byte
	bodyOff := uint64(v3HeaderLen + len(all)*v3IndexLen)
	var gbuf bytes.Buffer
	for _, e := range all {
		set := c.reconciledAnswers(e, view)
		gbuf.Reset()
		if err := graph.WriteGraph(&gbuf, e.Graph); err != nil {
			return err
		}
		gb := gbuf.Bytes()
		entryOff := bodyOff + uint64(len(body))
		body = append(body, gb...)
		ansStart := len(body)
		body = set.AppendBinary(body)
		ab := body[ansStart:]

		index = binary.LittleEndian.AppendUint64(index, uint64(e.Fingerprint))
		index = binary.LittleEndian.AppendUint32(index, uint32(e.Type))
		index = binary.LittleEndian.AppendUint32(index, uint32(e.BaseCandidates))
		index = e.FV.AppendBinary(index)
		index = binary.LittleEndian.AppendUint64(index, uint64(e.Hits))
		index = binary.LittleEndian.AppendUint64(index, math.Float64bits(e.SavedTests))
		index = binary.LittleEndian.AppendUint64(index, math.Float64bits(e.SavedCostNs))
		index = binary.LittleEndian.AppendUint64(index, entryOff)
		index = binary.LittleEndian.AppendUint64(index, uint64(len(gb)))
		index = binary.LittleEndian.AppendUint64(index, uint64(len(ab)))
		index = binary.LittleEndian.AppendUint64(index, fnv1a(gb))
		index = binary.LittleEndian.AppendUint64(index, fnv1a(ab))
	}

	hdr := make([]byte, 0, v3HeaderLen)
	hdr = append(hdr, stateMagicV3...)
	hdr = binary.LittleEndian.AppendUint32(hdr, stateVersionV3)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(view.Size()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(view.Epoch()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(all)))
	hdr = binary.LittleEndian.AppendUint64(hdr, bodyOff)
	hdr = binary.LittleEndian.AppendUint64(hdr, bodyOff+uint64(len(body)))
	hdr = binary.LittleEndian.AppendUint64(hdr, fnv1a(index))
	hdr = binary.LittleEndian.AppendUint64(hdr, fnv1a(hdr))

	bw := bufio.NewWriter(w)
	for _, sec := range [][]byte{hdr, index, body} {
		if _, err := bw.Write(sec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RestoreStateLazy restores a v3 snapshot from path in lazy mode: the
// header, index and graphs load now (hit detection is immediately live),
// answer bodies fault in on first access. The returned closer owns the
// backing file (mmapped where the platform supports it) and must stay
// open for the cache's lifetime; closing it while unfaulted entries
// remain makes their first access panic. The restore itself is
// all-or-nothing, like ReadState.
func (c *Cache) RestoreStateLazy(path string) (io.Closer, error) {
	f, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	src := &stateSource{r: f, size: f.Size(), closer: f}
	if err := c.readStateV3(src, true); err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

// v3Error builds a restore error for the binary format.
func v3Error(format string, args ...any) error {
	return fmt.Errorf("core: state v3: %s", fmt.Sprintf(format, args...))
}

// readFullAt reads exactly len(p) bytes at off, mapping a short read to
// a truncation error.
func readFullAt(r io.ReaderAt, p []byte, off int64, what string) error {
	n, err := r.ReadAt(p, off)
	if n < len(p) {
		if err == nil || err == io.EOF {
			return v3Error("%s truncated: %d of %d bytes at offset %d", what, n, len(p), off)
		}
		return v3Error("reading %s at offset %d: %v", what, off, err)
	}
	return nil
}

// readStateV3 parses and restores a v3 snapshot from src, eagerly or
// lazily. Validation mirrors the writer exactly (see the format comment);
// nothing is installed until the whole snapshot — in lazy mode: header,
// index and every graph blob — verified.
//
//gclint:acquires dsMu windowMu policyMu shard
//gclint:pins dataset
func (c *Cache) readStateV3(src *stateSource, lazy bool) error {
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()

	hdr := make([]byte, v3HeaderLen)
	if err := readFullAt(src.r, hdr, 0, "header"); err != nil {
		return err
	}
	if string(hdr[:4]) != stateMagicV3 {
		return v3Error("bad magic %q", hdr[:4])
	}
	if got, want := fnv1a(hdr[:56]), binary.LittleEndian.Uint64(hdr[56:]); got != want {
		return v3Error("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != stateVersionV3 {
		return v3Error("unsupported state version %d (want %d)", v, stateVersionV3)
	}
	dsSize64 := binary.LittleEndian.Uint64(hdr[8:])
	entryCount := binary.LittleEndian.Uint64(hdr[24:])
	bodyOff := binary.LittleEndian.Uint64(hdr[32:])
	fileSize := binary.LittleEndian.Uint64(hdr[40:])
	indexSum := binary.LittleEndian.Uint64(hdr[48:])
	if dsSize64 != uint64(view.Size()) {
		return v3Error("state is for a %d-graph dataset, cache has %d", dsSize64, view.Size())
	}
	dsSize := int(dsSize64)
	if fileSize != uint64(src.size) {
		return v3Error("file size %d, header declares %d", src.size, fileSize)
	}
	if entryCount > (fileSize-v3HeaderLen)/v3IndexLen+1 ||
		bodyOff != v3HeaderLen+entryCount*v3IndexLen || bodyOff > fileSize {
		return v3Error("section geometry: %d entries, body at %d, file size %d", entryCount, bodyOff, fileSize)
	}

	idx := make([]byte, bodyOff-v3HeaderLen)
	if err := readFullAt(src.r, idx, v3HeaderLen, "index"); err != nil {
		return err
	}
	if fnv1a(idx) != indexSum {
		return v3Error("index checksum mismatch")
	}

	// Ids tombstoned since the snapshot was written must be masked out of
	// every restored set. Eager restores mask with the live set directly;
	// lazy restores carry the tombstones as a drop list applied at
	// fault-in (the live mask's capacity grows with later additions, but
	// the drop list stays valid forever).
	var drops []int
	if lazy && view.LiveCount() != view.Size() {
		live := view.Live()
		for i := 0; i < dsSize; i++ {
			if !live.Contains(i) {
				drops = append(drops, i)
			}
		}
	}
	src.mon = &c.mon

	entries := make([]*Entry, 0, entryCount)
	expectOff := bodyOff
	for i := uint64(0); i < entryCount; i++ {
		rec := idx[i*v3IndexLen : (i+1)*v3IndexLen]
		fp := binary.LittleEndian.Uint64(rec[0:])
		qt := binary.LittleEndian.Uint32(rec[8:])
		bc := binary.LittleEndian.Uint32(rec[12:])
		fv, err := ftv.FeatureVectorFromBinary(rec[16:72])
		if err != nil {
			return v3Error("entry %d: %v", i, err)
		}
		hits := int64(binary.LittleEndian.Uint64(rec[72:]))
		savedTests := math.Float64frombits(binary.LittleEndian.Uint64(rec[80:]))
		savedCost := math.Float64frombits(binary.LittleEndian.Uint64(rec[88:]))
		entryOff := binary.LittleEndian.Uint64(rec[96:])
		graphLen := binary.LittleEndian.Uint64(rec[104:])
		ansLen := binary.LittleEndian.Uint64(rec[112:])
		graphSum := binary.LittleEndian.Uint64(rec[120:])
		ansSum := binary.LittleEndian.Uint64(rec[128:])

		if qt != uint32(ftv.Subgraph) && qt != uint32(ftv.Supergraph) {
			return v3Error("entry %d: unknown query type %d", i, qt)
		}
		if hits < 0 {
			return v3Error("entry %d: negative hit count %d", i, hits)
		}
		if math.IsNaN(savedTests) || math.IsInf(savedTests, 0) || savedTests < 0 ||
			math.IsNaN(savedCost) || math.IsInf(savedCost, 0) || savedCost < 0 {
			return v3Error("entry %d: implausible utility %g/%g", i, savedTests, savedCost)
		}
		// Records must tile the body section exactly: offsets are derived,
		// not trusted, so no record can alias or skip another's bytes.
		if entryOff != expectOff {
			return v3Error("entry %d: body offset %d, want %d", i, entryOff, expectOff)
		}
		if graphLen > fileSize || ansLen > fileSize || expectOff+graphLen+ansLen > fileSize {
			return v3Error("entry %d: body [%d,+%d+%d) exceeds file size %d", i, entryOff, graphLen, ansLen, fileSize)
		}
		expectOff += graphLen + ansLen

		gb := make([]byte, graphLen)
		if err := readFullAt(src.r, gb, int64(entryOff), fmt.Sprintf("entry %d graph", i)); err != nil {
			return err
		}
		if fnv1a(gb) != graphSum {
			return v3Error("entry %d: graph checksum mismatch", i)
		}
		gs, err := graph.ReadAll(bytes.NewReader(gb))
		if err != nil {
			return v3Error("entry %d: graph: %v", i, err)
		}
		if len(gs) != 1 {
			return v3Error("entry %d: want one graph, got %d", i, len(gs))
		}
		// Signatures are rebuilt from the parsed graph, never trusted from
		// disk; the recorded fingerprint and feature vector must then agree
		// with the rebuilt ones, or the index and body sections describe
		// different graphs.
		sig := c.signatureOf(gs[0])
		if uint64(sig.fp) != fp {
			return v3Error("entry %d: fingerprint mismatch (index %#x, graph %#x)", i, fp, uint64(sig.fp))
		}
		if sig.fv != fv {
			return v3Error("entry %d: feature vector mismatch between index and graph", i)
		}

		ansOff := entryOff + graphLen
		var e *Entry
		if lazy {
			e = entryShell(0, gs[0], ftv.QueryType(qt), int(bc), sig, 0)
			e.ans.p.Store(&answerState{epoch: view.Epoch(), body: &lazyBody{
				src:    src,
				off:    int64(ansOff),
				length: int64(ansLen),
				sum:    ansSum,
				cap:    dsSize,
				drops:  drops,
			}})
		} else {
			ab := make([]byte, ansLen)
			if err := readFullAt(src.r, ab, int64(ansOff), fmt.Sprintf("entry %d answers", i)); err != nil {
				return err
			}
			if fnv1a(ab) != ansSum {
				return v3Error("entry %d: answer checksum mismatch", i)
			}
			set, n, err := bitset.FromBinary(ab)
			if err != nil {
				return v3Error("entry %d: answers: %v", i, err)
			}
			if n != len(ab) {
				return v3Error("entry %d: answers: %d trailing bytes", i, len(ab)-n)
			}
			if set.Len() != dsSize {
				return v3Error("entry %d: answer capacity %d, want %d", i, set.Len(), dsSize)
			}
			set.And(view.Live())
			e = entryFromSig(0, gs[0], ftv.QueryType(qt), set, int(bc), sig, 0, view.Epoch())
		}
		e.Hits = hits
		e.SavedTests = savedTests
		e.SavedCostNs = savedCost
		entries = append(entries, e)
	}
	if expectOff != fileSize {
		return v3Error("body section ends at %d, file size %d", expectOff, fileSize)
	}

	c.replaceEntries(entries)
	return nil
}
