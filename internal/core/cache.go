package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/stats"
)

// Cache is the GraphCache kernel deployed over a Method M. It is safe for
// concurrent use; queries are serialized internally (verification inside a
// query can still be parallel, see Config.VerifyWorkers).
type Cache struct {
	mu     sync.Mutex
	method *ftv.Method
	cfg    Config
	policy Policy

	entries []*Entry
	byFP    map[graph.Fingerprint][]*Entry
	window  []*Entry
	nextID  int
	tick    int64

	// costEMA tracks per-dataset-graph verification cost (ns); globalCost
	// backs graphs never verified. Both feed PINC's saved-cost estimates.
	costEMA    []*stats.EMA
	globalCost *stats.EMA

	memBytes int
	mon      Monitor
}

// defaultCostNs seeds cost estimates before any verification ran.
const defaultCostNs = 50_000

// New builds a Cache over the method. The config is validated; a nil
// Policy defaults to a fresh HD instance.
func New(method *ftv.Method, cfg Config) (*Cache, error) {
	if err := cfg.validate(method); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = NewHD()
	}
	c := &Cache{
		method:     method,
		cfg:        cfg,
		policy:     cfg.Policy,
		byFP:       make(map[graph.Fingerprint][]*Entry),
		costEMA:    make([]*stats.EMA, method.DatasetSize()),
		globalCost: stats.NewEMA(0.05),
	}
	return c, nil
}

// MustNew is New that panics on error, for tests and examples with
// constant configs.
func MustNew(method *ftv.Method, cfg Config) *Cache {
	c, err := New(method, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Method returns the underlying Method M.
func (c *Cache) Method() *ftv.Method { return c.method }

// PolicyName returns the active replacement policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Len returns the number of admitted entries (excluding the window).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// WindowLen returns the number of entries pending admission.
func (c *Cache) WindowLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.window)
}

// Bytes returns the estimated resident size of admitted entries.
func (c *Cache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memBytes
}

// Stats returns a snapshot of the operational counters.
func (c *Cache) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Snapshot()
}

// Entries returns a copy of the admitted entries slice (the Entry pointers
// are shared; treat them as read-only). Intended for demonstrators and
// tests inspecting cache contents.
func (c *Cache) Entries() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Execute processes one query through the cache. The returned Result owns
// its bitsets; callers may mutate them freely.
func (c *Cache) Execute(q *graph.Graph, qt ftv.QueryType) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query graph")
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.tick++
	c.mon.queries++
	n := c.method.DatasetSize()
	sig := c.signatureOf(q)

	// Stage 1: exact-match fast path — zero dataset tests.
	t0 := time.Now()
	if e := c.findExact(q, qt, sig); e != nil {
		hitTime := time.Since(t0)
		saved := e.BaseCandidates
		ev := &HitEvent{
			Entry:       e,
			Kind:        ExactHit,
			SavedTests:  saved,
			SavedCostNs: float64(saved) * c.estimatedMeanCost(),
			Tick:        c.tick,
		}
		c.policy.UpdateCacheStaInfo(ev)
		c.mon.exactHits++
		c.mon.testsSaved += int64(saved)
		c.mon.hitNs += hitTime.Nanoseconds()
		res := &Result{
			Answers:        e.Answers.Clone(),
			BaseCandidates: saved,
			Candidates:     0,
			Tests:          0,
			Sure:           e.Answers.Clone(),
			Excluded:       bitset.New(n),
			Survivors:      bitset.New(n),
			Hits:           []HitRef{{EntryID: e.ID, Kind: ExactHit, SavedTests: saved}},
			ExactHit:       true,
			HitTime:        hitTime,
		}
		c.selfCheck(q, qt, res)
		return res, nil
	}
	hitTime := time.Since(t0)

	// Stage 2: Method M filtering.
	tf := time.Now()
	cm := c.method.Candidates(q, qt)
	filterTime := time.Since(tf)

	// Stage 3: sub/super hit detection over the cache.
	th := time.Now()
	hs := c.detectHits(q, qt, sig)
	hitTime += time.Since(th)
	c.mon.hitDetectIso += int64(hs.isoTests)

	// Stage 4: candidate algebra. Which direction delivers guaranteed
	// answers (S) versus pruning (S′) depends on the query type; see the
	// package comment for the containment proofs.
	answerHits, pruneHits := hs.sub, hs.super
	answerKind, pruneKind := SubHit, SuperHit
	if qt == ftv.Supergraph {
		answerHits, pruneHits = hs.super, hs.sub
		answerKind, pruneKind = SuperHit, SubHit
	}

	sure := bitset.New(n)
	var hits []HitRef
	for _, h := range answerHits {
		saved := h.Answers.IntersectionCount(cm)
		c.creditHit(h, answerKind, saved, c.costOfSet(h.Answers, cm, true), &hits)
		sure.Or(h.Answers)
	}
	candPruned := cm.Clone()
	for _, h := range pruneHits {
		saved := cm.DifferenceCount(h.Answers)
		c.creditHit(h, pruneKind, saved, c.costOfSet(h.Answers, cm, false), &hits)
		candPruned.And(h.Answers)
	}
	excluded := cm.Clone()
	excluded.AndNot(candPruned)

	// C = (C_M ∩ ⋂ A(h')) \ S.
	cand := candPruned.Clone()
	cand.AndNot(sure)

	if len(hs.sub) > 0 {
		c.mon.subHitQueries++
		c.mon.subHits += int64(len(hs.sub))
	}
	if len(hs.super) > 0 {
		c.mon.superHitQuerys++
		c.mon.superHits += int64(len(hs.super))
	}

	// Stage 5: verification of the reduced candidate set.
	tv := time.Now()
	survivors := c.verify(q, qt, cand)
	verifyTime := time.Since(tv)

	answers := survivors.Clone()
	answers.Or(sure)

	tests := cand.Count()
	c.mon.testsExecuted += int64(tests)
	c.mon.testsSaved += int64(cm.Count() - tests)
	c.mon.filterNs += filterTime.Nanoseconds()
	c.mon.hitNs += hitTime.Nanoseconds()
	c.mon.verifyNs += verifyTime.Nanoseconds()

	res := &Result{
		Answers:        answers,
		BaseCandidates: cm.Count(),
		Candidates:     tests,
		Tests:          tests,
		Sure:           sure,
		Excluded:       excluded,
		Survivors:      survivors,
		Hits:           hits,
		FilterTime:     filterTime,
		HitTime:        hitTime,
		VerifyTime:     verifyTime,
	}
	c.selfCheck(q, qt, res)

	// Stage 6: admission via the window manager.
	c.admit(q, qt, answers.Clone(), cm.Count(), sig)
	return res, nil
}

// creditHit updates policy utilities and the result's hit list.
func (c *Cache) creditHit(h *Entry, kind HitKind, savedTests int, savedCost float64, hits *[]HitRef) {
	ev := &HitEvent{
		Entry:       h,
		Kind:        kind,
		SavedTests:  savedTests,
		SavedCostNs: savedCost,
		Tick:        c.tick,
	}
	c.policy.UpdateCacheStaInfo(ev)
	*hits = append(*hits, HitRef{EntryID: h.ID, Kind: kind, SavedTests: savedTests})
}

// costOfSet estimates the verification cost (ns) of the tests a hit saved:
// for answer-delivering hits the graphs in answers ∩ cm; for pruning hits
// the graphs in cm \ answers.
func (c *Cache) costOfSet(answers, cm *bitset.Set, intersect bool) float64 {
	s := answers.Clone()
	if intersect {
		s.And(cm)
	} else {
		s2 := cm.Clone()
		s2.AndNot(answers)
		s = s2
	}
	total := 0.0
	s.ForEach(func(gid int) bool {
		total += c.estimatedCost(gid)
		return true
	})
	return total
}

func (c *Cache) estimatedCost(gid int) float64 {
	if e := c.costEMA[gid]; e != nil && e.Initialized() {
		return e.Value()
	}
	return c.estimatedMeanCost()
}

func (c *Cache) estimatedMeanCost() float64 {
	if c.globalCost.Initialized() {
		return c.globalCost.Value()
	}
	return defaultCostNs
}

// verify runs the sub-iso tests over the candidate set, sequentially or
// with a bounded worker pool, recording per-graph costs.
func (c *Cache) verify(q *graph.Graph, qt ftv.QueryType, cand *bitset.Set) *bitset.Set {
	n := c.method.DatasetSize()
	out := bitset.New(n)
	ids := cand.Indices()
	if len(ids) == 0 {
		return out
	}
	if c.cfg.VerifyWorkers < 2 || len(ids) < 4 {
		for _, gid := range ids {
			t0 := time.Now()
			ok := c.method.VerifyCandidate(q, gid, qt)
			c.recordCost(gid, time.Since(t0))
			if ok {
				out.Add(gid)
			}
		}
		return out
	}

	type verdict struct {
		gid int
		ok  bool
		dur time.Duration
	}
	workers := c.cfg.VerifyWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	results := make([]verdict, len(ids))
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				gid := ids[i]
				t0 := time.Now()
				ok := c.method.VerifyCandidate(q, gid, qt)
				results[i] = verdict{gid, ok, time.Since(t0)}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, v := range results {
		c.recordCost(v.gid, v.dur)
		if v.ok {
			out.Add(v.gid)
		}
	}
	return out
}

func (c *Cache) recordCost(gid int, d time.Duration) {
	if c.costEMA[gid] == nil {
		c.costEMA[gid] = stats.NewEMA(0.3)
	}
	ns := float64(d.Nanoseconds())
	c.costEMA[gid].Add(ns)
	c.globalCost.Add(ns)
}

// admit stages the executed query in the admission window and turns the
// window when full — the Window Manager.
func (c *Cache) admit(q *graph.Graph, qt ftv.QueryType, answers *bitset.Set, baseCandidates int, sig querySig) {
	e := &Entry{
		ID:             c.nextID,
		Graph:          q,
		Type:           qt,
		Answers:        answers,
		Fingerprint:    sig.fp,
		LabelVec:       sig.labelVec,
		Features:       sig.features,
		BaseCandidates: baseCandidates,
		InsertedAt:     c.tick,
		LastUsed:       c.tick,
	}
	c.nextID++
	c.window = append(c.window, e)
	if len(c.window) >= c.cfg.Window {
		c.turnWindow()
	}
}

// turnWindow ages utilities, makes room and admits the pending window.
// Victims are selected among the RESIDENT entries before admission — the
// newly executed queries always get in, displacing the least-useful cached
// graphs (Figure 2(c): "10 of which are replaced by the newly coming
// queries"). Evicting after admission would instead throw away the
// newcomers, whose utilities are necessarily still zero.
func (c *Cache) turnWindow() {
	c.mon.windowTurns++
	c.policy.OnWindowTurn()
	for _, e := range c.entries {
		e.age(c.cfg.DecayFactor)
	}
	if excess := len(c.entries) + len(c.window) - c.cfg.Capacity; excess > 0 {
		c.evict(excess)
	}
	for _, e := range c.window {
		c.entries = append(c.entries, e)
		c.byFP[e.Fingerprint] = append(c.byFP[e.Fingerprint], e)
		c.memBytes += e.Bytes()
		c.mon.admissions++
	}
	c.window = c.window[:0]

	// A window larger than the whole capacity can still overflow.
	if excess := len(c.entries) - c.cfg.Capacity; excess > 0 {
		c.evict(excess)
	}
	for c.cfg.MemoryBudget > 0 && c.memBytes > c.cfg.MemoryBudget && len(c.entries) > 1 {
		c.evict(1)
	}
}

// evict removes x entries chosen by the policy, sanitizing the returned
// positions defensively against buggy custom policies (duplicates or
// out-of-range indices are dropped; a shortfall is filled FIFO).
func (c *Cache) evict(x int) {
	if x <= 0 || len(c.entries) == 0 {
		return
	}
	if x > len(c.entries) {
		x = len(c.entries)
	}
	pos := c.policy.ReplacedContent(c.entries, x)
	seen := make(map[int]bool, len(pos))
	var victims []int
	for _, p := range pos {
		if p >= 0 && p < len(c.entries) && !seen[p] {
			seen[p] = true
			victims = append(victims, p)
			if len(victims) == x {
				break
			}
		}
	}
	if len(victims) < x {
		// Fill the shortfall oldest-first.
		order := make([]int, len(c.entries))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return c.entries[order[a]].InsertedAt < c.entries[order[b]].InsertedAt
		})
		for _, p := range order {
			if !seen[p] {
				seen[p] = true
				victims = append(victims, p)
				if len(victims) == x {
					break
				}
			}
		}
	}

	evictSet := make(map[int]bool, len(victims))
	for _, p := range victims {
		evictSet[p] = true
	}
	kept := c.entries[:0]
	for i, e := range c.entries {
		if evictSet[i] {
			c.removeFromFP(e)
			c.memBytes -= e.Bytes()
			c.mon.evictions++
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so evicted entries are collectable.
	for i := len(kept); i < len(c.entries); i++ {
		c.entries[i] = nil
	}
	c.entries = kept
}

func (c *Cache) removeFromFP(e *Entry) {
	list := c.byFP[e.Fingerprint]
	for i, x := range list {
		if x == e {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(c.byFP, e.Fingerprint)
	} else {
		c.byFP[e.Fingerprint] = list
	}
}

// selfCheck cross-validates a result against the uncached method when
// enabled; any mismatch is a kernel bug, hence the panic.
func (c *Cache) selfCheck(q *graph.Graph, qt ftv.QueryType, res *Result) {
	if !c.cfg.SelfCheck {
		return
	}
	base := c.method.Run(q, qt)
	if !base.Answers.Equal(res.Answers) {
		panic(fmt.Sprintf("core: self-check failed for %s query %v: cache %v, base %v",
			qt, q, res.Answers, base.Answers))
	}
}
