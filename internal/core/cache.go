package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/stats"
)

// Cache is the GraphCache kernel deployed over a Method M, safe for
// concurrent use by many goroutines at once.
//
// # Locking discipline
//
// Admitted entries are partitioned across Config.Shards lock-striped
// shards by graph fingerprint; each shard carries its own RWMutex. The
// expensive stages of a query — Method M filtering, hit-detection iso
// tests and candidate verification — run without holding any lock at all:
// they operate on the immutable dataset, on immutable entry fields (Graph,
// Answers, signatures) and on point-in-time shard snapshots. What remains
// serialized sits behind coordMu, a single coordinator mutex guarding the
// genuinely cross-shard state: the admission window, ID assignment, the
// replacement policy (and the mutable per-entry utility fields it
// updates), and the verification-cost EMAs. These critical sections are
// short — counter arithmetic, never iso tests or dataset scans — except
// for window turns, which additionally take every shard write lock to age,
// evict and admit atomically. The lock hierarchy is coordMu → shard locks;
// the reverse nesting never occurs. Operational counters (Monitor) are
// atomics and bypass locks entirely.
//
// Sub/super hit detection consults the global feature index (hitIndex): a
// copy-on-write, ID-ordered summary array republished atomically at the
// end of every window turn and state restore — inside the same
// coordMu+all-shards critical section that mutates the entries — and read
// with a single atomic load, so the hot path takes no shard lock at all.
// Config.IndexOff restores the shard-snapshot scan as the measurable
// baseline.
//
// Entries are kept globally ordered by ID (admission order) when gathered
// across shards, so policy decisions — and therefore cache contents — are
// identical to a single-shard cache when queries are issued sequentially,
// regardless of the shard count (property-tested in equivalence_test.go).
// That guarantee is exact for timing-independent policies (LRU, FIFO,
// POP, PIN); PINC and the default HD additionally rank victims by
// measured verification nanoseconds, so their eviction choices can vary
// between physical runs — any two runs, independent of sharding. Under
// concurrent submission the admission order (and hence eviction choices)
// depends on goroutine scheduling, but every individual answer set
// remains exact.
type Cache struct {
	method *ftv.Method
	cfg    Config
	policy Policy

	shards []*shard

	// serialMu is taken for the whole of Execute when cfg.Serialized is
	// set — the pre-sharding engine's behavior, kept as the measurable
	// baseline for the parallel-throughput benchmarks and as the reference
	// configuration for equivalence tests.
	serialMu sync.Mutex

	// coordMu guards window, nextID, the policy and the per-entry utility
	// fields it mutates, and the cost EMAs.
	coordMu sync.Mutex
	window  []*Entry
	nextID  int

	// tick is the global query sequence number (atomic: assigned at query
	// start, before any lock).
	tick atomic.Int64

	// costEMA tracks per-dataset-graph verification cost (ns); globalCost
	// backs graphs never verified. Both feed PINC's saved-cost estimates.
	// The EMA structs are mutated only in recordCosts under coordMu;
	// costVal/globalVal mirror their current values as float bits so the
	// hit-credit paths read estimates lock-free (0 bits = no estimate yet).
	costEMA    []*stats.EMA
	globalCost *stats.EMA
	costVal    []atomic.Uint64
	globalVal  atomic.Uint64

	// idx is the global cache-entry feature index consulted by hit
	// detection: a copy-on-write, ID-ordered array of containment
	// summaries published atomically by every shard mutation (see
	// hitIndex for the publication rules). Unused when cfg.IndexOff.
	idx hitIndex

	mon Monitor
}

// defaultCostNs seeds cost estimates before any verification ran.
const defaultCostNs = 50_000

// New builds a Cache over the method. The config is validated; a nil
// Policy defaults to a fresh HD instance.
func New(method *ftv.Method, cfg Config) (*Cache, error) {
	if err := cfg.validate(method); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = NewHD()
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	c := &Cache{
		method:     method,
		cfg:        cfg,
		policy:     cfg.Policy,
		shards:     newShards(cfg.Shards),
		costEMA:    make([]*stats.EMA, method.DatasetSize()),
		globalCost: stats.NewEMA(0.05),
		costVal:    make([]atomic.Uint64, method.DatasetSize()),
	}
	return c, nil
}

// MustNew is New that panics on error, for tests and examples with
// constant configs.
func MustNew(method *ftv.Method, cfg Config) *Cache {
	c, err := New(method, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Method returns the underlying Method M.
func (c *Cache) Method() *ftv.Method { return c.method }

// PolicyName returns the active replacement policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Shards returns the number of lock shards the cache was built with.
func (c *Cache) Shards() int { return len(c.shards) }

// Len returns the number of admitted entries (excluding the window).
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// WindowLen returns the number of entries pending admission.
func (c *Cache) WindowLen() int {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	return len(c.window)
}

// Bytes returns the estimated resident size of admitted entries.
func (c *Cache) Bytes() int {
	b := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		b += sh.memBytes
		sh.mu.RUnlock()
	}
	return b
}

// Stats returns a snapshot of the operational counters.
func (c *Cache) Stats() Snapshot {
	return c.mon.Snapshot()
}

// Entries returns the admitted entries in admission order as defensive
// copies: the Entry structs are snapshots taken under the coordinator
// lock (so the mutable utility fields are read race-free), while Graph,
// Answers and the signature fields still alias the cache's immutable
// originals. Intended for demonstrators and tests inspecting cache
// contents.
func (c *Cache) Entries() []*Entry {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	all := c.entriesSnapshot()
	out := make([]*Entry, len(all))
	for i, e := range all {
		cp := *e
		out[i] = &cp
	}
	return out
}

// Execute processes one query through the cache. The returned Result owns
// its bitsets; callers may mutate them freely. Execute is safe to call
// from any number of goroutines; see the Cache doc comment for what runs
// in parallel and what serializes.
func (c *Cache) Execute(q *graph.Graph, qt ftv.QueryType) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query graph")
	}
	if c.cfg.Serialized {
		c.serialMu.Lock()
		defer c.serialMu.Unlock()
	}

	tick := c.tick.Add(1)
	c.mon.queries.Add(1)
	n := c.method.DatasetSize()
	sig := c.signatureOf(q)

	// Stage 1: exact-match fast path — zero dataset tests.
	t0 := time.Now()
	if e := c.findExact(q, qt, sig); e != nil {
		hitTime := time.Since(t0)
		saved := e.BaseCandidates
		ev := &HitEvent{
			Entry:       e,
			Kind:        ExactHit,
			SavedTests:  saved,
			SavedCostNs: float64(saved) * c.estimatedMeanCost(),
			Tick:        tick,
		}
		c.coordMu.Lock()
		c.policy.UpdateCacheStaInfo(ev)
		c.coordMu.Unlock()
		c.mon.exactHits.Add(1)
		c.mon.testsSaved.Add(int64(saved))
		c.mon.hitNs.Add(hitTime.Nanoseconds())
		res := &Result{
			Answers:        e.Answers.Clone(),
			BaseCandidates: saved,
			Candidates:     0,
			Tests:          0,
			Sure:           e.Answers.Clone(),
			Excluded:       bitset.New(n),
			Survivors:      bitset.New(n),
			Hits:           []HitRef{{EntryID: e.ID, Kind: ExactHit, SavedTests: saved}},
			ExactHit:       true,
			HitTime:        hitTime,
		}
		c.selfCheck(q, qt, res)
		return res, nil
	}
	hitTime := time.Since(t0)

	// Stage 2: Method M filtering (lock-free: the filter index is
	// immutable after construction).
	tf := time.Now()
	cm := c.method.Candidates(q, qt)
	filterTime := time.Since(tf)

	// Stage 3: sub/super hit detection over a point-in-time snapshot of
	// the cache. The iso tests run without any lock; entries evicted
	// mid-detection stay sound (their answer sets remain exact over the
	// immutable dataset).
	th := time.Now()
	hs := c.detectHits(q, qt, sig)
	hitTime += time.Since(th)
	c.mon.hitDetectIso.Add(int64(hs.isoTests))

	// Stage 4: candidate algebra. Which direction delivers guaranteed
	// answers (S) versus pruning (S′) depends on the query type; see the
	// package comment for the containment proofs.
	answerHits, pruneHits := hs.sub, hs.super
	answerKind, pruneKind := SubHit, SuperHit
	if qt == ftv.Supergraph {
		answerHits, pruneHits = hs.super, hs.sub
		answerKind, pruneKind = SuperHit, SubHit
	}

	// Saved-test sets and their cost estimates are computed lock-free (the
	// cost mirror is atomic); only the policy updates run under coordMu,
	// keeping the critical section to counter arithmetic per hit.
	type hitCredit struct {
		h     *Entry
		kind  HitKind
		saved int
		cost  float64
	}
	costOf := func(s *bitset.Set) (int, float64) {
		saved, cost := 0, 0.0
		s.ForEach(func(gid int) bool {
			saved++
			cost += c.estimatedCost(gid)
			return true
		})
		return saved, cost
	}
	credits := make([]hitCredit, 0, len(answerHits)+len(pruneHits))
	sure := bitset.New(n)
	for _, h := range answerHits {
		s := h.Answers.Clone()
		s.And(cm)
		saved, cost := costOf(s)
		credits = append(credits, hitCredit{h, answerKind, saved, cost})
		sure.Or(h.Answers)
	}
	candPruned := cm.Clone()
	for _, h := range pruneHits {
		s := cm.Clone()
		s.AndNot(h.Answers)
		saved, cost := costOf(s)
		credits = append(credits, hitCredit{h, pruneKind, saved, cost})
		candPruned.And(h.Answers)
	}
	var hits []HitRef
	c.coordMu.Lock()
	for _, cr := range credits {
		c.creditHit(cr.h, cr.kind, cr.saved, cr.cost, tick, &hits)
	}
	c.coordMu.Unlock()
	excluded := cm.Clone()
	excluded.AndNot(candPruned)

	// C = (C_M ∩ ⋂ A(h')) \ S.
	cand := candPruned.Clone()
	cand.AndNot(sure)

	if len(hs.sub) > 0 {
		c.mon.subHitQueries.Add(1)
		c.mon.subHits.Add(int64(len(hs.sub)))
	}
	if len(hs.super) > 0 {
		c.mon.superHitQueries.Add(1)
		c.mon.superHits.Add(int64(len(hs.super)))
	}

	// Stage 5: verification of the reduced candidate set (lock-free; cost
	// samples are folded into the EMAs afterwards in one short section).
	tv := time.Now()
	survivors, costs := c.verify(q, qt, cand)
	verifyTime := time.Since(tv)
	c.recordCosts(costs)

	answers := survivors.Clone()
	answers.Or(sure)

	tests := cand.Count()
	c.mon.testsExecuted.Add(int64(tests))
	c.mon.testsSaved.Add(int64(cm.Count() - tests))
	c.mon.filterNs.Add(filterTime.Nanoseconds())
	c.mon.hitNs.Add(hitTime.Nanoseconds())
	c.mon.verifyNs.Add(verifyTime.Nanoseconds())

	res := &Result{
		Answers:        answers,
		BaseCandidates: cm.Count(),
		Candidates:     tests,
		Tests:          tests,
		Sure:           sure,
		Excluded:       excluded,
		Survivors:      survivors,
		Hits:           hits,
		FilterTime:     filterTime,
		HitTime:        hitTime,
		VerifyTime:     verifyTime,
	}
	c.selfCheck(q, qt, res)

	// Stage 6: admission via the window manager.
	c.admit(q, qt, answers.Clone(), cm.Count(), sig, tick)
	return res, nil
}

// creditHit updates policy utilities and the result's hit list. Caller
// holds coordMu.
func (c *Cache) creditHit(h *Entry, kind HitKind, savedTests int, savedCost float64, tick int64, hits *[]HitRef) {
	ev := &HitEvent{
		Entry:       h,
		Kind:        kind,
		SavedTests:  savedTests,
		SavedCostNs: savedCost,
		Tick:        tick,
	}
	c.policy.UpdateCacheStaInfo(ev)
	*hits = append(*hits, HitRef{EntryID: h.ID, Kind: kind, SavedTests: savedTests})
}

// estimatedCost reads one graph's cost estimate from the lock-free mirror.
func (c *Cache) estimatedCost(gid int) float64 {
	if bits := c.costVal[gid].Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return c.estimatedMeanCost()
}

// estimatedMeanCost reads the global cost estimate from the lock-free
// mirror.
func (c *Cache) estimatedMeanCost() float64 {
	if bits := c.globalVal.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return defaultCostNs
}

// costSample is one measured sub-iso verification.
type costSample struct {
	gid int
	dur time.Duration
}

// verify runs the sub-iso tests over the candidate set, sequentially or
// with a bounded worker pool. It holds no locks; measured costs are
// returned for the caller to fold into the EMAs.
func (c *Cache) verify(q *graph.Graph, qt ftv.QueryType, cand *bitset.Set) (*bitset.Set, []costSample) {
	n := c.method.DatasetSize()
	out := bitset.New(n)
	ids := cand.Indices()
	if len(ids) == 0 {
		return out, nil
	}
	costs := make([]costSample, 0, len(ids))
	if c.cfg.VerifyWorkers < 2 || len(ids) < 4 {
		for _, gid := range ids {
			t0 := time.Now()
			ok := c.method.VerifyCandidate(q, gid, qt)
			costs = append(costs, costSample{gid, time.Since(t0)})
			if ok {
				out.Add(gid)
			}
		}
		return out, costs
	}

	type verdict struct {
		gid int
		ok  bool
		dur time.Duration
	}
	workers := c.cfg.VerifyWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	results := make([]verdict, len(ids))
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				gid := ids[i]
				t0 := time.Now()
				ok := c.method.VerifyCandidate(q, gid, qt)
				results[i] = verdict{gid, ok, time.Since(t0)}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, v := range results {
		costs = append(costs, costSample{v.gid, v.dur})
		if v.ok {
			out.Add(v.gid)
		}
	}
	return out, costs
}

// recordCosts folds measured verification costs into the EMAs.
func (c *Cache) recordCosts(costs []costSample) {
	if len(costs) == 0 {
		return
	}
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	for _, s := range costs {
		if c.costEMA[s.gid] == nil {
			c.costEMA[s.gid] = stats.NewEMA(0.3)
		}
		ns := float64(s.dur.Nanoseconds())
		c.costEMA[s.gid].Add(ns)
		c.globalCost.Add(ns)
		c.costVal[s.gid].Store(math.Float64bits(c.costEMA[s.gid].Value()))
	}
	c.globalVal.Store(math.Float64bits(c.globalCost.Value()))
}

// admit stages the executed query in the admission window and turns the
// window when full — the Window Manager.
func (c *Cache) admit(q *graph.Graph, qt ftv.QueryType, answers *bitset.Set, baseCandidates int, sig querySig, tick int64) {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	e := entryFromSig(c.nextID, q, qt, answers, baseCandidates, sig, tick)
	c.nextID++
	c.window = append(c.window, e)
	if len(c.window) >= c.cfg.Window {
		c.turnWindow()
	}
}

// turnWindow ages utilities, makes room and admits the pending window.
// Victims are selected among the RESIDENT entries before admission — the
// newly executed queries always get in, displacing the least-useful cached
// graphs (Figure 2(c): "10 of which are replaced by the newly coming
// queries"). Evicting after admission would instead throw away the
// newcomers, whose utilities are necessarily still zero.
//
// Caller holds coordMu; turnWindow additionally takes every shard write
// lock so aging, eviction and admission are one atomic transition.
func (c *Cache) turnWindow() {
	c.mon.windowTurns.Add(1)
	c.policy.OnWindowTurn()
	c.lockAll()
	defer c.unlockAll()

	all := c.gatherLocked()
	for _, e := range all {
		e.age(c.cfg.DecayFactor)
	}
	if excess := len(all) + len(c.window) - c.cfg.Capacity; excess > 0 {
		all = c.evictLocked(all, excess)
	}
	for _, e := range c.window {
		c.shardFor(e.Fingerprint).insertLocked(e)
		all = append(all, e) // window IDs exceed all admitted IDs: stays sorted
		c.mon.admissions.Add(1)
	}
	c.window = c.window[:0]

	// A window larger than the whole capacity can still overflow.
	if excess := len(all) - c.cfg.Capacity; excess > 0 {
		all = c.evictLocked(all, excess)
	}
	for c.cfg.MemoryBudget > 0 && c.memBytesLocked() > c.cfg.MemoryBudget && len(all) > 1 {
		all = c.evictLocked(all, 1)
	}

	// Republish the feature index before the shard locks drop, so queries
	// never observe an index ahead of or behind the admitted entries.
	c.rebuildIndexLocked()
}

// memBytesLocked sums shard byte accounts. Caller holds all shard locks.
func (c *Cache) memBytesLocked() int {
	b := 0
	for _, sh := range c.shards {
		b += sh.memBytes
	}
	return b
}

// evictLocked removes x entries chosen by the policy from the ID-ordered
// slice all (the canonical cross-shard view) and from their owning shards,
// returning the surviving slice. The policy's returned positions are
// sanitized defensively against buggy custom policies (duplicates or
// out-of-range indices are dropped; a shortfall is filled FIFO). Caller
// holds coordMu and all shard write locks.
func (c *Cache) evictLocked(all []*Entry, x int) []*Entry {
	if x <= 0 || len(all) == 0 {
		return all
	}
	if x > len(all) {
		x = len(all)
	}
	pos := c.policy.ReplacedContent(all, x)
	seen := make(map[int]bool, len(pos))
	var victims []int
	for _, p := range pos {
		if p >= 0 && p < len(all) && !seen[p] {
			seen[p] = true
			victims = append(victims, p)
			if len(victims) == x {
				break
			}
		}
	}
	if len(victims) < x {
		// Fill the shortfall oldest-first.
		order := make([]int, len(all))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return all[order[a]].InsertedAt < all[order[b]].InsertedAt
		})
		for _, p := range order {
			if !seen[p] {
				seen[p] = true
				victims = append(victims, p)
				if len(victims) == x {
					break
				}
			}
		}
	}

	evictSet := make(map[int]bool, len(victims))
	for _, p := range victims {
		evictSet[p] = true
	}
	kept := all[:0]
	for i, e := range all {
		if evictSet[i] {
			c.shardFor(e.Fingerprint).removeLocked(e)
			c.mon.evictions.Add(1)
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so evicted entries are collectable.
	for i := len(kept); i < len(all); i++ {
		all[i] = nil
	}
	return kept
}

// selfCheck cross-validates a result against the uncached method when
// enabled; any mismatch is a kernel bug, hence the panic.
func (c *Cache) selfCheck(q *graph.Graph, qt ftv.QueryType, res *Result) {
	if !c.cfg.SelfCheck {
		return
	}
	base := c.method.Run(q, qt)
	if !base.Answers.Equal(res.Answers) {
		panic(fmt.Sprintf("core: self-check failed for %s query %v: cache %v, base %v",
			qt, q, res.Answers, base.Answers))
	}
}
