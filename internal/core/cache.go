package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Cache is the GraphCache kernel deployed over a Method M, safe for
// concurrent use by many goroutines at once.
//
// # Locking discipline
//
// Admitted entries are partitioned across Config.Shards lock-striped
// shards by graph fingerprint; each shard carries its own RWMutex. The
// expensive stages of a query — Method M filtering, hit-detection iso
// tests and candidate verification — run without holding any lock at all:
// they operate on the immutable dataset, on immutable entry fields (Graph,
// Answers, signatures) and on the lock-free published feature index.
//
// There is no global coordinator mutex on the per-query path. Each shard
// owns its own admission window: admit stages the entry in the owning
// shard under that shard's lock, and findExact consults only the owning
// shard's admitted entries and pending window. Entry IDs come from an
// atomic counter (claimed under the owning shard's lock, so each shard's
// ID order stays monotonic), and the verification-cost EMAs are lock-free
// CAS cells. The two cross-shard serialization points that remain are
// policyMu — the replacement policy and the per-entry utility fields it
// mutates are one shared structure, so hit crediting (counter arithmetic,
// only on queries that actually hit) and window turns take it — and the
// Serialized escape hatch.
//
// Window turns are per-shard: a full shard window turns under policyMu
// plus that single shard's write lock, aging and evicting only the
// turning shard's residents (capacity itself stays global, tracked in an
// atomic resident account), then republishing only that shard's
// copy-on-write slice of the feature index — hit detection reads the
// union of the per-shard slices, so no other shard blocks or rebuilds
// (see index.go for the publication rules). The lock hierarchy is
// dsMu → windowMu → policyMu → shard locks; reverse nestings never
// occur. dsMu is the dataset RWMutex: queries hold its read side for
// their whole run (pinning one dataset snapshot; queries never serialize
// against each other on it), live dataset mutations
// (AddGraph/RemoveGraph, see mutate.go) hold the write side while they
// patch cached answer sets. Operational counters (Monitor) are atomics
// and bypass locks entirely.
//
// Config.SharedWindow restores the previous admission engine as the
// measurable baseline (like Serialized and IndexOff): one global window
// guarded by windowMu, turned under policyMu plus every shard write lock
// with global capacity accounting.
//
// # Determinism
//
// A graph's fingerprint pins it to one shard, so for a sequential query
// stream the per-shard admission order — and hence every answer set — is
// deterministic at any fixed shard count. Per-shard and shared-window
// engines stage and turn at different moments, so they may classify
// sub/super hits differently and age different cache contents, but both
// always return byte-identical, exact answer sets
// (equivalence_test.go). With SharedWindow set, entries gathered across
// shards are globally ID-ordered, so cache contents are additionally
// identical to a single-shard cache at any shard count; at Shards: 1 the
// two window engines coincide exactly. Those guarantees are exact for
// timing-independent policies (LRU, FIFO, POP, PIN); PINC and the default
// HD rank victims by measured verification nanoseconds, so their eviction
// choices can vary between physical runs — any two runs, independent of
// sharding. Under concurrent submission admission order (and hence
// eviction choices) depends on goroutine scheduling, but every individual
// answer set remains exact.
//
// The lock hierarchy is machine-checked: the directive below and the
// //gclint: annotations on fields and functions drive the gclint
// analyzers (internal/lint), which fail the build on reverse nestings,
// unmet lock preconditions, and writes to published COW state.
//
//gclint:hierarchy serialMu dsMu windowMu policyMu shard
type Cache struct {
	method *ftv.Method
	cfg    Config
	policy Policy

	shards []*shard
	// shardWindow is the per-shard admission-window size:
	// ceil(Window/Shards), at least 1, so the total pending admissions
	// stay close to the configured W regardless of the shard count.
	shardWindow int

	// serialMu is taken for the whole of Execute when cfg.Serialized is
	// set — the pre-sharding engine's behavior, kept as the measurable
	// baseline for the parallel-throughput benchmarks and as the reference
	// configuration for equivalence tests.
	//gclint:lock serialMu
	serialMu sync.Mutex

	// dsMu orders queries against live dataset mutations: Execute (and the
	// state save/restore paths) hold the read side for their whole
	// duration, so every query runs against ONE dataset snapshot and its
	// answer is exact for that snapshot; AddGraph/RemoveGraph take the
	// write side, which both drains all in-flight queries before the
	// mutation patches cached state and guarantees no query observes a
	// half-maintained cache. Queries never serialize against each other on
	// it — dsLock stripes the reader count across padded per-slot
	// counters, so the read fast path touches no shared cache line (see
	// dslock.go). The outermost rung of the lock hierarchy:
	// dsMu → windowMu → policyMu → shard locks.
	//gclint:lock dsMu
	dsMu dsLock

	// windowMu guards the shared admission window — only used with
	// Config.SharedWindow; the per-shard engine stages in shard.window
	// under the shard lock instead.
	//gclint:lock windowMu
	windowMu sync.Mutex
	window   []*Entry

	// policyMu guards the replacement policy and the mutable per-entry
	// utility fields it reads and writes (Hits, LastUsed, SavedTests,
	// SavedCostNs): hit crediting, utility aging, and eviction accounting.
	// Never held across iso tests or dataset scans. Hierarchy: windowMu →
	// policyMu → shard locks.
	//gclint:lock policyMu
	policyMu sync.Mutex

	// nextID assigns entry IDs. Claimed under the owning shard's lock
	// (per-shard windows) or windowMu (shared window), so each window's
	// staging order is ascending in ID.
	nextID atomic.Int64

	// tick is the global query sequence number (atomic: assigned at query
	// start, before any lock).
	tick atomic.Int64

	// costVal and globalVal are lock-free EMA cells tracking per-dataset-
	// graph (and overall) verification cost in float64 ns, stored as bits
	// (0 bits = no estimate yet). Updates are CAS loops; reads are single
	// atomic loads, so neither hit crediting nor cost recording takes any
	// lock.
	costVal   []atomic.Uint64
	globalVal atomic.Uint64

	// res tracks cache-wide resident entries/bytes atomically, letting a
	// turning shard enforce the global capacity and memory budget without
	// other shards' locks (see residency). res covers static entry bytes
	// only; the shared answer-set bytes live in pool's account.
	res residency

	// pool interns answer sets across entries (see intern.go): identical
	// published sets collapse onto one canonical allocation, charged once.
	// Its mutex is a leaf — acquired under shard locks, never the reverse —
	// so it sits outside the checked hierarchy.
	pool *internPool

	mon Monitor
}

// defaultCostNs seeds cost estimates before any verification ran.
const defaultCostNs = 50_000

// costAlpha and globalCostAlpha are the EMA smoothing factors for the
// per-graph and overall verification-cost estimates.
const (
	costAlpha       = 0.3
	globalCostAlpha = 0.05
)

// New builds a Cache over the method. The config is validated; a nil
// Policy defaults to a fresh HD instance.
func New(method *ftv.Method, cfg Config) (*Cache, error) {
	if err := cfg.validate(method); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = NewHD()
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	c := &Cache{
		method:  method,
		cfg:     cfg,
		policy:  cfg.Policy,
		costVal: make([]atomic.Uint64, method.DatasetSize()),
	}
	c.pool = newInternPool()
	c.shards = newShards(cfg.Shards, &c.res, c.pool)
	c.shardWindow = (cfg.Window + cfg.Shards - 1) / cfg.Shards
	if c.shardWindow < 1 {
		c.shardWindow = 1
	}
	return c, nil
}

// MustNew is New that panics on error, for tests and examples with
// constant configs.
func MustNew(method *ftv.Method, cfg Config) *Cache {
	c, err := New(method, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Method returns the underlying Method M.
func (c *Cache) Method() *ftv.Method { return c.method }

// PolicyName returns the active replacement policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Shards returns the number of lock shards the cache was built with.
func (c *Cache) Shards() int { return len(c.shards) }

// newID claims the next entry ID. Callers hold the owning shard's lock
// (per-shard windows) or windowMu (shared window), which keeps each
// window's staging order ascending in ID.
func (c *Cache) newID() int {
	return int(c.nextID.Add(1) - 1)
}

// Len returns the number of admitted entries (excluding the windows). It
// reads the atomic residency account — every shard insert and removal
// maintains it — instead of walking the shards under their locks.
func (c *Cache) Len() int {
	return int(c.res.entries.Load())
}

// WindowLen returns the number of entries pending admission across all
// admission windows.
//
//gclint:acquires windowMu shard
func (c *Cache) WindowLen() int {
	if c.cfg.SharedWindow {
		c.windowMu.Lock()
		defer c.windowMu.Unlock()
		return len(c.window)
	}
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.window)
		sh.mu.RUnlock()
	}
	return n
}

// Bytes returns the estimated resident size of admitted entries: the
// static footprints from the atomic residency account (the same totals
// the per-shard memBytes fields sum to — asserted by
// TestResidencyAccountAgreement) plus the interned answer sets, each
// charged once however many entries share it.
func (c *Cache) Bytes() int {
	return int(c.res.bytes.Load() + c.pool.bytes.Load())
}

// Stats returns a snapshot of the operational counters, supplemented
// with the method-side filter-maintenance counters and the current
// addition-log length (those live on the method, which outlives any one
// cache).
func (c *Cache) Stats() Snapshot {
	s := c.mon.Snapshot()
	s.FilterInserts = c.method.FilterInserts()
	s.FilterRebuilds = c.method.FilterRebuilds()
	s.AdditionLogLen = c.method.AdditionLogLen()
	s.AnswerBytes = c.pool.bytes.Load()
	s.InternHits = c.pool.hits.Load()
	s.InternMisses = c.pool.misses.Load()
	return s
}

// ShardStat is one shard's occupancy snapshot: resident entries, pending
// admissions in the shard's window, per-shard window turns and resident
// bytes. Bytes covers the shard's static entry footprints only — answer
// bytes are pooled cache-wide (Snapshot.AnswerBytes). Turns stays 0 in
// shared-window mode, where turns are global and counted only by the
// Monitor's aggregate WindowTurns.
type ShardStat struct {
	Entries   int
	WindowLen int
	Turns     int64
	Bytes     int
}

// ShardStats reports each shard's occupancy in shard order. Each shard is
// read under its own read lock; the set is approximate under concurrent
// load, exactly like the Monitor counters.
//
//gclint:acquires shard
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.RLock()
		out[i] = ShardStat{
			Entries:   len(sh.entries),
			WindowLen: len(sh.window),
			Turns:     sh.turns.Load(),
			Bytes:     sh.memBytes,
		}
		sh.mu.RUnlock()
	}
	return out
}

// Entries returns the admitted entries in admission order as defensive
// copies: the Entry structs are snapshots taken under policyMu (so the
// mutable utility fields are read race-free; admissions and evictions
// also serialize on policyMu), while Graph, Answers and the signature
// fields still alias the cache's immutable originals. Intended for
// demonstrators and tests inspecting cache contents.
//
//gclint:acquires policyMu shard
func (c *Cache) Entries() []*Entry {
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	all := c.entriesSnapshot()
	out := make([]*Entry, len(all))
	for i, e := range all {
		cp := *e
		out[i] = &cp
	}
	return out
}

// Execute processes one query through the cache. The returned Result owns
// its bitsets; callers may mutate them freely (mathematically-equal
// fields may alias one set — see the Result doc comment). Execute is safe
// to call from any number of goroutines; see the Cache doc comment for
// what runs in parallel and what serializes.
//
//gclint:acquires serialMu dsMu windowMu policyMu shard
//gclint:pins dataset
func (c *Cache) Execute(q *graph.Graph, qt ftv.QueryType) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query graph")
	}
	if c.cfg.Serialized {
		c.serialMu.Lock()
		defer c.serialMu.Unlock()
	}
	// The read side of the dataset mutex pins one dataset snapshot for the
	// whole query: filtering, hit reconciliation, verification, self-check
	// and admission all see the same epoch. Queries share the read side
	// freely; only AddGraph/RemoveGraph take the write side.
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()

	tick := c.tick.Add(1)
	c.mon.queries.Add(1)
	n := view.Size()
	// Stage 0: fingerprint only. The exact-match probe consults nothing
	// else, so the expensive half of the signature (path features, label
	// vector, feature vector) is deferred until a miss is certain. The
	// fingerprint itself is memoized on the immutable query graph.
	fp := q.WLFingerprint(3)

	// Stage 1: exact-match fast path — zero dataset tests.
	t0 := time.Now()
	if e := c.findExact(q, qt, fp); e != nil {
		ans := c.reconciledAnswers(e, view)
		hitTime := time.Since(t0)
		saved := e.BaseCandidates
		// Price the savings like the sub/super path does: per-graph cost
		// estimates over the entry's answer set, the overall mean only for
		// the remainder of C_M (the candidates that verified negative).
		// Pricing every saved test at the mean would under-credit entries
		// whose savings concentrate on expensive graphs, skewing PINC/HD
		// victim ranking against exactly the entries worth keeping.
		cost := 0.0
		inAnswers := 0
		ans.ForEach(func(gid int) bool {
			inAnswers++
			cost += c.estimatedCost(gid)
			return true
		})
		if rem := saved - inAnswers; rem > 0 {
			cost += float64(rem) * c.estimatedMeanCost()
		}
		ev := &HitEvent{
			Entry:       e,
			Kind:        ExactHit,
			SavedTests:  saved,
			SavedCostNs: cost,
			Tick:        tick,
		}
		c.policyMu.Lock()
		c.policy.UpdateCacheStaInfo(ev)
		c.policyMu.Unlock()
		c.mon.exactHits.Add(1)
		c.mon.testsSaved.Add(int64(saved))
		c.mon.hitNs.Add(hitTime.Nanoseconds())
		// A = S on an exact hit, so Answers and Sure share one clone, and
		// the empty Excluded/Survivors sets stay in the lazy all-zero
		// representation — see the aliasing note on Result.
		shared := ans.Clone()
		res := &Result{
			Answers:        shared,
			BaseCandidates: saved,
			Candidates:     0,
			Tests:          0,
			Sure:           shared,
			Excluded:       bitset.New(n),
			Survivors:      bitset.New(n),
			Hits:           []HitRef{{EntryID: e.ID, Kind: ExactHit, SavedTests: saved}},
			ExactHit:       true,
			HitTime:        hitTime,
		}
		c.selfCheck(q, qt, res)
		return res, nil
	}
	hitTime := time.Since(t0)
	sig := c.signatureOf(q)

	// Stage 2: Method M filtering (lock-free: the view's filter index is
	// immutable). The returned set is freshly built for this query, so the
	// algebra below may consume it in place once its count is captured.
	tf := time.Now()
	cm := view.Candidates(q, qt)
	filterTime := time.Since(tf)
	cmCount := cm.Count()

	// Stage 3: sub/super hit detection over a point-in-time snapshot of
	// the cache. The iso tests run without any lock; entries evicted
	// mid-detection stay sound (their answer sets remain exact over the
	// immutable dataset).
	th := time.Now()
	hs := c.detectHits(q, qt, sig)
	hitTime += time.Since(th)
	c.mon.hitDetectIso.Add(int64(hs.isoTests))

	// Stage 4: candidate algebra. Which direction delivers guaranteed
	// answers (S) versus pruning (S′) depends on the query type; see the
	// package comment for the containment proofs.
	answerHits, pruneHits := hs.sub, hs.super
	answerKind, pruneKind := SubHit, SuperHit
	if qt == ftv.Supergraph {
		answerHits, pruneHits = hs.super, hs.sub
		answerKind, pruneKind = SuperHit, SubHit
	}

	// Saved-test sets and their cost estimates are computed lock-free (the
	// cost cells are atomic); only the policy updates run under policyMu,
	// keeping the critical section to counter arithmetic per hit. The
	// saved-set intersections/differences iterate word-parallel over the
	// operands directly (ForEachAnd/ForEachAndNot) — no intermediate set
	// is materialized per hit.
	sc := getExecScratch()
	defer putExecScratch(sc)
	// A hit's answers must first be brought to the query's dataset epoch:
	// stale sets miss graphs added since the entry was last reconciled,
	// which would silently shrink S (lost savings — sound) but also
	// wrongly exclude candidates via S′ (lost answers — unsound).
	credits := sc.credits[:0]
	sure := bitset.New(n)
	for _, h := range answerHits {
		ha := c.reconciledAnswers(h, view)
		saved, cost := 0, 0.0
		ha.ForEachAnd(cm, func(gid int) bool {
			saved++
			cost += c.estimatedCost(gid)
			return true
		})
		credits = append(credits, hitCredit{h, answerKind, saved, cost})
		sure.Or(ha)
	}
	// candPruned aliases cm until the first pruning hit forces a private
	// copy; cm itself is only needed for counts after this point, which
	// cmCount already captured.
	candPruned := cm
	for _, h := range pruneHits {
		ha := c.reconciledAnswers(h, view)
		saved, cost := 0, 0.0
		cm.ForEachAndNot(ha, func(gid int) bool {
			saved++
			cost += c.estimatedCost(gid)
			return true
		})
		credits = append(credits, hitCredit{h, pruneKind, saved, cost})
		if candPruned == cm {
			candPruned = cm.Clone()
		}
		candPruned.And(ha)
	}
	sc.credits = credits
	var hits []HitRef
	if len(credits) > 0 {
		c.policyMu.Lock()
		for _, cr := range credits {
			c.creditHit(cr.h, cr.kind, cr.saved, cr.cost, tick, &hits)
		}
		c.policyMu.Unlock()
	}
	// S′ = C_M \ (C_M ∩ ⋂ A(h′)) — provably empty (and kept lazy) when no
	// pruning hit narrowed the candidates.
	var excluded *bitset.Set
	if candPruned != cm {
		excluded = cm.Clone()
		excluded.AndNot(candPruned)
	} else {
		excluded = bitset.New(n)
	}

	// C = (C_M ∩ ⋂ A(h')) \ S, consuming candPruned in place (when it
	// still aliases cm this retires cm too — its count lives on in
	// cmCount).
	cand := candPruned
	cand.AndNot(sure)

	if len(hs.sub) > 0 {
		c.mon.subHitQueries.Add(1)
		c.mon.subHits.Add(int64(len(hs.sub)))
	}
	if len(hs.super) > 0 {
		c.mon.superHitQueries.Add(1)
		c.mon.superHits.Add(int64(len(hs.super)))
	}

	// Stage 5: verification of the reduced candidate set (lock-free; cost
	// samples fold into the EMA cells with CAS, no lock either).
	tv := time.Now()
	tests := cand.Count()
	survivors, costs := c.verify(view, q, qt, cand, sc)
	verifyTime := time.Since(tv)
	c.recordCosts(costs)

	// A = R ∪ S. When no answer-delivering hit contributed (sure is
	// empty), A = R exactly and Answers shares Survivors' set — see the
	// aliasing note on Result.
	answers := survivors
	if !sure.Empty() {
		answers = survivors.Clone()
		answers.Or(sure)
	}

	c.mon.testsExecuted.Add(int64(tests))
	c.mon.testsSaved.Add(int64(cmCount - tests))
	c.mon.filterNs.Add(filterTime.Nanoseconds())
	c.mon.hitNs.Add(hitTime.Nanoseconds())
	c.mon.verifyNs.Add(verifyTime.Nanoseconds())

	res := &Result{
		Answers:        answers,
		BaseCandidates: cmCount,
		Candidates:     tests,
		Tests:          tests,
		Sure:           sure,
		Excluded:       excluded,
		Survivors:      survivors,
		Hits:           hits,
		FilterTime:     filterTime,
		HitTime:        hitTime,
		VerifyTime:     verifyTime,
	}
	c.selfCheck(q, qt, res)

	// Stage 6: admission via the window manager. The entry carries the
	// view's epoch: its answers are exact for that dataset state, and any
	// later mutation either patches it (eager) or is reconciled from the
	// addition log before the entry's answers are next trusted (lazy).
	c.admit(q, qt, answers.Clone(), cmCount, sig, tick, view.Epoch())
	return res, nil
}

// hitCredit is one hit's pending policy credit, accumulated lock-free and
// applied in a single policyMu section.
type hitCredit struct {
	h     *Entry
	kind  HitKind
	saved int
	cost  float64
}

// execScratch holds the per-query working buffers of Execute's miss path:
// candidate id lists, verification cost samples and verdicts, and pending
// hit credits. Nothing in it escapes the query (results are built from
// fresh or lazily-empty sets), so the buffers recycle through a pool —
// one warmed-up scratch per concurrently executing query (hot-path memory
// discipline, see doc.go).
type execScratch struct {
	ids      []int
	costs    []costSample
	verdicts []verdict
	credits  []hitCredit
}

var execScratchPool = sync.Pool{New: func() any { return new(execScratch) }}

func getExecScratch() *execScratch { return execScratchPool.Get().(*execScratch) }

func putExecScratch(sc *execScratch) {
	// Drop entry pointers so a pooled scratch never pins evicted entries.
	for i := range sc.credits {
		sc.credits[i].h = nil
	}
	sc.credits = sc.credits[:0]
	execScratchPool.Put(sc)
}

// creditHit updates policy utilities and the result's hit list. Caller
// holds policyMu.
//
//gclint:requires policyMu
func (c *Cache) creditHit(h *Entry, kind HitKind, savedTests int, savedCost float64, tick int64, hits *[]HitRef) {
	ev := &HitEvent{
		Entry:       h,
		Kind:        kind,
		SavedTests:  savedTests,
		SavedCostNs: savedCost,
		Tick:        tick,
	}
	c.policy.UpdateCacheStaInfo(ev)
	*hits = append(*hits, HitRef{EntryID: h.ID, Kind: kind, SavedTests: savedTests})
}

// estimatedCost reads one graph's cost estimate from its lock-free cell.
//
//gclint:nolocks
//gclint:noalloc
func (c *Cache) estimatedCost(gid int) float64 {
	if bits := c.costVal[gid].Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return c.estimatedMeanCost()
}

// estimatedMeanCost reads the overall cost estimate from its lock-free
// cell.
//
//gclint:nolocks
//gclint:noalloc
func (c *Cache) estimatedMeanCost() float64 {
	if bits := c.globalVal.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return defaultCostNs
}

// emaAdd folds one observation into a lock-free EMA cell: the first
// observation initializes the average directly (0 bits marks an empty
// cell), later ones blend with factor alpha. Contended updates retry; the
// arithmetic matches stats.EMA, so sequential streams produce the same
// estimates the coordinator-locked engine did.
//
//gclint:nolocks
//gclint:noalloc
func emaAdd(cell *atomic.Uint64, alpha, x float64) {
	for {
		old := cell.Load()
		v := x
		if old != 0 {
			v = alpha*x + (1-alpha)*math.Float64frombits(old)
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// costSample is one measured sub-iso verification.
type costSample struct {
	gid int
	dur time.Duration
}

// verify runs the sub-iso tests over the candidate set, sequentially or
// with a bounded worker pool, against the query's dataset view. It holds
// no locks; measured costs are returned for the caller to fold into the
// EMA cells.
//
//gclint:nolocks
func (c *Cache) verify(view ftv.DatasetView, q *graph.Graph, qt ftv.QueryType, cand *bitset.Set, sc *execScratch) (*bitset.Set, []costSample) {
	n := view.Size()
	out := bitset.New(n)
	sc.ids = cand.AppendIndices(sc.ids[:0])
	ids := sc.ids
	if len(ids) == 0 {
		return out, nil
	}
	if cap(sc.costs) < len(ids) {
		sc.costs = make([]costSample, 0, len(ids))
	}
	costs := sc.costs[:0]
	if c.cfg.VerifyWorkers < 2 || len(ids) < 4 {
		for _, gid := range ids {
			t0 := time.Now()
			ok := view.VerifyCandidate(q, gid, qt)
			costs = append(costs, costSample{gid, time.Since(t0)})
			if ok {
				out.Add(gid)
			}
		}
		sc.costs = costs
		return out, costs
	}

	workers := c.cfg.VerifyWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	if cap(sc.verdicts) < len(ids) {
		sc.verdicts = make([]verdict, len(ids))
	}
	results := sc.verdicts[:len(ids)]
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				gid := ids[i]
				t0 := time.Now()
				ok := view.VerifyCandidate(q, gid, qt)
				results[i] = verdict{gid, ok, time.Since(t0)}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, v := range results {
		costs = append(costs, costSample{v.gid, v.dur})
		if v.ok {
			out.Add(v.gid)
		}
	}
	sc.costs = costs
	return out, costs
}

// verdict is one parallel verification outcome, indexed by candidate
// position.
type verdict struct {
	gid int
	ok  bool
	dur time.Duration
}

// recordCosts folds measured verification costs into the EMA cells —
// entirely lock-free (CAS per sample).
//
//gclint:nolocks
//gclint:noalloc
func (c *Cache) recordCosts(costs []costSample) {
	for _, s := range costs {
		ns := float64(s.dur.Nanoseconds())
		emaAdd(&c.costVal[s.gid], costAlpha, ns)
		emaAdd(&c.globalVal, globalCostAlpha, ns)
	}
}

// admit stages the executed query for admission — in the owning shard's
// window by default, or in the single shared window with
// Config.SharedWindow — and turns the window when full (the Window
// Manager). The default path touches only the owning shard's lock.
//
//gclint:acquires windowMu policyMu shard
func (c *Cache) admit(q *graph.Graph, qt ftv.QueryType, answers *bitset.Set, baseCandidates int, sig querySig, tick, epoch int64) {
	if c.cfg.SharedWindow {
		c.admitShared(q, qt, answers, baseCandidates, sig, tick, epoch)
		return
	}
	sh := c.shardFor(sig.fp)
	sh.mu.Lock()
	e := entryFromSig(c.newID(), q, qt, answers, baseCandidates, sig, tick, epoch)
	sh.stageLocked(e)
	full := len(sh.window) >= c.shardWindow
	sh.mu.Unlock()
	if full {
		c.turnShard(sh)
	}
}

// admitShared is the SharedWindow staging path: one global buffer under
// windowMu, turned whole under every shard lock — the measurable
// pre-decentralization baseline.
//
//gclint:acquires windowMu policyMu shard
func (c *Cache) admitShared(q *graph.Graph, qt ftv.QueryType, answers *bitset.Set, baseCandidates int, sig querySig, tick, epoch int64) {
	c.windowMu.Lock()
	defer c.windowMu.Unlock()
	e := entryFromSig(c.newID(), q, qt, answers, baseCandidates, sig, tick, epoch)
	c.window = append(c.window, e)
	if len(c.window) >= c.cfg.Window {
		c.turnWindowShared()
	}
}

// turnShard ages utilities, makes room and admits one shard's pending
// window. Victims are selected among the shard's RESIDENT entries before
// admission — the newly executed queries always get in, displacing the
// least-useful cached graphs (Figure 2(c)); evicting after admission
// would instead throw away the newcomers, whose utilities are necessarily
// still zero. Capacity is enforced globally through the resident account
// (exact here: only policyMu holders admit or evict), but victims come
// only from the turning shard — capacity flows to the shards receiving
// traffic, and if this shard alone cannot pay the excess down the
// overshoot is cleared by the next turns of the shards that can. Aging,
// eviction accounting and the policy callbacks run under policyMu; the
// structural mutation holds only this shard's write lock, so queries
// owned by other shards proceed untouched. The staging path releases the
// shard lock before calling turnShard (hierarchy: policyMu → shard
// locks), so a racing turn may drain the window first — the re-check
// under both locks makes that benign.
//
//gclint:acquires policyMu shard
func (c *Cache) turnShard(sh *shard) {
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.window) < c.shardWindow {
		return // another goroutine turned this shard first
	}
	c.mon.windowTurns.Add(1)
	sh.turns.Add(1)
	c.policy.OnWindowTurn()

	for _, e := range sh.entries {
		e.age(c.cfg.DecayFactor)
		// True up this entry's byte charge: lazy reconciliation may have
		// grown its answer set on the query path, where no account can be
		// touched. O(1) per entry; keeps the memory-budget enforcement
		// below honest in LazyReconcile mode.
		c.rechargeLocked(sh, e)
	}
	// The cross-shard ranking view is built once and reused by every
	// eviction pass of this turn: it reflects the published summaries
	// (stale with respect to this turn's own evictions and admissions),
	// so victim selection re-checks residency against the live shard.
	view := c.rankingView()
	if excess := int(c.res.entries.Load()) + len(sh.window) - c.cfg.Capacity; excess > 0 {
		c.evictShardLocked(sh, excess, view)
	}
	for _, e := range sh.window {
		sh.insertLocked(e)
		c.mon.admissions.Add(1)
	}
	sh.resetWindowLocked()

	// A window larger than the remaining capacity can still overflow.
	if excess := int(c.res.entries.Load()) - c.cfg.Capacity; excess > 0 {
		c.evictShardLocked(sh, excess, view)
	}
	for c.cfg.MemoryBudget > 0 && int(c.res.bytes.Load()+c.pool.bytes.Load()) > c.cfg.MemoryBudget && len(sh.entries) > 1 {
		c.evictShardLocked(sh, 1, view)
	}

	// Republish this shard's slice of the feature index before the shard
	// lock drops, so queries never observe an index ahead of or behind
	// the admitted entries. O(this shard) — the other shards' published
	// slices remain valid as-is.
	c.republishShardLocked(sh)

	// Window boundaries are where the addition log gets compacted: every
	// entry this turn admitted or evicted moved the minimum entry epoch,
	// so recompute it and drop the records everyone has passed.
	c.compactAdditions(sh)
}

// turnWindowShared is the SharedWindow turn: age, evict and admit the
// global window atomically under every shard write lock. Caller holds
// windowMu; policyMu is taken for the policy callbacks and utility
// mutations (hierarchy: windowMu → policyMu → shard locks).
//
//gclint:requires windowMu
//gclint:acquires policyMu shard
func (c *Cache) turnWindowShared() {
	c.mon.windowTurns.Add(1)
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.policy.OnWindowTurn()
	c.lockAll()
	defer c.unlockAll()

	all := c.gatherLocked()
	for _, e := range all {
		e.age(c.cfg.DecayFactor)
		c.rechargeLocked(c.shardFor(e.Fingerprint), e)
	}
	if excess := len(all) + len(c.window) - c.cfg.Capacity; excess > 0 {
		all = c.evictLocked(all, excess)
	}
	for _, e := range c.window {
		c.shardFor(e.Fingerprint).insertLocked(e)
		all = append(all, e) // window IDs exceed all admitted IDs: stays sorted
		c.mon.admissions.Add(1)
	}
	c.window = c.window[:0]

	// A window larger than the whole capacity can still overflow.
	if excess := len(all) - c.cfg.Capacity; excess > 0 {
		all = c.evictLocked(all, excess)
	}
	for c.cfg.MemoryBudget > 0 && c.memBytesLocked()+int(c.pool.bytes.Load()) > c.cfg.MemoryBudget && len(all) > 1 {
		all = c.evictLocked(all, 1)
	}

	// Republish the feature index before the shard locks drop, so queries
	// never observe an index ahead of or behind the admitted entries.
	c.republishAllLocked()

	// Shared-window turns hold the full hierarchy, so the compaction floor
	// sees every entry directly.
	c.compactAdditionsLocked()
}

// memBytesLocked sums shard byte accounts. Caller holds all shard locks.
//
//gclint:requires shard
func (c *Cache) memBytesLocked() int {
	b := 0
	for _, sh := range c.shards {
		b += sh.memBytes
	}
	return b
}

// chooseVictims returns x distinct, in-range positions into the
// ID-ordered slice all, as selected by the policy. The policy's returned
// positions are sanitized defensively against buggy custom policies
// (duplicates or out-of-range indices are dropped; a shortfall is filled
// FIFO). Caller holds policyMu.
//
//gclint:requires policyMu
func (c *Cache) chooseVictims(all []*Entry, x int) []int {
	if x > len(all) {
		x = len(all)
	}
	pos := c.policy.ReplacedContent(all, x)
	seen := make(map[int]bool, len(pos))
	var victims []int
	for _, p := range pos {
		if p >= 0 && p < len(all) && !seen[p] {
			seen[p] = true
			victims = append(victims, p)
			if len(victims) == x {
				break
			}
		}
	}
	if len(victims) < x {
		// Fill the shortfall oldest-first.
		order := make([]int, len(all))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return all[order[a]].InsertedAt < all[order[b]].InsertedAt
		})
		for _, p := range order {
			if !seen[p] {
				seen[p] = true
				victims = append(victims, p)
				if len(victims) == x {
					break
				}
			}
		}
	}
	return victims
}

// rankingView flattens the published per-shard summaries into the
// cross-shard ranking input for eviction. Nil with IndexOff (no
// published view). Caller holds policyMu.
//
//gclint:requires policyMu
func (c *Cache) rankingView() []*Entry {
	if c.cfg.IndexOff {
		return nil
	}
	var view []*Entry
	for _, part := range c.summariesView() {
		for i := range part {
			view = append(view, part[i].e)
		}
	}
	return view
}

// evictShardLocked removes x policy-chosen victims from sh's residents.
// Caller holds policyMu and sh's write lock; view is the caller's
// rankingView (built once per turn and reused across eviction passes).
//
// The ranking context is global even though the victims are local: the
// policy ranks the full admitted set off the published feature index,
// and the x worst-ranked entries OWNED BY THIS SHARD are evicted. For
// score policies whose utilities are per-entry (LRU, FIFO, POP, PIN,
// PINC) this equals ranking the shard alone; for HD — whose score
// normalizes against the min/max utilities of the slice it is shown —
// it keeps victim choice consistent with what the shared-window engine
// would pick among these entries. The view can be stale with respect to
// the current turn (entries it already evicted, newcomers it admitted —
// republish happens once at the end), so selection admits only entries
// still resident in sh; with IndexOff (nil view) the ranking falls back
// to the shard's own entries.
//
//gclint:requires policyMu shard
func (c *Cache) evictShardLocked(sh *shard, x int, view []*Entry) {
	if x <= 0 || len(sh.entries) == 0 {
		return
	}
	if x > len(sh.entries) {
		x = len(sh.entries)
	}
	es := make([]*Entry, 0, x)
	if len(view) <= len(sh.entries) {
		// No published view (IndexOff) or this shard is the whole cache:
		// rank the shard alone.
		victims := c.chooseVictims(sh.entries, x)
		// Resolve positions to entries before the first removal shifts
		// the slice underneath them.
		for _, p := range victims {
			es = append(es, sh.entries[p])
		}
	} else {
		// Ask for progressively deeper prefixes of the global ranking
		// until x of this shard's entries appear in it. ReplacedContent
		// returns the k least-useful positions, so doubling k walks down
		// the ranking; k = len(view) contains every entry, hence always
		// enough. Start at x×shards — with fingerprint-uniform residency
		// that prefix is expected to hold x of ours, so one ranking call
		// usually suffices.
		for k := x * len(c.shards); ; k *= 2 {
			if k > len(view) {
				k = len(view)
			}
			es = es[:0]
			for _, p := range c.chooseVictims(view, k) {
				if e := view[p]; sh.containsLocked(e) {
					es = append(es, e)
					if len(es) == x {
						break
					}
				}
			}
			if len(es) == x || k == len(view) {
				break
			}
		}
		if len(es) < x {
			// The view predates this turn's admissions, so an overflowing
			// window can leave a shortfall: fill it ranking the shard's
			// remainder.
			chosen := make(map[*Entry]bool, len(es))
			for _, e := range es {
				chosen[e] = true
			}
			rest := make([]*Entry, 0, len(sh.entries))
			for _, e := range sh.entries {
				if !chosen[e] {
					rest = append(rest, e)
				}
			}
			for _, p := range c.chooseVictims(rest, x-len(es)) {
				es = append(es, rest[p])
			}
		}
	}
	for _, e := range es {
		sh.removeLocked(e)
		c.mon.evictions.Add(1)
	}
}

// evictLocked removes x entries chosen by the policy from the ID-ordered
// slice all (the canonical cross-shard view) and from their owning shards,
// returning the surviving slice. Caller holds policyMu and all shard
// write locks (the SharedWindow turn and state restores).
//
//gclint:requires policyMu shard
func (c *Cache) evictLocked(all []*Entry, x int) []*Entry {
	if x <= 0 || len(all) == 0 {
		return all
	}
	victims := c.chooseVictims(all, x)
	evictSet := make(map[int]bool, len(victims))
	for _, p := range victims {
		evictSet[p] = true
	}
	kept := all[:0]
	for i, e := range all {
		if evictSet[i] {
			c.shardFor(e.Fingerprint).removeLocked(e)
			c.mon.evictions.Add(1)
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so evicted entries are collectable.
	for i := len(kept); i < len(all); i++ {
		all[i] = nil
	}
	return kept
}

// selfCheck cross-validates a result against the uncached method when
// enabled; any mismatch is a kernel bug, hence the panic.
func (c *Cache) selfCheck(q *graph.Graph, qt ftv.QueryType, res *Result) {
	if !c.cfg.SelfCheck {
		return
	}
	base := c.method.Run(q, qt)
	if !base.Answers.Equal(res.Answers) {
		panic(fmt.Sprintf("core: self-check failed for %s query %v: cache %v, base %v",
			qt, q, res.Answers, base.Answers))
	}
}
