package core

import "fmt"

// HitKind classifies a cache hit.
type HitKind uint8

const (
	// ExactHit: the new query is isomorphic to the cached one.
	ExactHit HitKind = iota
	// SubHit: the new query is a subgraph of the cached one (sub case).
	SubHit
	// SuperHit: the new query is a supergraph of the cached one (super case).
	SuperHit
)

// String names the hit kind.
func (k HitKind) String() string {
	switch k {
	case ExactHit:
		return "exact"
	case SubHit:
		return "sub"
	case SuperHit:
		return "super"
	}
	return fmt.Sprintf("HitKind(%d)", k)
}

// HitEvent describes one cached entry's contribution to one query,
// delivered to the policy's UpdateCacheStaInfo — the paper's
// "upon the contribution in accelerating other queries".
type HitEvent struct {
	// Entry is the contributing cached query.
	Entry *Entry
	// Kind is the hit type.
	Kind HitKind
	// SavedTests is the number of dataset sub-iso tests this hit saved,
	// credited individually (overlapping hits each receive their own
	// savings, per DESIGN.md §6).
	SavedTests int
	// SavedCostNs estimates the cost of those saved tests from the
	// per-dataset-graph verification-cost EMAs.
	SavedCostNs float64
	// Tick is the query sequence number.
	Tick int64
}

// Policy is the replacement-policy extension point, mirroring the abstract
// Cache class of Figure 2(d):
//
//   - UpdateCacheStaInfo ↔ updateCacheStaInfo: update graph utilities upon
//     a contribution to accelerating another query;
//   - ReplacedContent ↔ getReplacedContent: return the positions of the
//     top x cached graphs to be replaced (least utility first);
//   - the Cache Manager performs the actual replacement
//     (↔ updateCacheItems) using those positions.
//
// Implementations may keep private state but must be deterministic given
// the same event sequence (RAND keeps a seeded generator). OnWindowTurn is
// called at every admission-window boundary for aging.
type Policy interface {
	// Name identifies the policy in reports ("lru", "hd", ...).
	Name() string
	// UpdateCacheStaInfo folds one hit contribution into the utilities.
	UpdateCacheStaInfo(ev *HitEvent)
	// ReplacedContent returns the indices (positions into entries) of the
	// x entries with least utility, the ones to evict. If x ≥ len(entries)
	// all indices are returned. The returned indices are distinct.
	ReplacedContent(entries []*Entry, x int) []int
	// OnWindowTurn notifies the policy of an admission-window boundary.
	OnWindowTurn()
}
