package core

import (
	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Entry is one cached query: the pattern graph, its exact answer set and
// the metadata consulted by hit detection and replacement policies.
// Entries are owned by the Cache; policies read them through the slices
// handed to ReplacedContent.
type Entry struct {
	// ID is a cache-unique, monotonically assigned identifier.
	ID int
	// Graph is the query pattern.
	Graph *graph.Graph
	// Type is the query semantics the answers correspond to.
	Type ftv.QueryType
	// Answers is the exact answer set over dataset positions.
	Answers *bitset.Set

	// Fingerprint, LabelVec and Features index the entry for hit
	// detection: fingerprint equality pre-filters exact-match candidates;
	// label-vector and path-feature dominance pre-filter sub/super
	// candidates before any iso test.
	Fingerprint graph.Fingerprint
	LabelVec    graph.LabelVector
	Features    featureVec

	// FV and FeatureBits are the entry's containment summary, computed
	// once at admission (and rebuilt on state restore) and published in
	// the cache's hit index: FV is the fixed-size ftv.FeatureVector, and
	// FeatureBits blooms the path-feature hashes so feature dominance can
	// be refuted with one mask test. Both are immutable.
	FV          ftv.FeatureVector
	FeatureBits uint64

	// BaseCandidates is |C_M| when the query was originally executed —
	// the number of sub-iso tests an exact-match hit on this entry saves.
	BaseCandidates int

	// InsertedAt and LastUsed are query ticks (LRU/FIFO state).
	InsertedAt int64
	LastUsed   int64
	// Hits counts how many queries this entry contributed to (POP).
	Hits int64
	// SavedTests accumulates the number of dataset sub-iso tests this
	// entry saved (PIN utility), aged by the window decay factor.
	SavedTests float64
	// SavedCostNs accumulates the estimated cost of those saved tests in
	// nanoseconds (PINC utility), aged likewise.
	SavedCostNs float64
}

// entryFromSig builds an Entry from a precomputed query signature — the
// single construction site for cache entries, shared by admission and
// state restores so the signature-derived fields (fingerprint, vectors,
// feature summaries) can never drift between the two paths.
func entryFromSig(id int, q *graph.Graph, qt ftv.QueryType, answers *bitset.Set, baseCandidates int, sig querySig, tick int64) *Entry {
	return &Entry{
		ID:             id,
		Graph:          q,
		Type:           qt,
		Answers:        answers,
		Fingerprint:    sig.fp,
		LabelVec:       sig.labelVec,
		Features:       sig.features,
		FV:             sig.fv,
		FeatureBits:    sig.featBits,
		BaseCandidates: baseCandidates,
		InsertedAt:     tick,
		LastUsed:       tick,
	}
}

// Bytes estimates the entry's resident size for the memory budget.
func (e *Entry) Bytes() int {
	b := 224 // struct (incl. feature summary) + bookkeeping
	b += e.Graph.Bytes()
	b += e.Answers.Bytes()
	b += 12 * len(e.Features)
	b += 8 * len(e.LabelVec)
	return b
}

// age decays the adaptive utilities by factor.
func (e *Entry) age(factor float64) {
	e.SavedTests *= factor
	e.SavedCostNs *= factor
}
