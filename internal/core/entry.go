package core

import (
	"sync/atomic"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// answerState is one immutable (answer set, dataset epoch) pair: the set
// is exact with respect to the dataset as of the epoch. Published whole
// through answersCell so readers always see a matching pair.
//
// A state with a non-nil body is PENDING: its bits still live in the
// snapshot file of a lazy restore (set is nil) and fault in on first
// loadAnswers. The pair (body, epoch) carries the same exactness
// contract — the decoded set is exact as of epoch — so fault-in is just
// a deferred materialization of the same logical snapshot, published
// through the ordinary CAS discipline (see persist.go).
//
//gclint:cow
type answerState struct {
	set   *bitset.Set
	epoch int64
	body  *lazyBody
}

// answersCell is the atomic holder of an entry's answer state. It lives
// behind a pointer in Entry so Entry values stay copyable (defensive
// copies share the cell, like they share the immutable Graph).
//
// Publication rules: the set inside a published state is never mutated —
// maintenance swaps in a freshly built set. Stop-the-world dataset
// mutations (Cache.AddGraph eager mode, Cache.RemoveGraph) swap under the
// full lock hierarchy with no queries in flight; lazy reconciliation swaps
// from the query path, where racing reconcilers of the same entry compute
// identical states (verification is deterministic), so last-write-wins is
// benign.
type answersCell struct {
	// p publishes the (set, epoch) pair whole. Readers needing both
	// fields consistent must pin ONE load (the answers accessor), never
	// pair Answers with DatasetEpoch across two loads (enforced by the
	// snapshotonce analyzer).
	//
	//gclint:snapshot answers
	p atomic.Pointer[answerState]
}

// Entry is one cached query: the pattern graph, its exact answer set and
// the metadata consulted by hit detection and replacement policies.
// Entries are owned by the Cache; policies read them through the slices
// handed to ReplacedContent.
type Entry struct {
	// ID is a cache-unique, monotonically assigned identifier.
	ID int
	// Graph is the query pattern.
	Graph *graph.Graph
	// Type is the query semantics the answers correspond to.
	Type ftv.QueryType

	// ans holds the entry's exact answer set over dataset positions,
	// stamped with the dataset epoch it is exact up to. Read it through
	// Answers/DatasetEpoch.
	ans *answersCell

	// Fingerprint, LabelVec and Features index the entry for hit
	// detection: fingerprint equality pre-filters exact-match candidates;
	// label-vector and path-feature dominance pre-filter sub/super
	// candidates before any iso test.
	Fingerprint graph.Fingerprint
	LabelVec    graph.LabelVector
	Features    featureVec

	// FV and FeatureBits are the entry's containment summary, computed
	// once at admission (and rebuilt on state restore) and published in
	// the cache's hit index: FV is the fixed-size ftv.FeatureVector, and
	// FeatureBits blooms the path-feature hashes so feature dominance can
	// be refuted with one mask test. Both are immutable.
	FV          ftv.FeatureVector
	FeatureBits uint64

	// BaseCandidates is |C_M| when the query was originally executed —
	// the number of sub-iso tests an exact-match hit on this entry saves.
	BaseCandidates int

	// staticBytes is the size of everything but the answer set — graph,
	// signatures, struct overhead — computed once at construction so
	// Bytes() is O(1) and can be re-evaluated cheaply whenever the answer
	// set is swapped. Immutable.
	staticBytes int

	// resBytes is the entry's size as charged to the residency account at
	// admission: the static footprint only — answer bytes are charged
	// once per canonical set by the intern pool, however many entries
	// share it. Guarded by the owning shard's lock.
	resBytes int

	// interned is the canonical answer set the intern pool holds one
	// reference for on this entry's behalf; nil until admission. It can
	// trail the published set (lazy reconciliation swaps sets on the
	// query path without touching the pool) and is trued up by
	// rechargeLocked at window turns and stop-the-world passes. Guarded
	// by the owning shard's lock, like resBytes.
	interned *bitset.Set

	// InsertedAt and LastUsed are query ticks (LRU/FIFO state).
	InsertedAt int64
	LastUsed   int64
	// Hits counts how many queries this entry contributed to (POP).
	Hits int64
	// SavedTests accumulates the number of dataset sub-iso tests this
	// entry saved (PIN utility), aged by the window decay factor.
	SavedTests float64
	// SavedCostNs accumulates the estimated cost of those saved tests in
	// nanoseconds (PINC utility), aged likewise.
	SavedCostNs float64
}

// Answers returns the entry's current answer set — exact with respect to
// the dataset as of DatasetEpoch. The returned set is immutable; the cache
// replaces it whole when dataset mutations are reconciled. On an entry
// restored lazily the first call faults the set in from the snapshot
// file (see persist.go).
//
//gclint:cowview
//gclint:loads answers
func (e *Entry) Answers() *bitset.Set { return e.loadAnswers().set }

// DatasetEpoch returns the dataset epoch the entry's answers are exact up
// to. An entry whose epoch trails the method's is stale only with respect
// to graphs ADDED since (removals are always applied stop-the-world); the
// cache verifies exactly that delta before trusting the answers.
//
//gclint:loads answers
func (e *Entry) DatasetEpoch() int64 { return e.ans.p.Load().epoch }

// answers returns the entry's (set, epoch) pair as one consistent load.
// The state may be PENDING (set nil, body non-nil) on a lazily restored
// entry: maintenance paths that must not trigger snapshot I/O (shard
// insertion, intern true-up, byte accounting) use this accessor and
// handle pending states explicitly; everything needing the bits goes
// through loadAnswers.
//
//gclint:cowview
//gclint:loads answers
func (e *Entry) answers() *answerState { return e.ans.p.Load() }

// loadAnswers returns the entry's (set, epoch) pair as one consistent
// load, faulting the set in from the snapshot file first when the entry
// was restored lazily. Lock-free: fault-in publishes through the same
// CAS discipline lazy reconciliation uses, so it is safe on the query
// path (reconciledAnswers is //gclint:nolocks).
//
//gclint:cowview
//gclint:loads answers
func (e *Entry) loadAnswers() *answerState {
	st := e.ans.p.Load()
	if st.body != nil {
		st = e.faultAnswers(st)
	}
	return st
}

// setAnswers publishes a new answer state. The set must not be mutated
// after the call.
func (e *Entry) setAnswers(set *bitset.Set, epoch int64) {
	e.ans.p.Store(&answerState{set: set, epoch: epoch})
}

// swapAnswers republishes (set, epoch) only if the entry's answer state
// is still old, reporting whether the swap landed. The interning true-up
// swaps a freshly acquired canonical in with it: a plain store could
// overwrite — and epoch-regress — a state a racing lazy reconciler
// published after old was read, which would let the entry skip addition
// records the log has already compacted away.
func (e *Entry) swapAnswers(old *answerState, set *bitset.Set, epoch int64) bool {
	return e.ans.p.CompareAndSwap(old, &answerState{set: set, epoch: epoch})
}

// entryFromSig builds an Entry from a precomputed query signature — the
// single construction site for cache entries, shared by admission and
// state restores so the signature-derived fields (fingerprint, vectors,
// feature summaries) can never drift between the two paths. epoch stamps
// the dataset state the answers were computed against.
func entryFromSig(id int, q *graph.Graph, qt ftv.QueryType, answers *bitset.Set, baseCandidates int, sig querySig, tick, epoch int64) *Entry {
	e := entryShell(id, q, qt, baseCandidates, sig, tick)
	// The set is owned here (every caller passes a fresh or cloned set)
	// and about to be published read-only for the entry's lifetime, so
	// pay the one-off re-encode into its smallest container now: sparse
	// for small answer sets, run for near-full ones, dense in between.
	answers.Compact()
	e.setAnswers(answers, epoch)
	return e
}

// entryShell builds an Entry with every signature-derived field populated
// but NO answer state published yet. The two construction paths finish it
// differently: entryFromSig publishes a materialized set, the lazy
// restore publishes a pending body (persist.go). Callers must publish
// exactly one state before the entry escapes.
func entryShell(id int, q *graph.Graph, qt ftv.QueryType, baseCandidates int, sig querySig, tick int64) *Entry {
	e := &Entry{
		ID:             id,
		Graph:          q,
		Type:           qt,
		ans:            &answersCell{},
		Fingerprint:    sig.fp,
		LabelVec:       sig.labelVec,
		Features:       sig.features,
		FV:             sig.fv,
		FeatureBits:    sig.featBits,
		BaseCandidates: baseCandidates,
		InsertedAt:     tick,
		LastUsed:       tick,
	}
	e.staticBytes = 224 + // struct (incl. feature summary) + bookkeeping
		q.Bytes() + 12*len(e.Features) + 8*len(e.LabelVec)
	return e
}

// Bytes estimates the entry's logical resident size: the immutable
// static part plus the current answer set. O(1). This is the entry's
// standalone footprint; the residency account charges staticBytes per
// entry plus each interned answer set once (see internPool), so summing
// Bytes over entries overstates a cache with cross-entry sharing.
func (e *Entry) Bytes() int {
	st := e.answers()
	if st.body != nil {
		// Pending body: estimate by its on-disk encoded length (the binary
		// container encoding mirrors the in-memory payload) rather than
		// faulting it in just to size it.
		return e.staticBytes + int(st.body.length)
	}
	return e.staticBytes + st.set.Bytes()
}

// age decays the adaptive utilities by factor.
func (e *Entry) age(factor float64) {
	e.SavedTests *= factor
	e.SavedCostNs *= factor
}
