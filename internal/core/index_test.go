package core

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// driveQueries pushes n extracted-subgraph queries through the cache.
func driveQueries(t *testing.T, c *Cache, seed int64, n int) {
	t.Helper()
	dataset := c.Method().Dataset()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
}

// The published index must mirror the admitted entries exactly after every
// sequential query — same IDs in the same (ascending) order.
func TestIndexMirrorsAdmittedEntries(t *testing.T) {
	dataset := testDataset(91, 20)
	cfg := DefaultConfig()
	cfg.Capacity = 8 // force evictions
	cfg.Window = 3
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)

	check := func() {
		idx := c.idx.load()
		entries := c.Entries()
		if len(idx) != len(entries) {
			t.Fatalf("index has %d entries, cache %d", len(idx), len(entries))
		}
		for i := range idx {
			if idx[i].e.ID != entries[i].ID {
				t.Fatalf("index[%d] = entry %d, cache holds %d", i, idx[i].e.ID, entries[i].ID)
			}
			if i > 0 && idx[i].e.ID <= idx[i-1].e.ID {
				t.Fatalf("index not ID-ordered at %d", i)
			}
			if idx[i].fv != entries[i].FV || idx[i].featBits != entries[i].FeatureBits {
				t.Fatalf("index[%d] summary diverges from entry", i)
			}
		}
	}
	check() // empty cache: empty (nil) index
	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 30; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
		check()
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("workload too tame: no evictions exercised")
	}
}

// Admitted entries must carry their immutable feature summaries, and the
// summaries must agree with recomputation from the pattern graph.
func TestEntrySummariesPopulated(t *testing.T) {
	dataset := testDataset(93, 15)
	cfg := DefaultConfig()
	cfg.Window = 2
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)
	driveQueries(t, c, 94, 8)
	entries := c.Entries()
	if len(entries) == 0 {
		t.Fatal("nothing admitted")
	}
	for _, e := range entries {
		if e.FV != ftv.ExtractFeatures(e.Graph) {
			t.Errorf("entry %d: stored feature vector diverges from its graph", e.ID)
		}
		if e.FV.Vertices == 0 || e.FV.LabelBits == 0 {
			t.Errorf("entry %d: empty feature summary", e.ID)
		}
	}
}

// IndexOff must keep the index unpublished and the pruned counter at zero.
func TestIndexOffBaseline(t *testing.T) {
	dataset := testDataset(95, 15)
	cfg := DefaultConfig()
	cfg.Window = 2
	cfg.IndexOff = true
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)
	driveQueries(t, c, 96, 10)
	if got := c.idx.load(); got != nil {
		t.Errorf("IndexOff cache published an index of %d entries", len(got))
	}
	snap := c.Stats()
	if snap.HitIndexPruned != 0 {
		t.Errorf("IndexOff cache counted %d index-pruned entries", snap.HitIndexPruned)
	}
	if snap.HitScanEntries == 0 || snap.HitFullChecks == 0 {
		t.Error("baseline scan counters never moved")
	}
}

// Results served through the index must stay exact against the uncached
// method (SelfCheck panics on any mismatch).
func TestIndexSelfCheck(t *testing.T) {
	dataset := testDataset(97, 25)
	cfg := DefaultConfig()
	cfg.Capacity = 10
	cfg.Window = 3
	cfg.SelfCheck = true
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)
	dsRng := rand.New(rand.NewSource(98))
	for i := 0; i < 40; i++ {
		q := gen.ExtractConnectedSubgraph(dsRng, dataset[i%len(dataset)], 2+i%6)
		qt := ftv.Subgraph
		if i%3 == 0 {
			qt = ftv.Supergraph
		}
		if _, err := c.Execute(q, qt); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().HitIndexPruned == 0 {
		t.Error("index never pruned on a mixed workload")
	}
}
