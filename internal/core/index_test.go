package core

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// driveQueries pushes n extracted-subgraph queries through the cache.
func driveQueries(t *testing.T, c *Cache, seed int64, n int) {
	t.Helper()
	dataset := c.Method().Dataset()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
}

// The published index — the union of the per-shard summary slices — must
// mirror the admitted entries exactly after every sequential query: the
// same entry set, each shard's slice ID-ordered, each summary agreeing
// with its entry.
func TestIndexMirrorsAdmittedEntries(t *testing.T) {
	dataset := testDataset(91, 20)
	cfg := DefaultConfig()
	cfg.Capacity = 8 // force evictions
	cfg.Window = 3
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)

	check := func() {
		byID := map[int]indexEntry{}
		for _, part := range c.summariesView() {
			for i, ie := range part {
				if i > 0 && ie.e.ID <= part[i-1].e.ID {
					t.Fatalf("shard summary slice not ID-ordered at %d", i)
				}
				if _, dup := byID[ie.e.ID]; dup {
					t.Fatalf("entry %d published by two shards", ie.e.ID)
				}
				byID[ie.e.ID] = ie
			}
		}
		entries := c.Entries()
		if len(byID) != len(entries) {
			t.Fatalf("index has %d entries, cache %d", len(byID), len(entries))
		}
		for _, e := range entries {
			ie, ok := byID[e.ID]
			if !ok {
				t.Fatalf("admitted entry %d missing from the index", e.ID)
			}
			if ie.fv != e.FV || ie.featBits != e.FeatureBits {
				t.Fatalf("entry %d: index summary diverges from entry", e.ID)
			}
		}
	}
	check() // empty cache: empty (nil) index
	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 30; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
		check()
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("workload too tame: no evictions exercised")
	}
}

// Admitted entries must carry their immutable feature summaries, and the
// summaries must agree with recomputation from the pattern graph.
func TestEntrySummariesPopulated(t *testing.T) {
	dataset := testDataset(93, 15)
	cfg := DefaultConfig()
	cfg.Window = 2
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)
	driveQueries(t, c, 94, 8)
	entries := c.Entries()
	if len(entries) == 0 {
		t.Fatal("nothing admitted")
	}
	for _, e := range entries {
		if e.FV != ftv.ExtractFeatures(e.Graph) {
			t.Errorf("entry %d: stored feature vector diverges from its graph", e.ID)
		}
		if e.FV.Vertices == 0 || e.FV.LabelBits == 0 {
			t.Errorf("entry %d: empty feature summary", e.ID)
		}
	}
}

// IndexOff must keep the index unpublished and the pruned counter at zero.
func TestIndexOffBaseline(t *testing.T) {
	dataset := testDataset(95, 15)
	cfg := DefaultConfig()
	cfg.Window = 2
	cfg.IndexOff = true
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)
	driveQueries(t, c, 96, 10)
	if got := c.summariesView(); len(got) != 0 {
		t.Errorf("IndexOff cache published %d shard summary slices", len(got))
	}
	snap := c.Stats()
	if snap.HitIndexPruned != 0 {
		t.Errorf("IndexOff cache counted %d index-pruned entries", snap.HitIndexPruned)
	}
	if snap.HitScanEntries == 0 || snap.HitFullChecks == 0 {
		t.Error("baseline scan counters never moved")
	}
}

// Results served through the index must stay exact against the uncached
// method (SelfCheck panics on any mismatch).
func TestIndexSelfCheck(t *testing.T) {
	dataset := testDataset(97, 25)
	cfg := DefaultConfig()
	cfg.Capacity = 10
	cfg.Window = 3
	cfg.SelfCheck = true
	c := MustNew(ftv.NewGGSXMethod(dataset, 3), cfg)
	dsRng := rand.New(rand.NewSource(98))
	for i := 0; i < 40; i++ {
		q := gen.ExtractConnectedSubgraph(dsRng, dataset[i%len(dataset)], 2+i%6)
		qt := ftv.Subgraph
		if i%3 == 0 {
			qt = ftv.Supergraph
		}
		if _, err := c.Execute(q, qt); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().HitIndexPruned == 0 {
		t.Error("index never pruned on a mixed workload")
	}
}
