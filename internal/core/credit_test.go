package core

import (
	"math"
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// recordingPolicy captures every hit event so tests can assert the exact
// savings the kernel credits. Eviction falls back to FIFO positions.
type recordingPolicy struct {
	events []*HitEvent
}

func (p *recordingPolicy) Name() string                    { return "recording" }
func (p *recordingPolicy) UpdateCacheStaInfo(ev *HitEvent) { p.events = append(p.events, ev) }
func (p *recordingPolicy) OnWindowTurn()                   {}
func (p *recordingPolicy) ReplacedContent(entries []*Entry, x int) []int {
	out := make([]int, 0, x)
	for i := 0; i < x && i < len(entries); i++ {
		out = append(out, i)
	}
	return out
}

// TestExactHitCreditsPerGraphCosts is the regression test for the
// exact-hit crediting bug: the exact path used to price every saved test
// at the overall mean cost while the sub/super path sums per-graph
// estimates — skewing PINC/HD victim ranking against entries whose
// savings concentrate on expensive graphs. An exact hit must credit the
// per-graph estimates over the entry's answer set, with the mean applied
// only to the remainder of C_M.
func TestExactHitCreditsPerGraphCosts(t *testing.T) {
	dataset := testDataset(31, 10)
	method := ftv.NewGGSXMethod(dataset, 3)
	rec := &recordingPolicy{}
	cfg := DefaultConfig()
	cfg.Window = 1 // admit immediately
	cfg.Shards = 1
	cfg.Policy = rec
	c := MustNew(method, cfg)

	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(5)), dataset[0], 4)
	res, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	answers := res.Answers.Indices()
	if len(answers) == 0 || res.BaseCandidates <= len(answers) {
		t.Fatalf("workload unsuitable: %d answers, %d base candidates", len(answers), res.BaseCandidates)
	}

	// Skew the cost estimates: answer graphs are expensive (1e6 ns), the
	// overall mean is cheap (1e3 ns).
	const expensive, mean = 1e6, 1e3
	for _, gid := range answers {
		c.costVal[gid].Store(math.Float64bits(expensive))
	}
	c.globalVal.Store(math.Float64bits(mean))

	res2, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit {
		t.Fatal("expected an exact hit")
	}
	var ev *HitEvent
	for _, e := range rec.events {
		if e.Kind == ExactHit {
			ev = e
		}
	}
	if ev == nil {
		t.Fatal("no exact-hit event recorded")
	}
	saved := res.BaseCandidates
	if ev.SavedTests != saved {
		t.Fatalf("credited %d saved tests, want %d", ev.SavedTests, saved)
	}
	want := float64(len(answers))*expensive + float64(saved-len(answers))*mean
	if math.Abs(ev.SavedCostNs-want) > 1e-3 {
		t.Fatalf("credited cost %.0f ns, want %.0f (per-graph over answers + mean remainder)", ev.SavedCostNs, want)
	}
	// The old formula — every saved test at the mean — must not survive.
	if old := float64(saved) * mean; math.Abs(ev.SavedCostNs-old) < 1e-3 {
		t.Fatalf("credited cost %.0f ns still equals the flat-mean pricing", ev.SavedCostNs)
	}
}
