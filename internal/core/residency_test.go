package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"graphcache/internal/bitset"
	"graphcache/internal/gen"
)

// shardWalk sums resident entries and bytes the slow way — walking every
// shard under its read lock — the view Len/Bytes used to compute before
// they switched to the atomic residency account.
func shardWalk(c *Cache) (entries, memBytes int) {
	for _, sh := range c.shards {
		sh.mu.RLock()
		entries += len(sh.entries)
		memBytes += sh.memBytes
		sh.mu.RUnlock()
	}
	return entries, memBytes
}

// internWalk recomputes the intern pool's byte account the slow way: the
// distinct canonical sets the resident entries hold references on, each
// counted once. The pool only retains sets with live references, so this
// walk must reproduce pool.bytes exactly.
func internWalk(c *Cache) int {
	seen := make(map[*bitset.Set]bool)
	b := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			if e.interned != nil && !seen[e.interned] {
				seen[e.interned] = true
				b += e.interned.Bytes()
			}
		}
		sh.mu.RUnlock()
	}
	return b
}

// TestResidencyAccountAgreement asserts that the atomic residency account
// (now backing Cache.Len and, with the intern pool's account, Cache.Bytes)
// and the per-shard structures agree after window turns, evictions, state
// save/restore cycles and live dataset mutations in both reconciliation
// modes — with answer sets migrating containers (Compact at admission,
// clone-and-compact on removals) and interning across entries throughout.
func TestResidencyAccountAgreement(t *testing.T) {
	check := func(t *testing.T, c *Cache, when string) {
		t.Helper()
		entries, memBytes := shardWalk(c)
		if got := c.Len(); got != entries {
			t.Fatalf("%s: Len() %d, shard walk %d", when, got, entries)
		}
		if got := int(c.res.bytes.Load()); got != memBytes {
			t.Fatalf("%s: residency account %d bytes, shard walk %d", when, got, memBytes)
		}
		poolBytes := internWalk(c)
		if got := int(c.pool.bytes.Load()); got != poolBytes {
			t.Fatalf("%s: pool account %d bytes, distinct interned sets hold %d", when, got, poolBytes)
		}
		if got, want := c.Bytes(), memBytes+poolBytes; got != want {
			t.Fatalf("%s: Bytes() %d, shard walk + pool %d", when, got, want)
		}
	}
	for _, lazy := range []bool{false, true} {
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			dataset := testDataset(41, 24)
			extra := testDataset(42, 4)
			w, err := gen.NewWorkload(rand.New(rand.NewSource(43)), dataset, gen.WorkloadConfig{
				Size: 80, Mixed: true, PoolSize: 30,
				ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			c := testCache(t, dataset, func(cfg *Config) {
				cfg.Capacity = 12 // small: forces turns and evictions
				cfg.Window = 4
				cfg.Shards = 4
				cfg.LazyReconcile = lazy
				cfg.SelfCheck = false
			})
			for i, q := range w.Queries {
				if _, err := c.Execute(q.G, q.Type); err != nil {
					t.Fatal(err)
				}
				if i%17 == 0 {
					check(t, c, fmt.Sprintf("after query %d", i))
				}
			}
			if c.Stats().Evictions == 0 || c.Stats().WindowTurns == 0 {
				t.Fatal("workload too tame: no evictions or turns")
			}
			check(t, c, "after workload")

			// Dataset mutations: additions grow answer sets (and, eagerly,
			// the byte accounts); removals clear bits.
			for i, g := range extra {
				if _, err := c.AddGraph(g); err != nil {
					t.Fatal(err)
				}
				check(t, c, fmt.Sprintf("after add %d", i))
			}
			if err := c.RemoveGraph(0); err != nil {
				t.Fatal(err)
			}
			check(t, c, "after remove")
			// RemoveGraph trues every entry up against the pool under the
			// full hierarchy, so the accounts must now equal the TRUE
			// resident footprint — static bytes per entry plus each
			// distinct published answer set once (summing Entry.Bytes
			// would double-count sets interning has collapsed) — in lazy
			// mode too, where earlier hit-path swaps bypassed the pool
			// until this pass.
			trueBytes := 0
			seen := make(map[*bitset.Set]bool)
			for _, e := range c.Entries() {
				a := e.Answers()
				trueBytes += e.Bytes() - a.Bytes()
				if !seen[a] {
					seen[a] = true
					trueBytes += a.Bytes()
				}
			}
			if got := c.Bytes(); got != trueBytes {
				t.Fatalf("after remove: Bytes() %d, true footprint %d", got, trueBytes)
			}
			// Touch entries so lazy reconciliation swaps answer sets, then
			// re-check the accounts still agree.
			for _, e := range c.Entries() {
				if _, err := c.Execute(e.Graph, e.Type); err != nil {
					t.Fatal(err)
				}
			}
			check(t, c, "after reconciling hits")

			// Save/restore resets and rebuilds both views.
			var buf bytes.Buffer
			if err := c.WriteState(&buf); err != nil {
				t.Fatal(err)
			}
			if err := c.ReadState(&buf); err != nil {
				t.Fatal(err)
			}
			check(t, c, "after restore")
			if c.Len() == 0 {
				t.Fatal("restore left the cache empty")
			}
		})
	}
}
