package core

import (
	"testing"
)

// mkEntry builds a bare entry with the given utility stats.
func mkEntry(id int, inserted, lastUsed, hits int64, savedTests, savedCost float64) *Entry {
	return &Entry{
		ID:          id,
		InsertedAt:  inserted,
		LastUsed:    lastUsed,
		Hits:        hits,
		SavedTests:  savedTests,
		SavedCostNs: savedCost,
	}
}

func idsAt(entries []*Entry, pos []int) []int {
	out := make([]int, len(pos))
	for i, p := range pos {
		out[i] = entries[p].ID
	}
	return out
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	entries := []*Entry{
		mkEntry(0, 1, 10, 0, 0, 0),
		mkEntry(1, 2, 5, 0, 0, 0),
		mkEntry(2, 3, 20, 0, 0, 0),
	}
	got := idsAt(entries, NewLRU().ReplacedContent(entries, 2))
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("LRU victims = %v, want [1 0]", got)
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	entries := []*Entry{
		mkEntry(0, 5, 100, 0, 0, 0),
		mkEntry(1, 1, 200, 0, 0, 0),
		mkEntry(2, 3, 300, 0, 0, 0),
	}
	got := idsAt(entries, NewFIFO().ReplacedContent(entries, 1))
	if got[0] != 1 {
		t.Errorf("FIFO victim = %v, want [1]", got)
	}
}

func TestPOPEvictsLeastPopular(t *testing.T) {
	entries := []*Entry{
		mkEntry(0, 1, 1, 9, 0, 0),
		mkEntry(1, 1, 2, 2, 0, 0),
		mkEntry(2, 1, 3, 5, 0, 0),
	}
	got := idsAt(entries, NewPOP().ReplacedContent(entries, 2))
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("POP victims = %v, want [1 2]", got)
	}
}

func TestPINEvictsFewestSavedTests(t *testing.T) {
	entries := []*Entry{
		mkEntry(0, 1, 1, 1, 100, 0),
		mkEntry(1, 1, 2, 9, 3, 0),
		mkEntry(2, 1, 3, 1, 50, 0),
	}
	got := idsAt(entries, NewPIN().ReplacedContent(entries, 1))
	if got[0] != 1 {
		t.Errorf("PIN victim = %v, want [1]", got)
	}
}

func TestPINCEvictsCheapestSavings(t *testing.T) {
	entries := []*Entry{
		mkEntry(0, 1, 1, 1, 5, 1e9),
		mkEntry(1, 1, 2, 1, 500, 1e3), // many tests saved but dirt cheap ones
		mkEntry(2, 1, 3, 1, 5, 1e6),
	}
	got := idsAt(entries, NewPINC().ReplacedContent(entries, 1))
	if got[0] != 1 {
		t.Errorf("PINC victim = %v, want [1]", got)
	}
}

func TestHDBlendsPINAndPINC(t *testing.T) {
	hd := NewHD()
	// Uniform per-hit cost observations keep cost weight near CV/(1+CV)=0
	// so HD reduces to normalized PIN.
	entries := []*Entry{
		mkEntry(0, 1, 1, 1, 100, 100),
		mkEntry(1, 1, 2, 1, 1, 1),
		mkEntry(2, 1, 3, 1, 50, 50),
	}
	got := idsAt(entries, hd.ReplacedContent(entries, 1))
	if got[0] != 1 {
		t.Errorf("HD victim = %v, want [1]", got)
	}
}

func TestHDCostWeightAdapts(t *testing.T) {
	hd := NewHD().(*scorePolicy)
	// Feed highly dispersed cost observations.
	for i, c := range []float64{10, 1e7, 5, 2e7, 1} {
		hd.UpdateCacheStaInfo(&HitEvent{Entry: mkEntry(i, 1, 1, 0, 0, 0), SavedTests: 1, SavedCostNs: c, Tick: int64(i)})
	}
	if hd.costCV.CV() < 0.5 {
		t.Fatalf("test setup: CV = %v should be large", hd.costCV.CV())
	}
	// Entry 0 saves many cheap tests; entry 1 saves few but expensive ones.
	// With high cost dispersion HD must favor keeping the expensive-savings
	// entry, i.e. evict the cheap-savings one... but normalized PIN also
	// counts. Construct so PINC dominates: equal saved tests, different cost.
	entries := []*Entry{
		mkEntry(0, 1, 1, 1, 10, 1e3),
		mkEntry(1, 1, 2, 1, 10, 1e8),
	}
	got := idsAt(entries, hd.ReplacedContent(entries, 1))
	if got[0] != 0 {
		t.Errorf("HD with dispersed costs evicted %v, want [0] (cheap savings)", got)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	entries := []*Entry{
		mkEntry(7, 1, 4, 2, 0, 0),
		mkEntry(3, 1, 4, 2, 0, 0),
		mkEntry(5, 1, 4, 2, 0, 0),
	}
	for _, p := range []Policy{NewLRU(), NewPOP(), NewPIN(), NewPINC(), NewHD()} {
		got := idsAt(entries, p.ReplacedContent(entries, 2))
		if got[0] != 3 || got[1] != 5 {
			t.Errorf("%s tie-break = %v, want [3 5]", p.Name(), got)
		}
	}
}

func TestReplacedContentAllWhenXTooLarge(t *testing.T) {
	entries := []*Entry{mkEntry(0, 1, 1, 0, 0, 0), mkEntry(1, 2, 2, 0, 0, 0)}
	for _, p := range []Policy{NewLRU(), NewRand(1), NewHD()} {
		got := p.ReplacedContent(entries, 10)
		if len(got) != 2 {
			t.Errorf("%s: x>len returned %d positions, want 2", p.Name(), len(got))
		}
	}
}

func TestRandPolicyDistinctAndSeeded(t *testing.T) {
	entries := make([]*Entry, 20)
	for i := range entries {
		entries[i] = mkEntry(i, int64(i), int64(i), 0, 0, 0)
	}
	a := NewRand(42).ReplacedContent(entries, 5)
	b := NewRand(42).ReplacedContent(entries, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rand policy not reproducible from seed")
		}
	}
	seen := map[int]bool{}
	for _, p := range a {
		if seen[p] {
			t.Fatal("rand policy returned duplicate positions")
		}
		seen[p] = true
	}
}

func TestUpdateCacheStaInfoAccumulates(t *testing.T) {
	p := NewPIN()
	e := mkEntry(0, 1, 1, 0, 0, 0)
	p.UpdateCacheStaInfo(&HitEvent{Entry: e, Kind: SubHit, SavedTests: 7, SavedCostNs: 100, Tick: 5})
	p.UpdateCacheStaInfo(&HitEvent{Entry: e, Kind: SuperHit, SavedTests: 3, SavedCostNs: 50, Tick: 9})
	if e.Hits != 2 || e.SavedTests != 10 || e.SavedCostNs != 150 || e.LastUsed != 9 {
		t.Errorf("entry stats = %+v", e)
	}
}

func TestNewPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestEntryAging(t *testing.T) {
	e := mkEntry(0, 1, 1, 3, 100, 1000)
	e.age(0.5)
	if e.SavedTests != 50 || e.SavedCostNs != 500 {
		t.Errorf("aged entry = %+v", e)
	}
	if e.Hits != 3 {
		t.Error("aging must not touch hit counts")
	}
}

func TestHitKindString(t *testing.T) {
	if ExactHit.String() != "exact" || SubHit.String() != "sub" || SuperHit.String() != "super" {
		t.Error("HitKind strings wrong")
	}
	if HitKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}
