package core

import (
	"context"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// gateStar builds a star graph with the given number of leaves — distinct
// sizes give distinct (never exact-hitting) queries.
func gateStar(leaves int) *graph.Graph {
	labels := make([]graph.Label, leaves+1)
	labels[0] = 1
	edges := make([][2]int, leaves)
	for i := 1; i <= leaves; i++ {
		labels[i] = graph.Label(1 + i%3)
		edges[i-1] = [2]int{0, i}
	}
	return graph.MustNew(labels, edges)
}

// gateCache builds a cache over a single-graph dataset with the given
// dataset verifier, plus 8 distinct star queries. NoFilter guarantees
// every query runs the verifier exactly once (the dataset has one graph,
// nothing is admitted within the default window, so no hit ever shrinks
// the candidate set).
func gateCache(t *testing.T, verify ftv.VerifierFunc) (*Cache, []Request) {
	t.Helper()
	dataset := []*graph.Graph{gateStar(9)}
	method := ftv.NewMethod("gated/vf2", dataset, ftv.NewNoFilter(len(dataset)), verify)
	cfg := DefaultConfig()
	cfg.Shards = 1
	c := MustNew(method, cfg)
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Graph: gateStar(i + 1), Type: ftv.Subgraph}
	}
	return c, reqs
}

// TestStreamContextCancelledUpfront: a context cancelled before the call
// dispatches nothing at all.
func TestStreamContextCancelledUpfront(t *testing.T) {
	c, reqs := gateCache(t, nil) // default VF2, never blocks
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		n := 0
		for range c.ExecuteAllStreamContext(ctx, reqs, workers) {
			n++
		}
		if n != 0 {
			t.Fatalf("workers=%d: %d outcomes from a cancelled context", workers, n)
		}
	}
	if got := c.Stats().Queries; got != 0 {
		t.Fatalf("%d queries executed despite cancelled context", got)
	}
}

// TestStreamContextStopsSequentialDispatch: cancelling mid-batch on the
// sequential path stops after the in-flight query — the remaining ones
// never reach the cache.
func TestStreamContextStopsSequentialDispatch(t *testing.T) {
	gate := make(chan struct{})
	ready := make(chan struct{}, 16)
	c, reqs := gateCache(t, func(pattern, target *graph.Graph) bool {
		ready <- struct{}{}
		<-gate
		return ftv.VF2Verifier(pattern, target)
	})
	ctx, cancel := context.WithCancel(context.Background())
	out := c.ExecuteAllStreamContext(ctx, reqs, 1)
	<-ready // query 0 is inside its verifier
	cancel()
	gate <- struct{}{} // release query 0; later queries must not start
	var outcomes []StreamOutcome
	for so := range out {
		outcomes = append(outcomes, so)
	}
	if len(outcomes) != 1 || outcomes[0].Index != 0 {
		t.Fatalf("outcomes %v, want exactly query 0", outcomes)
	}
	if got := c.Stats().Queries; got != 1 {
		t.Fatalf("%d queries executed, want 1", got)
	}
}

// TestStreamContextStopsWorkerDispatch: cancelling mid-batch on the
// worker-pool path lets the in-flight queries finish and dispatches no
// more.
func TestStreamContextStopsWorkerDispatch(t *testing.T) {
	gate := make(chan struct{})
	ready := make(chan struct{}, 16)
	c, reqs := gateCache(t, func(pattern, target *graph.Graph) bool {
		ready <- struct{}{}
		<-gate
		return ftv.VF2Verifier(pattern, target)
	})
	ctx, cancel := context.WithCancel(context.Background())
	out := c.ExecuteAllStreamContext(ctx, reqs, 2)
	<-ready // both workers are inside their verifiers
	<-ready
	cancel()
	close(gate) // release everything that ever blocks
	n := 0
	for range out {
		n++
	}
	if n != 2 {
		t.Fatalf("%d outcomes after cancelling with 2 in flight, want 2", n)
	}
	if got := c.Stats().Queries; got != 2 {
		t.Fatalf("%d queries executed, want 2", got)
	}
}
