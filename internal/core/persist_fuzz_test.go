package core

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// Native fuzz target for the persistence v2 parser. ReadState consumes
// untrusted bytes (a state file is just a file on disk), so the parser
// must never panic, never partially apply a bad restore, and every state
// it accepts must satisfy the cache invariants and survive a
// write→read roundtrip. The committed seed corpus under
// testdata/fuzz/FuzzReadState pins a valid v2 state plus the corruption
// shapes the hand-written persist tests cover; `make ci` runs a short
// -fuzz smoke pass on top of the regular regression replay.

// fuzzStateMu serializes fuzz executions against the shared fixture
// below (the fuzzing engine may run the seed corpus on parallel
// goroutines; caches are per-execution but the method is shared and
// WriteState/ReadState both walk it).
var fuzzStateMu sync.Mutex

var fuzzStateFixture = sync.OnceValue(func() *ftv.Method {
	return ftv.NewGGSXMethod(testDataset(161, 8), 3)
})

// fuzzStateCache builds a fresh small cache over the shared method.
func fuzzStateCache() *Cache {
	cfg := DefaultConfig()
	cfg.Capacity = 6
	cfg.Window = 1
	cfg.Shards = 1
	return MustNew(fuzzStateFixture(), cfg)
}

// validFuzzState serializes a warmed cache — the well-formed corpus seed.
func validFuzzState(tb testing.TB) []byte {
	c := fuzzStateCache()
	rng := rand.New(rand.NewSource(162))
	dataset := c.Method().Dataset()
	for i := 0; i < 3; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i], 4)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteStateV2(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadState(f *testing.F) {
	valid := validFuzzState(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                              // truncated mid-entry
	f.Add(bytes.Replace(valid, []byte("gcstate 2"), []byte("gcstate 1"), 1)) // version skew
	f.Add([]byte("gcstate 2 8 0\nend\n"))                                    // empty but well-formed
	f.Add([]byte("gcstate 2 9999 1\nend\n"))                                 // foreign dataset size
	f.Add([]byte("entry 0 1 0 0 0 0 0\n"))                                   // entry before header
	f.Add([]byte(strings.Repeat("answers 1 1\n", 4)))                        // orphan answers lines

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzStateMu.Lock()
		defer fuzzStateMu.Unlock()
		c := fuzzStateCache()
		if err := c.ReadState(bytes.NewReader(data)); err != nil {
			// Rejections must be all-or-nothing: the cache stays empty.
			if c.Len() != 0 || c.Bytes() != 0 {
				t.Fatalf("rejected restore left %d entries / %d bytes behind", c.Len(), c.Bytes())
			}
			return
		}
		// Accepted states must satisfy the cache invariants...
		if c.Len() > 6 {
			t.Fatalf("restore admitted %d entries past capacity 6", c.Len())
		}
		view := c.Method().View()
		for _, e := range c.Entries() {
			ans := e.Answers()
			if ans.Len() != view.Size() {
				t.Fatalf("entry %d answers sized %d, dataset %d", e.ID, ans.Len(), view.Size())
			}
			if !ans.SubsetOf(view.Live()) {
				t.Fatalf("entry %d answers a tombstoned id", e.ID)
			}
			if e.DatasetEpoch() != view.Epoch() {
				t.Fatalf("entry %d stamped epoch %d, want current %d", e.ID, e.DatasetEpoch(), view.Epoch())
			}
		}
		// ...and survive a write→read roundtrip bit-exactly in count.
		var buf bytes.Buffer
		if err := c.WriteState(&buf); err != nil {
			t.Fatalf("re-serializing an accepted state: %v", err)
		}
		c2 := fuzzStateCache()
		if err := c2.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("roundtrip of an accepted state was rejected: %v", err)
		}
		if c2.Len() != c.Len() {
			t.Fatalf("roundtrip entry count %d, want %d", c2.Len(), c.Len())
		}
	})
}
