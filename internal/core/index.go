package core

import (
	"sync/atomic"

	"graphcache/internal/ftv"
)

// hitIndex is the global cache-entry feature index: an immutable, ID-ordered
// array of per-entry containment summaries published through an atomic
// pointer. Hit detection reads it entirely lock-free — no shard locks, no
// snapshot allocation, no per-query sort — and uses the summaries
// (ftv.FeatureVector plus a path-feature bloom) to discard entries that
// cannot possibly be sub- or super-hit candidates before any label-vector
// or path-feature dominance merge runs.
//
// # Publication rules
//
// The index is copy-on-write. Writers never mutate a published slice: every
// mutation of the admitted entries — window turns (admission + eviction),
// state restores — rebuilds a fresh slice from the shard contents and
// publishes it with a single atomic store, while holding coordMu and every
// shard write lock (rebuildIndexLocked's contract). Readers load the
// pointer once per query and work on that point-in-time array; an entry
// evicted after the load stays sound to use (its graph, answer set and
// summary are immutable), exactly like the shard-snapshot path. Because
// rebuilds happen inside the same critical section that mutates the
// shards, a sequential query stream always observes an index that exactly
// mirrors the admitted entries, keeping indexed results deterministic and
// shard-count-independent (the array is ID-ordered, the order a
// single-shard cache would scan in).
type hitIndex struct {
	snap atomic.Pointer[[]indexEntry]
}

// indexEntry is one entry's published summary. All fields are immutable
// after admission; e's mutable utility fields are never read through the
// index.
type indexEntry struct {
	typ      ftv.QueryType
	featBits uint64
	fv       ftv.FeatureVector
	e        *Entry
}

// load returns the current published summaries (nil before any admission).
func (ix *hitIndex) load() []indexEntry {
	if p := ix.snap.Load(); p != nil {
		return *p
	}
	return nil
}

// rebuildIndexLocked republishes the index from the shard contents. Caller
// holds coordMu and every shard write lock. With Config.IndexOff nothing is
// built — the escape hatch runs pure PR-1 snapshot scans.
func (c *Cache) rebuildIndexLocked() {
	if c.cfg.IndexOff {
		return
	}
	all := c.gatherLocked()
	entries := make([]indexEntry, len(all))
	for i, e := range all {
		entries[i] = indexEntry{typ: e.Type, featBits: e.FeatureBits, fv: e.FV, e: e}
	}
	c.idx.snap.Store(&entries)
}

// scanIndex collects sub/super hit candidates from the published index in
// ID order. The summary checks (size, label bloom, label-degree bloom,
// degree tail, path-feature bloom) are necessary conditions for the
// corresponding containment, so a summary rejection safely skips the exact
// dominance merges; entries rejected in both directions without a merge
// are counted as index-pruned.
func (c *Cache) scanIndex(qt ftv.QueryType, sig querySig) (sub, super []*Entry) {
	entries := c.idx.load()
	c.mon.hitScanEntries.Add(int64(len(entries)))
	for i := range entries {
		ie := &entries[i]
		if ie.typ != qt {
			continue
		}
		pruned := true
		// Sub case q ⊑ h: q's summary must be contained in h's.
		if sig.fv.ContainedIn(ie.fv) && sig.featBits&^ie.featBits == 0 {
			pruned = false
			c.mon.hitFullChecks.Add(1)
			if sig.labelVec.DominatedBy(ie.e.LabelVec) && sig.features.dominatedBy(ie.e.Features) {
				sub = append(sub, ie.e)
				continue
			}
		}
		// Super case h ⊑ q: h's summary must be contained in q's.
		if ie.fv.ContainedIn(sig.fv) && ie.featBits&^sig.featBits == 0 {
			pruned = false
			c.mon.hitFullChecks.Add(1)
			if ie.e.LabelVec.DominatedBy(sig.labelVec) && ie.e.Features.dominatedBy(sig.features) {
				super = append(super, ie.e)
			}
		}
		if pruned {
			c.mon.hitIndexPruned.Add(1)
		}
	}
	return sub, super
}
