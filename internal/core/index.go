package core

import (
	"graphcache/internal/ftv"
)

// The cache-entry feature index: per-shard, copy-on-write arrays of
// per-entry containment summaries published through atomic pointers
// (shard.summaries). Hit detection reads them entirely lock-free — no
// shard locks, no snapshot allocation, no per-query sort — and uses the
// summaries (ftv.FeatureVector plus a path-feature bloom) to discard
// entries that cannot possibly be sub- or super-hit candidates before any
// label-vector or path-feature dominance merge runs.
//
// # Publication rules
//
// Writers never mutate a published slice. Each shard's slice is replaced
// whole — under policyMu plus that shard's write lock — whenever the
// shard's admitted set changes: a per-shard window turn, a SharedWindow
// turn, a state restore. The turning shard republishes only ITS slice
// (O(shard), not O(cache)); the global index a reader sees is simply the
// union of the per-shard slices, so the republish is visible the moment
// the single atomic store lands, and no other shard blocks or rebuilds.
//
// Readers load each shard's pointer once per query and work on those
// point-in-time arrays; an entry evicted after the load stays sound to
// use (its graph, answer set and summary are immutable), exactly like the
// shard-snapshot path. Scan order is shard-major rather than global ID
// order, which changes NOTHING downstream: every consumer is a function
// of the candidate SET — benefit ranking orders candidates by (answer
// count, entry ID) and eviction ranking is the policy's own sort — so
// detection stays deterministic at any fixed shard count, and identical
// to the serialized single-shard engine's under SharedWindow (where the
// admitted sets coincide). For a sequential stream the union always
// exactly mirrors the admitted entries: admitted sets change only inside
// policyMu, and every mutation republishes before its locks drop.
type indexEntry struct {
	typ      ftv.QueryType
	featBits uint64
	fv       ftv.FeatureVector
	e        *Entry
}

// summariesView returns the published summary slices, one per non-empty
// shard — the lock-free global view of the admitted entries. Exact under
// policyMu (turns and restores serialize there and republish before
// unlocking); a point-in-time union under concurrent reads.
//
//gclint:nolocks
//gclint:loads summaries
func (c *Cache) summariesView() [][]indexEntry {
	parts := make([][]indexEntry, 0, len(c.shards))
	for _, sh := range c.shards {
		if p := sh.summaries.Load(); p != nil && len(*p) > 0 {
			parts = append(parts, *p)
		}
	}
	return parts
}

// republishShardLocked replaces sh's published summary slice with a fresh
// copy of its admitted entries. Caller holds policyMu and sh's write
// lock. With Config.IndexOff nothing is built — the escape hatch runs
// pure snapshot scans.
//
//gclint:requires policyMu shard
func (c *Cache) republishShardLocked(sh *shard) {
	if c.cfg.IndexOff {
		return
	}
	s := make([]indexEntry, len(sh.entries))
	for i, e := range sh.entries {
		s[i] = indexEntry{typ: e.Type, featBits: e.FeatureBits, fv: e.FV, e: e}
	}
	sh.summaries.Store(&s)
}

// republishAllLocked refreshes every shard's summary slice — the
// stop-the-world republish used by SharedWindow turns and state restores.
// Caller holds policyMu and every shard write lock.
//
//gclint:requires policyMu shard
func (c *Cache) republishAllLocked() {
	if c.cfg.IndexOff {
		return
	}
	for _, sh := range c.shards {
		c.republishShardLocked(sh)
	}
}

// scanIndex collects sub/super hit candidates from the published
// per-shard summaries. The summary checks (size, label bloom,
// label-degree bloom, degree tail, path-feature bloom) are necessary
// conditions for the corresponding containment, so a summary rejection
// safely skips the exact dominance merges; entries rejected in both
// directions without a merge are counted as index-pruned.
//
//gclint:nolocks
//gclint:loads summaries
func (c *Cache) scanIndex(qt ftv.QueryType, sig querySig) (sub, super []*Entry) {
	// Iterate the published per-shard slices directly rather than through
	// summariesView: the hot path then allocates no per-query parts slice.
	for _, sh := range c.shards {
		p := sh.summaries.Load()
		if p == nil || len(*p) == 0 {
			continue
		}
		entries := *p
		c.mon.hitScanEntries.Add(int64(len(entries)))
		for i := range entries {
			ie := &entries[i]
			if ie.typ != qt {
				continue
			}
			pruned := true
			// Sub case q ⊑ h: q's summary must be contained in h's.
			if sig.fv.ContainedIn(ie.fv) && sig.featBits&^ie.featBits == 0 {
				pruned = false
				c.mon.hitFullChecks.Add(1)
				if sig.labelVec.DominatedBy(ie.e.LabelVec) && sig.features.dominatedBy(ie.e.Features) {
					sub = append(sub, ie.e)
					continue
				}
			}
			// Super case h ⊑ q: h's summary must be contained in q's.
			if ie.fv.ContainedIn(sig.fv) && ie.featBits&^sig.featBits == 0 {
				pruned = false
				c.mon.hitFullChecks.Add(1)
				if ie.e.LabelVec.DominatedBy(sig.labelVec) && ie.e.Features.dominatedBy(sig.features) {
					super = append(super, ie.e)
				}
			}
			if pruned {
				c.mon.hitIndexPruned.Add(1)
			}
		}
	}
	return sub, super
}
