package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// Property-based churn fuzzing: testing/quick drives random interleavings
// of Execute/AddGraph/RemoveGraph through a SelfCheck-armed cache, so any
// answer that diverges from the uncached method — after any mutation
// history — panics inside Execute and fails the property. Failing op
// strings are shrunk to a minimal reproducer before reporting, and the
// whole suite runs with a bounded op budget (maxChurnOps per case) so the
// -race CI pass stays fast.

// maxChurnOps bounds the per-case op budget.
const maxChurnOps = 48

// churnOpsDataset/churnOpsExtras are the fixed, immutable inputs every
// fuzz case starts from (graphs are never mutated, so sharing across
// cases is safe; each case builds its own method and cache).
var (
	churnOpsDataset = testDataset(141, 14)
	churnOpsExtras  = testDataset(142, 8)
)

// churnOpPool derives the deterministic query pool: mixed sub/super
// patterns extracted from the base dataset.
func churnOpPool() []queryCase {
	rng := rand.New(rand.NewSource(143))
	pool := make([]queryCase, 8)
	for i := range pool {
		qt := ftv.Subgraph
		if i%3 == 2 {
			qt = ftv.Supergraph
		}
		pool[i] = queryCase{g: gen.ExtractConnectedSubgraph(rng, churnOpsDataset[i%len(churnOpsDataset)], 3+i%4), qt: qt}
	}
	return pool
}

var churnOpsPool = churnOpPool()

// runChurnOps interprets ops over a fresh SelfCheck-armed cache: op%4
// selects execute (0, 1 — queries dominate, like real streams), add (2)
// or remove (3); the remaining bits pick the pattern/victim. It returns
// the first correctness violation (SelfCheck panics are recovered into
// errors so the shrinker can replay candidate op strings), or nil when
// the whole interleaving stayed exact.
func runChurnOps(ops []byte, shards int, lazy bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("kernel panic: %v", r)
		}
	}()
	method := ftv.NewGGSXMethod(churnOpsDataset, 3)
	cfg := DefaultConfig()
	cfg.Capacity = 8
	cfg.Window = 2
	cfg.Shards = shards
	cfg.LazyReconcile = lazy
	cfg.SelfCheck = true
	c := MustNew(method, cfg)

	nextExtra := 0
	for i, op := range ops {
		switch op % 4 {
		case 0, 1:
			q := churnOpsPool[int(op/4)%len(churnOpsPool)]
			if _, err := c.Execute(q.g, q.qt); err != nil {
				return fmt.Errorf("op %d: execute: %w", i, err)
			}
		case 2:
			if _, err := c.AddGraph(churnOpsExtras[nextExtra%len(churnOpsExtras)]); err != nil {
				return fmt.Errorf("op %d: add: %w", i, err)
			}
			nextExtra++
		case 3:
			info := c.DatasetInfo()
			if info.Live <= 1 {
				continue
			}
			view := c.Method().View()
			gid := int(op/4) % info.Size
			for view.Graph(gid) == nil {
				gid = (gid + 1) % info.Size
			}
			if err := c.RemoveGraph(gid); err != nil {
				return fmt.Errorf("op %d: remove %d: %w", i, gid, err)
			}
		}
		// Structural invariants after every op: the log never outgrows
		// the mutation history, and eager mode drains it at each add.
		snap := c.Stats()
		if int64(snap.AdditionLogLen) > snap.DatasetAdds {
			return fmt.Errorf("op %d: addition log %d exceeds %d adds", i, snap.AdditionLogLen, snap.DatasetAdds)
		}
		if !lazy && snap.AdditionLogLen != 0 {
			return fmt.Errorf("op %d: eager mode left %d addition records", i, snap.AdditionLogLen)
		}
		if snap.FilterRebuilds != 0 {
			return fmt.Errorf("op %d: AddGraph fell back to a full filter rebuild", i)
		}
	}

	// Endgame: every admitted entry re-executes byte-identical to the
	// uncached method over the final dataset (exact hits reconcile any
	// remaining lazy staleness on the way).
	for _, e := range c.Entries() {
		res, err := c.Execute(e.Graph, e.Type)
		if err != nil {
			return fmt.Errorf("endgame entry %d: %w", e.ID, err)
		}
		if want := method.Run(e.Graph, e.Type).Answers; !res.Answers.Equal(want) {
			return fmt.Errorf("endgame entry %d: answers %v, uncached %v", e.ID, res.Answers, want)
		}
	}
	return nil
}

// clampOps bounds a generated op string to the fuzzer's op budget.
func clampOps(raw []byte) []byte {
	if len(raw) > maxChurnOps {
		raw = raw[:maxChurnOps]
	}
	return raw
}

// shrinkOps greedily minimizes a failing op string: first by halving,
// then by deleting single ops, as long as the failure reproduces. The
// result is the smallest interleaving the greedy pass can reach — short
// enough to read off the bug.
func shrinkOps(ops []byte, fails func([]byte) bool) []byte {
	cur := append([]byte(nil), ops...)
	for changed := true; changed; {
		changed = false
		for _, cand := range [][]byte{cur[:len(cur)/2], cur[len(cur)/2:]} {
			if len(cand) < len(cur) && fails(cand) {
				cur = append([]byte(nil), cand...)
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		for i := 0; i < len(cur); i++ {
			cand := append(append([]byte(nil), cur[:i]...), cur[i+1:]...)
			if fails(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// TestQuickChurnInterleavings is the churn fuzzer: seeded testing/quick
// op strings at shards {1, 4, 32} in both reconciliation modes, every
// answer cross-checked byte-identical against the uncached method by
// SelfCheck. A failure is shrunk to a minimal op string before being
// reported, so the log line is a replayable reproducer.
func TestQuickChurnInterleavings(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		for _, shards := range []int{1, 4, 32} {
			t.Run(fmt.Sprintf("lazy=%v/shards=%d", lazy, shards), func(t *testing.T) {
				seed := int64(151 + shards)
				if lazy {
					seed += 1000
				}
				prop := func(raw []byte) bool {
					return runChurnOps(clampOps(raw), shards, lazy) == nil
				}
				qc := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(seed))}
				err := quick.Check(prop, qc)
				if err == nil {
					return
				}
				ce, ok := err.(*quick.CheckError)
				if !ok {
					t.Fatal(err)
				}
				ops := clampOps(ce.In[0].([]byte))
				min := shrinkOps(ops, func(o []byte) bool { return runChurnOps(o, shards, lazy) != nil })
				t.Fatalf("churn interleaving #%d failed; minimal reproducer ops=%v (shards=%d lazy=%v): %v",
					ce.Count, min, shards, lazy, runChurnOps(min, shards, lazy))
			})
		}
	}
}

// TestShrinkOpsMinimizes pins the shrinker itself: for a synthetic
// failure predicate ("contains byte 7"), the minimal string is exactly
// one op long.
func TestShrinkOpsMinimizes(t *testing.T) {
	fails := func(ops []byte) bool {
		for _, b := range ops {
			if b == 7 {
				return true
			}
		}
		return false
	}
	ops := []byte{1, 2, 3, 7, 4, 5, 6, 8, 9, 10, 11, 12}
	min := shrinkOps(ops, fails)
	if len(min) != 1 || min[0] != 7 {
		t.Fatalf("shrunk to %v, want [7]", min)
	}
}
