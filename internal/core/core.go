package core

import (
	"fmt"

	"graphcache/internal/ftv"
)

// Config parameterizes a Cache. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// Capacity is the maximum number of cached queries (the demo uses 50).
	// With per-shard admission windows (the default), a turning shard
	// evicts only its own residents, so the resident count can transiently
	// overshoot Capacity when admissions land in shards with little to
	// evict — by fewer than Shards×⌈Window/Shards⌉ entries, paid down as
	// the loaded shards turn. SharedWindow (and Shards: 1) enforce the
	// bound exactly at every turn.
	Capacity int
	// Window is the admission-window size W: executed queries are buffered
	// and admitted in batches of Window (the demo workload size is 10).
	Window int
	// Policy is the replacement policy. Nil defaults to HD, the paper's
	// "when in doubt" recommendation.
	Policy Policy
	// MaxSubHits and MaxSuperHits bound how many hits of each kind are
	// exploited per query, so hit-detection cost cannot swamp its benefit.
	MaxSubHits, MaxSuperHits int
	// FeatureLen is the path-feature length of the cache's query index
	// (the iGQ-style pre-filter applied before any q↔h iso test).
	FeatureLen int
	// HitIsoBudget caps VF2 recursions per q↔h containment test; 0 means
	// unlimited. An aborted test is treated as "no hit" (sound: hits only
	// ever shrink work, never correctness).
	HitIsoBudget int64
	// VerifyWorkers is the number of goroutines verifying candidates
	// WITHIN one query; values < 2 mean sequential verification. This is
	// intra-query parallelism, orthogonal to the inter-query concurrency
	// the shards provide.
	VerifyWorkers int
	// Shards is the number of lock shards admitted entries are partitioned
	// across by graph fingerprint. 0 selects DefaultShards; 1 yields a
	// single-shard cache. Sequential query streams produce identical
	// answer sets at any shard count, and are fully deterministic at any
	// fixed shard count; with SharedWindow set, cache contents too are
	// shard-count-independent.
	Shards int
	// Serialized, when set, takes one global exclusive lock for the whole
	// of each Execute call — the pre-sharding engine's behavior. It is the
	// measurable baseline for the parallel-throughput benchmarks and the
	// reference configuration for the sharded-equivalence tests.
	Serialized bool
	// SharedWindow, when set, restores the shared admission engine: one
	// global admission window behind a coordinator mutex, turned
	// stop-the-world under every shard lock. By default each shard owns
	// its own admission window of ceil(Window/Shards) entries, turned
	// under only that shard's lock (plus the policy mutex); Capacity and
	// MemoryBudget stay global (tracked in an atomic resident account),
	// but a turning shard evicts only its own residents — so no per-query
	// path takes any global mutex. The two engines stage, turn and rank
	// eviction victims at different moments and scopes, so they can cache
	// different entries, but sequential streams return byte-identical
	// answer sets either way (and at Shards: 1 the engines coincide
	// exactly). The shared engine is the measurable baseline for the
	// window-decentralization comparison, alongside Serialized and
	// IndexOff.
	SharedWindow bool
	// IndexOff disables the global cache-entry feature index: hit
	// detection falls back to scanning an ID-ordered snapshot of every
	// shard with size/label/path-dominance pre-filtering only — the
	// pre-index engine. It is the measurable baseline for the
	// indexed-vs-unindexed hit-detection comparison; answers are provably
	// identical either way (the index only prunes provable non-hits).
	IndexOff bool
	// LazyReconcile defers answer-set maintenance for dataset ADDITIONS:
	// instead of verifying the new graph against every cached entry at
	// AddGraph time (the eager default), entries keep a per-entry dataset
	// epoch and a hit on a stale entry verifies only the graphs added
	// since that epoch (the method's addition log) before its answers are
	// trusted. Reconciliation cost then lands on the queries that actually
	// touch an entry — better under high churn with skewed hit patterns —
	// at the price of per-hit latency jitter. Removals are always applied
	// eagerly (clearing a bit needs no iso test). Answers are exact in
	// both modes.
	LazyReconcile bool
	// MemoryBudget, when positive, caps the estimated resident bytes of
	// cached entries (graphs + answer sets); eviction triggers on overflow
	// even below Capacity.
	MemoryBudget int
	// DecayFactor ages PIN/PINC utilities at every window turn, keeping
	// policies workload-adaptive. Must be in (0, 1]; 1 disables aging.
	DecayFactor float64
	// SelfCheck re-executes every query on the base method and panics on
	// any answer mismatch. For tests and demos only.
	SelfCheck bool
}

// DefaultConfig mirrors the demo deployment: a 50-entry cache, a 10-query
// admission window, HD replacement.
func DefaultConfig() Config {
	return Config{
		Capacity:     50,
		Window:       10,
		Policy:       nil, // NewHD() at construction, avoiding shared state
		MaxSubHits:   4,
		MaxSuperHits: 4,
		FeatureLen:   2,
		HitIsoBudget: 20000,
		DecayFactor:  0.8,
	}
}

func (c *Config) validate(method *ftv.Method) error {
	if method == nil {
		return fmt.Errorf("core: nil method")
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("core: capacity must be positive, got %d", c.Capacity)
	}
	if c.Window <= 0 {
		return fmt.Errorf("core: window must be positive, got %d", c.Window)
	}
	if c.DecayFactor <= 0 || c.DecayFactor > 1 {
		return fmt.Errorf("core: decay factor must be in (0,1], got %v", c.DecayFactor)
	}
	if c.MaxSubHits < 0 || c.MaxSuperHits < 0 {
		return fmt.Errorf("core: hit budgets must be non-negative")
	}
	if c.FeatureLen < 0 {
		return fmt.Errorf("core: feature length must be non-negative")
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shard count must be non-negative, got %d", c.Shards)
	}
	return nil
}
