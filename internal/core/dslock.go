package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// dsLock is the dataset lock: a reader-writer lock specialized for the
// cache's read-mostly regime, where every query holds the read side for
// its whole run and only the rare live mutations (AddGraph/RemoveGraph)
// take the write side.
//
// A plain sync.RWMutex makes every reader CAS the same reader-count word,
// so at high query concurrency the uncontended-in-principle read side
// becomes a cache-line ping-pong between cores. dsLock stripes the reader
// count across padded per-slot counters (a "big-reader" lock): a reader
// picks a slot keyed by its goroutine's stack address and increments only
// that line, so concurrent readers on different cores touch different
// cache lines and the read fast path never contends.
//
// Writer protocol: take the embedded mutex (serializing writers and
// blocking fallback readers), publish writerPending, then wait for every
// slot to drain. A reader that observes writerPending — before or
// immediately after its increment — backs out and falls back to the
// embedded RWMutex's read side, where it blocks until the writer is done.
// All flag and counter accesses are sequentially-consistent atomics, so
// either the writer's drain scan observes a reader's increment, or the
// reader observes writerPending and backs off; the race detector sees the
// same acquire/release chains and stays happy (the -race suites run the
// full mutation tests over this lock).
//
// The zero value is ready to use. dsLock intentionally mirrors RWMutex's
// API shape except that RLock returns a token that must be passed to the
// matching RUnlock.
type dsLock struct {
	slots         [dsLockSlots]dsLockSlot
	writerPending atomic.Bool
	// mu serializes writers against each other and carries the fallback
	// read path taken while a writer is pending.
	mu sync.RWMutex
}

const dsLockSlots = 16

// dsLockSlot is one padded reader counter; the padding keeps slots on
// distinct cache lines so reader increments never false-share.
type dsLockSlot struct {
	n atomic.Int64
	_ [56]byte
}

// readSlot picks a reader slot from the calling goroutine's stack
// address. Goroutine stacks are allocated at least 2KiB apart, so bits 11
// and up differ between goroutines while staying stable within one —
// cheap, allocation-free, and spread across slots.
func readSlot() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 11) % dsLockSlots)
}

// RLock acquires the read side and returns the token to release it with.
func (l *dsLock) RLock() int {
	if !l.writerPending.Load() {
		slot := readSlot()
		l.slots[slot].n.Add(1)
		if !l.writerPending.Load() {
			return slot
		}
		// A writer arrived between the checks: back out so its drain
		// terminates, and line up behind it on the fallback mutex.
		l.slots[slot].n.Add(-1)
	}
	l.mu.RLock()
	return -1
}

// RUnlock releases the read side acquired with the given token.
func (l *dsLock) RUnlock(slot int) {
	if slot >= 0 {
		l.slots[slot].n.Add(-1)
		return
	}
	l.mu.RUnlock()
}

// Lock acquires the write side: it excludes other writers, diverts new
// readers to the fallback path (where they block), and waits for every
// in-flight fast-path reader to finish.
func (l *dsLock) Lock() {
	l.mu.Lock()
	l.writerPending.Store(true)
	for i := range l.slots {
		for l.slots[i].n.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the write side.
func (l *dsLock) Unlock() {
	l.writerPending.Store(false)
	l.mu.Unlock()
}
