package core

import (
	"sort"
	"sync"

	"graphcache/internal/graph"
)

// featureVec is a sorted (feature-hash, count) vector of a graph's label
// paths up to the configured length. It is the cache's query-graph index
// (the iGQ idea [Wang et al., EDBT 2016] scaled down to the cache):
// dominance between feature vectors is a necessary condition for subgraph
// isomorphism between the underlying graphs, so most q↔h iso tests are
// avoided.
//
// Features hash the interleaved vertex/edge-label sequence of a simple
// path. For undirected graphs each path instance is counted once, in its
// lexicographically smaller direction (palindromes count twice — from
// both endpoints — consistently in every graph). For directed graphs every
// out-edge traversal is its own feature. Hash collisions can only merge
// features, which weakens but never unsounds the filter: dominance remains
// necessary because embeddings map counted traversals to counted
// traversals with identical sequences.
type featureVec []featureCount

type featureCount struct {
	hash  uint64
	count int32
}

// featScratch is the reusable working state of one pathFeatures
// enumeration. The counts map, the path-sequence buffer and the
// visited marks never escape — only the final sorted vector does — so
// they are pooled across queries (hot-path memory discipline, see
// doc.go).
type featScratch struct {
	counts map[uint64]int32
	seq    []graph.Label
	inPath []bool
}

var featScratchPool = sync.Pool{
	New: func() any { return &featScratch{counts: make(map[uint64]int32, 64)} },
}

// pathFeatures enumerates simple paths of g with at most maxLen edges and
// returns the canonical feature vector.
func pathFeatures(g *graph.Graph, maxLen int) featureVec {
	sc := featScratchPool.Get().(*featScratch)
	clear(sc.counts)
	counts := sc.counts
	// seq interleaves vertex and edge labels: v0, e01, v1, e12, v2, ...
	if cap(sc.seq) < 2*maxLen+1 {
		sc.seq = make([]graph.Label, 0, 2*maxLen+1)
	}
	seq := sc.seq[:0]
	if cap(sc.inPath) < g.N() {
		sc.inPath = make([]bool, g.N())
	}
	inPath := sc.inPath[:g.N()]
	for i := range inPath {
		inPath[i] = false
	}
	directed := g.Directed()

	var walk func(v, depth int)
	walk = func(v, depth int) {
		if directed || canonicalDir(seq) {
			counts[hashSeq(seq)]++
		}
		if depth < maxLen {
			inPath[v] = true
			for _, w := range g.OutNeighbors(v) {
				if !inPath[w] {
					seq = append(seq, g.EdgeLabel(v, int(w)), g.Label(int(w)))
					walk(int(w), depth+1)
					seq = seq[:len(seq)-2]
				}
			}
			inPath[v] = false
		}
	}
	for v := 0; v < g.N(); v++ {
		seq = append(seq, g.Label(v))
		walk(v, 0)
		seq = seq[:0]
	}

	out := make(featureVec, 0, len(counts))
	for h, c := range counts {
		out = append(out, featureCount{h, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].hash < out[j].hash })
	sc.seq = seq[:0]
	featScratchPool.Put(sc)
	return out
}

// canonicalDir reports whether seq ≤ its reversal lexicographically, so
// each undirected path contributes exactly once (palindromes pass in both
// directions but are enumerated twice, keeping counts consistent across
// graphs). The interleaved layout reverses into the opposite traversal's
// interleaved layout, so plain slice comparison suffices.
func canonicalDir(seq []graph.Label) bool {
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		if seq[i] != seq[j] {
			return seq[i] < seq[j]
		}
	}
	return true
}

// hashSeq hashes a label sequence (FNV-1a over labels with a length tag).
func hashSeq(seq []graph.Label) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(len(seq))
	h *= prime64
	for _, l := range seq {
		h ^= uint64(l)
		h *= prime64
	}
	return h
}

// bits blooms the feature hashes into a 64-bit mask: if v is dominated by
// o then bits(v) &^ bits(o) == 0, so the mask refutes dominance with one
// AND-NOT before the linear merge runs.
func (v featureVec) bits() uint64 {
	var b uint64
	for _, fc := range v {
		b |= 1 << (fc.hash >> 58)
	}
	return b
}

// dominatedBy reports whether every feature of v occurs in o with at least
// the same count — necessary for v's graph to embed into o's graph.
// Both vectors are hash-sorted, so this is a linear merge.
//
//gclint:noalloc
//gclint:deterministic
func (v featureVec) dominatedBy(o featureVec) bool {
	j := 0
	for _, fc := range v {
		for j < len(o) && o[j].hash < fc.hash {
			j++
		}
		if j >= len(o) || o[j].hash != fc.hash || o[j].count < fc.count {
			return false
		}
	}
	return true
}
