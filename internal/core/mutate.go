package core

import (
	"math"
	"sync/atomic"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Live dataset mutations with exact cache maintenance.
//
// The cache's correctness argument rests on answer sets being exact over
// the dataset; when the dataset itself changes, the cached answer sets are
// materialized views that must be maintained. The rules:
//
//   - Queries and mutations serialize through dsMu: every query holds the
//     read side for its whole run (one dataset snapshot per query, shared
//     freely between queries); AddGraph/RemoveGraph hold the write side,
//     so mutations see a quiescent cache and queries never see a
//     half-maintained one.
//
//   - REMOVALS are always stop-the-world and cheap: under the full lock
//     hierarchy the tombstoned gid's bit is cleared from every admitted
//     and window entry's answer set (a clone-and-clear pointer swap per
//     affected entry — no iso tests), and the method masks the gid out of
//     every future candidate set. Ids are never reused.
//
//   - ADDITIONS must decide, per cached entry, whether the new graph
//     belongs in its answer set — one containment test per entry. Eager
//     mode (the default) runs those tests at mutation time, bringing
//     every entry to the new epoch before any query runs again. Lazy mode
//     (Config.LazyReconcile) defers them: entries keep their epoch, and a
//     hit on a stale entry verifies exactly the delta graphs recorded in
//     the method's addition log before its answers are trusted — paid by
//     the queries that actually touch the entry, never by ones that
//     don't.
//
// Either way every individual answer set returned by Execute is exact for
// the query's dataset snapshot — the SelfCheck oracle and the churn
// equivalence suite assert byte-identical answers to the uncached method
// after every mutation.

// AddGraph appends g to the live dataset under a fresh stable id and
// maintains the cached state exactly: the verification-cost EMA array and
// all future per-query bitsets grow with the dataset, and cached answer
// sets are reconciled eagerly (default) or lazily (Config.LazyReconcile).
// It returns the new graph's id. The method must support AddGraph
// (ftv.NewDynamicMethod or a bundled constructor).
//
//gclint:acquires dsMu windowMu policyMu shard
func (c *Cache) AddGraph(g *graph.Graph) (int, error) {
	c.dsMu.Lock()
	defer c.dsMu.Unlock()
	gid, err := c.method.AddGraph(g)
	if err != nil {
		return 0, err
	}
	view := c.method.View()

	// Grow the per-graph cost-EMA array. Cells are copied value-by-value
	// (atomic.Uint64 must not be moved with copy/append); in-flight CAS
	// updates cannot race this — every reader and writer of costVal runs
	// under the read side of dsMu.
	grown := make([]atomic.Uint64, view.Size())
	for i := range c.costVal {
		grown[i].Store(c.costVal[i].Load())
	}
	c.costVal = grown
	c.mon.datasetAdds.Add(1)

	if c.cfg.LazyReconcile {
		// Nothing to reconcile now, but the stop-the-world maintenance
		// pass (with a nil fn) still recomputes the compaction floor and
		// drops the addition records every entry has already passed — an
		// O(entries) epoch scan, no iso tests — so the log stays bounded
		// by the staleness of the coldest entry, not by the add count.
		c.withAllEntriesLocked(nil)
		return gid, nil
	}
	// Eager reconciliation: verify the new graph against every admitted
	// and window entry now, under the full hierarchy (no queries are in
	// flight — dsMu is held exclusively — so the swaps are unobservable).
	// Every entry leaves at the new epoch, so the trailing compaction
	// drains the whole log: in eager mode it never holds a record past
	// the mutation that appended it.
	c.withAllEntriesLocked(func(sh *shard, e *Entry) {
		c.reconcileEntryLocked(sh, e, view)
	})
	return gid, nil
}

// RemoveGraph tombstones dataset graph gid and clears its bit from every
// admitted and window entry's answer set — the stop-the-world maintenance
// path (no iso tests; a pointer swap per affected entry). The id is never
// reused, so all other answer-set positions stay valid as-is.
//
//gclint:acquires dsMu windowMu policyMu shard
func (c *Cache) RemoveGraph(gid int) error {
	c.dsMu.Lock()
	defer c.dsMu.Unlock()
	if err := c.method.RemoveGraph(gid); err != nil {
		return err
	}
	c.mon.datasetRemoves.Add(1)
	c.withAllEntriesLocked(func(sh *shard, e *Entry) {
		st := e.answers()
		if st.body != nil {
			// Lazily restored entry whose bits still live in the snapshot
			// file: record the tombstone in the fault-in drop list instead
			// of reading the body just to clear one bit. A NEW pending
			// state is published (the old one is immutable), so a fault-in
			// racing this pass — they take no locks — fails its CAS against
			// the superseded state and retries against this one, applying
			// the drop.
			if gid < st.body.cap {
				e.ans.p.Store(&answerState{epoch: st.epoch, body: st.body.withDrop(gid)})
			}
			return
		}
		if gid < st.set.Len() && st.set.Contains(gid) {
			s := st.set.Clone()
			s.Remove(gid)
			// The clone is owned until published: re-encode it into its
			// smallest container (removals are where near-full sets shed
			// dense words for run spans) before it becomes immutable.
			s.Compact()
			// The epoch is NOT advanced: entry epochs track the addition
			// log only (removals apply to every entry right here), so an
			// unchanged epoch cannot skip a pending addition record.
			e.setAnswers(s, st.epoch)
		}
		// Every removal-affected entry just published a fresh set; true
		// up its interning (removal survivors often collapse onto each
		// other's canonical sets) while the locks are held.
		c.rechargeLocked(sh, e)
	})
	return nil
}

// withAllEntriesLocked runs fn (when non-nil) over every admitted entry
// (with its owning shard) and every window-pending entry (shard
// nil-checked via resBytes being uncharged — fn receives the owning shard
// only for admitted entries, nil for window entries, whose bytes are
// charged at insertion). It takes the full lock hierarchy below dsMu;
// caller holds dsMu exclusively. Before the locks drop it performs the
// stop-the-world maintenance duties every such pass owes: the per-shard
// window epoch floors are recomputed (fn may have raised pending entries'
// epochs) and the addition log is compacted up to the minimum entry
// epoch.
//
//gclint:acquires windowMu policyMu shard
func (c *Cache) withAllEntriesLocked(fn func(sh *shard, e *Entry)) {
	c.windowMu.Lock()
	defer c.windowMu.Unlock()
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.lockAll()
	defer c.unlockAll()
	if fn != nil {
		for _, sh := range c.shards {
			for _, e := range sh.entries {
				fn(sh, e)
			}
			for _, e := range sh.window {
				fn(nil, e)
			}
		}
		for _, e := range c.window {
			fn(nil, e)
		}
	}
	for _, sh := range c.shards {
		sh.refreshWindowFloorLocked()
	}
	c.compactAdditionsLocked()
}

// Addition-log compaction. The method's addition log lets a stale entry
// reconcile by verifying only the graphs added since its epoch; once
// EVERY outstanding epoch-stamped answer set has passed a record, that
// record can never be consulted again and is dropped. The floor is the
// minimum dataset epoch across all admitted and window-pending entries —
// entries are the only holders of long-lived epochs (query-local views
// die with their query, and ReadState stamps restored entries with the
// current epoch), and entry epochs only ever rise, so a computed floor
// can only be conservative by the time the compaction lands.

// compactAdditionsLocked compacts with the full hierarchy held (the
// stop-the-world passes: dataset mutations, shared-window turns, state
// restores), reading every window directly.
//
//gclint:requires policyMu shard
func (c *Cache) compactAdditionsLocked() {
	if c.method.AdditionLogLen() == 0 {
		return
	}
	floor := int64(math.MaxInt64)
	lower := func(e *Entry) {
		if ep := e.DatasetEpoch(); ep < floor {
			floor = ep
		}
	}
	for _, sh := range c.shards {
		for _, e := range sh.entries {
			lower(e)
		}
		for _, e := range sh.window {
			lower(e)
		}
	}
	for _, e := range c.window {
		lower(e)
	}
	c.compactTo(floor)
}

// compactAdditions is the per-shard window-turn variant: caller holds
// policyMu and only the TURNING shard's write lock. The other shards'
// admitted slices are safe to read — every structural shard mutation
// (insertLocked/removeLocked callers: turns, restores, stop-the-world
// passes) happens under policyMu, which the caller holds — and their
// pending windows are summarized by the atomic windowFloor instead of
// taking their locks (taking them here would break the fixed lockAll
// acquisition order). A staging that races the floor read is benign: the
// stager holds dsMu's read side, under which the dataset epoch cannot
// advance, so its entry carries the CURRENT epoch and only ever needs
// records above it — records this compaction, whose floor cannot exceed
// the current epoch's records, never drops.
//
//gclint:requires policyMu shard
func (c *Cache) compactAdditions(turning *shard) {
	if c.method.AdditionLogLen() == 0 {
		return
	}
	floor := int64(math.MaxInt64)
	for _, sh := range c.shards {
		for _, e := range sh.entries {
			if ep := e.DatasetEpoch(); ep < floor {
				floor = ep
			}
		}
		if sh == turning {
			// Just drained under our lock; scanned directly for the rare
			// concurrent re-stage between the drain and this point.
			for _, e := range sh.window {
				if ep := e.DatasetEpoch(); ep < floor {
					floor = ep
				}
			}
		} else if f := sh.windowFloor.Load(); f < floor {
			floor = f
		}
	}
	// The shared window is unused in per-shard mode (per-shard turns only
	// happen there), so c.window needs no scan.
	c.compactTo(floor)
}

// compactTo drops the addition records at or below floor, counting the
// compaction. A floor of 0 can drop nothing (records start at epoch 1);
// MaxInt64 — an empty cache — drains the whole log, which is safe: every
// future entry is stamped with at least the current epoch and only ever
// reconciles records above it.
func (c *Cache) compactTo(floor int64) {
	if floor <= 0 {
		return
	}
	if dropped := c.method.CompactAdditions(floor); dropped > 0 {
		c.mon.logCompactions.Add(1)
		c.mon.logRecordsDropped.Add(int64(dropped))
	}
}

// reconcileEntryLocked brings one entry to the view's epoch by verifying
// the delta additions, adjusting the owning shard's byte account for any
// answer-set growth (sh nil for window entries, charged at insertion).
// Caller holds dsMu exclusively plus the full lock hierarchy.
//
//gclint:requires shard
func (c *Cache) reconcileEntryLocked(sh *shard, e *Entry, view ftv.DatasetView) {
	st := e.answers()
	if st.body != nil {
		// Pending lazy body: leave it on disk at its old epoch. The entry
		// reconciles like any lazily-maintained one — the read path patches
		// the faulted set from the addition log — and the unchanged epoch
		// keeps the needed records alive (compaction floors read
		// DatasetEpoch, which never faults).
		return
	}
	if st.epoch >= view.Epoch() && st.set.Len() == view.Size() {
		return
	}
	set := c.patchedAnswers(e, st, view)
	e.setAnswers(set, view.Epoch())
	c.rechargeLocked(sh, e)
}

// rechargeLocked trues up the residency charge for an entry whose answer
// set may have been swapped since the last pass (lazy reconciliation
// publishes fresh sets on the query path, where neither the pool nor any
// account can be touched). Entries charge their static footprint, which
// never drifts, so truing up means re-interning: acquire a canonical for
// the currently published set — collapsing it onto an equal pooled set
// when one exists — and release the previously interned one; the pool's
// byte account moves with the references. The republish is a CAS so a
// racing query-path reconciler can never be regressed to an older epoch
// (which could skip compacted addition records); losing the race keeps
// the new reference and leaves the swap to the next true-up. Caller
// holds the owning shard's write lock (sh nil for window entries, which
// are interned at admission, not before).
//
//gclint:requires shard
//gclint:acquires internMu
//gclint:loads answers e
func (c *Cache) rechargeLocked(sh *shard, e *Entry) {
	if sh == nil {
		return
	}
	st := e.answers()
	if st.body != nil {
		// Pending lazy body: nothing resident to intern yet. The fault-in
		// path shares decoded sets through the snapshot source's dedup
		// registry; pool references catch up here on the first true-up
		// after the fault.
		return
	}
	if e.interned == st.set {
		return
	}
	canonical := sh.pool.acquire(st.set)
	if canonical != st.set {
		e.swapAnswers(st, canonical, st.epoch)
	}
	sh.pool.release(e.interned)
	e.interned = canonical
}

// reconciledAnswers returns e's answer set brought to the query view's
// epoch, verifying only the graphs added since the entry's epoch (the
// lazy-reconciliation read path; in eager mode entries are already
// current, making this a single atomic load). It runs lock-free under the
// read side of dsMu: racing reconcilers of the same entry compute
// identical states, so the last published one wins benignly. Byte
// accounts are deliberately NOT touched here (no shard lock is held);
// they are trued up at the owning shard's next window turn and at
// every stop-the-world maintenance pass (rechargeLocked).
//
//gclint:requires dsMu
//gclint:nolocks
//gclint:loads answers e
func (c *Cache) reconciledAnswers(e *Entry, view ftv.DatasetView) *bitset.Set {
	st := e.loadAnswers()
	if st.epoch >= view.Epoch() && st.set.Len() == view.Size() {
		return st.set
	}
	set := c.patchedAnswers(e, st, view)
	e.setAnswers(set, view.Epoch())
	return set
}

// patchedAnswers computes e's answer set at the view's epoch from the
// state st: grown to the view's id space, with each logged addition since
// st.epoch verified for containment (tombstoned additions are skipped —
// their bits were never set in st and must stay clear). Removal bits need
// no handling: removals clear them from every entry at mutation time.
func (c *Cache) patchedAnswers(e *Entry, st *answerState, view ftv.DatasetView) *bitset.Set {
	recs := view.AddsSince(st.epoch)
	set := st.set
	switch {
	case set.Len() != view.Size():
		set = set.Grown(view.Size())
	case len(recs) > 0:
		set = set.Clone()
	default:
		return set // removals-only delta: the set is already exact
	}
	for _, r := range recs {
		if view.Graph(r.GID) == nil {
			continue // added then removed before this entry caught up
		}
		c.mon.maintenanceTests.Add(1)
		if view.VerifyCandidate(e.Graph, r.GID, e.Type) {
			set.Add(r.GID)
		}
	}
	return set
}

// DatasetInfo is a snapshot of the live dataset's shape.
type DatasetInfo struct {
	// Size is the id space: positions including tombstones.
	Size int
	// Live is the number of queryable (non-tombstoned) graphs.
	Live int
	// Epoch counts mutations: 0 at construction, +1 per add or remove.
	Epoch int64
}

// DatasetInfo reports the current dataset shape.
//
//gclint:pins dataset
func (c *Cache) DatasetInfo() DatasetInfo {
	v := c.method.View()
	return DatasetInfo{Size: v.Size(), Live: v.LiveCount(), Epoch: v.Epoch()}
}
