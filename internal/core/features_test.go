package core

import (
	"math/rand"
	"testing"

	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

func randomLabelled(rng *rand.Rand, n, labels int, p float64) *graph.Graph {
	ls := make([]graph.Label, n)
	for i := range ls {
		ls[i] = graph.Label(rng.Intn(labels))
	}
	var es [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				es = append(es, [2]int{u, v})
			}
		}
	}
	return graph.MustNew(ls, es)
}

func TestPathFeaturesSingleEdge(t *testing.T) {
	g := graph.MustNew([]graph.Label{1, 2}, [][2]int{{0, 1}})
	fv := pathFeatures(g, 2)
	// Features: label-1 vertex, label-2 vertex, path 1-2. Three distinct.
	if len(fv) != 3 {
		t.Fatalf("feature count = %d, want 3", len(fv))
	}
	for _, fc := range fv {
		if fc.count != 1 {
			t.Errorf("feature count = %d, want 1", fc.count)
		}
	}
}

func TestPathFeaturesTriangleCounts(t *testing.T) {
	g := graph.MustNew([]graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	fv := pathFeatures(g, 1)
	// Features: single vertex "0" ×3, edge "0-0" ×3 (each undirected edge
	// once; palindromes counted twice → 6).
	var vertexCount, edgeCount int32
	for _, fc := range fv {
		switch {
		case fc.count == 3:
			vertexCount = fc.count
		case fc.count == 6:
			edgeCount = fc.count
		}
	}
	if vertexCount != 3 {
		t.Errorf("vertex feature count = %d, want 3", vertexCount)
	}
	if edgeCount != 6 {
		t.Errorf("palindromic edge count = %d, want 6 (both directions)", edgeCount)
	}
}

func TestPathFeaturesZeroLen(t *testing.T) {
	g := graph.MustNew([]graph.Label{1, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	fv := pathFeatures(g, 0)
	// Only vertex labels: "1"×2, "2"×1.
	if len(fv) != 2 {
		t.Fatalf("feature count = %d, want 2", len(fv))
	}
}

// Soundness: if p ⊑ g then features(p) must be dominated by features(g).
func TestFeatureDominanceNecessary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := randomLabelled(rng, 8, 2, 0.4)
		// Build p as a partial copy of g (subset of edges of an induced
		// subgraph), guaranteeing p ⊑ g.
		k := 3 + rng.Intn(4)
		verts := rng.Perm(8)[:k]
		ind, err := g.InducedSubgraph(verts)
		if err != nil {
			t.Fatal(err)
		}
		// Drop some edges.
		var keep [][2]int
		for _, e := range ind.Edges() {
			if rng.Float64() < 0.7 {
				keep = append(keep, e)
			}
		}
		p := graph.MustNew(ind.Labels(), keep)
		if !iso.SubIso(p, g) {
			t.Fatal("test construction broken: p not ⊑ g")
		}
		for _, L := range []int{0, 1, 2, 3} {
			fp := pathFeatures(p, L)
			fg := pathFeatures(g, L)
			if !fp.dominatedBy(fg) {
				t.Fatalf("trial %d L=%d: features of subgraph not dominated", trial, L)
			}
		}
	}
}

func TestFeatureDominanceRejects(t *testing.T) {
	// A triangle has a feature (closed paths of its labels at length 2:
	// 0-0-0 with higher count) that a single edge lacks.
	tri := graph.MustNew([]graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	edge := graph.MustNew([]graph.Label{0, 0}, [][2]int{{0, 1}})
	ftri := pathFeatures(tri, 2)
	fedge := pathFeatures(edge, 2)
	if ftri.dominatedBy(fedge) {
		t.Error("triangle features should not be dominated by an edge's")
	}
	if !fedge.dominatedBy(ftri) {
		t.Error("edge features should be dominated by triangle's")
	}
}

func TestDominatedBySelf(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomLabelled(rng, 10, 3, 0.3)
	fv := pathFeatures(g, 2)
	if !fv.dominatedBy(fv) {
		t.Error("feature vector must dominate itself")
	}
	var empty featureVec
	if !empty.dominatedBy(fv) {
		t.Error("empty vector dominated by anything")
	}
	if len(fv) > 0 && fv.dominatedBy(empty) {
		t.Error("non-empty vector not dominated by empty")
	}
}

func TestCanonicalDir(t *testing.T) {
	cases := []struct {
		seq  []graph.Label
		want bool
	}{
		{[]graph.Label{1}, true},
		{[]graph.Label{1, 2}, true},
		{[]graph.Label{2, 1}, false},
		{[]graph.Label{1, 1}, true},
		{[]graph.Label{1, 2, 1}, true},
		{[]graph.Label{2, 5, 1}, false},
		{[]graph.Label{1, 5, 2}, true},
	}
	for _, c := range cases {
		if got := canonicalDir(c.seq); got != c.want {
			t.Errorf("canonicalDir(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestHashSeqLengthSensitive(t *testing.T) {
	a := hashSeq([]graph.Label{1, 1})
	b := hashSeq([]graph.Label{1, 1, 1})
	if a == b {
		t.Error("hash should distinguish path lengths")
	}
}
