package core

import (
	"sync"
	"sync/atomic"

	"graphcache/internal/bitset"
)

// Cross-entry answer-set interning. Cached answer sets repeat: queries
// over the same hot region converge on identical answer sets, dataset
// removals collapse near-identical sets onto each other, and a restore
// rebuilds many entries from one dataset. Because published answer sets
// are immutable (the COW publication rule — maintenance swaps whole
// sets, never edits one), identical sets can safely share one
// allocation. The internPool is the cache-wide registry that makes the
// sharing happen: entries acquire a refcounted canonical set keyed by
// content fingerprint, and the residency accounting charges each
// canonical set once, no matter how many entries publish it.
//
// Lifecycle: a set is acquired when its entry is admitted
// (shard.insertLocked) and whenever a maintenance pass notices the entry
// published a new set (rechargeLocked, the true-up point); it is released
// when the entry is evicted (shard.removeLocked) or trued up onto a
// different set. Lazy reconciliation on the query path deliberately
// bypasses the pool — reconciledAnswers is //gclint:nolocks — so freshly
// patched sets ride uninterned until the next window turn or
// stop-the-world pass, exactly like their byte accounting always has.

// internPool is a fingerprint-keyed, refcounted pool of canonical answer
// sets. Buckets resolve fingerprint collisions by content equality.
type internPool struct {
	// mu guards m and the node refcounts. A leaf: acquire/release run
	// under arbitrary shard locks, and nothing is acquired inside the
	// critical section (bucket scans call only pure bitset reads).
	//gclint:lock internMu
	//gclint:leaf
	mu sync.Mutex
	m  map[uint64][]*internNode

	// bytes is the total footprint of the pooled canonical sets, each
	// charged exactly once. Atomic so Cache.Bytes and the memory-budget
	// loops read it without the pool lock.
	bytes atomic.Int64
	// hits counts acquires that landed on an already-pooled set (the
	// sharing the pool exists for); misses counts acquires that inserted
	// a new canonical set.
	hits   atomic.Int64
	misses atomic.Int64
}

// internNode is one canonical set and the number of entries publishing it.
type internNode struct {
	set  *bitset.Set
	refs int
}

func newInternPool() *internPool {
	return &internPool{m: make(map[uint64][]*internNode)}
}

// acquire interns set: if an equal set is already pooled, its refcount
// grows and the pooled canonical is returned (the caller should publish
// that one and let set become garbage); otherwise set itself becomes a
// canonical with one reference. The caller must treat set as immutable
// from this point — it may already be, or now become, shared.
//
//gclint:acquires internMu
func (p *internPool) acquire(set *bitset.Set) *bitset.Set {
	fp := set.Fingerprint()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nd := range p.m[fp] {
		if nd.set == set || nd.set.Equal(set) {
			nd.refs++
			p.hits.Add(1)
			return nd.set
		}
	}
	p.m[fp] = append(p.m[fp], &internNode{set: set, refs: 1})
	p.misses.Add(1)
	p.bytes.Add(int64(set.Bytes()))
	return set
}

// release drops one reference to a canonical set previously returned by
// acquire, removing it from the pool (and its bytes from the account)
// when the last reference goes. A nil set and an unknown pointer are
// no-ops, so release can never unbalance the account.
//
//gclint:acquires internMu
func (p *internPool) release(set *bitset.Set) {
	if set == nil {
		return
	}
	fp := set.Fingerprint()
	p.mu.Lock()
	defer p.mu.Unlock()
	bucket := p.m[fp]
	for i, nd := range bucket {
		if nd.set != set {
			continue // a fingerprint twin, not our canonical
		}
		nd.refs--
		if nd.refs > 0 {
			return
		}
		bucket[i] = bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		if bucket = bucket[:len(bucket)-1]; len(bucket) == 0 {
			delete(p.m, fp)
		} else {
			p.m[fp] = bucket
		}
		p.bytes.Add(int64(-set.Bytes()))
		return
	}
}

// reset empties the pool — the state-restore path, which clears every
// shard wholesale and re-interns the restored entries from scratch. The
// hit/miss counters survive (they are lifetime telemetry, like the
// Monitor's).
//
//gclint:acquires internMu
func (p *internPool) reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m = make(map[uint64][]*internNode)
	p.bytes.Store(0)
}

// distinctSets returns the number of pooled canonical sets (for tests
// and stats).
//
//gclint:acquires internMu
func (p *internPool) distinctSets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, bucket := range p.m {
		n += len(bucket)
	}
	return n
}
