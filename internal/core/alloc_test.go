package core

import (
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Allocation-regression budgets for the Execute hot paths (hot-path
// memory discipline, see doc.go). Each budget is a ceiling with ~50%
// headroom over the measured steady state, so the cheap regressions this
// PR removed — an O(n) bitset clone or a per-query scratch slice costs
// tens of allocations per call — trip the test, while workload-dependent
// jitter (pool refills after a GC, slice growth on an unusually large
// candidate set) does not.
//
// Measure the current steady state with:
//
//	go test -bench 'BenchmarkExecute' -benchmem ./internal/core/
const (
	// allocBudgetExactHit covers Execute on a query already cached: one
	// fingerprint probe, one answers clone, two lazy bitsets, the Result.
	// Measured ~8 allocs/op.
	allocBudgetExactHit = 14
	// allocBudgetMiss covers the full miss pipeline — filter, indexed hit
	// detection, verification, admission. Measured ~77 allocs/op.
	allocBudgetMiss = 120
	// allocBudgetSubSuperHit covers a miss that collects a sub-case hit
	// and runs the S/S' algebra. Measured ~84 allocs/op.
	allocBudgetSubSuperHit = 130
)

// measureExecuteAllocs runs one query per AllocsPerRun iteration,
// advancing through stream so misses stay misses (stream members are
// pairwise non-isomorphic; see newBenchStreams).
func measureExecuteAllocs(t *testing.T, c *Cache, stream []*graph.Graph, runs int) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation accounting is distorted under the race detector")
	}
	if runs >= len(stream) {
		// AllocsPerRun calls f runs+1 times (one warmup); wrapping would
		// turn misses into exact hits and understate the average.
		runs = len(stream) - 1
	}
	i := 0
	return testing.AllocsPerRun(runs, func() {
		if _, err := c.Execute(stream[i], ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
		i++
	})
}

func TestExactHitAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under the race detector")
	}
	bs := newBenchStreams(t, 120, 1, nil)
	got := testing.AllocsPerRun(100, func() {
		res, err := bs.cache.Execute(bs.exact, ftv.Subgraph)
		if err != nil {
			t.Fatal(err)
		}
		if !res.ExactHit {
			t.Fatal("expected an exact hit")
		}
	})
	t.Logf("exact hit: %.1f allocs/op (budget %d)", got, allocBudgetExactHit)
	if got > allocBudgetExactHit {
		t.Errorf("exact-hit path allocates %.1f/op, budget %d — an O(n) copy crept back in", got, allocBudgetExactHit)
	}
}

func TestIndexedMissAllocBudget(t *testing.T) {
	bs := newBenchStreams(t, 120, 512, nil)
	got := measureExecuteAllocs(t, bs.cache, bs.misses, 200)
	t.Logf("indexed miss: %.1f allocs/op (budget %d)", got, allocBudgetMiss)
	if got > allocBudgetMiss {
		t.Errorf("indexed-miss path allocates %.1f/op, budget %d — per-query scratch must come from the pools", got, allocBudgetMiss)
	}
}

func TestSubSuperHitAllocBudget(t *testing.T) {
	bs := newBenchStreams(t, 120, 512, nil)
	got := measureExecuteAllocs(t, bs.cache, bs.subhits, 200)
	t.Logf("sub/super hit: %.1f allocs/op (budget %d)", got, allocBudgetSubSuperHit)
	if got > allocBudgetSubSuperHit {
		t.Errorf("sub/super-hit path allocates %.1f/op, budget %d", got, allocBudgetSubSuperHit)
	}
}
