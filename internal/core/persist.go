package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Cache state persistence: a warm cache is the product of an expensive
// query history, so a production deployment wants to survive restarts.
// WriteState serializes the admitted entries (pending window entries are
// deliberately excluded — they have not passed admission control);
// ReadState restores them into a cache built over the SAME dataset, since
// answer sets are stored as dataset positions.
//
// Format (line-oriented, versioned):
//
//	gcstate 2 <dataset-size> <entry-count>
//	entry <type> <vertices> <edges> <baseCandidates> <hits> <savedTests> <savedCostNs>
//	answers <count> <id> <id> ...
//	<graph in the text codec>
//	...
//	end
//
// Version 2 makes corruption detectable everywhere a version-1 file could
// be silently truncated: the header carries the entry count, each entry
// line carries the graph's vertex/edge counts (validated against the
// parsed graph), each answers line carries its id count, and the stream
// must close with an "end" trailer. Recency/insertion ticks are reset on
// load (the new process has its own clock); utility counters survive.
// Feature vectors, fingerprints and the hit index are rebuilt from the
// parsed graphs, never trusted from disk.

const stateVersion = 2

// WriteState serializes the cache's admitted entries to w. It takes the
// read side of the dataset mutex (the recorded answer ids must belong to
// one dataset snapshot) plus policyMu (the utility fields it records are
// mutated under it) plus every shard lock, so the written state is one
// consistent snapshot even under concurrent queries. Entries stale with
// respect to dataset additions (LazyReconcile) are reconciled before
// serialization — the on-disk format carries no epochs, so what it stores
// must be exact at the header's dataset size.
//
//gclint:acquires dsMu policyMu shard
//gclint:pins dataset
//gclint:deterministic
func (c *Cache) WriteState(w io.Writer) error {
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.lockAll()
	defer c.unlockAll()

	all := c.gatherLocked()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "gcstate %d %d %d\n", stateVersion, view.Size(), len(all))
	for _, e := range all {
		fmt.Fprintf(bw, "entry %d %d %d %d %d %g %g\n",
			e.Type, e.Graph.N(), e.Graph.M(), e.BaseCandidates, e.Hits, e.SavedTests, e.SavedCostNs)
		ids := c.reconciledAnswers(e, view).Indices()
		fmt.Fprintf(bw, "answers %d", len(ids))
		for _, id := range ids {
			fmt.Fprintf(bw, " %d", id)
		}
		fmt.Fprintln(bw)
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := graph.WriteGraph(w, e.Graph); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// stateError builds a line-numbered restore error.
func stateError(line int, format string, args ...any) error {
	return fmt.Errorf("core: state line %d: %s", line, fmt.Sprintf(format, args...))
}

// ReadState restores entries serialized by WriteState into the cache,
// replacing its current contents. The cache's dataset size must match the
// recorded one; anything else indicates the state belongs to a different
// deployment.
//
// Restores are all-or-nothing: the entire stream is parsed and validated —
// entry counts, per-graph vertex/edge counts, answer-id ranges, the end
// trailer — before the first lock is taken, so a truncated or corrupt
// state file fails with a line-numbered error and leaves the cache exactly
// as it was (empty, when the load happens at boot). On success the feature
// index is rebuilt before the locks drop.
//
//gclint:acquires dsMu windowMu policyMu shard
//gclint:pins dataset
func (c *Cache) ReadState(r io.Reader) error {
	// The read side of the dataset mutex pins the dataset for the whole
	// restore (mutations are excluded; concurrent queries are not — they
	// are fenced by the lock hierarchy below, exactly like before).
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()
	br := bufio.NewReader(r)
	lineNo := 1
	header, err := br.ReadString('\n')
	if err != nil && header == "" {
		return stateError(lineNo, "reading header: %v", err)
	}
	// The version is scanned on its own first, so a file written by a
	// different format version gets the actionable "unsupported version"
	// error rather than a generic header complaint (v1 headers have fewer
	// fields and would fail a full v2 scan outright).
	var version, dsSize, entryCount int
	if _, err := fmt.Sscanf(header, "gcstate %d", &version); err != nil {
		return stateError(lineNo, "bad header %q", strings.TrimSpace(header))
	}
	if version != stateVersion {
		return stateError(lineNo, "unsupported state version %d (want %d)", version, stateVersion)
	}
	if _, err := fmt.Sscanf(header, "gcstate %d %d %d", &version, &dsSize, &entryCount); err != nil {
		return stateError(lineNo, "bad header %q", strings.TrimSpace(header))
	}
	if dsSize != view.Size() {
		return stateError(lineNo, "state is for a %d-graph dataset, cache has %d", dsSize, view.Size())
	}
	if entryCount < 0 {
		return stateError(lineNo, "negative entry count %d", entryCount)
	}

	type pending struct {
		qt             ftv.QueryType
		vertices       int
		edges          int
		baseCandidates int
		hits           int64
		savedTests     float64
		savedCost      float64
		answers        []int
		hasAnswers     bool // exactly one answers line per entry
		entryLine      int  // line number of the entry line
		graphStart     int  // line number where the graph text begins
		graphText      strings.Builder
	}
	var items []*pending
	var cur *pending
	sawEnd := false
parse:
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				break
			}
			return stateError(lineNo+1, "reading state: %v", err)
		}
		lineNo++
		trimmed := strings.TrimSpace(line)
		fields := strings.Fields(trimmed)
		switch {
		case len(fields) == 1 && fields[0] == "end":
			sawEnd = true
			break parse
		case len(fields) > 0 && fields[0] == "entry":
			if len(fields) != 8 {
				return stateError(lineNo, "bad entry line %q: want 8 fields, got %d", trimmed, len(fields))
			}
			cur = &pending{entryLine: lineNo, graphStart: lineNo + 2} // graph follows the answers line
			qt, err1 := strconv.Atoi(fields[1])
			n, err2 := strconv.Atoi(fields[2])
			m, err3 := strconv.Atoi(fields[3])
			bc, err4 := strconv.Atoi(fields[4])
			hits, err5 := strconv.ParseInt(fields[5], 10, 64)
			st, err6 := strconv.ParseFloat(fields[6], 64)
			sc, err7 := strconv.ParseFloat(fields[7], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil || err7 != nil {
				return stateError(lineNo, "bad entry line %q", trimmed)
			}
			if qt != int(ftv.Subgraph) && qt != int(ftv.Supergraph) {
				return stateError(lineNo, "unknown query type %d", qt)
			}
			if n <= 0 || m < 0 {
				return stateError(lineNo, "implausible graph size %d/%d", n, m)
			}
			cur.qt = ftv.QueryType(qt)
			cur.vertices = n
			cur.edges = m
			cur.baseCandidates = bc
			cur.hits = hits
			cur.savedTests = st
			cur.savedCost = sc
			items = append(items, cur)
		case len(fields) > 0 && fields[0] == "answers":
			if cur == nil {
				return stateError(lineNo, "answers line before entry line")
			}
			if cur.hasAnswers {
				return stateError(lineNo, "duplicate answers line for one entry")
			}
			cur.hasAnswers = true
			if len(fields) < 2 {
				return stateError(lineNo, "answers line without count")
			}
			count, err := strconv.Atoi(fields[1])
			if err != nil || count < 0 {
				return stateError(lineNo, "bad answers count %q", fields[1])
			}
			if got := len(fields) - 2; got != count {
				return stateError(lineNo, "answers line truncated: declared %d ids, found %d", count, got)
			}
			for _, f := range fields[2:] {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= dsSize {
					return stateError(lineNo, "bad answer id %q", f)
				}
				cur.answers = append(cur.answers, id)
			}
		default:
			if cur == nil {
				return stateError(lineNo, "graph text before entry line: %q", trimmed)
			}
			cur.graphText.WriteString(line)
		}
		if err == io.EOF {
			break
		}
	}
	if !sawEnd {
		return stateError(lineNo, "state truncated: missing end trailer")
	}
	if len(items) != entryCount {
		return stateError(lineNo, "state truncated: header declares %d entries, found %d", entryCount, len(items))
	}

	entries := make([]*Entry, 0, len(items))
	for _, it := range items {
		if !it.hasAnswers {
			return stateError(it.entryLine, "entry has no answers line")
		}
		gs, err := graph.ReadAll(strings.NewReader(it.graphText.String()))
		if err != nil {
			return stateError(it.graphStart, "entry graph: %v", err)
		}
		if len(gs) != 1 {
			return stateError(it.graphStart, "entry graph: want one graph, got %d", len(gs))
		}
		if gs[0].N() != it.vertices || gs[0].M() != it.edges {
			return stateError(it.graphStart,
				"entry graph truncated: declared %d vertices / %d edges, parsed %d/%d",
				it.vertices, it.edges, gs[0].N(), gs[0].M())
		}
		answers := bitset.FromIndices(dsSize, it.answers)
		// Ids tombstoned since the state was written are masked out: ids
		// are never reused, so the remaining bits are still exact, and the
		// restored entries are stamped with the current epoch.
		answers.And(view.Live())
		e := entryFromSig(0, gs[0], it.qt, answers, it.baseCandidates, c.signatureOf(gs[0]), 0, view.Epoch())
		e.Hits = it.hits
		e.SavedTests = it.savedTests
		e.SavedCostNs = it.savedCost
		entries = append(entries, e)
	}

	// Restores are stop-the-world: the full hierarchy windowMu → policyMu
	// → every shard write lock, so no query observes a half-replaced
	// cache and both window engines' pending buffers are cleared.
	c.windowMu.Lock()
	defer c.windowMu.Unlock()
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.lockAll()
	defer c.unlockAll()
	for _, sh := range c.shards {
		sh.entries = sh.entries[:0]
		sh.byFP = make(map[graph.Fingerprint][]*Entry)
		sh.memBytes = 0
		sh.resetWindowLocked()
	}
	// The shards were cleared directly, bypassing removeLocked: reset the
	// residency account to match before insertLocked re-adds the restored
	// entries (a warm-cache restore would otherwise double-count forever).
	c.res.entries.Store(0)
	c.res.bytes.Store(0)
	// The intern pool's references died with the cleared entries; empty it
	// so the restored entries re-intern from scratch (insertLocked below).
	c.pool.reset()
	c.window = c.window[:0]
	tick := c.tick.Load()
	for _, e := range entries {
		e.ID = c.newID()
		e.InsertedAt = tick
		e.LastUsed = tick
		c.shardFor(e.Fingerprint).insertLocked(e)
	}
	all := c.gatherLocked()
	if excess := len(all) - c.cfg.Capacity; excess > 0 {
		c.evictLocked(all, excess)
	}
	c.republishAllLocked()
	// Restored entries are stamped with the current epoch (additions are
	// impossible since the state was written — the id space would have
	// grown, and a size mismatch is refused above — so the stamp can skip
	// nothing), which usually lifts the compaction floor: a restore is a
	// stop-the-world pass like any other.
	c.compactAdditionsLocked()
	return nil
}
