package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Cache state persistence: a warm cache is the product of an expensive
// query history, so a production deployment wants to survive restarts.
// WriteState serializes the admitted entries (pending window entries are
// deliberately excluded — they have not passed admission control);
// ReadState restores them into a cache built over the SAME dataset, since
// answer sets are stored as dataset positions.
//
// Two formats exist. WriteState writes the current binary v3 format
// ("GCS3", persist_v3.go): fixed header, fixed-size per-entry index
// records, checksummed variable bodies holding each graph plus its
// answer set in the set's native container encoding — and restores can
// be LAZY, faulting answer bodies in on first use (RestoreStateLazy).
// WriteStateV2 keeps the line-oriented text format below; ReadState
// sniffs the leading magic and accepts either, so v2 files keep
// restoring.
//
// Format v2 (line-oriented, versioned):
//
//	gcstate 2 <dataset-size> <entry-count>
//	entry <type> <vertices> <edges> <baseCandidates> <hits> <savedTests> <savedCostNs>
//	answers <count> <id> <id> ...
//	<graph in the text codec>
//	...
//	end
//
// Version 2 makes corruption detectable everywhere a version-1 file could
// be silently truncated: the header carries the entry count, each entry
// line carries the graph's vertex/edge counts (validated against the
// parsed graph), each answers line carries its id count (ids must be
// strictly increasing — the writer emits sorted Indices(), so any other
// order is corruption), and the stream must close with an "end" trailer.
// Recency/insertion ticks are reset on load (the new process has its own
// clock); utility counters survive. Feature vectors, fingerprints and the
// hit index are rebuilt from the parsed graphs, never trusted from disk.

const stateVersionV2 = 2

// WriteStateV2 serializes the cache's admitted entries to w in the
// legacy text format. It takes the read side of the dataset mutex (the
// recorded answer ids must belong to one dataset snapshot) plus policyMu
// (the utility fields it records are mutated under it) plus every shard
// lock, so the written state is one consistent snapshot even under
// concurrent queries. Entries stale with respect to dataset additions
// (LazyReconcile) are reconciled before serialization — the on-disk
// format carries no epochs, so what it stores must be exact at the
// header's dataset size. Every write is error-checked, and the graph
// codec writes through the same buffered writer as the state lines —
// exactly one writer touches w, so no flush ordering can interleave.
//
//gclint:acquires dsMu policyMu shard
//gclint:pins dataset
//gclint:deterministic
func (c *Cache) WriteStateV2(w io.Writer) error {
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.lockAll()
	defer c.unlockAll()

	all := c.gatherLocked()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "gcstate %d %d %d\n", stateVersionV2, view.Size(), len(all)); err != nil {
		return err
	}
	for _, e := range all {
		if _, err := fmt.Fprintf(bw, "entry %d %d %d %d %d %g %g\n",
			e.Type, e.Graph.N(), e.Graph.M(), e.BaseCandidates, e.Hits, e.SavedTests, e.SavedCostNs); err != nil {
			return err
		}
		ids := c.reconciledAnswers(e, view).Indices()
		if _, err := fmt.Fprintf(bw, "answers %d", len(ids)); err != nil {
			return err
		}
		for _, id := range ids {
			if _, err := fmt.Fprintf(bw, " %d", id); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
		if err := graph.WriteGraph(bw, e.Graph); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "end"); err != nil {
		return err
	}
	return bw.Flush()
}

// stateError builds a line-numbered restore error.
func stateError(line int, format string, args ...any) error {
	return fmt.Errorf("core: state line %d: %s", line, fmt.Sprintf(format, args...))
}

// ReadState restores entries serialized by WriteState (binary v3) or
// WriteStateV2 (text) into the cache, replacing its current contents; the
// leading magic selects the parser. The cache's dataset size must match
// the recorded one; anything else indicates the state belongs to a
// different deployment.
//
// Restores are all-or-nothing: the entire stream is parsed and validated —
// entry counts, per-graph vertex/edge counts, answer-id ranges and
// ordering, checksums and section bounds in v3, the end trailer in v2 —
// before the first lock is taken, so a truncated or corrupt state file
// fails with a descriptive error and leaves the cache exactly as it was
// (empty, when the load happens at boot). On success the feature index is
// rebuilt before the locks drop.
func (c *Cache) ReadState(r io.Reader) error {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(stateMagicV3)); err == nil && string(magic) == stateMagicV3 {
		data, err := io.ReadAll(br)
		if err != nil {
			return fmt.Errorf("core: reading state: %w", err)
		}
		return c.readStateV3(newMemStateSource(data), false)
	}
	return c.readStateV2(br)
}

// readStateV2 parses and restores the v2 text format.
//
//gclint:acquires dsMu windowMu policyMu shard
//gclint:pins dataset
func (c *Cache) readStateV2(br *bufio.Reader) error {
	// The read side of the dataset mutex pins the dataset for the whole
	// restore (mutations are excluded; concurrent queries are not — they
	// are fenced by the lock hierarchy below, exactly like before).
	dsTok := c.dsMu.RLock()
	defer c.dsMu.RUnlock(dsTok)
	view := c.method.View()
	lineNo := 1
	header, err := br.ReadString('\n')
	if err != nil && header == "" {
		return stateError(lineNo, "reading header: %v", err)
	}
	// The version is checked on its own first, so a file written by a
	// different format version gets the actionable "unsupported version"
	// error rather than a generic header complaint (v1 headers have fewer
	// fields and would fail the full field-count check outright). The
	// header must then consist of EXACTLY the four expected fields —
	// fmt.Sscanf would silently accept trailing junk after the entry
	// count, hiding corruption on the one line that authenticates the
	// rest of the stream.
	hfields := strings.Fields(strings.TrimSpace(header))
	if len(hfields) < 2 || hfields[0] != "gcstate" {
		return stateError(lineNo, "bad header %q", strings.TrimSpace(header))
	}
	version, err := strconv.Atoi(hfields[1])
	if err != nil {
		return stateError(lineNo, "bad header %q", strings.TrimSpace(header))
	}
	if version != stateVersionV2 {
		return stateError(lineNo, "unsupported state version %d (want %d)", version, stateVersionV2)
	}
	if len(hfields) != 4 {
		return stateError(lineNo, "bad header %q: want 4 fields, got %d", strings.TrimSpace(header), len(hfields))
	}
	dsSize, err1 := strconv.Atoi(hfields[2])
	entryCount, err2 := strconv.Atoi(hfields[3])
	if err1 != nil || err2 != nil {
		return stateError(lineNo, "bad header %q", strings.TrimSpace(header))
	}
	if dsSize != view.Size() {
		return stateError(lineNo, "state is for a %d-graph dataset, cache has %d", dsSize, view.Size())
	}
	if entryCount < 0 {
		return stateError(lineNo, "negative entry count %d", entryCount)
	}

	type pending struct {
		qt             ftv.QueryType
		vertices       int
		edges          int
		baseCandidates int
		hits           int64
		savedTests     float64
		savedCost      float64
		answers        []int
		hasAnswers     bool // exactly one answers line per entry
		entryLine      int  // line number of the entry line
		graphStart     int  // line number where the graph text begins
		graphText      strings.Builder
	}
	var items []*pending
	var cur *pending
	sawEnd := false
parse:
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				break
			}
			return stateError(lineNo+1, "reading state: %v", err)
		}
		lineNo++
		trimmed := strings.TrimSpace(line)
		fields := strings.Fields(trimmed)
		switch {
		case len(fields) == 1 && fields[0] == "end":
			sawEnd = true
			break parse
		case len(fields) > 0 && fields[0] == "entry":
			if len(fields) != 8 {
				return stateError(lineNo, "bad entry line %q: want 8 fields, got %d", trimmed, len(fields))
			}
			cur = &pending{entryLine: lineNo, graphStart: lineNo + 2} // graph follows the answers line
			qt, err1 := strconv.Atoi(fields[1])
			n, err2 := strconv.Atoi(fields[2])
			m, err3 := strconv.Atoi(fields[3])
			bc, err4 := strconv.Atoi(fields[4])
			hits, err5 := strconv.ParseInt(fields[5], 10, 64)
			st, err6 := strconv.ParseFloat(fields[6], 64)
			sc, err7 := strconv.ParseFloat(fields[7], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil || err7 != nil {
				return stateError(lineNo, "bad entry line %q", trimmed)
			}
			if qt != int(ftv.Subgraph) && qt != int(ftv.Supergraph) {
				return stateError(lineNo, "unknown query type %d", qt)
			}
			if n <= 0 || m < 0 {
				return stateError(lineNo, "implausible graph size %d/%d", n, m)
			}
			cur.qt = ftv.QueryType(qt)
			cur.vertices = n
			cur.edges = m
			cur.baseCandidates = bc
			cur.hits = hits
			cur.savedTests = st
			cur.savedCost = sc
			items = append(items, cur)
		case len(fields) > 0 && fields[0] == "answers":
			if cur == nil {
				return stateError(lineNo, "answers line before entry line")
			}
			if cur.hasAnswers {
				return stateError(lineNo, "duplicate answers line for one entry")
			}
			cur.hasAnswers = true
			if len(fields) < 2 {
				return stateError(lineNo, "answers line without count")
			}
			count, err := strconv.Atoi(fields[1])
			if err != nil || count < 0 {
				return stateError(lineNo, "bad answers count %q", fields[1])
			}
			if got := len(fields) - 2; got != count {
				return stateError(lineNo, "answers line truncated: declared %d ids, found %d", count, got)
			}
			// Ids must be strictly increasing: the writer emits sorted
			// Indices(), so any duplicate or out-of-order id is corruption.
			// Without this check a duplicated id ("answers 2 5 5") passes
			// the declared count yet silently collapses to one bit in
			// FromIndices below.
			prev := -1
			for _, f := range fields[2:] {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= dsSize {
					return stateError(lineNo, "bad answer id %q", f)
				}
				if id <= prev {
					return stateError(lineNo, "answer ids not strictly increasing at %q", f)
				}
				prev = id
				cur.answers = append(cur.answers, id)
			}
		default:
			if cur == nil {
				return stateError(lineNo, "graph text before entry line: %q", trimmed)
			}
			cur.graphText.WriteString(line)
		}
		if err == io.EOF {
			break
		}
	}
	if !sawEnd {
		return stateError(lineNo, "state truncated: missing end trailer")
	}
	if len(items) != entryCount {
		return stateError(lineNo, "state truncated: header declares %d entries, found %d", entryCount, len(items))
	}

	entries := make([]*Entry, 0, len(items))
	for _, it := range items {
		if !it.hasAnswers {
			return stateError(it.entryLine, "entry has no answers line")
		}
		gs, err := graph.ReadAll(strings.NewReader(it.graphText.String()))
		if err != nil {
			return stateError(it.graphStart, "entry graph: %v", err)
		}
		if len(gs) != 1 {
			return stateError(it.graphStart, "entry graph: want one graph, got %d", len(gs))
		}
		if gs[0].N() != it.vertices || gs[0].M() != it.edges {
			return stateError(it.graphStart,
				"entry graph truncated: declared %d vertices / %d edges, parsed %d/%d",
				it.vertices, it.edges, gs[0].N(), gs[0].M())
		}
		answers := bitset.FromIndices(dsSize, it.answers)
		// Ids tombstoned since the state was written are masked out: ids
		// are never reused, so the remaining bits are still exact, and the
		// restored entries are stamped with the current epoch.
		answers.And(view.Live())
		e := entryFromSig(0, gs[0], it.qt, answers, it.baseCandidates, c.signatureOf(gs[0]), 0, view.Epoch())
		e.Hits = it.hits
		e.SavedTests = it.savedTests
		e.SavedCostNs = it.savedCost
		entries = append(entries, e)
	}

	c.replaceEntries(entries)
	return nil
}

// replaceEntries installs entries as the cache's entire content — the
// shared commit phase of every restore. Stop-the-world: the full
// hierarchy windowMu → policyMu → every shard write lock, so no query
// observes a half-replaced cache and both window engines' pending buffers
// are cleared. Caller holds the read side of dsMu (the entries' answer
// sets must stay exact for the pinned dataset snapshot through the
// install).
//
//gclint:acquires windowMu policyMu shard
func (c *Cache) replaceEntries(entries []*Entry) {
	c.windowMu.Lock()
	defer c.windowMu.Unlock()
	c.policyMu.Lock()
	defer c.policyMu.Unlock()
	c.lockAll()
	defer c.unlockAll()
	for _, sh := range c.shards {
		sh.entries = sh.entries[:0]
		sh.byFP = make(map[graph.Fingerprint][]*Entry)
		sh.memBytes = 0
		sh.resetWindowLocked()
	}
	// The shards were cleared directly, bypassing removeLocked: reset the
	// residency account to match before insertLocked re-adds the restored
	// entries (a warm-cache restore would otherwise double-count forever).
	c.res.entries.Store(0)
	c.res.bytes.Store(0)
	// The intern pool's references died with the cleared entries; empty it
	// so the restored entries re-intern from scratch (insertLocked below).
	c.pool.reset()
	c.window = c.window[:0]
	tick := c.tick.Load()
	for _, e := range entries {
		e.ID = c.newID()
		e.InsertedAt = tick
		e.LastUsed = tick
		c.shardFor(e.Fingerprint).insertLocked(e)
	}
	all := c.gatherLocked()
	if excess := len(all) - c.cfg.Capacity; excess > 0 {
		c.evictLocked(all, excess)
	}
	c.republishAllLocked()
	// Restored entries are stamped with the current epoch (additions are
	// impossible since the state was written — the id space would have
	// grown, and a size mismatch is refused above — so the stamp can skip
	// nothing), which usually lifts the compaction floor: a restore is a
	// stop-the-world pass like any other.
	c.compactAdditionsLocked()
}
