package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Cache state persistence: a warm cache is the product of an expensive
// query history, so a production deployment wants to survive restarts.
// WriteState serializes the admitted entries (pending window entries are
// deliberately excluded — they have not passed admission control);
// ReadState restores them into a cache built over the SAME dataset, since
// answer sets are stored as dataset positions.
//
// Format (line-oriented, versioned):
//
//	gcstate 1 <dataset-size>
//	entry <type> <baseCandidates> <hits> <savedTests> <savedCostNs>
//	answers <id> <id> ...
//	<graph in the text codec>
//	...
//
// Recency/insertion ticks are reset on load (the new process has its own
// clock); utility counters survive.

const stateVersion = 1

// WriteState serializes the cache's admitted entries to w. It takes the
// coordinator lock (the utility fields it records are mutated under it)
// plus every shard lock, so the written state is one consistent snapshot
// even under concurrent queries.
func (c *Cache) WriteState(w io.Writer) error {
	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	c.lockAll()
	defer c.unlockAll()

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "gcstate %d %d\n", stateVersion, c.method.DatasetSize())
	for _, e := range c.gatherLocked() {
		fmt.Fprintf(bw, "entry %d %d %d %g %g\n",
			e.Type, e.BaseCandidates, e.Hits, e.SavedTests, e.SavedCostNs)
		ids := e.Answers.Indices()
		fmt.Fprint(bw, "answers")
		for _, id := range ids {
			fmt.Fprintf(bw, " %d", id)
		}
		fmt.Fprintln(bw)
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := graph.WriteGraph(w, e.Graph); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadState restores entries serialized by WriteState into the cache,
// replacing its current contents. The cache's dataset size must match the
// recorded one; anything else indicates the state belongs to a different
// deployment.
func (c *Cache) ReadState(r io.Reader) error {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("core: reading state header: %w", err)
	}
	var version, dsSize int
	if _, err := fmt.Sscanf(header, "gcstate %d %d", &version, &dsSize); err != nil {
		return fmt.Errorf("core: bad state header %q", strings.TrimSpace(header))
	}
	if version != stateVersion {
		return fmt.Errorf("core: unsupported state version %d", version)
	}
	if dsSize != c.method.DatasetSize() {
		return fmt.Errorf("core: state is for a %d-graph dataset, cache has %d", dsSize, c.method.DatasetSize())
	}

	type pending struct {
		qt             ftv.QueryType
		baseCandidates int
		hits           int64
		savedTests     float64
		savedCost      float64
		answers        []int
		graphText      strings.Builder
	}
	var items []*pending
	var cur *pending
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		trimmed := strings.TrimSpace(line)
		fields := strings.Fields(trimmed)
		switch {
		case len(fields) > 0 && fields[0] == "entry":
			if len(fields) != 6 {
				return fmt.Errorf("core: bad entry line %q", trimmed)
			}
			cur = &pending{}
			qt, err1 := strconv.Atoi(fields[1])
			bc, err2 := strconv.Atoi(fields[2])
			hits, err3 := strconv.ParseInt(fields[3], 10, 64)
			st, err4 := strconv.ParseFloat(fields[4], 64)
			sc, err5 := strconv.ParseFloat(fields[5], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
				return fmt.Errorf("core: bad entry line %q", trimmed)
			}
			cur.qt = ftv.QueryType(qt)
			cur.baseCandidates = bc
			cur.hits = hits
			cur.savedTests = st
			cur.savedCost = sc
			items = append(items, cur)
		case len(fields) > 0 && fields[0] == "answers":
			if cur == nil {
				return fmt.Errorf("core: answers line before entry line")
			}
			for _, f := range fields[1:] {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= dsSize {
					return fmt.Errorf("core: bad answer id %q", f)
				}
				cur.answers = append(cur.answers, id)
			}
		default:
			if cur == nil {
				return fmt.Errorf("core: graph text before entry line: %q", trimmed)
			}
			cur.graphText.WriteString(line)
		}
		if err == io.EOF {
			break
		}
	}

	entries := make([]*Entry, 0, len(items))
	for i, it := range items {
		gs, err := graph.ReadAll(strings.NewReader(it.graphText.String()))
		if err != nil {
			return fmt.Errorf("core: state entry %d: %w", i, err)
		}
		if len(gs) != 1 {
			return fmt.Errorf("core: state entry %d: want one graph, got %d", i, len(gs))
		}
		answers := bitset.FromIndices(dsSize, it.answers)
		e := newEntry(0, gs[0], it.qt, answers, it.baseCandidates, c.cfg.FeatureLen, 0)
		e.Hits = it.hits
		e.SavedTests = it.savedTests
		e.SavedCostNs = it.savedCost
		entries = append(entries, e)
	}

	c.coordMu.Lock()
	defer c.coordMu.Unlock()
	c.lockAll()
	defer c.unlockAll()
	for _, sh := range c.shards {
		sh.entries = sh.entries[:0]
		sh.byFP = make(map[graph.Fingerprint][]*Entry)
		sh.memBytes = 0
	}
	c.window = c.window[:0]
	tick := c.tick.Load()
	for _, e := range entries {
		e.ID = c.nextID
		c.nextID++
		e.InsertedAt = tick
		e.LastUsed = tick
		c.shardFor(e.Fingerprint).insertLocked(e)
	}
	all := c.gatherLocked()
	if excess := len(all) - c.cfg.Capacity; excess > 0 {
		c.evictLocked(all, excess)
	}
	return nil
}
