package core

import (
	"sort"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// querySig bundles the per-query signatures computed once and reused by
// exact-match detection and sub/super candidate pre-filtering.
type querySig struct {
	fp       graph.Fingerprint
	labelVec graph.LabelVector
	features featureVec
	fv       ftv.FeatureVector
	featBits uint64
}

// signatureOf computes the full query signature. The WL fingerprint is
// memoized on the graph, so Execute's two-stage flow — fingerprint alone
// for the exact-match probe, the full signature only after an exact miss
// — never recomputes it here.
func (c *Cache) signatureOf(q *graph.Graph) querySig {
	features := pathFeatures(q, c.cfg.FeatureLen)
	return querySig{
		fp:       q.WLFingerprint(3),
		labelVec: graph.LabelVectorOf(q),
		features: features,
		fv:       ftv.ExtractFeatures(q),
		featBits: features.bits(),
	}
}

// findExact returns a cached (or window-pending) entry isomorphic to q
// with the same query type, or nil. Fingerprint equality pre-filters;
// VF2 confirms (fingerprints can collide, never the reverse).
//
// Only the owning shard is touched, under one read lock covering both its
// admitted entries and its pending window (isomorphic graphs share a
// fingerprint, so a match can live nowhere else), and only long enough to
// copy the colliding candidates; the confirming iso tests run lock-free
// over immutable entry fields. With Config.SharedWindow the pending
// entries live in the global window instead, copied under windowMu. Two
// identical queries racing each other may therefore both miss and both be
// staged — benign: exact-match scans return the first isomorphic entry
// either way.
//
//gclint:acquires windowMu shard
func (c *Cache) findExact(q *graph.Graph, qt ftv.QueryType, fp graph.Fingerprint) *Entry {
	sh := c.shardFor(fp)
	sh.mu.RLock()
	var cands []*Entry
	if byFP := sh.byFP[fp]; len(byFP) > 0 {
		cands = append(cands, byFP...)
	}
	if !c.cfg.SharedWindow {
		for _, e := range sh.window {
			if e.Fingerprint == fp {
				cands = append(cands, e)
			}
		}
	}
	sh.mu.RUnlock()
	for _, e := range cands {
		if e.Type == qt && iso.Isomorphic(q, e.Graph) {
			return e
		}
	}
	if !c.cfg.SharedWindow {
		return nil
	}
	c.windowMu.Lock()
	pending := append([]*Entry(nil), c.window...)
	c.windowMu.Unlock()
	for _, e := range pending {
		if e.Type == qt && e.Fingerprint == fp && iso.Isomorphic(q, e.Graph) {
			return e
		}
	}
	return nil
}

// hitSet is the outcome of sub/super hit detection.
type hitSet struct {
	// sub holds entries h with q ⊑ h (the paper's "sub case").
	sub []*Entry
	// super holds entries h with h ⊑ q (the "super case").
	super []*Entry
	// isoTests counts q↔h containment tests spent.
	isoTests int
}

// detectHits finds the sub/super hits among the admitted entries of the
// query's type. Candidates come from one of two sound collectors —
// Config.IndexOff selects which — then are ranked by expected benefit and
// confirmed with budgeted VF2 runs: per direction at most 2× the hit
// budget of attempts and at most the budget of accepted hits.
//
// With the feature index on (the default), candidates are fetched from
// the lock-free published index: only entries whose containment summaries
// are compatible with the query's reach the exact dominance merges, and
// no shard lock, snapshot allocation or sort happens at all (see
// hitIndex). With IndexOff, detection scans an ID-ordered snapshot of the
// shards with the pre-index predicate — the measurable baseline.
//
// Either way the iso tests run without holding any lock: the consulted
// fields are immutable after admission, and a concurrently evicted entry
// still yields sound savings (its answer set remains exact over the
// immutable dataset). Candidate enumeration is ID-ordered and the benefit
// ranking breaks ties by ID, so detection is deterministic and
// independent of the shard count. The index may prune candidates the
// baseline would have spent (failing) VF2 attempts on, so the two modes
// can surface different hit sets within the attempt budget — answers stay
// exact either way, since hits only ever shrink verification work.
//
//gclint:acquires shard
func (c *Cache) detectHits(q *graph.Graph, qt ftv.QueryType, sig querySig) hitSet {
	var hs hitSet
	if c.cfg.MaxSubHits == 0 && c.cfg.MaxSuperHits == 0 {
		return hs
	}
	var subCand, superCand []*Entry
	if c.cfg.IndexOff {
		subCand, superCand = c.scanSnapshot(qt, sig)
	} else {
		subCand, superCand = c.scanIndex(qt, sig)
	}

	// Benefit ranking. Which direction delivers answers vs pruning depends
	// on the query type, but the proxy is the same either way: for
	// answer-delivering hits, larger answer sets save more tests; for
	// pruning hits, smaller answer sets exclude more candidates. Ties are
	// broken by entry ID: the order is then a function of the candidate
	// SET alone, which keeps detection deterministic even when the index
	// prunes elements out of the baseline's list.
	answersDeliverIsSub := qt == ftv.Subgraph
	rankCandidates(subCand, answersDeliverIsSub)
	rankCandidates(superCand, !answersDeliverIsSub)

	hs.sub, hs.super, hs.isoTests = c.confirmHits(q, subCand, superCand)
	return hs
}

// rankedCandidate pairs a hit candidate with its answer count sampled
// once, before the sort starts.
type rankedCandidate struct {
	e     *Entry
	count int
}

// rankCandidates orders a hit-candidate list in place by expected
// benefit — answer count, largerFirst choosing the direction — with
// entry-ID tie-breaks. Each entry's answer count is snapshotted exactly
// once before sorting: a comparator that reloads the answer cell per
// comparison can observe a concurrent lazy reconciliation mid-sort,
// making the ordering inconsistent (sort.Slice's result is then
// unspecified) and breaking the "ranking is a deterministic function of
// the candidate set" contract — besides costing one O(set) count per
// comparison instead of per entry.
//
//gclint:deterministic
//gclint:loads answers cands
func rankCandidates(cands []*Entry, largerFirst bool) {
	if len(cands) < 2 {
		return
	}
	rs := make([]rankedCandidate, len(cands))
	for i, e := range cands {
		rs[i] = rankedCandidate{e: e, count: e.Answers().Count()}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].count != rs[j].count {
			if largerFirst {
				return rs[i].count > rs[j].count
			}
			return rs[i].count < rs[j].count
		}
		return rs[i].e.ID < rs[j].e.ID
	})
	for i, r := range rs {
		cands[i] = r.e
	}
}

// scanSnapshot is the IndexOff candidate collector: an ID-ordered
// point-in-time snapshot of every shard, pre-filtered by size and by
// label-vector and path-feature dominance — the pre-index engine, kept as
// the measurable baseline for the indexed-vs-unindexed comparison.
//
//gclint:acquires shard
func (c *Cache) scanSnapshot(qt ftv.QueryType, sig querySig) (sub, super []*Entry) {
	all := c.entriesSnapshot()
	c.mon.hitScanEntries.Add(int64(len(all)))
	for _, e := range all {
		if e.Type != qt {
			continue
		}
		// Sub case q ⊑ h requires q to "fit inside" h.
		if int(sig.fv.Vertices) <= e.Graph.N() && int(sig.fv.Edges) <= e.Graph.M() {
			c.mon.hitFullChecks.Add(1)
			if sig.labelVec.DominatedBy(e.LabelVec) && sig.features.dominatedBy(e.Features) {
				sub = append(sub, e)
				continue
			}
		}
		// Super case h ⊑ q requires h to fit inside q.
		if e.Graph.N() <= int(sig.fv.Vertices) && e.Graph.M() <= int(sig.fv.Edges) {
			c.mon.hitFullChecks.Add(1)
			if e.LabelVec.DominatedBy(sig.labelVec) && e.Features.dominatedBy(sig.features) {
				super = append(super, e)
			}
		}
	}
	return sub, super
}

// confirmHits runs the budgeted VF2 confirmations over the ranked
// candidate lists, returning the accepted hits and the number of q↔h iso
// tests spent.
//
//gclint:nolocks
func (c *Cache) confirmHits(q *graph.Graph, subCand, superCand []*Entry) (sub, super []*Entry, isoTests int) {
	opts := iso.Options{MaxRecursions: c.cfg.HitIsoBudget}
	attempts := 0
	for _, e := range subCand {
		if len(sub) >= c.cfg.MaxSubHits || attempts >= 2*c.cfg.MaxSubHits {
			break
		}
		attempts++
		isoTests++
		if ok, _ := iso.VF2(q, e.Graph, opts); ok {
			sub = append(sub, e)
		}
	}
	attempts = 0
	for _, e := range superCand {
		if len(super) >= c.cfg.MaxSuperHits || attempts >= 2*c.cfg.MaxSuperHits {
			break
		}
		attempts++
		isoTests++
		if ok, _ := iso.VF2(e.Graph, q, opts); ok {
			super = append(super, e)
		}
	}
	return sub, super, isoTests
}
