package core

import (
	"sort"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// querySig bundles the per-query signatures computed once and reused by
// exact-match detection and sub/super candidate pre-filtering.
type querySig struct {
	fp       graph.Fingerprint
	labelVec graph.LabelVector
	features featureVec
}

func (c *Cache) signatureOf(q *graph.Graph) querySig {
	return querySig{
		fp:       q.WLFingerprint(3),
		labelVec: graph.LabelVectorOf(q),
		features: pathFeatures(q, c.cfg.FeatureLen),
	}
}

// findExact returns a cached (or window-pending) entry isomorphic to q
// with the same query type, or nil. Fingerprint equality pre-filters;
// VF2 confirms (fingerprints can collide, never the reverse).
//
// Only the owning shard (read lock) and the window (coordMu) are touched,
// and only long enough to copy the colliding candidates; the confirming
// iso tests run lock-free over immutable entry fields. Two identical
// queries racing each other may therefore both miss and both be staged —
// benign: exact-match scans return the first isomorphic entry either way.
func (c *Cache) findExact(q *graph.Graph, qt ftv.QueryType, sig querySig) *Entry {
	sh := c.shardFor(sig.fp)
	sh.mu.RLock()
	cands := append([]*Entry(nil), sh.byFP[sig.fp]...)
	sh.mu.RUnlock()
	for _, e := range cands {
		if e.Type == qt && iso.Isomorphic(q, e.Graph) {
			return e
		}
	}
	c.coordMu.Lock()
	pending := append([]*Entry(nil), c.window...)
	c.coordMu.Unlock()
	for _, e := range pending {
		if e.Type == qt && e.Fingerprint == sig.fp && iso.Isomorphic(q, e.Graph) {
			return e
		}
	}
	return nil
}

// hitSet is the outcome of sub/super hit detection.
type hitSet struct {
	// sub holds entries h with q ⊑ h (the paper's "sub case").
	sub []*Entry
	// super holds entries h with h ⊑ q (the "super case").
	super []*Entry
	// isoTests counts q↔h containment tests spent.
	isoTests int
}

// detectHits scans the admitted entries of the query's type for sub/super
// hits. Candidates are pre-filtered by size, label-vector and path-feature
// dominance (the iGQ-style cache index), ranked by expected benefit, and
// confirmed with budgeted VF2 runs: per direction at most 2× the hit
// budget of attempts and at most the budget of accepted hits.
//
// Detection works over an ID-ordered snapshot of the shards and runs its
// iso tests without holding any lock: the consulted fields are immutable
// after admission, and a concurrently evicted entry still yields sound
// savings (its answer set remains exact over the immutable dataset). The
// ID ordering makes the scan — and the unstable benefit sort below —
// independent of the shard count.
func (c *Cache) detectHits(q *graph.Graph, qt ftv.QueryType, sig querySig) hitSet {
	var hs hitSet
	if c.cfg.MaxSubHits == 0 && c.cfg.MaxSuperHits == 0 {
		return hs
	}
	var subCand, superCand []*Entry
	for _, e := range c.entriesSnapshot() {
		if e.Type != qt {
			continue
		}
		// Sub case q ⊑ h requires q to "fit inside" h.
		if q.N() <= e.Graph.N() && q.M() <= e.Graph.M() &&
			sig.labelVec.DominatedBy(e.LabelVec) && sig.features.dominatedBy(e.Features) {
			subCand = append(subCand, e)
			continue
		}
		// Super case h ⊑ q requires h to fit inside q.
		if e.Graph.N() <= q.N() && e.Graph.M() <= q.M() &&
			e.LabelVec.DominatedBy(sig.labelVec) && e.Features.dominatedBy(sig.features) {
			superCand = append(superCand, e)
		}
	}

	// Benefit ranking. Which direction delivers answers vs pruning depends
	// on the query type, but the proxy is the same either way: for
	// answer-delivering hits, larger answer sets save more tests; for
	// pruning hits, smaller answer sets exclude more candidates.
	answersDeliverIsSub := qt == ftv.Subgraph
	sort.Slice(subCand, func(i, j int) bool {
		ai, aj := subCand[i].Answers.Count(), subCand[j].Answers.Count()
		if answersDeliverIsSub {
			return ai > aj
		}
		return ai < aj
	})
	sort.Slice(superCand, func(i, j int) bool {
		ai, aj := superCand[i].Answers.Count(), superCand[j].Answers.Count()
		if answersDeliverIsSub {
			return ai < aj
		}
		return ai > aj
	})

	opts := iso.Options{MaxRecursions: c.cfg.HitIsoBudget}
	attempts := 0
	for _, e := range subCand {
		if len(hs.sub) >= c.cfg.MaxSubHits || attempts >= 2*c.cfg.MaxSubHits {
			break
		}
		attempts++
		hs.isoTests++
		if ok, _ := iso.VF2(q, e.Graph, opts); ok {
			hs.sub = append(hs.sub, e)
		}
	}
	attempts = 0
	for _, e := range superCand {
		if len(hs.super) >= c.cfg.MaxSuperHits || attempts >= 2*c.cfg.MaxSuperHits {
			break
		}
		attempts++
		hs.isoTests++
		if ok, _ := iso.VF2(e.Graph, q, opts); ok {
			hs.super = append(hs.super, e)
		}
	}
	return hs
}
