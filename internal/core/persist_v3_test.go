package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// warmCache builds a cache with the given shard count over a fresh
// dataset and runs a workload through it, returning the cache and its
// executed queries.
func warmCache(t *testing.T, seed int64, shards int) (*Cache, []gen.Query) {
	t.Helper()
	dataset := testDataset(seed, 40)
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.Window = 2
	cfg.Shards = shards
	c := MustNew(method, cfg)
	rng := rand.New(rand.NewSource(seed + 1))
	var queries []gen.Query
	for i := 0; i < 25; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		queries = append(queries, gen.Query{G: q, Type: ftv.Subgraph})
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() < 3 {
		t.Fatalf("only %d admitted entries", c.Len())
	}
	return c, queries
}

// v3State serializes c into the binary format.
func v3State(t *testing.T, c *Cache) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The binary format must restore the exact state the text format does:
// same entries, same answers, byte for byte — at every shard geometry.
// Both restored caches are re-serialized through the deterministic v2
// writer and compared as bytes, which pins answers, utility counters and
// admission order all at once.
func TestV2V3Equivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			src, _ := warmCache(t, 301+int64(shards), shards)
			method := src.Method()
			cfg := DefaultConfig()
			cfg.Window = 2
			cfg.Shards = shards

			var v2 bytes.Buffer
			if err := src.WriteStateV2(&v2); err != nil {
				t.Fatal(err)
			}
			v3 := v3State(t, src)

			fromV2 := MustNew(method, cfg)
			if err := fromV2.ReadState(bytes.NewReader(v2.Bytes())); err != nil {
				t.Fatalf("v2 restore: %v", err)
			}
			fromV3 := MustNew(method, cfg)
			if err := fromV3.ReadState(bytes.NewReader(v3)); err != nil {
				t.Fatalf("v3 restore: %v", err)
			}

			if fromV2.Len() != src.Len() || fromV3.Len() != src.Len() {
				t.Fatalf("entry counts: src %d, v2 %d, v3 %d", src.Len(), fromV2.Len(), fromV3.Len())
			}
			var rv2, rv3 bytes.Buffer
			if err := fromV2.WriteStateV2(&rv2); err != nil {
				t.Fatal(err)
			}
			if err := fromV3.WriteStateV2(&rv3); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rv2.Bytes(), rv3.Bytes()) {
				t.Fatal("v2- and v3-restored caches re-serialize differently: answers are not byte-identical")
			}
		})
	}
}

// A v3 snapshot round-trips through a file and serves every original
// query as an exact hit with identical answers — in lazy mode.
func TestV3LazyRestoreServesExactHits(t *testing.T) {
	src, queries := warmCache(t, 401, 4)
	path := filepath.Join(t.TempDir(), "state.gcs3")
	if err := os.WriteFile(path, v3State(t, src), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Window = 2
	dst := MustNew(src.Method(), cfg)
	closer, err := dst.RestoreStateLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d entries, want %d", dst.Len(), src.Len())
	}
	if got := dst.Stats().StateBodyFaults; got != 0 {
		t.Fatalf("restore itself faulted %d bodies", got)
	}
	hits := 0
	for _, q := range queries {
		res, err := dst.Execute(q.G, q.Type)
		if err != nil {
			t.Fatal(err)
		}
		if !res.ExactHit {
			continue // evicted before the save; nothing to compare
		}
		hits++
		srcRes, err := src.Execute(q.G, q.Type)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answers.Equal(srcRes.Answers) {
			t.Fatalf("lazily restored answers differ for query on %d vertices", q.G.N())
		}
	}
	if hits == 0 {
		t.Fatal("no exact hits on the restored cache")
	}
	if got := dst.Stats().StateBodyFaults; got == 0 {
		t.Fatal("exact hits faulted no bodies — restore was not lazy")
	}
}

// countingReaderAt records every ReadAt issued against a snapshot.
type countingReaderAt struct {
	r     *bytes.Reader
	reads [][2]int64 // (offset, length)
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads = append(c.reads, [2]int64{off, int64(len(p))})
	return c.r.ReadAt(p, off)
}

// ansRanges extracts each entry's answer-body byte range from a valid v3
// snapshot's index section.
func ansRanges(raw []byte) [][2]int64 {
	n := binary.LittleEndian.Uint64(raw[24:])
	out := make([][2]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := raw[v3HeaderLen+i*v3IndexLen:]
		off := binary.LittleEndian.Uint64(rec[96:])
		graphLen := binary.LittleEndian.Uint64(rec[104:])
		ansLen := binary.LittleEndian.Uint64(rec[112:])
		out = append(out, [2]int64{int64(off + graphLen), int64(ansLen)})
	}
	return out
}

func overlapping(reads, ranges [][2]int64) int {
	n := 0
	for _, rd := range reads {
		for _, rg := range ranges {
			if rd[0] < rg[0]+rg[1] && rg[0] < rd[0]+rd[1] {
				n++
				break
			}
		}
	}
	return n
}

// The lazy-restore contract, pinned at the I/O layer: restoring reads the
// header, index and graphs but not one byte of any answer body; the first
// Answers() on each entry then reads exactly that entry's body.
func TestV3LazyRestoreReadsNoAnswerBodies(t *testing.T) {
	src, _ := warmCache(t, 501, 4)
	raw := v3State(t, src)
	ranges := ansRanges(raw)

	cr := &countingReaderAt{r: bytes.NewReader(raw)}
	cfg := DefaultConfig()
	cfg.Window = 2
	dst := MustNew(src.Method(), cfg)
	if err := dst.readStateV3(&stateSource{r: cr, size: int64(len(raw))}, true); err != nil {
		t.Fatal(err)
	}
	if len(cr.reads) == 0 {
		t.Fatal("restore issued no reads at all")
	}
	if n := overlapping(cr.reads, ranges); n != 0 {
		t.Fatalf("lazy restore read %d answer bodies before any query", n)
	}

	entries := dst.Entries()
	for _, e := range entries {
		e.Answers()
	}
	if n := overlapping(cr.reads, ranges); n != len(entries) {
		t.Fatalf("faulting every entry read %d bodies, want %d", n, len(entries))
	}
	// A second Answers() hits the published state, not the file.
	before := len(cr.reads)
	for _, e := range entries {
		e.Answers()
	}
	if len(cr.reads) != before {
		t.Fatal("re-reading answers touched the snapshot file again")
	}
}

// Dataset mutations on a lazily restored cache stay exact even for
// entries whose bodies have not faulted in yet: an eagerly restored twin
// is the oracle.
func TestV3LazyRestoreSurvivesMutations(t *testing.T) {
	src, _ := warmCache(t, 601, 4)
	raw := v3State(t, src)
	cfg := DefaultConfig()
	cfg.Window = 2

	// The twins need independent methods (a method owns its live dataset,
	// so sharing one would share the mutations too); testDataset is
	// deterministic, so both rebuild the dataset warmCache(601, ...) used.
	lazy := MustNew(ftv.NewGGSXMethod(testDataset(601, 40), 3), cfg)
	if err := lazy.readStateV3(newMemStateSource(raw), true); err != nil {
		t.Fatal(err)
	}
	eager := MustNew(ftv.NewGGSXMethod(testDataset(601, 40), 3), cfg)
	if err := eager.ReadState(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}

	// Tombstone an id that appears in some restored answer set — BEFORE
	// that entry's body ever faults in.
	victim := -1
	for _, e := range eager.Entries() {
		if e.Answers().Count() > 0 {
			victim = e.Answers().Indices()[0]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no restored entry has answers")
	}
	if err := lazy.RemoveGraph(victim); err != nil {
		t.Fatal(err)
	}
	if err := eager.RemoveGraph(victim); err != nil {
		t.Fatal(err)
	}
	// And grow the dataset, so fault-in must also reconcile an addition.
	added := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(602)), src.Method().Dataset()[0], 6)
	if _, err := lazy.AddGraph(added); err != nil {
		t.Fatal(err)
	}
	if _, err := eager.AddGraph(added); err != nil {
		t.Fatal(err)
	}

	le, ee := lazy.Entries(), eager.Entries()
	if len(le) != len(ee) {
		t.Fatalf("entry counts diverged: lazy %d, eager %d", len(le), len(ee))
	}
	for i, e := range ee {
		res, err := lazy.Execute(e.Graph, e.Type)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := eager.Execute(e.Graph, e.Type)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answers.Equal(oracle.Answers) {
			t.Fatalf("entry %d: lazy and eager answers diverged after mutations", i)
		}
		if res.Answers.Contains(victim) {
			t.Fatalf("entry %d: tombstoned id %d still answered", i, victim)
		}
	}
}

// Tombstones that predate the snapshot are carried into a lazy restore as
// initial drops.
func TestV3LazyRestoreWithPreexistingTombstones(t *testing.T) {
	src, _ := warmCache(t, 701, 4)
	victim := -1
	for _, e := range src.Entries() {
		if e.Answers().Count() > 0 {
			victim = e.Answers().Indices()[0]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no entry has answers")
	}
	if err := src.RemoveGraph(victim); err != nil {
		t.Fatal(err)
	}
	raw := v3State(t, src)

	cfg := DefaultConfig()
	cfg.Window = 2
	lazy := MustNew(src.Method(), cfg)
	if err := lazy.readStateV3(newMemStateSource(raw), true); err != nil {
		t.Fatal(err)
	}
	for _, e := range lazy.Entries() {
		if e.Answers().Contains(victim) {
			t.Fatalf("restored entry still answers tombstoned id %d", victim)
		}
	}
}

// Corruption sweep over the binary format: truncations at every section
// boundary and stride, and single-byte flips everywhere — each must be
// rejected all-or-nothing by the eager reader.
func TestV3CorruptionSweep(t *testing.T) {
	src, _ := warmCache(t, 801, 4)
	raw := v3State(t, src)
	cfg := DefaultConfig()
	cfg.Window = 2
	method := src.Method()

	bodyOff := int(binary.LittleEndian.Uint64(raw[32:]))
	cuts := []int{0, 3, 4, 8, v3HeaderLen - 1, v3HeaderLen, v3HeaderLen + v3IndexLen/2, bodyOff - 1, bodyOff, bodyOff + 1, len(raw) - 1}
	for off := 0; off < len(raw); off += 97 {
		cuts = append(cuts, off)
	}
	for _, cut := range cuts {
		c := MustNew(method, cfg)
		if err := c.ReadState(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(raw))
		}
		if c.Len() != 0 || c.WindowLen() != 0 {
			t.Fatalf("truncation at %d left %d entries behind", cut, c.Len())
		}
	}

	flips := []int{0, 4, 9, 17, 25, 33, 41, 49, 57, v3HeaderLen, v3HeaderLen + 20, v3HeaderLen + 100, bodyOff, bodyOff + 1, len(raw) - 1}
	for off := 0; off < len(raw); off += 131 {
		flips = append(flips, off)
	}
	for _, off := range flips {
		if off >= len(raw) {
			continue
		}
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		c := MustNew(method, cfg)
		if err := c.ReadState(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte at %d/%d accepted", off, len(raw))
		}
		if c.Len() != 0 || c.WindowLen() != 0 {
			t.Fatalf("flip at %d left %d entries behind", off, c.Len())
		}
	}
}

// A body corrupted AFTER a lazy restore validated the snapshot must
// panic at fault-in — wrong answers are worse than a crash, the same
// contract SelfCheck enforces.
func TestV3LazyFaultOnCorruptedBodyPanics(t *testing.T) {
	src, _ := warmCache(t, 901, 1)
	raw := v3State(t, src)
	ranges := ansRanges(raw)

	cfg := DefaultConfig()
	cfg.Window = 2
	lazy := MustNew(src.Method(), cfg)
	data := append([]byte(nil), raw...)
	if err := lazy.readStateV3(newMemStateSource(data), true); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first entry's answer body behind the restore's back.
	data[ranges[0][0]+ranges[0][1]/2] ^= 0xff

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("faulting a corrupted body did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "corrupted") {
			t.Fatalf("panic does not name the corruption: %v", r)
		}
	}()
	for _, e := range lazy.Entries() {
		e.Answers()
	}
}
