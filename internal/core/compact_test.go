package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// TestEagerAdditionsKeepLogEmpty pins the eager-mode compaction rule:
// every AddGraph reconciles every entry to the new epoch inside the same
// stop-the-world pass, so the trailing compaction drains the log before
// the mutation returns — the addition log never holds a record across
// two mutations.
func TestEagerAdditionsKeepLogEmpty(t *testing.T) {
	dataset := testDataset(101, 12)
	extra := testDataset(102, 5)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 2
		cfg.Shards = 4
	})
	rng := rand.New(rand.NewSource(103))
	for i, g := range extra {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i], 4)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddGraph(g); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().AdditionLogLen; got != 0 {
			t.Fatalf("eager mode: %d addition records survive mutation %d", got, i)
		}
	}
	snap := c.Stats()
	if snap.LogCompactions == 0 || snap.LogRecordsDropped != int64(len(extra)) {
		t.Fatalf("compactions %d dropped %d records, want >0 / %d",
			snap.LogCompactions, snap.LogRecordsDropped, len(extra))
	}
	if snap.FilterRebuilds != 0 || snap.FilterInserts != int64(len(extra)) {
		t.Fatalf("filter maintenance: %d inserts / %d rebuilds, want %d / 0",
			snap.FilterInserts, snap.FilterRebuilds, len(extra))
	}
}

// TestLazyCompactionWaitsForColdestEntry pins the compaction floor rule
// in lazy mode: the log keeps every record the coldest (stalest) entry
// still needs, and drops them the moment that entry reconciles — never
// earlier.
func TestLazyCompactionWaitsForColdestEntry(t *testing.T) {
	dataset := testDataset(111, 10)
	extra := testDataset(112, 4)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 1 // admit (and turn) on every query
		cfg.Shards = 1
		cfg.LazyReconcile = true
	})
	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(113)), dataset[0], 4)
	if _, err := c.Execute(q, ftv.Subgraph); err != nil { // entry at epoch 0
		t.Fatal(err)
	}

	// Three lazy additions: the epoch-0 entry pins all three records
	// through every compaction opportunity.
	for i := 0; i < 3; i++ {
		if _, err := c.AddGraph(extra[i]); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().AdditionLogLen; got != i+1 {
			t.Fatalf("after lazy add %d: log length %d, want %d (stale entry must pin the log)", i, got, i+1)
		}
	}

	// An exact hit reconciles the entry to the current epoch (epoch 3)...
	res, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactHit {
		t.Fatal("expected an exact hit on the stale entry")
	}
	// ...so the next mutation's compaction drops everything the entry
	// passed: the three old records go, only the new mutation's survives.
	if _, err := c.AddGraph(extra[3]); err != nil {
		t.Fatal(err)
	}
	snap := c.Stats()
	if snap.AdditionLogLen != 1 {
		t.Fatalf("log length after reconciliation + add: %d, want 1", snap.AdditionLogLen)
	}
	if snap.LogRecordsDropped != 3 {
		t.Fatalf("records dropped %d, want 3", snap.LogRecordsDropped)
	}
}

// TestAdditionLogBoundedUnderSustainedAdds is the boundedness acceptance
// property: a sustained add/query stream in lazy mode keeps the log at
// O(1) — every round's queries reconcile the resident entries, so the
// floor tracks the epoch and compaction (at window turns and at the
// mutations' stop-the-world passes) continuously drains the tail. In
// eager mode the same stream keeps the log at exactly zero.
func TestAdditionLogBoundedUnderSustainedAdds(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			dataset := testDataset(121, 12)
			stream := testDataset(122, 30)
			c := testCache(t, dataset, func(cfg *Config) {
				cfg.Window = 2
				cfg.Shards = 1
				cfg.LazyReconcile = lazy
			})
			rng := rand.New(rand.NewSource(123))
			pool := make([]*queryCase, 3)
			for i := range pool {
				pool[i] = &queryCase{g: gen.ExtractConnectedSubgraph(rng, dataset[i], 4), qt: ftv.Subgraph}
			}
			maxLog := 0
			for round, g := range stream {
				if _, err := c.AddGraph(g); err != nil {
					t.Fatal(err)
				}
				// Touch every pool pattern: first executions admit, later
				// ones exact-hit and reconcile, and the window (size 2)
				// turns at least once per round.
				for _, p := range pool {
					if _, err := c.Execute(p.g, p.qt); err != nil {
						t.Fatal(err)
					}
				}
				logLen := c.Stats().AdditionLogLen
				if logLen > maxLog {
					maxLog = logLen
				}
				if !lazy && logLen != 0 {
					t.Fatalf("eager round %d: log length %d, want 0", round, logLen)
				}
				if lazy && round > 2 && logLen > 4 {
					t.Fatalf("lazy round %d: log length %d — compaction is not keeping up", round, logLen)
				}
			}
			snap := c.Stats()
			if snap.DatasetAdds != int64(len(stream)) {
				t.Fatalf("adds %d, want %d", snap.DatasetAdds, len(stream))
			}
			if maxLog >= len(stream)/2 {
				t.Fatalf("max log length %d over %d adds: unbounded growth", maxLog, len(stream))
			}
			if snap.LogCompactions == 0 {
				t.Fatal("no compaction ever fired")
			}
			if snap.FilterRebuilds != 0 {
				t.Fatalf("%d filter rebuilds under sustained adds, want 0 (incremental inserts)", snap.FilterRebuilds)
			}
		})
	}
}

// queryCase pairs a pattern with its semantics for reuse across rounds.
type queryCase struct {
	g  *graph.Graph
	qt ftv.QueryType
}

// TestRestoreAfterCompactionCannotSkipRecords is the compaction ×
// persistence regression: the v2 state format carries no epochs, so
// ReadState stamps restored entries with the CURRENT epoch. That stamp is
// only sound because additions since the write are impossible to restore
// across — they grow the id space, and a size mismatch is refused — so a
// compacted log can never hide a record a restored entry still needed.
// The test pins both directions: a restore across additions (and hence
// across their compacted records) is refused, and a same-size restore
// stamps entries that reconcile future additions exactly.
func TestRestoreAfterCompactionCannotSkipRecords(t *testing.T) {
	dataset := testDataset(131, 10)
	extra := testDataset(132, 3)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 1
		cfg.Shards = 1
		cfg.LazyReconcile = true
	})
	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(133)), dataset[1], 4)
	if _, err := c.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := c.WriteState(&state); err != nil {
		t.Fatal(err)
	}

	// Mutate past the written state: two additions, then reconcile the
	// resident entry (exact hit) so the next mutation's compaction drops
	// their records.
	for i := 0; i < 2; i++ {
		if _, err := c.AddGraph(extra[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGraph(extra[2]); err != nil {
		t.Fatal(err)
	}
	if c.Stats().LogRecordsDropped == 0 {
		t.Fatal("compaction never dropped the reconciled records; the regression scenario did not arm")
	}

	// The state predates the additions whose records were compacted away:
	// restoring it would stamp its entries with the current epoch and
	// silently skip those additions forever. The size check must refuse it.
	err := c.ReadState(bytes.NewReader(state.Bytes()))
	if err == nil {
		t.Fatal("ReadState accepted a state file from before compacted additions")
	}
	if !strings.Contains(err.Error(), "dataset") {
		t.Fatalf("refusal should blame the dataset size, got: %v", err)
	}

	// Same-size restores (removals only since the write) stay exact: the
	// current-epoch stamp skips nothing because nothing was added, and a
	// LATER addition is reconciled through the intact log tail.
	c2 := testCache(t, testDataset(131, 10), func(cfg *Config) {
		cfg.Window = 1
		cfg.Shards = 1
		cfg.LazyReconcile = true
	})
	if _, err := c2.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	var state2 bytes.Buffer
	if err := c2.WriteState(&state2); err != nil {
		t.Fatal(err)
	}
	if err := c2.RemoveGraph(0); err != nil {
		t.Fatal(err)
	}
	if err := c2.ReadState(bytes.NewReader(state2.Bytes())); err != nil {
		t.Fatal(err)
	}
	epoch := c2.Method().Epoch()
	for _, e := range c2.Entries() {
		if e.DatasetEpoch() != epoch {
			t.Fatalf("restored entry %d stamped epoch %d, want current %d", e.ID, e.DatasetEpoch(), epoch)
		}
	}
	if _, err := c2.AddGraph(dataset[1]); err != nil { // q embeds in it by construction
		t.Fatal(err)
	}
	res, err := c2.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if want := c2.Method().Run(q, ftv.Subgraph).Answers; !res.Answers.Equal(want) {
		t.Fatalf("restored entry diverges after post-restore addition: %v vs %v", res.Answers, want)
	}
}
