package core

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// TestConcurrentMixedTraffic hammers one cache from many goroutines with
// mixed traffic — Execute (both semantics, small capacity so evictions
// churn constantly), batch submission, stat/entry/byte reads and state
// snapshots — and then cross-checks every answer against the uncached
// method. Run under -race this is the kernel's data-race gauntlet: every
// lock transition in the sharded engine gets exercised while window turns
// and evictions rearrange the shards underfoot.
func TestConcurrentMixedTraffic(t *testing.T) {
	dataset := testDataset(71, 30)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 12 // tiny: force eviction churn
		cfg.Window = 4
		cfg.SelfCheck = false // checked explicitly below, off the hot path
	})

	w, err := gen.NewWorkload(rand.New(rand.NewSource(72)), dataset, gen.WorkloadConfig{
		Size: 400, Mixed: true, PoolSize: 40,
		ZipfS: 1.3, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 10
	type outcome struct {
		q   gen.Query
		res *Result
	}
	outcomes := make(chan outcome, len(w.Queries))
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(w.Queries); i += workers {
				q := w.Queries[i]
				res, err := c.Execute(q.G, q.Type)
				if err != nil {
					t.Errorf("worker %d query %d: %v", g, i, err)
					return
				}
				outcomes <- outcome{q, res}
				// Interleave reads with the query traffic.
				switch i % 5 {
				case 0:
					c.Len()
				case 1:
					c.Stats()
				case 2:
					for _, e := range c.Entries() {
						_ = e.Answers.Count()
					}
				case 3:
					c.Bytes()
				case 4:
					c.WindowLen()
				}
			}
		}(g)
	}
	// Two more goroutines stress the structural paths: state snapshots and
	// full snapshot/restore cycles racing the query traffic.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := c.WriteState(io.Discard); err != nil {
				t.Errorf("WriteState: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			var buf bytes.Buffer
			if err := c.WriteState(&buf); err != nil {
				t.Errorf("WriteState: %v", err)
				return
			}
			if err := c.ReadState(&buf); err != nil {
				t.Errorf("ReadState: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(outcomes)

	// Every concurrently produced answer set must equal the uncached
	// method's — concurrency must never cost exactness.
	checked := 0
	for o := range outcomes {
		base := c.Method().Run(o.q.G, o.q.Type)
		if !base.Answers.Equal(o.res.Answers) {
			t.Fatalf("concurrent answer diverges from base for %s query %v", o.q.Type, o.q.G)
		}
		checked++
	}
	if checked != len(w.Queries) {
		t.Fatalf("checked %d outcomes, want %d", checked, len(w.Queries))
	}
	snap := c.Stats()
	if snap.Queries != int64(len(w.Queries)) {
		t.Errorf("monitor queries = %d, want %d", snap.Queries, len(w.Queries))
	}
	if got := c.Len(); got > 12 {
		t.Errorf("capacity exceeded: %d entries resident", got)
	}
}

// TestConcurrentExecuteAll drives the batched worker-pool API concurrently
// from several submitting goroutines (each batch spawning its own pool) —
// the server's /api/query/batch shape.
func TestConcurrentExecuteAll(t *testing.T) {
	dataset := testDataset(81, 25)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 16
		cfg.Window = 4
		cfg.SelfCheck = false
	})
	w, err := gen.NewWorkload(rand.New(rand.NewSource(82)), dataset, gen.WorkloadConfig{
		Size: 60, Mixed: true, PoolSize: 20,
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = Request{Graph: q.G, Type: q.Type}
	}

	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs := c.ExecuteAll(reqs, 4)
			for i, o := range outs {
				if o.Err != nil {
					t.Errorf("batch query %d: %v", i, o.Err)
					return
				}
				base := c.Method().Run(reqs[i].Graph, reqs[i].Type)
				if !base.Answers.Equal(o.Result.Answers) {
					t.Errorf("batch query %d: answers diverge", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := c.Stats().Queries, int64(4*len(reqs)); got != want {
		t.Errorf("monitor queries = %d, want %d", got, want)
	}
}

// TestExecuteAllSequentialFallback pins the workers<2 path: sequential,
// in-order execution with positional outcomes.
func TestExecuteAllSequentialFallback(t *testing.T) {
	dataset := testDataset(91, 15)
	c := testCache(t, dataset, nil)
	reqs := []Request{
		{Graph: dataset[0], Type: ftv.Subgraph},
		{Graph: nil, Type: ftv.Subgraph}, // must fail positionally
		{Graph: dataset[1], Type: ftv.Supergraph},
	}
	outs := c.ExecuteAll(reqs, 1)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Errorf("valid queries errored: %v, %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil {
		t.Error("nil graph should error")
	}
	if outs[0].Result == nil || outs[2].Result == nil {
		t.Error("valid queries missing results")
	}
}
