package core

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// TestConcurrentMixedTraffic hammers one cache from many goroutines with
// mixed traffic — Execute (both semantics, small capacity so evictions
// churn constantly), batch submission, stat/entry/byte reads and state
// snapshots — and then cross-checks every answer against the uncached
// method. Run under -race this is the kernel's data-race gauntlet: every
// lock transition in the sharded engine gets exercised while window turns
// and evictions rearrange the shards underfoot.
func TestConcurrentMixedTraffic(t *testing.T) {
	dataset := testDataset(71, 30)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 12 // tiny: force eviction churn
		cfg.Window = 4
		cfg.SelfCheck = false // checked explicitly below, off the hot path
	})

	w, err := gen.NewWorkload(rand.New(rand.NewSource(72)), dataset, gen.WorkloadConfig{
		Size: 400, Mixed: true, PoolSize: 40,
		ZipfS: 1.3, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 10
	type outcome struct {
		q   gen.Query
		res *Result
	}
	outcomes := make(chan outcome, len(w.Queries))
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(w.Queries); i += workers {
				q := w.Queries[i]
				res, err := c.Execute(q.G, q.Type)
				if err != nil {
					t.Errorf("worker %d query %d: %v", g, i, err)
					return
				}
				outcomes <- outcome{q, res}
				// Interleave reads with the query traffic.
				switch i % 5 {
				case 0:
					c.Len()
				case 1:
					c.Stats()
				case 2:
					for _, e := range c.Entries() {
						_ = e.Answers().Count()
					}
				case 3:
					c.Bytes()
				case 4:
					c.WindowLen()
				}
			}
		}(g)
	}
	// Two more goroutines stress the structural paths: state snapshots and
	// full snapshot/restore cycles racing the query traffic.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := c.WriteState(io.Discard); err != nil {
				t.Errorf("WriteState: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			var buf bytes.Buffer
			if err := c.WriteState(&buf); err != nil {
				t.Errorf("WriteState: %v", err)
				return
			}
			if err := c.ReadState(&buf); err != nil {
				t.Errorf("ReadState: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(outcomes)

	// Every concurrently produced answer set must equal the uncached
	// method's — concurrency must never cost exactness.
	checked := 0
	for o := range outcomes {
		base := c.Method().Run(o.q.G, o.q.Type)
		if !base.Answers.Equal(o.res.Answers) {
			t.Fatalf("concurrent answer diverges from base for %s query %v", o.q.Type, o.q.G)
		}
		checked++
	}
	if checked != len(w.Queries) {
		t.Fatalf("checked %d outcomes, want %d", checked, len(w.Queries))
	}
	snap := c.Stats()
	if snap.Queries != int64(len(w.Queries)) {
		t.Errorf("monitor queries = %d, want %d", snap.Queries, len(w.Queries))
	}
	// Capacity plus the transient per-shard overshoot bound (a turning
	// shard evicts only its own residents; see Config.Capacity).
	if bound := 12 + c.Shards()*c.shardWindow; c.Len() >= bound {
		t.Errorf("capacity bound exceeded: %d entries resident, bound %d", c.Len(), bound)
	}
}

// TestConcurrentPerShardTurns is the decentralized Window Manager's race
// gauntlet: single-entry shard windows make EVERY miss a window turn, so
// with many goroutines spraying distinct queries across 8 shards, turns
// on different shards constantly overlap with each other (they serialize
// only on policyMu, never on each other's shard locks) and with queries
// reading the per-shard index slices mid-republish. Run under -race this
// exercises every lock transition of the per-shard engine; answers must
// stay exact throughout, and the turns must actually have been spread
// across shards.
func TestConcurrentPerShardTurns(t *testing.T) {
	dataset := testDataset(61, 30)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 10 // tiny: every turn also evicts
		cfg.Window = 8    // ceil(8/8) = 1: a turn per admitted miss
		cfg.Shards = 8
		cfg.SelfCheck = false // checked explicitly below, off the hot path
	})
	if c.shardWindow != 1 {
		t.Fatalf("shardWindow = %d, want 1", c.shardWindow)
	}

	w, err := gen.NewWorkload(rand.New(rand.NewSource(62)), dataset, gen.WorkloadConfig{
		Size: 500, Mixed: true, PoolSize: 120, // wide pool: misses dominate
		ZipfS: 1.1, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	type outcome struct {
		q   gen.Query
		res *Result
	}
	outcomes := make(chan outcome, len(w.Queries))
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(w.Queries); i += workers {
				q := w.Queries[i]
				res, err := c.Execute(q.G, q.Type)
				if err != nil {
					t.Errorf("worker %d query %d: %v", g, i, err)
					return
				}
				outcomes <- outcome{q, res}
				if i%7 == 0 {
					c.ShardStats() // read per-shard occupancy mid-churn
				}
			}
		}(g)
	}
	wg.Wait()
	close(outcomes)

	for o := range outcomes {
		base := c.Method().Run(o.q.G, o.q.Type)
		if !base.Answers.Equal(o.res.Answers) {
			t.Fatalf("concurrent answer diverges from base for %s query %v", o.q.Type, o.q.G)
		}
	}
	turned := 0
	var total int64
	for _, st := range c.ShardStats() {
		if st.Turns > 0 {
			turned++
		}
		total += st.Turns
	}
	if turned < 2 {
		t.Fatalf("only %d shard(s) ever turned: per-shard turns not exercised", turned)
	}
	if got := c.Stats().WindowTurns; got != total {
		t.Errorf("aggregate WindowTurns %d != sum of per-shard turns %d", got, total)
	}
	// Capacity plus the transient per-shard overshoot bound (a turning
	// shard evicts only its own residents; see Config.Capacity).
	if bound := 10 + c.Shards()*c.shardWindow; c.Len() >= bound {
		t.Errorf("capacity bound exceeded after drain: %d entries resident, bound %d", c.Len(), bound)
	}
}

// TestQueriesProceedUnderHeldPolicyMu pins the tentpole property of the
// per-shard admission engine: neither findExact nor admit takes any
// global mutex. The test grabs policyMu — the only cross-shard lock left
// on the query path — and proves fresh misses still flow end to end
// (stage 1 exact scan, filtering, hit detection over the published index,
// verification, admission into the shard window). Only hit crediting and
// window turns need policyMu, so the queries are distinct (no hits) and
// the windows stay under their turn threshold.
func TestQueriesProceedUnderHeldPolicyMu(t *testing.T) {
	dataset := testDataset(63, 20)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 64 // far above the 8 queries below: no turn needed
		cfg.Shards = 4
		cfg.SelfCheck = false
	})

	c.policyMu.Lock()
	defer c.policyMu.Unlock()

	done := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(64))
		for i := 0; i < 8; i++ {
			q := gen.ExtractConnectedSubgraph(rng, dataset[i], 3+i%4)
			if _, err := c.Execute(q, ftv.Subgraph); err != nil {
				done <- err
				return
			}
		}
		// Reads that must not need policyMu either.
		c.Len()
		c.Bytes()
		c.WindowLen()
		c.Stats()
		c.ShardStats()
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queries blocked while policyMu was held: a per-query path acquires the global mutex")
	}
	if got := c.WindowLen(); got != 8 {
		t.Errorf("staged %d entries, want 8", got)
	}
}

// TestConcurrentExecuteAll drives the batched worker-pool API concurrently
// from several submitting goroutines (each batch spawning its own pool) —
// the server's /api/query/batch shape.
func TestConcurrentExecuteAll(t *testing.T) {
	dataset := testDataset(81, 25)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 16
		cfg.Window = 4
		cfg.SelfCheck = false
	})
	w, err := gen.NewWorkload(rand.New(rand.NewSource(82)), dataset, gen.WorkloadConfig{
		Size: 60, Mixed: true, PoolSize: 20,
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = Request{Graph: q.G, Type: q.Type}
	}

	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs := c.ExecuteAll(reqs, 4)
			for i, o := range outs {
				if o.Err != nil {
					t.Errorf("batch query %d: %v", i, o.Err)
					return
				}
				base := c.Method().Run(reqs[i].Graph, reqs[i].Type)
				if !base.Answers.Equal(o.Result.Answers) {
					t.Errorf("batch query %d: answers diverge", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := c.Stats().Queries, int64(4*len(reqs)); got != want {
		t.Errorf("monitor queries = %d, want %d", got, want)
	}
}

// TestExecuteAllSequentialFallback pins the workers<2 path: sequential,
// in-order execution with positional outcomes.
func TestExecuteAllSequentialFallback(t *testing.T) {
	dataset := testDataset(91, 15)
	c := testCache(t, dataset, nil)
	reqs := []Request{
		{Graph: dataset[0], Type: ftv.Subgraph},
		{Graph: nil, Type: ftv.Subgraph}, // must fail positionally
		{Graph: dataset[1], Type: ftv.Supergraph},
	}
	outs := c.ExecuteAll(reqs, 1)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Errorf("valid queries errored: %v, %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil {
		t.Error("nil graph should error")
	}
	if outs[0].Result == nil || outs[2].Result == nil {
		t.Error("valid queries missing results")
	}
}
