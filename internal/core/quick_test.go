package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// Property: for arbitrary query sequences drawn from seeds, the cache's
// answers always equal the base method's, and the per-query ledger stays
// consistent. testing/quick drives the seed and knob space.
func TestQuickCacheEqualsBase(t *testing.T) {
	dataset := testDataset(61, 25)
	method := ftv.NewGGSXMethod(dataset, 3)

	f := func(seed int64, capacity, window uint8, zipfOn bool) bool {
		cfg := DefaultConfig()
		cfg.Capacity = 1 + int(capacity%12)
		cfg.Window = 1 + int(window%5)
		c, err := New(method, cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		wcfg := gen.WorkloadConfig{
			Size: 25, Type: ftv.Subgraph, PoolSize: 10,
			ChainFrac: 0.5, ChainLen: 3, MinEdges: 2, MaxEdges: 8,
		}
		if zipfOn {
			wcfg.ZipfS = 1.3
		}
		w, err := gen.NewWorkload(rng, dataset, wcfg)
		if err != nil {
			return false
		}
		for _, q := range w.Queries {
			res, err := c.Execute(q.G, q.Type)
			if err != nil {
				return false
			}
			if !res.Answers.Equal(method.Run(q.G, q.Type).Answers) {
				return false
			}
			if res.Tests > res.BaseCandidates || res.Tests != res.Candidates {
				return false
			}
			if res.Sure.IntersectionCount(res.Excluded) != 0 {
				return false
			}
		}
		// Per-shard turns evict only their own residents, so the count may
		// transiently overshoot Capacity by less than Shards×shardWindow
		// (see Config.Capacity); the bound below is the provable one.
		return c.Len() < cfg.Capacity+c.Shards()*c.shardWindow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReplacedContent returns exactly min(x, len) distinct in-range
// positions for every bundled policy and any utility configuration.
func TestQuickReplacedContentWellFormed(t *testing.T) {
	f := func(seeds []uint32, x uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 40 {
			seeds = seeds[:40]
		}
		entries := make([]*Entry, len(seeds))
		for i, s := range seeds {
			entries[i] = mkEntry(i, int64(s%97), int64(s%53), int64(s%7),
				float64(s%101), float64(s%1009))
		}
		want := int(x % 45)
		if want > len(entries) {
			want = len(entries)
		}
		for _, name := range PolicyNames() {
			p, err := NewPolicy(name)
			if err != nil {
				return false
			}
			got := p.ReplacedContent(entries, int(x%45))
			if len(got) != want && len(got) != len(entries) {
				// x ≥ len(entries) may return all positions.
				if !(int(x%45) >= len(entries) && len(got) == len(entries)) {
					return false
				}
			}
			seen := map[int]bool{}
			for _, pos := range got {
				if pos < 0 || pos >= len(entries) || seen[pos] {
					return false
				}
				seen[pos] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: feature-vector dominance is reflexive and transitive on
// random graphs, and a subgraph's vector is dominated by its supergraph's.
func TestQuickFeatureDominanceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gen.Molecule(r, gen.MoleculeConfig{MinV: 6, MaxV: 12, RingFrac: 0.1, MaxDegree: 4, Labels: 4})
		sub := gen.ExtractConnectedSubgraph(r, g, 2+r.Intn(4))
		subsub := gen.ExtractConnectedSubgraph(r, sub, 1+r.Intn(2))

		fg := pathFeatures(g, 2)
		fsub := pathFeatures(sub, 2)
		fss := pathFeatures(subsub, 2)
		// Reflexive.
		if !fg.dominatedBy(fg) {
			return false
		}
		// Chain: subsub ⊑ sub ⊑ g.
		if !fsub.dominatedBy(fg) || !fss.dominatedBy(fsub) {
			return false
		}
		// Transitivity consequence.
		return fss.dominatedBy(fg)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent clients: many goroutines issuing queries against one cache
// must all observe exact answers; internal serialization keeps the ledger
// coherent.
func TestConcurrentClients(t *testing.T) {
	dataset := testDataset(63, 30)
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.Window = 3
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const perClient = 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + k)))
			for i := 0; i < perClient; i++ {
				q := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 3+rng.Intn(5))
				res, err := c.Execute(q, ftv.Subgraph)
				if err != nil {
					errs <- err
					return
				}
				if !res.Answers.Equal(method.Run(q, ftv.Subgraph).Answers) {
					errs <- errMismatch{}
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Stats().Queries; got != clients*perClient {
		t.Errorf("ledger lost queries under concurrency: %d", got)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "concurrent answers diverged from base" }
