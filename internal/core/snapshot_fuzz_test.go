package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz target for the binary GCS3 snapshot reader. Like the v2
// text file, a snapshot is untrusted bytes on disk: the parser must never
// panic, must reject corruption all-or-nothing, and anything it accepts
// must satisfy the cache invariants and round-trip. The committed seed
// corpus under testdata/fuzz/FuzzReadSnapshot pins a valid snapshot plus
// the truncation/flip shapes TestV3CorruptionSweep covers; `make ci` runs
// a short -fuzz smoke pass on top of the regression replay.

// validFuzzSnapshot serializes the shared warmed fixture in the binary
// format — the well-formed corpus seed.
func validFuzzSnapshot(tb testing.TB) []byte {
	raw := validFuzzState(tb) // v2 text of the warmed fixture
	c := fuzzStateCache()
	if err := c.ReadState(bytes.NewReader(raw)); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteState(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadSnapshot(f *testing.F) {
	valid := validFuzzSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-body
	f.Add(valid[:v3HeaderLen])  // header only
	flipped := append([]byte(nil), valid...)
	flipped[v3HeaderLen+8] ^= 0x01 // one index bit
	f.Add(flipped)
	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[4:], 99)
	f.Add(badVersion)
	f.Add([]byte("GCS3"))                     // bare magic
	f.Add([]byte("GCS4junkjunkjunkjunkjunk")) // wrong magic falls through to v2

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzStateMu.Lock()
		defer fuzzStateMu.Unlock()
		c := fuzzStateCache()
		if err := c.ReadState(bytes.NewReader(data)); err != nil {
			if c.Len() != 0 || c.Bytes() != 0 {
				t.Fatalf("rejected restore left %d entries / %d bytes behind", c.Len(), c.Bytes())
			}
			return
		}
		if c.Len() > 6 {
			t.Fatalf("restore admitted %d entries past capacity 6", c.Len())
		}
		view := c.Method().View()
		for _, e := range c.Entries() {
			ans := e.Answers()
			if ans.Len() != view.Size() {
				t.Fatalf("entry %d answers sized %d, dataset %d", e.ID, ans.Len(), view.Size())
			}
			if !ans.SubsetOf(view.Live()) {
				t.Fatalf("entry %d answers a tombstoned id", e.ID)
			}
		}
		// Accepted snapshots round-trip through the binary writer.
		var buf bytes.Buffer
		if err := c.WriteState(&buf); err != nil {
			t.Fatalf("re-serializing an accepted snapshot: %v", err)
		}
		c2 := fuzzStateCache()
		if err := c2.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("roundtrip of an accepted snapshot was rejected: %v", err)
		}
		if c2.Len() != c.Len() {
			t.Fatalf("roundtrip entry count %d, want %d", c2.Len(), c.Len())
		}
	})
}
