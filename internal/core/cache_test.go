package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

func testDataset(seed int64, count int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	cfg := gen.MoleculeConfig{MinV: 10, MaxV: 20, RingFrac: 0.1, MaxDegree: 4, Labels: 6}
	return gen.Molecules(rng, count, cfg)
}

func testCache(t *testing.T, dataset []*graph.Graph, mutate func(*Config)) *Cache {
	t.Helper()
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.SelfCheck = true
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	dataset := testDataset(1, 5)
	method := ftv.NewGGSXMethod(dataset, 2)
	bad := []Config{
		{Capacity: 0, Window: 1, DecayFactor: 1},
		{Capacity: 1, Window: 0, DecayFactor: 1},
		{Capacity: 1, Window: 1, DecayFactor: 0},
		{Capacity: 1, Window: 1, DecayFactor: 1.5},
		{Capacity: 1, Window: 1, DecayFactor: 1, MaxSubHits: -1},
		{Capacity: 1, Window: 1, DecayFactor: 1, FeatureLen: -1},
	}
	for i, cfg := range bad {
		if _, err := New(method, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil method should be rejected")
	}
}

func TestExecuteNilQuery(t *testing.T) {
	c := testCache(t, testDataset(2, 5), nil)
	if _, err := c.Execute(nil, ftv.Subgraph); err == nil {
		t.Error("nil query should error")
	}
}

// The central correctness property: cache answers must equal base answers
// for every query of a realistic mixed workload (SelfCheck panics inside
// Execute on violation; we assert explicitly too).
func TestCacheCorrectnessSubgraphWorkload(t *testing.T) {
	dataset := testDataset(3, 40)
	c := testCache(t, dataset, nil)
	rng := rand.New(rand.NewSource(4))
	w, err := gen.NewWorkload(rng, dataset, gen.WorkloadConfig{
		Size: 120, Type: ftv.Subgraph, PoolSize: 25,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		res, err := c.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		base := c.Method().Run(q.G, q.Type)
		if !res.Answers.Equal(base.Answers) {
			t.Fatalf("query %d: answers diverge", i)
		}
		assertResultInvariants(t, res)
	}
	snap := c.Stats()
	if snap.Queries != 120 {
		t.Errorf("monitor queries = %d", snap.Queries)
	}
	if snap.ExactHits == 0 {
		t.Error("Zipf workload should produce exact hits")
	}
	if snap.SubHits+snap.SuperHits == 0 {
		t.Error("chained workload should produce sub/super hits")
	}
	if snap.TestsSaved == 0 {
		t.Error("cache saved no tests")
	}
	if snap.TestSpeedup() <= 1 {
		t.Errorf("test speedup = %v, want > 1", snap.TestSpeedup())
	}
}

func TestCacheCorrectnessSupergraphWorkload(t *testing.T) {
	dataset := testDataset(5, 30)
	c := testCache(t, dataset, nil)
	rng := rand.New(rand.NewSource(6))
	w, err := gen.NewWorkload(rng, dataset, gen.WorkloadConfig{
		Size: 80, Type: ftv.Supergraph, PoolSize: 20,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		res, err := c.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		base := c.Method().Run(q.G, q.Type)
		if !res.Answers.Equal(base.Answers) {
			t.Fatalf("query %d: answers diverge", i)
		}
		assertResultInvariants(t, res)
	}
	if snap := c.Stats(); snap.SubHits+snap.SuperHits+snap.ExactHits == 0 {
		t.Error("no hits on containment-chained supergraph workload")
	}
}

func TestCacheCorrectnessMixedWorkload(t *testing.T) {
	dataset := testDataset(7, 30)
	c := testCache(t, dataset, nil)
	rng := rand.New(rand.NewSource(8))
	w, err := gen.NewWorkload(rng, dataset, gen.WorkloadConfig{
		Size: 80, Mixed: true, PoolSize: 20,
		ZipfS: 1.3, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		if _, err := c.Execute(q.G, q.Type); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func assertResultInvariants(t *testing.T, res *Result) {
	t.Helper()
	// Sure ⊆ Answers; Survivors ⊆ Answers; Sure ∪ Survivors == Answers.
	if !res.Sure.SubsetOf(res.Answers) {
		t.Fatal("Sure ⊄ Answers")
	}
	if !res.Survivors.SubsetOf(res.Answers) {
		t.Fatal("Survivors ⊄ Answers")
	}
	u := res.Sure.Clone()
	u.Or(res.Survivors)
	if !u.Equal(res.Answers) {
		t.Fatal("Sure ∪ Survivors != Answers")
	}
	// Excluded graphs must not be answers.
	if res.Excluded.IntersectionCount(res.Answers) != 0 {
		t.Fatal("Excluded ∩ Answers non-empty")
	}
	if res.Tests > res.BaseCandidates {
		t.Fatalf("tests %d exceed base candidates %d", res.Tests, res.BaseCandidates)
	}
	if res.Tests != res.Candidates {
		t.Fatalf("tests %d != candidates %d", res.Tests, res.Candidates)
	}
	if res.SavedTests() != res.BaseCandidates-res.Tests {
		t.Fatal("SavedTests inconsistent")
	}
	if res.TestSpeedup() < 1 && res.Tests > 0 {
		t.Fatalf("speedup %v < 1", res.TestSpeedup())
	}
}

func TestExactHitAfterAdmission(t *testing.T) {
	dataset := testDataset(9, 25)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 2 })
	rng := rand.New(rand.NewSource(10))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 5)

	res1, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if res1.ExactHit {
		t.Fatal("first execution cannot be a hit")
	}
	// Resubmit the identical query: the entry sits in the window (size-2
	// window, 1 pending) and must be found there.
	res2, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit {
		t.Fatal("resubmission should be an exact hit")
	}
	if res2.Tests != 0 {
		t.Errorf("exact hit ran %d tests, want 0", res2.Tests)
	}
	if !res2.Answers.Equal(res1.Answers) {
		t.Error("exact hit answers differ")
	}
	if res2.BaseCandidates != res1.BaseCandidates {
		t.Errorf("exact hit base candidates %d, want %d", res2.BaseCandidates, res1.BaseCandidates)
	}
	// A permuted copy of q must also hit (isomorphism, not equality).
	perm := rng.Perm(q.N())
	labels := make([]graph.Label, q.N())
	for old, nw := range perm {
		labels[nw] = q.Label(old)
	}
	var edges [][2]int
	for _, e := range q.Edges() {
		edges = append(edges, [2]int{perm[e[0]], perm[e[1]]})
	}
	qp := graph.MustNew(labels, edges)
	res3, err := c.Execute(qp, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.ExactHit {
		t.Error("permuted resubmission should be an exact hit")
	}
	// Exact hits of the wrong type must not fire.
	res4, err := c.Execute(q, ftv.Supergraph)
	if err != nil {
		t.Fatal(err)
	}
	if res4.ExactHit {
		t.Error("type-mismatched query must not exact-hit")
	}
}

func TestSubCaseHitDeliversSure(t *testing.T) {
	dataset := testDataset(11, 30)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 }) // admit immediately
	rng := rand.New(rand.NewSource(12))

	// Execute a big query h; then a subquery q ⊑ h. For subgraph queries
	// the sub-case hit delivers S = A(h).
	h := gen.ExtractConnectedSubgraph(rng, dataset[0], 10)
	resH, err := c.Execute(h, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.ExtractConnectedSubgraph(rng, h, 5)
	resQ, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if resQ.ExactHit {
		t.Skip("q happened to be isomorphic to h; seed-dependent, skip")
	}
	if resQ.SubHitCount() == 0 {
		t.Fatal("expected a sub-case hit")
	}
	if !resH.Answers.SubsetOf(resQ.Sure) {
		t.Error("S should contain A(h)")
	}
	if !resQ.Sure.SubsetOf(resQ.Answers) {
		t.Error("S must be sound")
	}
}

func TestSuperCaseHitPrunes(t *testing.T) {
	dataset := testDataset(13, 30)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	rng := rand.New(rand.NewSource(14))

	// Execute a small query h; then a supergraph q ⊒ h built by extracting
	// a larger pattern that contains h's edges. Use nested extraction:
	// h ⊑ q by construction when h is extracted from q.
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 10)
	h := gen.ExtractConnectedSubgraph(rng, q, 5)

	resH, err := c.Execute(h, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	resQ, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if resQ.ExactHit {
		t.Skip("h isomorphic to q; seed-dependent, skip")
	}
	if resQ.SuperHitCount() == 0 {
		t.Fatal("expected a super-case hit")
	}
	// Candidates must be within A(h); excluded = C_M \ A(h) non-answers.
	if resQ.Excluded.IntersectionCount(resQ.Answers) != 0 {
		t.Error("excluded graphs leaked into answers")
	}
	// Everything excluded must be outside A(h).
	if resQ.Excluded.IntersectionCount(resH.Answers) != 0 {
		t.Error("exclusions must come from outside A(h)")
	}
}

func TestWindowAdmissionBoundary(t *testing.T) {
	dataset := testDataset(15, 20)
	// One shard: its admission window IS the configured W, so the classic
	// boundary semantics (stage W-1, admit all at W) hold exactly. At
	// higher shard counts the default engine splits W across the shards.
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 5; cfg.Shards = 1 })
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 4; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i], 4+i)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("entries admitted before window boundary: %d", c.Len())
	}
	if c.WindowLen() != 4 {
		t.Fatalf("window length = %d, want 4", c.WindowLen())
	}
	q := gen.ExtractConnectedSubgraph(rng, dataset[10], 8)
	if _, err := c.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 || c.WindowLen() != 0 {
		t.Fatalf("after boundary: len=%d window=%d, want 5/0", c.Len(), c.WindowLen())
	}
	if snap := c.Stats(); snap.WindowTurns != 1 || snap.Admissions != 5 {
		t.Errorf("monitor: %+v", snap)
	}
}

// The atomic residency account must track the true resident entry/byte
// totals exactly through per-shard turns — including turns whose second
// eviction pass or memory-budget loop runs against a stale ranking view
// (regression: stale victims once double-decremented the account), and
// through warm-cache state restores (regression: ReadState once cleared
// the shards without resetting the account, double-counting forever).
func TestResidencyAccountingStaysExact(t *testing.T) {
	dataset := testDataset(23, 25)
	check := func(c *Cache, at string) {
		t.Helper()
		if got, want := int(c.res.entries.Load()), c.Len(); got != want {
			t.Fatalf("%s: residency account says %d entries, %d resident", at, got, want)
		}
		entries, memBytes := shardWalk(c)
		if entries != c.Len() {
			t.Fatalf("%s: shard walk %d entries, Len() %d", at, entries, c.Len())
		}
		if got := int(c.res.bytes.Load()); got != memBytes {
			t.Fatalf("%s: residency account says %d bytes, shard walk %d", at, got, memBytes)
		}
		if got, want := c.Bytes(), memBytes+internWalk(c); got != want {
			t.Fatalf("%s: Bytes() %d, shard walk + pool %d", at, got, want)
		}
	}
	for _, shards := range []int{1, 4, 8} {
		c := testCache(t, dataset, func(cfg *Config) {
			cfg.Capacity = 3 // tiny: every turn double-evicts
			cfg.Window = 8
			cfg.Shards = shards
			cfg.SelfCheck = false
		})
		rng := rand.New(rand.NewSource(24))
		for i := 0; i < 30; i++ {
			q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
			if _, err := c.Execute(q, ftv.Subgraph); err != nil {
				t.Fatal(err)
			}
			check(c, fmt.Sprintf("shards=%d query %d", shards, i))
		}
		// Warm-cache restore: the account must be rebuilt, not added to.
		var buf bytes.Buffer
		if err := c.WriteState(&buf); err != nil {
			t.Fatal(err)
		}
		if err := c.ReadState(&buf); err != nil {
			t.Fatal(err)
		}
		check(c, fmt.Sprintf("shards=%d after warm restore", shards))
		// And the account must still steer eviction correctly afterwards.
		for i := 0; i < 10; i++ {
			q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 4+i%4)
			if _, err := c.Execute(q, ftv.Subgraph); err != nil {
				t.Fatal(err)
			}
			check(c, fmt.Sprintf("shards=%d post-restore query %d", shards, i))
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	dataset := testDataset(17, 25)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 6
		cfg.Window = 3
		cfg.Policy = NewLRU()
	})
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 12; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%6)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 6 {
		t.Fatalf("cache size %d exceeds capacity 6", c.Len())
	}
	if snap := c.Stats(); snap.Evictions == 0 {
		t.Error("expected evictions")
	}
}

func TestMemoryBudgetEviction(t *testing.T) {
	dataset := testDataset(19, 20)
	// One shard: the strict budget bound then holds after every turn.
	// With more shards the budget is still global, but a turning shard
	// evicts only its own residents (keeping at least one), so the bound
	// is enforced only as the busy shards turn.
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 100
		cfg.Window = 2
		cfg.MemoryBudget = 4096
		cfg.Shards = 1
	})
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 16; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 4+i%5)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if c.Bytes() > 4096 {
		t.Errorf("cache bytes %d exceed budget 4096", c.Bytes())
	}
	if c.Len() == 0 {
		t.Error("budget eviction should keep at least one entry")
	}
}

// A hostile custom policy returning garbage must not corrupt the cache.
type hostilePolicy struct{}

func (hostilePolicy) Name() string                 { return "hostile" }
func (hostilePolicy) UpdateCacheStaInfo(*HitEvent) {}
func (hostilePolicy) OnWindowTurn()                {}
func (hostilePolicy) ReplacedContent(entries []*Entry, x int) []int {
	return []int{-5, 10000, 0, 0, 0} // out of range + duplicates
}

func TestHostilePolicySanitized(t *testing.T) {
	dataset := testDataset(21, 20)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 4
		cfg.Window = 2
		cfg.Policy = hostilePolicy{}
	})
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 12; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 4 {
		t.Fatalf("hostile policy broke capacity: %d", c.Len())
	}
}

func TestParallelVerificationMatchesSequential(t *testing.T) {
	dataset := testDataset(23, 40)
	seqC := testCache(t, dataset, func(cfg *Config) { cfg.VerifyWorkers = 1 })
	parC := testCache(t, dataset, func(cfg *Config) { cfg.VerifyWorkers = 4 })
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 30; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%8)
		a, err := seqC.Execute(q, ftv.Subgraph)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parC.Execute(q, ftv.Subgraph)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Answers.Equal(b.Answers) {
			t.Fatalf("query %d: parallel answers diverge", i)
		}
	}
}

func TestMonitorLedgerConsistency(t *testing.T) {
	dataset := testDataset(25, 30)
	c := testCache(t, dataset, nil)
	rng := rand.New(rand.NewSource(26))
	var wantExecuted, wantSaved int64
	for i := 0; i < 40; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%7)
		res, err := c.Execute(q, ftv.Subgraph)
		if err != nil {
			t.Fatal(err)
		}
		wantExecuted += int64(res.Tests)
		wantSaved += int64(res.SavedTests())
	}
	snap := c.Stats()
	if snap.TestsExecuted != wantExecuted {
		t.Errorf("executed ledger %d != %d", snap.TestsExecuted, wantExecuted)
	}
	if snap.TestsSaved != wantSaved {
		t.Errorf("saved ledger %d != %d", snap.TestsSaved, wantSaved)
	}
}

func TestHitBudgetsHonored(t *testing.T) {
	dataset := testDataset(27, 30)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 1
		cfg.MaxSubHits = 1
		cfg.MaxSuperHits = 1
	})
	rng := rand.New(rand.NewSource(28))
	// Build a family of nested patterns so many hits are available.
	big := gen.ExtractConnectedSubgraph(rng, dataset[0], 12)
	for i := 0; i < 6; i++ {
		mid := gen.ExtractConnectedSubgraph(rng, big, 6+i)
		if _, err := c.Execute(mid, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Execute(gen.ExtractConnectedSubgraph(rng, big, 8), ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubHitCount() > 1 || res.SuperHitCount() > 1 {
		t.Errorf("hit budgets exceeded: sub=%d super=%d", res.SubHitCount(), res.SuperHitCount())
	}
}

func TestZeroHitBudgetsDisableHits(t *testing.T) {
	dataset := testDataset(29, 20)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 1
		cfg.MaxSubHits = 0
		cfg.MaxSuperHits = 0
	})
	rng := rand.New(rand.NewSource(30))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 8)
	if _, err := c.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(gen.ExtractConnectedSubgraph(rng, q, 4), ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if res.SubHitCount()+res.SuperHitCount() != 0 {
		t.Error("hits detected despite zero budgets")
	}
	// Exact matches still work (separate mechanism).
	resExact, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !resExact.ExactHit {
		t.Error("exact hit should survive zero sub/super budgets")
	}
}

func TestEntriesSnapshotIsolated(t *testing.T) {
	dataset := testDataset(31, 15)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 3; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i], 4)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	es := c.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d", len(es))
	}
	es[0] = nil // mutating the copy must not affect the cache
	if c.Entries()[0] == nil {
		t.Error("Entries returned internal slice")
	}
}

func TestResultOwnsItsBitsets(t *testing.T) {
	dataset := testDataset(33, 15)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	rng := rand.New(rand.NewSource(34))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 5)
	res1, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	res1.Answers.Clear() // caller mutation
	res2, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit {
		t.Fatal("want exact hit")
	}
	if res2.Answers.Empty() && !res1.Answers.Empty() {
		t.Error("cached answers were corrupted by caller mutation")
	}
	base := c.Method().Run(q, ftv.Subgraph)
	if !res2.Answers.Equal(base.Answers) {
		t.Error("cached answers corrupted")
	}
}

func TestDifferentPoliciesEvictDifferently(t *testing.T) {
	// The Figure 2(c) shape: run one workload under each policy and
	// compare the surviving entry sets; at least one pair must differ.
	dataset := testDataset(35, 30)
	run := func(p Policy) map[graph.Fingerprint]bool {
		// One shard: the policy then ranks the full resident set at each
		// turn — the canonical Figure 2(c) comparison. With more shards
		// victims are ranked within the turning shard only, which blurs
		// the inter-policy differences this test asserts.
		c := testCache(t, dataset, func(cfg *Config) {
			cfg.Capacity = 8
			cfg.Window = 4
			cfg.Policy = p
			cfg.Shards = 1
		})
		rng := rand.New(rand.NewSource(36)) // same workload for all policies
		w, err := gen.NewWorkload(rng, dataset, gen.WorkloadConfig{
			Size: 60, Type: ftv.Subgraph, PoolSize: 30,
			ZipfS: 1.3, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range w.Queries {
			if _, err := c.Execute(q.G, q.Type); err != nil {
				t.Fatal(err)
			}
		}
		out := map[graph.Fingerprint]bool{}
		for _, e := range c.Entries() {
			out[e.Fingerprint] = true
		}
		return out
	}
	sets := map[string]map[graph.Fingerprint]bool{
		"lru": run(NewLRU()),
		"pop": run(NewPOP()),
		"pin": run(NewPIN()),
		"hd":  run(NewHD()),
	}
	allEqual := true
	var ref map[graph.Fingerprint]bool
	for _, s := range sets {
		if ref == nil {
			ref = s
			continue
		}
		if len(s) != len(ref) {
			allEqual = false
			break
		}
		for fp := range s {
			if !ref[fp] {
				allEqual = false
			}
		}
	}
	if allEqual {
		t.Error("all policies evicted identically on a differentiating workload")
	}
}

func TestEmptyAnswerQuery(t *testing.T) {
	dataset := testDataset(37, 15)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	// A pattern with labels far outside the alphabet: no answers anywhere.
	q := graph.MustNew([]graph.Label{900, 901}, [][2]int{{0, 1}})
	res, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Empty() {
		t.Error("impossible pattern should have no answers")
	}
	// Resubmission exact-hits with zero work.
	res2, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit || !res2.Answers.Empty() {
		t.Error("empty-answer query should still be cached and hit")
	}
}

func TestSupergraphChainHits(t *testing.T) {
	dataset := testDataset(39, 20)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	rng := rand.New(rand.NewSource(40))
	sampler := gen.NewAIDSLabelSampler(6)

	// Supergraph chain: q1 ⊑ q2; supergraph query q2 first (cached), then
	// q1 ⊑ q2 means for q1 the cached q2 is a SUPERgraph: A(q1) ⊆ A(q2):
	// sub-case hit prunes. Reverse order gives super-case answers.
	q1 := gen.Augment(rng, dataset[0], 1, 1, sampler)
	q2 := gen.Augment(rng, q1, 2, 1, sampler)

	if _, err := c.Execute(q2, ftv.Supergraph); err != nil {
		t.Fatal(err)
	}
	res1, err := c.Execute(q1, ftv.Supergraph)
	if err != nil {
		t.Fatal(err)
	}
	if res1.SubHitCount() == 0 {
		t.Error("expected sub-case (pruning) hit for nested supergraph query")
	}

	// Fresh cache, reversed order: small first, then big → super-case hit
	// delivering sure answers.
	c2 := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	resSmall, err := c2.Execute(q1, ftv.Supergraph)
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := c2.Execute(q2, ftv.Supergraph)
	if err != nil {
		t.Fatal(err)
	}
	if resBig.SuperHitCount() == 0 {
		t.Error("expected super-case (answer) hit")
	}
	if !resSmall.Answers.SubsetOf(resBig.Sure) {
		t.Error("super-case hit should deliver A(h) as sure answers")
	}
}

func TestBytesAccounting(t *testing.T) {
	dataset := testDataset(41, 15)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1; cfg.Capacity = 3 })
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 4+i%4)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	// Recompute the ledger from scratch: static bytes per entry plus each
	// distinct answer set once — interning can collapse equal sets across
	// entries, so summing Entry.Bytes would overcount the shared ones.
	want := 0
	seen := make(map[*bitset.Set]bool)
	for _, e := range c.Entries() {
		a := e.Answers()
		want += e.Bytes() - a.Bytes()
		if !seen[a] {
			seen[a] = true
			want += a.Bytes()
		}
	}
	if got := c.Bytes(); got != want {
		t.Errorf("bytes ledger %d != recomputed %d", got, want)
	}
}
