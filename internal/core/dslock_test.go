package core

import (
	"sync"
	"testing"
)

// TestDsLockExclusion hammers the striped dataset lock with concurrent
// readers and writers and asserts the RW invariants: readers never
// observe a half-applied write, writers never run concurrently. The two
// plain (non-atomic) payload variables also make the -race run verify
// the lock's happens-before edges.
func TestDsLockExclusion(t *testing.T) {
	var l dsLock
	var a, b int // writer keeps a == b under the write lock

	const (
		writers = 4
		readers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Lock()
				a++
				b++
				l.Unlock()
			}
		}()
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tok := l.RLock()
				if a != b {
					select {
					case errs <- "reader observed torn write":
					default:
					}
				}
				l.RUnlock(tok)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if want := writers * rounds; a != want || b != want {
		t.Fatalf("lost writer updates: a=%d b=%d want %d", a, b, want)
	}
}

// TestDsLockReaderFallback drives a reader through the fallback path by
// holding the write side: the reader must block until the writer
// releases, then complete.
func TestDsLockReaderFallback(t *testing.T) {
	var l dsLock
	var v int
	l.Lock()
	v = 1
	done := make(chan struct{})
	go func() {
		tok := l.RLock()
		if v != 2 {
			t.Errorf("reader ran before writer finished: v=%d", v)
		}
		l.RUnlock(tok)
		close(done)
	}()
	// The reader must be excluded while the writer holds the lock; give
	// it a moment to reach RLock, then finish the write.
	for i := 0; i < 100; i++ {
		select {
		case <-done:
			t.Fatal("reader completed while writer held the lock")
		default:
		}
	}
	v = 2
	l.Unlock()
	<-done
}

// TestDsLockTokenRoundTrip checks that fast-path tokens are valid slot
// indices and the slot counters drain back to zero.
func TestDsLockTokenRoundTrip(t *testing.T) {
	var l dsLock
	tok := l.RLock()
	if tok < 0 || tok >= dsLockSlots {
		t.Fatalf("uncontended RLock must take the fast path, got token %d", tok)
	}
	l.RUnlock(tok)
	for i := range l.slots {
		if n := l.slots[i].n.Load(); n != 0 {
			t.Fatalf("slot %d counter = %d after release", i, n)
		}
	}
	// With a writer pending, a new reader must use the fallback (-1).
	l.Lock()
	go func() { l.Unlock() }()
	tok2 := l.RLock()
	l.RUnlock(tok2)
}
