package core

import (
	"testing"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// TestInternPoolRefcount exercises the pool's lifecycle directly: equal
// sets collapse onto one canonical charged once, references count down to
// removal, and nil/unknown releases can never unbalance the account.
func TestInternPoolRefcount(t *testing.T) {
	p := newInternPool()
	mk := func(bits ...int) *bitset.Set {
		s := bitset.New(100)
		for _, b := range bits {
			s.Add(b)
		}
		s.Compact()
		return s
	}
	a, b, other := mk(3, 40), mk(3, 40), mk(7)

	if got := p.acquire(a); got != a {
		t.Fatalf("first acquire returned %p, want the set itself %p", got, a)
	}
	if got := p.acquire(b); got != a {
		t.Fatal("equal-content acquire did not collapse onto the pooled canonical")
	}
	if h, m := p.hits.Load(), p.misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, m)
	}
	if got := int(p.bytes.Load()); got != a.Bytes() {
		t.Fatalf("shared set charged %d bytes, want once = %d", got, a.Bytes())
	}
	if got := p.acquire(other); got != other {
		t.Fatal("distinct set interned onto an unequal canonical")
	}
	if got := p.distinctSets(); got != 2 {
		t.Fatalf("distinctSets = %d, want 2", got)
	}

	p.release(a) // refs 2→1: stays pooled
	if got := p.distinctSets(); got != 2 {
		t.Fatalf("released to 1 ref but distinctSets = %d", got)
	}
	p.release(a) // refs 1→0: evicted from the pool
	if got := p.distinctSets(); got != 1 {
		t.Fatalf("last release left distinctSets = %d, want 1", got)
	}
	if got := int(p.bytes.Load()); got != other.Bytes() {
		t.Fatalf("account %d bytes after last release, want %d", got, other.Bytes())
	}
	p.release(nil) // no-op
	p.release(a)   // unknown pointer: no-op
	if got := int(p.bytes.Load()); got != other.Bytes() {
		t.Fatal("nil/unknown release moved the byte account")
	}
	p.release(other)
	if p.distinctSets() != 0 || p.bytes.Load() != 0 {
		t.Fatalf("drained pool holds %d sets / %d bytes", p.distinctSets(), p.bytes.Load())
	}
}

// TestCacheAnswerInterning drives interning end to end: two structurally
// different queries with identical (empty) answer sets must end up
// publishing ONE shared canonical set, visible in the entries, the stats
// and the byte accounting.
func TestCacheAnswerInterning(t *testing.T) {
	dataset := testDataset(91, 12)
	c := testCache(t, dataset, func(cfg *Config) { cfg.Window = 1 })
	// Labels 50+ never occur in the molecule dataset (Labels: 6), so both
	// queries match nothing — equal answer sets from unequal graphs.
	q1 := graph.NewBuilder(2).SetLabels([]graph.Label{50, 51}).AddEdge(0, 1).MustBuild()
	q2 := graph.NewBuilder(3).SetLabels([]graph.Label{50, 51, 52}).
		AddEdge(0, 1).AddEdge(1, 2).MustBuild()
	for _, q := range []*graph.Graph{q1, q2} {
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	entries := c.Entries()
	if len(entries) != 2 {
		t.Fatalf("admitted %d entries, want 2", len(entries))
	}
	if entries[0].Answers() != entries[1].Answers() {
		t.Fatal("equal answer sets were not interned onto one canonical")
	}
	snap := c.Stats()
	if snap.InternHits == 0 {
		t.Fatal("no intern hit recorded for the shared set")
	}
	if snap.AnswerBytes != int64(entries[0].Answers().Bytes()) {
		t.Fatalf("AnswerBytes %d, want the one canonical's %d",
			snap.AnswerBytes, entries[0].Answers().Bytes())
	}
	// The ledger must charge the shared set once: Bytes() is strictly less
	// than the sum of standalone entry footprints.
	sum := 0
	for _, e := range entries {
		sum += e.Bytes()
	}
	if got := c.Bytes(); got >= sum {
		t.Fatalf("Bytes() %d did not dedupe the shared set (Σ standalone = %d)", got, sum)
	}
}
