package core

import (
	"time"

	"graphcache/internal/bitset"
)

// HitRef reports one cache hit that contributed to a query, in the order
// hits were applied.
type HitRef struct {
	// EntryID identifies the cached query.
	EntryID int
	// Kind is exact, sub or super.
	Kind HitKind
	// SavedTests is this hit's individually credited savings.
	SavedTests int
}

// Result reports one cached query execution — the quantities The Query
// Journey visualizes (Figure 3): C_M, H/H', S, S', C, R and A.
//
// The Result owns its bitsets; callers may mutate them freely — the cache
// retains no reference to them. Two fields that are mathematically equal
// may however alias the same set: on an exact hit Answers and Sure share
// one set (A = S), and on a miss with no answer-delivering hit Answers
// and Survivors share one (A = R). Callers that mutate one field must not
// assume the provably-equal field is an independent copy.
type Result struct {
	// Answers is the exact answer set A = R ∪ S (Figure 3(h)).
	Answers *bitset.Set
	// BaseCandidates is |C_M|, Method M's candidate count (Figure 3(b)) —
	// the number of sub-iso tests the base method would run.
	BaseCandidates int
	// Candidates is |C| after cache pruning (Figure 3(f)).
	Candidates int
	// Tests is the number of dataset sub-iso tests actually executed
	// (equals Candidates unless the query was an exact hit).
	Tests int
	// Sure is S: graphs known to be answers without testing (Figure 3(c)).
	Sure *bitset.Set
	// Excluded is S′: graphs known to be non-answers (Figure 3(d)).
	Excluded *bitset.Set
	// Survivors is R: candidates that passed verification (Figure 3(g)).
	Survivors *bitset.Set
	// Hits lists contributing cache hits (H and H′, Figure 3(a)/(e)).
	Hits []HitRef
	// ExactHit is true when the query was answered purely from cache.
	ExactHit bool

	// FilterTime, HitTime and VerifyTime split the query's processing
	// cost: Method M filtering, cache-hit detection, verification.
	FilterTime time.Duration
	HitTime    time.Duration
	VerifyTime time.Duration
}

// SavedTests returns |C_M| − Tests, the dataset sub-iso tests the cache
// avoided for this query.
func (r *Result) SavedTests() int { return r.BaseCandidates - r.Tests }

// TestSpeedup returns the per-query speedup in test numbers, the figure
// The Query Journey reports (75/43 = 1.74 in the paper's example).
// Queries with zero executed tests report base+1 to stay finite.
func (r *Result) TestSpeedup() float64 {
	if r.Tests == 0 {
		return float64(r.BaseCandidates + 1)
	}
	return float64(r.BaseCandidates) / float64(r.Tests)
}

// TotalTime sums the three processing stages.
func (r *Result) TotalTime() time.Duration {
	return r.FilterTime + r.HitTime + r.VerifyTime
}

// SubHitCount and SuperHitCount count contributions by kind.
func (r *Result) SubHitCount() int {
	n := 0
	for _, h := range r.Hits {
		if h.Kind == SubHit {
			n++
		}
	}
	return n
}

// SuperHitCount counts super-case contributions.
func (r *Result) SuperHitCount() int {
	n := 0
	for _, h := range r.Hits {
		if h.Kind == SuperHit {
			n++
		}
	}
	return n
}
