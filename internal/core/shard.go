package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"graphcache/internal/graph"
)

// DefaultShards is the shard count selected when Config.Shards is zero.
// Four shards balance the two forces the per-shard window engine trades
// off: more shards shrink lock contention, but they also shrink each
// shard's admission window and eviction victim pool, degrading
// replacement quality toward per-shard FIFO (a 50-entry cache split 16
// ways leaves the policy ~3 candidates to rank). Per-query critical
// sections are tiny — an append and a map-lookup copy — so four stripes
// comfortably serve the 8-worker benchmarks; raise Config.Shards on
// machines with more cores than that.
const DefaultShards = 4

// residency is the cache-wide resident-entry account: entry and byte
// counts maintained atomically by every shard insert/remove, so a turning
// shard can enforce the GLOBAL capacity and memory budget while holding
// only its own lock. Turns serialize on policyMu — the only context that
// admits or evicts — so the counts a turn reads are exact, not racy
// approximations. bytes covers the entries' static footprints only;
// answer-set bytes live in the intern pool's account, charged once per
// canonical set (Cache.Bytes sums the two).
type residency struct {
	entries atomic.Int64
	bytes   atomic.Int64
}

// shard is one lock-striped partition of the admitted entries. Entries are
// assigned to shards by graph fingerprint, so the exact-match fast path
// touches exactly one shard. Within a shard, entries is kept sorted by
// ascending ID (admission order) — the invariant that keeps candidate
// enumeration, the feature-index merge and replacement-policy input
// deterministic at any shard count.
//
// Each shard also owns its own admission window (the per-shard Window
// Manager): executed queries are staged in window under mu and admitted
// by turnShard when it fills. Capacity stays global — the resident
// account tells a turning shard how far over budget the whole cache is,
// and it evicts from its own residents to pay the excess down — so
// capacity flows to the shards that actually receive traffic instead of
// being split into fixed quotas. With Config.SharedWindow the per-shard
// window sits idle and the Cache-level shared window is used instead.
type shard struct {
	// mu guards entries/byFP/memBytes/window. Innermost rung of the
	// hierarchy; every shard lock shares the rank, and lockAll's
	// index-ordered sweep is the only multi-shard acquisition.
	//gclint:lock shard
	mu       sync.RWMutex
	entries  []*Entry
	byFP     map[graph.Fingerprint][]*Entry
	memBytes int

	// res is the cache-wide resident account, shared by every shard.
	res *residency

	// pool is the cache-wide answer-set intern pool, shared by every
	// shard: insertLocked acquires a canonical set for each admitted
	// entry, removeLocked releases it. Its own leaf mutex synchronizes
	// cross-shard acquire/release under any shard lock.
	pool *internPool

	// window is this shard's pending-admission buffer (per-shard mode
	// only). Guarded by mu; staged in ascending-ID order because IDs are
	// claimed under mu.
	window []*Entry

	// turns counts this shard's window turns (atomic: read by ShardStats
	// without the shard lock).
	turns atomic.Int64

	// windowFloor is the minimum dataset epoch among this shard's pending
	// window entries, math.MaxInt64 while the window is empty. Written
	// under mu (staging lowers it, draining resets it); read atomically by
	// OTHER shards' turns when they compute the addition-log compaction
	// floor without taking this shard's lock. A staging that races such a
	// read is safe to miss: the stager holds dsMu's read side, so its
	// entry carries the CURRENT dataset epoch and can never need a record
	// the racing compaction might drop (see compactAdditions).
	windowFloor atomic.Int64

	// summaries is this shard's published slice of the feature index:
	// an immutable, ID-ordered array of containment summaries for the
	// shard's admitted entries. Replaced (never mutated) under policyMu
	// plus this shard's write lock; read lock-free by mergeIndex, which
	// runs under policyMu — so a concurrent turn of ANOTHER shard can
	// fold this shard's latest summaries into the global index without
	// touching this shard's lock.
	//
	//gclint:snapshot summaries
	summaries atomic.Pointer[[]indexEntry]
}

func newShards(n int, res *residency, pool *internPool) []*shard {
	ss := make([]*shard, n)
	for i := range ss {
		ss[i] = &shard{byFP: make(map[graph.Fingerprint][]*Entry), res: res, pool: pool}
		ss[i].windowFloor.Store(math.MaxInt64)
	}
	return ss
}

// stageLocked appends e to the shard's pending window, keeping the
// window's epoch floor current. Caller holds the shard write lock.
//
//gclint:requires shard
func (sh *shard) stageLocked(e *Entry) {
	sh.window = append(sh.window, e)
	if ep := e.DatasetEpoch(); ep < sh.windowFloor.Load() {
		sh.windowFloor.Store(ep)
	}
}

// resetWindowLocked empties the shard's pending window and lifts its
// epoch floor. Caller holds the shard write lock (turns, state restores).
//
//gclint:requires shard
func (sh *shard) resetWindowLocked() {
	sh.window = sh.window[:0]
	sh.windowFloor.Store(math.MaxInt64)
}

// refreshWindowFloorLocked recomputes the floor from the pending entries —
// used by the stop-the-world passes after eager reconciliation raises
// window entries' epochs, so the floor stays tight. Caller holds the
// shard write lock.
//
//gclint:requires shard
func (sh *shard) refreshWindowFloorLocked() {
	floor := int64(math.MaxInt64)
	for _, e := range sh.window {
		if ep := e.DatasetEpoch(); ep < floor {
			floor = ep
		}
	}
	sh.windowFloor.Store(floor)
}

// shardFor maps a fingerprint to its owning shard.
func (c *Cache) shardFor(fp graph.Fingerprint) *shard {
	return c.shards[uint64(fp)%uint64(len(c.shards))]
}

// insertLocked admits e into the shard. Caller holds the shard write lock.
// Admissions arrive in ascending-ID order (IDs are claimed monotonically
// under the lock that stages the entry, and entries only ever move from a
// window into a shard), so appending preserves the sorted-by-ID invariant.
//
//gclint:requires shard
//gclint:acquires internMu
func (sh *shard) insertLocked(e *Entry) {
	sh.entries = append(sh.entries, e)
	sh.byFP[e.Fingerprint] = append(sh.byFP[e.Fingerprint], e)
	// Intern the answer set: an entry admitting a set another entry
	// already publishes collapses onto that canonical allocation. The
	// republish is a CAS because a query that found this entry while it
	// was window-pending can be lazily reconciling it right now — losing
	// that race just defers the swap to the next true-up (the pool
	// reference is held either way).
	st := e.answers()
	if st.body == nil {
		canonical := sh.pool.acquire(st.set)
		if canonical != st.set {
			e.swapAnswers(st, canonical, st.epoch)
		}
		e.interned = canonical
	}
	// A pending lazy body (state restore, persist.go) has nothing resident
	// to intern: e.interned stays nil (released as a no-op on eviction) and
	// the pool reference catches up at the first true-up after fault-in.
	// The entry's own charge is its static footprint; the shared answer
	// bytes are charged once by the pool.
	e.resBytes = e.staticBytes
	sh.memBytes += e.resBytes
	sh.res.entries.Add(1)
	sh.res.bytes.Add(int64(e.resBytes))
}

// containsLocked reports whether e is currently resident in the shard
// (located by binary search on the ID-sorted entries, confirmed by
// pointer identity). Caller holds the shard lock, read or write.
//
//gclint:requires shard
func (sh *shard) containsLocked(e *Entry) bool {
	i := sort.Search(len(sh.entries), func(i int) bool {
		return sh.entries[i].ID >= e.ID
	})
	return i < len(sh.entries) && sh.entries[i] == e
}

// removeLocked evicts e from the shard, preserving the order of the
// remaining entries. Caller holds the shard write lock. The entries slice
// is ID-sorted by invariant, so the victim is located with a binary search
// instead of a linear scan; a non-resident e (already evicted) is a no-op
// so the byte and residency accounts can never be decremented twice. The
// byFP list uses swap-delete, mirroring the pre-sharding kernel so
// fingerprint-collision scan order stays identical to the serialized
// engine's.
//
//gclint:requires shard
//gclint:acquires internMu
func (sh *shard) removeLocked(e *Entry) {
	i := sort.Search(len(sh.entries), func(i int) bool {
		return sh.entries[i].ID >= e.ID
	})
	if i >= len(sh.entries) || sh.entries[i] != e {
		return
	}
	copy(sh.entries[i:], sh.entries[i+1:])
	sh.entries[len(sh.entries)-1] = nil
	sh.entries = sh.entries[:len(sh.entries)-1]
	list := sh.byFP[e.Fingerprint]
	for i, x := range list {
		if x == e {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(sh.byFP, e.Fingerprint)
	} else {
		sh.byFP[e.Fingerprint] = list
	}
	sh.memBytes -= e.resBytes
	sh.res.entries.Add(-1)
	sh.res.bytes.Add(int64(-e.resBytes))
	// Drop this entry's reference to its canonical answer set; the pool
	// account sheds the set's bytes with the last sharer.
	sh.pool.release(e.interned)
	e.interned = nil
}

// lockAll / unlockAll acquire every shard write lock in index order. Only
// the stop-the-world paths use them — SharedWindow turns and state
// save/restore; the lock hierarchy is windowMu → policyMu → shard locks,
// and reverse nestings never occur, so the fixed acquisition order is
// deadlock-free.
//
//gclint:holds shard
func (c *Cache) lockAll() {
	for _, sh := range c.shards {
		sh.mu.Lock()
	}
}

//gclint:releases shard
func (c *Cache) unlockAll() {
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
}

// gatherLocked returns all admitted entries across shards sorted by
// ascending ID — exactly the entries slice a single-shard cache would
// hold. Caller holds every shard lock (read or write).
//
//gclint:requires shard
func (c *Cache) gatherLocked() []*Entry {
	total := 0
	for _, sh := range c.shards {
		total += len(sh.entries)
	}
	all := make([]*Entry, 0, total)
	for _, sh := range c.shards {
		all = append(all, sh.entries...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// entriesSnapshot gathers a point-in-time, ID-ordered copy of the admitted
// entries, taking each shard read lock in turn. Entries evicted after the
// snapshot remain safe to read: their graphs and answer sets are immutable
// and still correct with respect to the immutable dataset.
//
// An empty cache returns nil without allocating or sorting, and a snapshot
// that drained from a single shard (or a single-shard cache) skips the
// sort — each shard is already ID-sorted. Indexed hit detection bypasses
// this entirely (it reads the published feature index); the remaining
// callers are Entries() and the IndexOff baseline scan.
//
//gclint:acquires shard
func (c *Cache) entriesSnapshot() []*Entry {
	var all []*Entry
	populated := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		if len(sh.entries) > 0 {
			populated++
			all = append(all, sh.entries...)
		}
		sh.mu.RUnlock()
	}
	if populated > 1 {
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	}
	return all
}
