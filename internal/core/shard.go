package core

import (
	"sort"
	"sync"

	"graphcache/internal/graph"
)

// DefaultShards is the shard count selected when Config.Shards is zero.
// Sixteen shards keep the per-shard lock hold times negligible well past
// the worker counts the bundled benchmarks drive (8) without bloating the
// per-cache footprint.
const DefaultShards = 16

// shard is one lock-striped partition of the admitted entries. Entries are
// assigned to shards by graph fingerprint, so the exact-match fast path
// touches exactly one shard. Within a shard, entries is kept sorted by
// ascending ID (admission order) — the invariant that lets gatherEntries
// reconstruct the exact entry sequence a single-shard serialized cache
// would hold, which in turn keeps replacement-policy decisions independent
// of the shard count.
type shard struct {
	mu       sync.RWMutex
	entries  []*Entry
	byFP     map[graph.Fingerprint][]*Entry
	memBytes int
}

func newShards(n int) []*shard {
	ss := make([]*shard, n)
	for i := range ss {
		ss[i] = &shard{byFP: make(map[graph.Fingerprint][]*Entry)}
	}
	return ss
}

// shardFor maps a fingerprint to its owning shard.
func (c *Cache) shardFor(fp graph.Fingerprint) *shard {
	return c.shards[uint64(fp)%uint64(len(c.shards))]
}

// insertLocked admits e into the shard. Caller holds the shard write lock.
// Admissions arrive in ascending-ID order (IDs are assigned monotonically
// and entries only ever move from the window into a shard), so appending
// preserves the sorted-by-ID invariant.
func (sh *shard) insertLocked(e *Entry) {
	sh.entries = append(sh.entries, e)
	sh.byFP[e.Fingerprint] = append(sh.byFP[e.Fingerprint], e)
	sh.memBytes += e.Bytes()
}

// removeLocked evicts e from the shard, preserving the order of the
// remaining entries. Caller holds the shard write lock. The entries slice
// is ID-sorted by invariant, so the victim is located with a binary search
// instead of a linear scan. The byFP list uses swap-delete, mirroring the
// pre-sharding kernel so fingerprint-collision scan order stays identical
// to the serialized engine's.
func (sh *shard) removeLocked(e *Entry) {
	if i := sort.Search(len(sh.entries), func(i int) bool {
		return sh.entries[i].ID >= e.ID
	}); i < len(sh.entries) && sh.entries[i] == e {
		copy(sh.entries[i:], sh.entries[i+1:])
		sh.entries[len(sh.entries)-1] = nil
		sh.entries = sh.entries[:len(sh.entries)-1]
	}
	list := sh.byFP[e.Fingerprint]
	for i, x := range list {
		if x == e {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(sh.byFP, e.Fingerprint)
	} else {
		sh.byFP[e.Fingerprint] = list
	}
	sh.memBytes -= e.Bytes()
}

// lockAll / unlockAll acquire every shard write lock in index order (the
// lock hierarchy is coordMu → shard locks; the reverse nesting never
// occurs, so the fixed acquisition order is deadlock-free).
func (c *Cache) lockAll() {
	for _, sh := range c.shards {
		sh.mu.Lock()
	}
}

func (c *Cache) unlockAll() {
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
}

// gatherLocked returns all admitted entries across shards sorted by
// ascending ID — exactly the entries slice a single-shard cache would
// hold. Caller holds every shard lock (read or write).
func (c *Cache) gatherLocked() []*Entry {
	total := 0
	for _, sh := range c.shards {
		total += len(sh.entries)
	}
	all := make([]*Entry, 0, total)
	for _, sh := range c.shards {
		all = append(all, sh.entries...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// entriesSnapshot gathers a point-in-time, ID-ordered copy of the admitted
// entries, taking each shard read lock in turn. Entries evicted after the
// snapshot remain safe to read: their graphs and answer sets are immutable
// and still correct with respect to the immutable dataset.
//
// An empty cache returns nil without allocating or sorting, and a snapshot
// that drained from a single shard (or a single-shard cache) skips the
// sort — each shard is already ID-sorted. Indexed hit detection bypasses
// this entirely (it reads the published feature index); the remaining
// callers are Entries() and the IndexOff baseline scan.
func (c *Cache) entriesSnapshot() []*Entry {
	var all []*Entry
	populated := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		if len(sh.entries) > 0 {
			populated++
			all = append(all, sh.entries...)
		}
		sh.mu.RUnlock()
	}
	if populated > 1 {
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	}
	return all
}
