// Package core implements the GraphCache (GC) kernel: a semantic cache of
// executed subgraph/supergraph queries that expedites future queries by
// harnessing exact-match, subgraph ("sub case") and supergraph ("super
// case") cache hits.
//
// # Semantics
//
// The cache sits on top of a Method M (package ftv): a filter producing a
// candidate set C_M plus a sub-iso verifier. For a new query q the kernel:
//
//  1. looks for an exact-match hit (an isomorphic cached query of the same
//     type) and, if found, serves the cached answer with zero dataset
//     sub-iso tests;
//  2. otherwise runs M's filter to obtain C_M, then detects
//     - sub-case hits: cached queries h with q ⊑ h, and
//     - super-case hits: cached queries h with h ⊑ q;
//  3. turns hits into savings. For a subgraph query
//     (A(q) = {G : q ⊑ G}):
//     - a sub-case hit gives A(h) ⊆ A(q): every graph in A(h) is an
//     answer for sure (set S, Figure 3(c)), skipping its test;
//     - a super-case hit gives A(q) ⊆ A(h): graphs outside A(h) are
//     non-answers for sure (set S', Figure 3(d)).
//     For a supergraph query (A(q) = {G : G ⊑ q}) the roles flip:
//     super-case hits deliver S, sub-case hits deliver S'.
//  4. verifies only C = (C_M ∩ ⋂ pruning-hit answers) \ S and returns
//     A = R ∪ S, where R are the verification survivors (Figure 3(f)–(h)).
//
// Correctness: members of S are answers by transitivity of subgraph
// isomorphism; members of S' are non-answers by contraposition; everything
// else is verified. Hence no false positives and no false negatives —
// property-tested in this package against the uncached Method M.
//
// # Management
//
// Executed queries enter an admission window (Window Manager); at window
// boundaries they are admitted into the cache and, if the cache exceeds
// its capacity, a replacement Policy selects victims (LRU, POP, PIN, PINC,
// HD, and pluggable custom policies per Figure 2(d)). A Statistics
// Monitor/Manager tracks per-query and per-entry utilities, including the
// number of sub-iso tests each cached entry saved (PIN) and their measured
// cost (PINC).
//
// # Hot-path memory discipline
//
// Execute is the kernel's hot path; at throughput-benchmark rates its
// allocation count, not its instruction count, decides how far the
// sharded engine scales (allocations are serialized by the allocator and
// the GC long before any kernel lock contends). The discipline:
//
//   - Per-query scratch comes from sync.Pools, never fresh: execScratch
//     (candidate-id, cost-sample, verdict and hit-credit slices, cache.go),
//     featScratch (path-feature counting, features.go) and the VF2 state
//     pool (internal/iso). Pooled objects are reset — never zero-filled by
//     reallocation — and anything referencing caller data is nil'd before
//     Put so the pool never pins graphs alive.
//
//   - Bitsets that are mathematically all-zero stay lazy (internal/bitset:
//     a nil words slice means "all clear"), so the common empty
//     Excluded/Survivors sets on exact hits cost O(1), not O(dataset).
//     Set algebra consumes its inputs where ownership allows: Execute
//     clones a candidate set only when a pruning hit actually forces a
//     divergent copy, and a Result's mathematically-equal fields alias one
//     set (see Result).
//
//   - Iteration over set intersections/differences is word-parallel and
//     callback-based (ForEachAnd/ForEachAndNot) — no materialized index
//     slices on the hot path; AppendIndices reuses caller buffers.
//
//   - Immutable graphs memoize their derived summaries (label-degree
//     lists, VF2 visit order, label vector, WL fingerprint) behind atomic
//     pointers (internal/graph), so repeated probes of the same graph are
//     allocation-free; racing computations produce identical values and
//     the loser's copy is garbage, which keeps the memo lock-free.
//
//   - What MAY allocate: the Result and its owned sets (they outlive the
//     call), admission bookkeeping on a miss (the entry, its feature
//     summary), and slice growth when a candidate set outgrows every
//     previous query's (the grown scratch is kept by the pool, so growth
//     amortizes to zero).
//
//   - Answer sets are adaptive and shared. internal/bitset picks the
//     smallest of three containers per set (sorted-uint32 sparse, run
//     spans, dense words) with automatic migration at container-local
//     thresholds; the read paths dispatch per container pair through
//     stack cursor structs, staying //gclint:noalloc. The container
//     rules: only the OWNER of an unpublished set may mutate or
//     Compact() it — entryFromSig and RemoveGraph's clone do, right
//     before publication; a published set is frozen in whatever
//     container it had (concurrent readers dispatch on its mode tag, so
//     migration on a shared set is a data race by construction).
//     Identical published sets are then interned cache-wide (intern.go):
//     entries acquire a refcounted canonical keyed by content
//     fingerprint, the residency account charges each canonical once,
//     and the pool's leaf mutex is the only lock the sharing costs.
//     Persistence round-trips compact: the binary v3 snapshot stores
//     each set's native container encoding verbatim (bitset
//     AppendBinary/FromBinary), while the legacy v2 text format stores
//     index lists and re-picks the smallest container at entryFromSig —
//     either way a restored set is Compact()ed before publication.
//
// The regression fences: BenchmarkExecute* (bench_test.go) report
// allocs/op for the exact-hit, indexed-miss and sub/super-hit classes,
// and alloc_test.go pins hard per-path budgets via testing.AllocsPerRun
// — a returning O(n) clone fails CI, not a profile nobody reads.
// FuzzBitsetOps (internal/bitset) differentially fuzzes every container
// mix against a naive reference, and `gcbench -exp memory` tracks
// bytes/entry against the dense-equivalent baseline.
//
// # Snapshot persistence: the GCS3 binary format
//
// WriteState serializes the cache in state format v3 ("GCS3"), a binary,
// mmap-friendly layout; ReadState sniffs the magic and dispatches to the
// v3 reader or falls through to the legacy v2 text parser (WriteStateV2
// still produces v2). All integers are little-endian; every checksum is
// FNV-1a 64. The layout (offsets in bytes):
//
//	header, 64 B:  magic "GCS3" [0,4)   version=3 u32 [4,8)
//	               dsSize u64 [8,16)    dsEpoch i64 [16,24) (diagnostic)
//	               entryCount u64 [24,32)
//	               bodyOff u64 [32,40) = 64 + 136*entryCount
//	               fileSize u64 [40,48) indexSum u64 [48,56)
//	               headerSum u64 [56,64) over bytes [0,56)
//	index, 136 B/entry (fixed size, so record i is addressable without
//	parsing records 0..i-1):
//	               fp u64, queryType u32, baseCandidates u32,
//	               feature vector 56 B (ftv FV codec), hits i64,
//	               savedTests f64, savedCostNs f64,
//	               bodyOff u64, graphLen u64, ansLen u64,
//	               graphSum u64, ansSum u64
//	body:          per entry, contiguous and in index order: the graph
//	               in the text codec (graph.WriteGraph), then the answer
//	               set in its native bitset container encoding
//	               (bitset.AppendBinary — mode tag + capacity + count +
//	               sparse/dense/run payload, so a restore preserves the
//	               writer's container instead of re-deriving it).
//
// Validation is all-or-nothing and covers every byte: headerSum gates
// the header, indexSum gates the whole index section, per-entry
// graphSum/ansSum gate each body segment, and the records must tile the
// body exactly (record i's bodyOff equals the running offset; the final
// offset equals fileSize). Like v2, signatures and feature vectors are
// rebuilt from the parsed graphs and cross-checked against the index —
// never trusted from disk. A snapshot from a differently-sized dataset
// is refused (dsSize must equal the current view's id-space size).
//
// # Lazy restore
//
// RestoreStateLazy mmaps the file (internal/mmap; ReadAt fallback where
// unsupported) and restores eagerly EXCEPT the answer bodies: the
// header, index and graph segments are read and fully validated up
// front, so admission, the feature index, and exact/sub/super hit
// detection work immediately, while each entry's answer set faults in
// on its first Answers() call. The rules that keep this exact:
//
//   - An unfaulted entry's answer cell holds a pending answerState whose
//     lazyBody records (source, offset, length, checksum, capacity) plus
//     a drops list — the ids tombstoned since the snapshot was written
//     (dsSize equality proves no ADDS happened; ids are never reused).
//     Fault-in reads the segment, verifies ansSum, decodes, applies
//     drops, Compact()s, and publishes by CAS — fully lock-free, with
//     cross-entry dedup via the source's checksum-keyed map (interning
//     refcounts true up at the owning shard's next rechargeLocked).
//   - Restored entries are stamped with the CURRENT dataset epoch
//     (sound for the addition log by the dsSize check, exactly as in
//     v2); a pending entry's epoch holds the log-compaction floor down
//     until it faults or is evicted.
//   - RemoveGraph on a pending entry appends to the drops list via a
//     COW lazyBody clone published under the full lock hierarchy; a
//     racing lock-free fault loses the CAS and retries against the new
//     body. Eviction of a pending entry just drops the cell — no I/O.
//   - Body corruption discovered at fault time PANICS (the restore
//     validated the index, so a failing ansSum means the file changed
//     underneath the mapping — there is no caller to return an error
//     to, and serving wrong answers would violate the SelfCheck
//     contract). Whole-file corruption is still rejected error-wise at
//     restore time, all-or-nothing.
//   - The returned io.Closer owns the mapping: Close() after the cache
//     is done faulting (for gcd: save first, then close). Monitor
//     counter StateBodyFaults observes fault-in traffic (/api/stats).
//
// # Machine-checked contracts: the gclint annotation grammar
//
// The locking discipline and the hot-path memory discipline above are
// not prose-only: `make lint` runs the repo's own analyzers
// (cmd/gclint, internal/lint) over every package, driven by `//gclint:`
// comment directives on the declarations themselves. The grammar, by
// example (the example lines are indented so they read as code, not as
// live directives):
//
//	//gclint:hierarchy serialMu dsMu windowMu policyMu shard  (on Cache: the lock order)
//	//gclint:lock policyMu     (on a field: this is lock "policyMu" in the hierarchy)
//	//gclint:leaf              (with lock: rank-exempt, but nothing may be acquired under it)
//	//gclint:acquires windowMu shard   (func acquires and releases these internally)
//	//gclint:requires policyMu shard   (func must be called with these held)
//	//gclint:holds shard       (func acquires these and LEAVES them held — lockAll)
//	//gclint:releases shard    (func releases caller-held locks — unlockAll)
//	//gclint:nolocks           (func must not acquire any lock, directly or via callees)
//	//gclint:noalloc           (func must not contain allocating constructs)
//	//gclint:cow               (type: copy-on-write; published values are immutable)
//	//gclint:cowview           (func returns a published COW value; callers must not write it)
//	//gclint:mutates           (method writes its receiver; illegal on published COW values)
//	//gclint:snapshot answers  (on a field/var: an atomically-published snapshot cell)
//	//gclint:loads answers [p] (func loads the cell; p names the instance-carrying
//	                            parameter, defaulting to the method receiver)
//	//gclint:pins dataset      (func is an operation scope: at most one load per
//	                            cell instance; loads in loops are torn snapshots)
//	//gclint:view dataset      (type: values are pinned views of the named cell;
//	                            functions receiving one must not re-load the cell)
//	//gclint:deterministic     (func output must be a deterministic function of its
//	                            inputs, transitively: no unordered map ranges
//	                            without a sorted-key idiom, no time/rand, no
//	                            goroutine spawns, no multi-case selects)
//	//gclint:ctxstrict         (package: context.Background/TODO are diagnostics
//	                            everywhere in the package)
//	//gclint:ignore lockorder -- reason   (waive one finding on this or the next line)
//
// Seven analyzers consume these: lockorder (hierarchy violations, unmet
// requires, acquisition inside nolocks), cowpublish (writes through
// cowview/atomic.Pointer-published values, mutates-calls on them),
// leaflock (any acquisition while a leaf lock is held), noalloc,
// snapshotonce (torn snapshots: a cell loaded twice, in a loop, or fresh
// where a caller already pinned a view), determinism (nondeterminism
// reachable from //gclint:deterministic roots through the call graph) and
// ctxflow (handlers that receive a context and then discard it, or that
// call the context-less sibling of a *Context API pair). Findings are
// build failures; every waiver needs a reason after `--`.
package core

// The kernel is context-strict: root contexts must not be minted inside
// this package — every operation that can block or fan out inherits its
// caller's context, so client disconnects and shutdown deadlines
// propagate into batch execution (see ExecuteAllStreamContext).
//
//gclint:ctxstrict
