package core

import "time"

// Monitor is the Statistics Monitor/Manager: cumulative operational
// metrics over a cache's lifetime, powering the Demonstrator's Sub-Iso
// Testing / Query Time / Cache Replacement panels.
type Monitor struct {
	queries        int64
	exactHits      int64 // queries answered purely from cache
	subHitQueries  int64 // queries with ≥1 sub-case hit
	superHitQuerys int64
	subHits        int64 // total hit contributions
	superHits      int64
	testsExecuted  int64
	testsSaved     int64
	hitDetectIso   int64 // iso tests against cached queries
	admissions     int64
	evictions      int64
	windowTurns    int64
	filterNs       int64
	hitNs          int64
	verifyNs       int64
}

// Snapshot is an immutable copy of the monitor's counters.
type Snapshot struct {
	// Queries is the number of executed queries.
	Queries int64
	// ExactHits counts queries served entirely from cache.
	ExactHits int64
	// SubHitQueries / SuperHitQueries count queries that had at least one
	// hit of that kind; SubHits / SuperHits count total contributions.
	SubHitQueries, SuperHitQueries int64
	SubHits, SuperHits             int64
	// TestsExecuted / TestsSaved count dataset sub-iso tests run vs
	// avoided thanks to the cache (savings vs the base Method M's C_M).
	TestsExecuted, TestsSaved int64
	// HitDetectionTests counts q↔h iso tests spent discovering hits —
	// the overhead side of the cache's ledger.
	HitDetectionTests int64
	// Admissions / Evictions / WindowTurns are Cache-Manager counters.
	Admissions, Evictions, WindowTurns int64
	// FilterTime, HitTime and VerifyTime split where query time went.
	FilterTime, HitTime, VerifyTime time.Duration
}

// Snapshot returns a copy of the current counters.
func (m *Monitor) Snapshot() Snapshot {
	return Snapshot{
		Queries:           m.queries,
		ExactHits:         m.exactHits,
		SubHitQueries:     m.subHitQueries,
		SuperHitQueries:   m.superHitQuerys,
		SubHits:           m.subHits,
		SuperHits:         m.superHits,
		TestsExecuted:     m.testsExecuted,
		TestsSaved:        m.testsSaved,
		HitDetectionTests: m.hitDetectIso,
		Admissions:        m.admissions,
		Evictions:         m.evictions,
		WindowTurns:       m.windowTurns,
		FilterTime:        time.Duration(m.filterNs),
		HitTime:           time.Duration(m.hitNs),
		VerifyTime:        time.Duration(m.verifyNs),
	}
}

// TestSpeedup returns the paper's speedup metric in sub-iso test numbers:
// base tests (executed + saved) over executed tests; 1 when nothing ran.
func (s Snapshot) TestSpeedup() float64 {
	if s.TestsExecuted == 0 {
		if s.TestsSaved > 0 {
			return float64(s.TestsSaved + 1) // all tests avoided
		}
		return 1
	}
	return float64(s.TestsExecuted+s.TestsSaved) / float64(s.TestsExecuted)
}
