package core

import (
	"sync/atomic"
	"time"
)

// Monitor is the Statistics Monitor/Manager: cumulative operational
// metrics over a cache's lifetime, powering the Demonstrator's Sub-Iso
// Testing / Query Time / Cache Replacement panels. All counters are
// atomics so concurrent queries record their contributions without
// touching any cache lock; Snapshot reads are correspondingly lock-free
// (each counter is individually consistent, the set is approximate under
// concurrent load — exact once in-flight queries drain).
type Monitor struct {
	queries           atomic.Int64
	exactHits         atomic.Int64 // queries answered purely from cache
	subHitQueries     atomic.Int64 // queries with ≥1 sub-case hit
	superHitQueries   atomic.Int64 // queries with ≥1 super-case hit
	subHits           atomic.Int64 // total hit contributions
	superHits         atomic.Int64
	testsExecuted     atomic.Int64
	testsSaved        atomic.Int64
	hitDetectIso      atomic.Int64 // iso tests against cached queries
	hitScanEntries    atomic.Int64 // entries examined during hit detection
	hitFullChecks     atomic.Int64 // label/path dominance merges run
	hitIndexPruned    atomic.Int64 // entries the feature index rejected outright
	admissions        atomic.Int64
	evictions         atomic.Int64
	windowTurns       atomic.Int64
	datasetAdds       atomic.Int64 // live dataset graphs added
	datasetRemoves    atomic.Int64 // live dataset graphs tombstoned
	maintenanceTests  atomic.Int64 // iso tests spent reconciling answer sets after additions
	logCompactions    atomic.Int64 // addition-log compactions that dropped ≥1 record
	logRecordsDropped atomic.Int64 // addition records dropped by compaction
	stateBodyFaults   atomic.Int64 // lazy-restore answer bodies faulted in from the snapshot file
	filterNs          atomic.Int64
	hitNs             atomic.Int64
	verifyNs          atomic.Int64
}

// Snapshot is an immutable copy of the monitor's counters.
type Snapshot struct {
	// Queries is the number of executed queries.
	Queries int64
	// ExactHits counts queries served entirely from cache.
	ExactHits int64
	// SubHitQueries / SuperHitQueries count queries that had at least one
	// hit of that kind; SubHits / SuperHits count total contributions.
	SubHitQueries, SuperHitQueries int64
	SubHits, SuperHits             int64
	// TestsExecuted / TestsSaved count dataset sub-iso tests run vs
	// avoided thanks to the cache (savings vs the base Method M's C_M).
	TestsExecuted, TestsSaved int64
	// HitDetectionTests counts q↔h iso tests spent discovering hits —
	// the overhead side of the cache's ledger.
	HitDetectionTests int64
	// HitScanEntries counts cache entries examined during sub/super hit
	// detection; HitFullChecks counts the label-vector/path-feature
	// dominance merges that actually ran; HitIndexPruned counts entries
	// the feature index excluded from both hit directions before any
	// merge (always 0 with Config.IndexOff). Together they show what the
	// index saves: full checks and iso tests shrink, pruned grows.
	HitScanEntries, HitFullChecks, HitIndexPruned int64
	// Admissions / Evictions / WindowTurns are Cache-Manager counters.
	Admissions, Evictions, WindowTurns int64
	// DatasetAdds / DatasetRemoves count live dataset mutations;
	// MaintenanceTests counts the containment tests spent reconciling
	// cached answer sets after additions (eagerly at mutation time or
	// lazily at hit time) — the maintenance side of the churn ledger.
	DatasetAdds, DatasetRemoves, MaintenanceTests int64
	// FilterInserts / FilterRebuilds split how dataset additions
	// maintained the method's filter: incremental copy-on-write inserts
	// (O(graph)) versus full factory rebuilds (O(dataset)). Both read
	// from the method, so they survive across caches sharing one.
	FilterInserts, FilterRebuilds int64
	// AnswerBytes is the intern pool's account: total bytes of the
	// distinct canonical answer sets, each charged once however many
	// entries share it. InternHits counts admissions/true-ups that reused
	// an already-pooled set; InternMisses counts the ones that inserted a
	// new canonical. All three read from the cache's pool, not the Monitor.
	AnswerBytes              int64
	InternHits, InternMisses int64
	// AdditionLogLen is the method's current addition-log length;
	// LogCompactions counts the compactions that dropped at least one
	// record and LogRecordsDropped the records they reclaimed. Together
	// they show the log staying bounded: records enter with DatasetAdds
	// and leave once every resident entry has passed them.
	AdditionLogLen                    int
	LogCompactions, LogRecordsDropped int64
	// StateBodyFaults counts answer bodies faulted in from the snapshot
	// file after a lazy restore (RestoreStateLazy): 0 right after restore,
	// rising as queries first touch each restored entry's answers.
	StateBodyFaults int64
	// FilterTime, HitTime and VerifyTime split where query time went.
	FilterTime, HitTime, VerifyTime time.Duration
}

// Snapshot returns a copy of the current counters.
func (m *Monitor) Snapshot() Snapshot {
	return Snapshot{
		Queries:           m.queries.Load(),
		ExactHits:         m.exactHits.Load(),
		SubHitQueries:     m.subHitQueries.Load(),
		SuperHitQueries:   m.superHitQueries.Load(),
		SubHits:           m.subHits.Load(),
		SuperHits:         m.superHits.Load(),
		TestsExecuted:     m.testsExecuted.Load(),
		TestsSaved:        m.testsSaved.Load(),
		HitDetectionTests: m.hitDetectIso.Load(),
		HitScanEntries:    m.hitScanEntries.Load(),
		HitFullChecks:     m.hitFullChecks.Load(),
		HitIndexPruned:    m.hitIndexPruned.Load(),
		Admissions:        m.admissions.Load(),
		Evictions:         m.evictions.Load(),
		WindowTurns:       m.windowTurns.Load(),
		DatasetAdds:       m.datasetAdds.Load(),
		DatasetRemoves:    m.datasetRemoves.Load(),
		MaintenanceTests:  m.maintenanceTests.Load(),
		LogCompactions:    m.logCompactions.Load(),
		LogRecordsDropped: m.logRecordsDropped.Load(),
		StateBodyFaults:   m.stateBodyFaults.Load(),
		FilterTime:        time.Duration(m.filterNs.Load()),
		HitTime:           time.Duration(m.hitNs.Load()),
		VerifyTime:        time.Duration(m.verifyNs.Load()),
	}
}

// TestSpeedup returns the paper's speedup metric in sub-iso test numbers:
// base tests (executed + saved) over executed tests; 1 when nothing ran.
func (s Snapshot) TestSpeedup() float64 {
	if s.TestsExecuted == 0 {
		if s.TestsSaved > 0 {
			return float64(s.TestsSaved + 1) // all tests avoided
		}
		return 1
	}
	return float64(s.TestsExecuted+s.TestsSaved) / float64(s.TestsExecuted)
}
