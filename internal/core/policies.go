package core

import (
	"fmt"
	"math/rand"
	"sort"

	"graphcache/internal/stats"
)

// scorePolicy implements Policy as "evict the x lowest scores", with
// deterministic tie-breaking by (LastUsed, ID). All bundled policies
// except RAND are scorePolicies; they differ only in the score function.
type scorePolicy struct {
	name  string
	score func(e *Entry, ctx *scoreContext) float64
	// onHit defaults to recording the standard utility fields on the
	// entry; policies needing extra state can override.
	costCV *stats.Agg // observed per-hit saved-cost dispersion (HD)
}

// scoreContext carries eviction-time normalization state shared by score
// functions (computed once per ReplacedContent call).
type scoreContext struct {
	minTests, maxTests float64
	minCost, maxCost   float64
	costWeight         float64
}

func (p *scorePolicy) Name() string { return p.name }

// UpdateCacheStaInfo records the contribution on the entry itself — the
// standard utility bookkeeping shared by the bundled policies.
func (p *scorePolicy) UpdateCacheStaInfo(ev *HitEvent) {
	e := ev.Entry
	e.Hits++
	e.LastUsed = ev.Tick
	e.SavedTests += float64(ev.SavedTests)
	e.SavedCostNs += ev.SavedCostNs
	if p.costCV != nil {
		p.costCV.Add(ev.SavedCostNs)
	}
}

func (p *scorePolicy) OnWindowTurn() {}

// ReplacedContent returns the x lowest-scoring entry positions.
//
//gclint:deterministic
func (p *scorePolicy) ReplacedContent(entries []*Entry, x int) []int {
	if x >= len(entries) {
		out := make([]int, len(entries))
		for i := range out {
			out[i] = i
		}
		return out
	}
	ctx := &scoreContext{
		minTests: inf(), maxTests: -inf(),
		minCost: inf(), maxCost: -inf(),
	}
	for _, e := range entries {
		ctx.minTests = minf(ctx.minTests, e.SavedTests)
		ctx.maxTests = maxf(ctx.maxTests, e.SavedTests)
		ctx.minCost = minf(ctx.minCost, e.SavedCostNs)
		ctx.maxCost = maxf(ctx.maxCost, e.SavedCostNs)
	}
	if p.costCV != nil {
		cv := p.costCV.CV()
		ctx.costWeight = cv / (1 + cv) // ∈ [0,1): more dispersion ⇒ more cost awareness
	}

	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := entries[idx[a]], entries[idx[b]]
		sa, sb := p.score(ea, ctx), p.score(eb, ctx)
		if sa != sb {
			return sa < sb
		}
		if ea.LastUsed != eb.LastUsed {
			return ea.LastUsed < eb.LastUsed
		}
		return ea.ID < eb.ID
	})
	return idx[:x]
}

func inf() float64 { return 1e308 }
func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// norm rescales v into [0,1] over [lo,hi]; degenerate ranges map to 0.
func norm(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return (v - lo) / (hi - lo)
}

// NewLRU returns the least-recently-used policy: utility = last hit tick.
func NewLRU() Policy {
	return &scorePolicy{
		name:  "lru",
		score: func(e *Entry, _ *scoreContext) float64 { return float64(e.LastUsed) },
	}
}

// NewFIFO returns first-in-first-out: utility = insertion tick.
// A baseline beyond the paper's bundled five.
func NewFIFO() Policy {
	return &scorePolicy{
		name:  "fifo",
		score: func(e *Entry, _ *scoreContext) float64 { return float64(e.InsertedAt) },
	}
}

// NewPOP returns the popularity policy: utility = hit count.
func NewPOP() Policy {
	return &scorePolicy{
		name:  "pop",
		score: func(e *Entry, _ *scoreContext) float64 { return float64(e.Hits) },
	}
}

// NewPIN returns the PIN policy: utility goes "down to the level of
// sub-iso test numbers" — the count of dataset tests the entry saved.
func NewPIN() Policy {
	return &scorePolicy{
		name:  "pin",
		score: func(e *Entry, _ *scoreContext) float64 { return e.SavedTests },
	}
}

// NewPINC returns the PINC policy: utility = estimated cost (ns) of the
// saved tests, acknowledging that saved tests differ wildly in price.
func NewPINC() Policy {
	return &scorePolicy{
		name:  "pinc",
		score: func(e *Entry, _ *scoreContext) float64 { return e.SavedCostNs },
	}
}

// NewHD returns the HD policy coalescing PIN and PINC: utility is a
// normalized blend of saved-test count and saved-test cost, with the cost
// weight adapting to the observed dispersion of per-hit savings cost
// (uniform costs ⇒ HD ≈ PIN; highly skewed costs ⇒ HD ≈ PINC). This is
// the paper's "when in doubt" recommendation.
func NewHD() Policy {
	return &scorePolicy{
		name:   "hd",
		costCV: &stats.Agg{},
		score: func(e *Entry, ctx *scoreContext) float64 {
			w := ctx.costWeight
			return (1-w)*norm(e.SavedTests, ctx.minTests, ctx.maxTests) +
				w*norm(e.SavedCostNs, ctx.minCost, ctx.maxCost)
		},
	}
}

// randPolicy evicts uniformly at random (seeded, hence reproducible).
type randPolicy struct {
	rng *rand.Rand
}

// NewRand returns the random-replacement baseline with the given seed.
func NewRand(seed int64) Policy {
	return &randPolicy{rng: rand.New(rand.NewSource(seed))}
}

func (p *randPolicy) Name() string { return "rand" }

func (p *randPolicy) UpdateCacheStaInfo(ev *HitEvent) {
	e := ev.Entry
	e.Hits++
	e.LastUsed = ev.Tick
	e.SavedTests += float64(ev.SavedTests)
	e.SavedCostNs += ev.SavedCostNs
}

func (p *randPolicy) OnWindowTurn() {}

func (p *randPolicy) ReplacedContent(entries []*Entry, x int) []int {
	if x >= len(entries) {
		out := make([]int, len(entries))
		for i := range out {
			out[i] = i
		}
		return out
	}
	return p.rng.Perm(len(entries))[:x]
}

// NewPolicy constructs a bundled policy by name: "lru", "fifo", "pop",
// "pin", "pinc", "hd", "rand".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "pop":
		return NewPOP(), nil
	case "pin":
		return NewPIN(), nil
	case "pinc":
		return NewPINC(), nil
	case "hd":
		return NewHD(), nil
	case "rand":
		return NewRand(1), nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", name)
}

// PolicyNames lists the bundled policies in the paper's order plus extras.
func PolicyNames() []string { return []string{"lru", "pop", "pin", "pinc", "hd", "fifo", "rand"} }
