package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// churnStream drives a mixed query/mutation stream through the cache with
// SelfCheck armed (every answer is cross-checked byte-identical against
// the uncached method), mutating the dataset every `every` queries:
// alternating additions (fresh molecules from the same generator family,
// so they land in cached answer sets) and removals (a pseudo-random live
// gid). It returns the number of mutations applied.
func churnStream(t *testing.T, c *Cache, queries []gen.Query, extra []*graph.Graph, every int, afterMutation func(i int)) int {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	mutations := 0
	nextExtra := 0
	for i, q := range queries {
		if _, err := c.Execute(q.G, q.Type); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if (i+1)%every != 0 {
			continue
		}
		if mutations%2 == 0 && nextExtra < len(extra) {
			if _, err := c.AddGraph(extra[nextExtra]); err != nil {
				t.Fatalf("add after query %d: %v", i, err)
			}
			nextExtra++
		} else {
			// Remove a pseudo-random live graph.
			info := c.DatasetInfo()
			if info.Live <= 1 {
				continue
			}
			view := c.Method().View()
			gid := rng.Intn(info.Size)
			for view.Graph(gid) == nil {
				gid = (gid + 1) % info.Size
			}
			if err := c.RemoveGraph(gid); err != nil {
				t.Fatalf("remove %d after query %d: %v", gid, i, err)
			}
		}
		mutations++
		if afterMutation != nil {
			afterMutation(i)
		}
	}
	return mutations
}

// TestChurnEquivalence is the churn acceptance property: a mixed
// add/remove/query stream yields answers byte-identical to the uncached
// Method.Run after every mutation — SelfCheck cross-checks every executed
// query, and after each mutation every admitted entry's answer set is
// asserted equal to a fresh uncached run of its pattern (eager mode) or
// revalidated through the hit path (lazy mode). Exercised at shards
// {1, 4, 32} in both reconciliation modes; `go test -race` arms the
// race detector over the same paths.
func TestChurnEquivalence(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		for _, shards := range []int{1, 4, 32} {
			t.Run(fmt.Sprintf("lazy=%v/shards=%d", lazy, shards), func(t *testing.T) {
				dataset := testDataset(51, 30)
				extra := testDataset(77, 8)
				w, err := gen.NewWorkload(rand.New(rand.NewSource(52)), dataset, gen.WorkloadConfig{
					Size: 90, Mixed: true, PoolSize: 24,
					ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
				})
				if err != nil {
					t.Fatal(err)
				}
				c := testCache(t, dataset, func(cfg *Config) {
					cfg.Capacity = 16
					cfg.Window = 4
					cfg.Shards = shards
					cfg.LazyReconcile = lazy
				})
				method := c.Method()

				mutations := churnStream(t, c, w.Queries, extra, 9, func(i int) {
					if lazy {
						return // entries reconcile at hit time; validated below
					}
					// Eager mode: every admitted entry must be byte-exact
					// against the mutated dataset the moment the mutation
					// returns — and with every entry current, compaction
					// keeps the addition log empty across mutations.
					if logLen := c.Stats().AdditionLogLen; logLen != 0 {
						t.Fatalf("after mutation at query %d: %d addition records survive in eager mode", i, logLen)
					}
					for _, e := range c.Entries() {
						want := method.Run(e.Graph, e.Type).Answers
						if !e.Answers().Equal(want) {
							t.Fatalf("after mutation at query %d: entry %d answers %v, uncached %v",
								i, e.ID, e.Answers(), want)
						}
					}
				})
				if mutations < 6 {
					t.Fatalf("stream too tame: only %d mutations", mutations)
				}
				info := c.DatasetInfo()
				if info.Epoch != int64(mutations) {
					t.Fatalf("epoch %d after %d mutations", info.Epoch, mutations)
				}

				// Re-execute every admitted entry's pattern: exact hits must
				// reconcile (lazy) and re-verify byte-identical (SelfCheck
				// panics on any mismatch).
				for _, e := range c.Entries() {
					res, err := c.Execute(e.Graph, e.Type)
					if err != nil {
						t.Fatal(err)
					}
					want := method.Run(e.Graph, e.Type).Answers
					if !res.Answers.Equal(want) {
						t.Fatalf("entry %d: answers diverge after churn", e.ID)
					}
				}
				if lazy {
					// The hit path must have paid reconciliation work.
					if c.Stats().MaintenanceTests == 0 && c.Stats().DatasetAdds > 0 {
						t.Error("lazy mode: no maintenance tests recorded despite additions")
					}
				}
				// The addition log stays bounded under the mixed stream:
				// eager mode drains it at every mutation (asserted above);
				// lazy mode must show compaction actually reclaiming
				// records — the stream's hits reconcile entries and its
				// mutations/turns compact behind them, so a silently
				// broken compaction would leave every record resident.
				snap := c.Stats()
				if lazy && snap.DatasetAdds > 0 && snap.LogRecordsDropped == 0 {
					t.Fatalf("lazy mode: none of the %d addition records were ever compacted away", snap.DatasetAdds)
				}
				if int64(snap.AdditionLogLen)+snap.LogRecordsDropped != snap.DatasetAdds {
					t.Fatalf("log ledger out of balance: %d resident + %d dropped != %d adds",
						snap.AdditionLogLen, snap.LogRecordsDropped, snap.DatasetAdds)
				}
				// Every addition maintained the GGSX filter incrementally:
				// the factory rebuild path never ran.
				if snap.FilterRebuilds != 0 {
					t.Errorf("%d full filter rebuilds during churn, want 0", snap.FilterRebuilds)
				}
				if snap.FilterInserts != snap.DatasetAdds {
					t.Errorf("filter inserts %d, want one per addition (%d)", snap.FilterInserts, snap.DatasetAdds)
				}
			})
		}
	}
}

// TestChurnDeterministic pins that a sequential churn stream is
// deterministic at a fixed shard count: two runs produce identical
// answers, identical cache contents and identical dataset shapes.
func TestChurnDeterministic(t *testing.T) {
	run := func() (*Cache, []string) {
		dataset := testDataset(51, 30)
		extra := testDataset(77, 6)
		w, err := gen.NewWorkload(rand.New(rand.NewSource(53)), dataset, gen.WorkloadConfig{
			Size: 70, Mixed: true, PoolSize: 20,
			ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPolicy("pin") // timing-independent
		if err != nil {
			t.Fatal(err)
		}
		method := ftv.NewGGSXMethod(dataset, 3)
		cfg := DefaultConfig()
		cfg.Capacity = 16
		cfg.Window = 4
		cfg.Shards = 4
		cfg.Policy = p
		c := MustNew(method, cfg)
		var answers []string
		rng := rand.New(rand.NewSource(99))
		nextExtra := 0
		for i, q := range w.Queries {
			res, err := c.Execute(q.G, q.Type)
			if err != nil {
				t.Fatal(err)
			}
			answers = append(answers, res.Answers.String())
			if (i+1)%8 != 0 {
				continue
			}
			if i%16 == 7 && nextExtra < len(extra) {
				if _, err := c.AddGraph(extra[nextExtra]); err != nil {
					t.Fatal(err)
				}
				nextExtra++
			} else {
				info := c.DatasetInfo()
				view := c.Method().View()
				gid := rng.Intn(info.Size)
				for view.Graph(gid) == nil {
					gid = (gid + 1) % info.Size
				}
				if err := c.RemoveGraph(gid); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c, answers
	}
	a, ansA := run()
	b, ansB := run()
	for i := range ansA {
		if ansA[i] != ansB[i] {
			t.Fatalf("query %d: answers diverge between identical churn runs", i)
		}
	}
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		t.Fatalf("resident entries diverge: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].ID != eb[i].ID || !ea[i].Answers().Equal(eb[i].Answers()) {
			t.Fatalf("entry %d diverges between runs", i)
		}
	}
}

// TestConcurrentChurn is the -race gauntlet for live mutations: worker
// goroutines stream queries (each cross-checked by SelfCheck against the
// dataset snapshot it ran under) while a mutator goroutine interleaves
// additions and removals. Runs in both reconciliation modes.
func TestConcurrentChurn(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			dataset := testDataset(61, 24)
			extra := testDataset(88, 10)
			w, err := gen.NewWorkload(rand.New(rand.NewSource(62)), dataset, gen.WorkloadConfig{
				Size: 40, Mixed: true, PoolSize: 16,
				ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			c := testCache(t, dataset, func(cfg *Config) {
				cfg.Capacity = 12
				cfg.Window = 3
				cfg.Shards = 4
				cfg.LazyReconcile = lazy
			})

			const workers = 4
			var wg sync.WaitGroup
			for wkr := 0; wkr < workers; wkr++ {
				wg.Add(1)
				go func(wkr int) {
					defer wg.Done()
					for i, q := range w.Queries {
						if _, err := c.Execute(q.G, q.Type); err != nil {
							t.Errorf("worker %d query %d: %v", wkr, i, err)
							return
						}
					}
				}(wkr)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(63))
				for m := 0; m < 12; m++ {
					if m%2 == 0 {
						if _, err := c.AddGraph(extra[m/2]); err != nil {
							t.Errorf("concurrent add %d: %v", m, err)
							return
						}
						continue
					}
					info := c.DatasetInfo()
					view := c.Method().View()
					gid := rng.Intn(info.Size)
					for view.Graph(gid) == nil {
						gid = (gid + 1) % info.Size
					}
					if err := c.RemoveGraph(gid); err != nil {
						t.Errorf("concurrent remove %d: %v", gid, err)
						return
					}
				}
			}()
			wg.Wait()

			// Post-churn: every admitted entry revalidates byte-identical.
			for _, e := range c.Entries() {
				res, err := c.Execute(e.Graph, e.Type)
				if err != nil {
					t.Fatal(err)
				}
				if want := c.Method().Run(e.Graph, e.Type).Answers; !res.Answers.Equal(want) {
					t.Fatalf("entry %d: answers diverge after concurrent churn", e.ID)
				}
			}
		})
	}
}

// TestRemoveGraphClearsAnswerBits pins the stop-the-world removal rule:
// the tombstoned gid's bit disappears from every cached answer set the
// moment RemoveGraph returns, and an exact hit on the affected entry
// serves the patched answers.
func TestRemoveGraphClearsAnswerBits(t *testing.T) {
	dataset := testDataset(71, 12)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Window = 1 // admit immediately
		cfg.Shards = 1
	})
	// A pattern extracted from graph 0 is guaranteed to answer with 0.
	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(3)), dataset[0], 4)
	res, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers.Contains(0) {
		t.Fatal("pattern of graph 0 should answer with graph 0")
	}
	if err := c.RemoveGraph(0); err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Entries() {
		if e.Answers().Contains(0) {
			t.Fatalf("entry %d still answers with removed graph 0", e.ID)
		}
	}
	res2, err := c.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.ExactHit {
		t.Fatal("expected an exact hit on the patched entry")
	}
	if res2.Answers.Contains(0) {
		t.Fatal("exact hit served a tombstoned answer")
	}
	// Double removal and out-of-range ids are rejected.
	if err := c.RemoveGraph(0); err == nil {
		t.Error("double removal should error")
	}
	if err := c.RemoveGraph(len(dataset) + 5); err == nil {
		t.Error("out-of-range removal should error")
	}
}

// TestAddGraphExtendsAnswers pins the addition rule: after AddGraph, a
// cached entry whose pattern is contained in the new graph answers with
// the new gid — immediately in eager mode, at the next hit in lazy mode —
// and per-query bitsets grow with the dataset.
func TestAddGraphExtendsAnswers(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			dataset := testDataset(81, 10)
			c := testCache(t, dataset, func(cfg *Config) {
				cfg.Window = 1
				cfg.Shards = 1
				cfg.LazyReconcile = lazy
			})
			q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(4)), dataset[2], 4)
			if _, err := c.Execute(q, ftv.Subgraph); err != nil {
				t.Fatal(err)
			}
			// Re-adding a copy of graph 2 guarantees the pattern embeds in
			// the new graph too.
			gid, err := c.AddGraph(dataset[2])
			if err != nil {
				t.Fatal(err)
			}
			if gid != len(dataset) {
				t.Fatalf("new gid %d, want %d", gid, len(dataset))
			}
			if !lazy {
				for _, e := range c.Entries() {
					if e.Graph == q && !e.Answers().Contains(gid) {
						t.Fatal("eager mode: entry not reconciled at mutation time")
					}
				}
			}
			res, err := c.Execute(q, ftv.Subgraph)
			if err != nil {
				t.Fatal(err)
			}
			if !res.ExactHit {
				t.Fatal("expected an exact hit")
			}
			if res.Answers.Len() != len(dataset)+1 {
				t.Fatalf("answer bitset capacity %d, want %d", res.Answers.Len(), len(dataset)+1)
			}
			if !res.Answers.Contains(gid) {
				t.Fatal("added graph missing from reconciled answers")
			}
		})
	}
}

// TestAddGraphStaticMethod pins that a method without a filter factory
// rejects additions (but still supports removals).
func TestAddGraphStaticMethod(t *testing.T) {
	dataset := testDataset(91, 6)
	method := ftv.NewMethod("label/vf2", dataset, ftv.NewLabelFilter(dataset), nil)
	c := MustNew(method, DefaultConfig())
	if _, err := c.AddGraph(dataset[0]); err == nil {
		t.Error("static method should reject AddGraph")
	}
	if err := c.RemoveGraph(0); err != nil {
		t.Errorf("static method should support RemoveGraph: %v", err)
	}
	if got := c.DatasetInfo().Live; got != len(dataset)-1 {
		t.Errorf("live count %d after removal, want %d", got, len(dataset)-1)
	}
}
