//go:build race

package core

// raceEnabled reports whether the race detector is compiled in.
// Allocation accounting is distorted by its instrumentation, so the
// alloc-budget regression tests skip themselves under -race.
const raceEnabled = true
