package core

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

func circuitDataset(seed int64, count int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.Circuits(rng, count, gen.DefaultCircuitConfig())
}

// End-to-end correctness of the generalization: the full cache pipeline
// over a directed, edge-labelled dataset, cross-checked against the
// uncached method on every query.
func TestCacheCorrectnessDirectedCircuits(t *testing.T) {
	dataset := circuitDataset(51, 30)
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.SelfCheck = true
	cfg.Window = 5
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(52))
	wires := gen.NewUniformLabelSampler(3)
	var queries []gen.Query
	// Subgraph chains (fragment ⊑ block), supergraph augments, repeats.
	for i := 0; i < 20; i++ {
		src := dataset[rng.Intn(len(dataset))]
		block := gen.ExtractConnectedSubgraph(rng, src, 6)
		frag := gen.ExtractConnectedSubgraph(rng, block, 3)
		queries = append(queries,
			gen.Query{G: block, Type: ftv.Subgraph},
			gen.Query{G: frag, Type: ftv.Subgraph},
			gen.Query{G: block, Type: ftv.Subgraph}, // resubmission
			gen.Query{G: gen.Augment(rng, src, 2, 1, wires), Type: ftv.Supergraph},
		)
	}
	subHits, superHits, exact := 0, 0, 0
	for i, q := range queries {
		res, err := c.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		base := method.Run(q.G, q.Type)
		if !res.Answers.Equal(base.Answers) {
			t.Fatalf("query %d: directed answers diverge", i)
		}
		subHits += res.SubHitCount()
		superHits += res.SuperHitCount()
		if res.ExactHit {
			exact++
		}
	}
	if exact == 0 {
		t.Error("no exact hits on resubmitted circuit queries")
	}
	if subHits+superHits == 0 {
		t.Error("no sub/super hits on chained circuit queries")
	}
}

func TestDirectedFeaturesDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		c := gen.Circuit(rng, gen.DefaultCircuitConfig())
		q := gen.ExtractConnectedSubgraph(rng, c, 2+rng.Intn(5))
		fq := pathFeatures(q, 2)
		fc := pathFeatures(c, 2)
		if !fq.dominatedBy(fc) {
			t.Fatalf("trial %d: directed pattern features not dominated by source's", trial)
		}
	}
}

func TestDirectedExactMatchAcrossOrientation(t *testing.T) {
	// Two circuits identical except for one arc's direction must not
	// exact-match.
	mk := func(rev bool) *graph.Graph {
		b := graph.NewBuilder(3).Directed().SetLabels([]graph.Label{1, 2, 3})
		b.AddLabeledEdge(0, 1, 1)
		if rev {
			b.AddLabeledEdge(2, 1, 1)
		} else {
			b.AddLabeledEdge(1, 2, 1)
		}
		return b.MustBuild()
	}
	dataset := circuitDataset(54, 10)
	method := ftv.NewGGSXMethod(dataset, 2)
	cfg := DefaultConfig()
	cfg.Window = 1
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(mk(false), ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(mk(true), ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactHit {
		t.Error("orientation-differing queries must not exact-match")
	}
}
