package core

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// Hot-path microbenchmarks for the three Execute classes — exact hit,
// indexed miss, sub/super hit — with allocation reporting. These are the
// profiles behind the hot-path memory discipline (see doc.go): run with
//
//	go test -bench 'BenchmarkExecute' -benchmem ./internal/core/
//
// and compare allocs/op across changes. The companion alloc_test.go pins
// hard budgets so regressions fail in CI, not in a profile nobody reads.

// benchStreams bundles a warmed cache with pre-generated query streams
// whose members are pairwise non-isomorphic (distinct WL fingerprints), so
// cycling through a stream never turns a miss into an exact hit until the
// stream wraps.
type benchStreams struct {
	cache *Cache
	// exact is a query already staged in the cache: re-executing it takes
	// the exact-hit fast path.
	exact *graph.Graph
	// misses are distinct patterns extracted from distinct dataset graphs:
	// executing stream members in order exercises the full miss pipeline
	// (filter, hit detection, verification, admission).
	misses []*graph.Graph
	// subhits are distinct proper subgraphs of anchor, a large cached
	// pattern: each one misses exact match but collects a sub-case hit.
	subhits []*graph.Graph
}

func newBenchStreams(tb testing.TB, datasetSize, streamLen int, mutate func(*Config)) *benchStreams {
	tb.Helper()
	rng := rand.New(rand.NewSource(97))
	dataset := gen.Molecules(rng, datasetSize, gen.DefaultMoleculeConfig())
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.Capacity = 256
	cfg.Window = 16
	if mutate != nil {
		cfg = DefaultConfig()
		cfg.Capacity = 256
		cfg.Window = 16
		mutate(&cfg)
	}
	c, err := New(method, cfg)
	if err != nil {
		tb.Fatal(err)
	}

	seen := map[graph.Fingerprint]bool{}
	distinct := func(g *graph.Graph) bool {
		fp := g.WLFingerprint(3)
		if seen[fp] {
			return false
		}
		seen[fp] = true
		return true
	}

	// The anchor: one large pattern, executed so it is cached (pending or
	// admitted — findExact consults both), whose subgraphs sub-hit it.
	anchor := gen.ExtractConnectedSubgraph(rng, dataset[0], 14)
	distinct(anchor)
	if _, err := c.Execute(anchor, ftv.Subgraph); err != nil {
		tb.Fatal(err)
	}

	bs := &benchStreams{cache: c, exact: anchor}
	for i := 1; len(bs.misses) < streamLen && i < 64*streamLen; i++ {
		src := dataset[i%len(dataset)]
		g := gen.ExtractConnectedSubgraph(rng, src, 4+rng.Intn(8))
		if distinct(g) {
			bs.misses = append(bs.misses, g)
		}
	}
	// A small anchor has a bounded space of distinct subgraphs, so this
	// stream is best-effort: stop after a fixed attempt budget and let
	// callers cycle whatever was found.
	for i := 0; len(bs.subhits) < streamLen && i < 64*streamLen; i++ {
		g := gen.ExtractConnectedSubgraph(rng, anchor, 3+rng.Intn(6))
		if distinct(g) {
			bs.subhits = append(bs.subhits, g)
		}
	}
	if len(bs.misses) == 0 || len(bs.subhits) == 0 {
		tb.Fatal("bench stream generation produced no distinct patterns")
	}
	return bs
}

func BenchmarkExecuteExactHit(b *testing.B) {
	bs := newBenchStreams(b, 200, 1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bs.cache.Execute(bs.exact, ftv.Subgraph)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ExactHit {
			b.Fatal("expected an exact hit")
		}
	}
}

func BenchmarkExecuteIndexedMiss(b *testing.B) {
	bs := newBenchStreams(b, 200, 2048, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.cache.Execute(bs.misses[i%len(bs.misses)], ftv.Subgraph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSubSuperHit(b *testing.B) {
	bs := newBenchStreams(b, 200, 2048, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.cache.Execute(bs.subhits[i%len(bs.subhits)], ftv.Subgraph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteMissSerialized is the pre-sharding engine on the miss
// stream — the baseline that shows what the lock-striped kernel and the
// allocation discipline buy on one thread.
func BenchmarkExecuteMissSerialized(b *testing.B) {
	bs := newBenchStreams(b, 200, 2048, func(cfg *Config) {
		cfg.Shards = 1
		cfg.Serialized = true
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.cache.Execute(bs.misses[i%len(bs.misses)], ftv.Subgraph); err != nil {
			b.Fatal(err)
		}
	}
}
