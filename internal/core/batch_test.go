package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// streamReqs builds a small mixed request batch over the dataset.
func streamReqs(t *testing.T, dataset []*gen.Query) []Request {
	t.Helper()
	reqs := make([]Request, len(dataset))
	for i, q := range dataset {
		reqs[i] = Request{Graph: q.G, Type: q.Type}
	}
	return reqs
}

// Every request must be delivered exactly once, tagged with its index,
// and the channel must close when the batch drains — under a worker pool.
func TestExecuteAllStreamDeliversAll(t *testing.T) {
	dataset := testDataset(101, 25)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 10
		cfg.Window = 4
		cfg.SelfCheck = false
	})
	w, err := gen.NewWorkload(rand.New(rand.NewSource(102)), dataset, gen.WorkloadConfig{
		Size: 40, Mixed: true, PoolSize: 15,
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*gen.Query, len(w.Queries))
	for i := range w.Queries {
		queries[i] = &w.Queries[i]
	}
	reqs := streamReqs(t, queries)

	seen := make([]bool, len(reqs))
	n := 0
	for so := range c.ExecuteAllStream(reqs, 4) {
		if so.Index < 0 || so.Index >= len(reqs) {
			t.Fatalf("outcome index %d out of range", so.Index)
		}
		if seen[so.Index] {
			t.Fatalf("index %d delivered twice", so.Index)
		}
		seen[so.Index] = true
		n++
		if so.Err != nil {
			t.Fatalf("query %d: %v", so.Index, so.Err)
		}
		base := c.Method().Run(reqs[so.Index].Graph, reqs[so.Index].Type)
		if !base.Answers.Equal(so.Result.Answers) {
			t.Fatalf("query %d: streamed answers diverge from base", so.Index)
		}
	}
	if n != len(reqs) {
		t.Fatalf("delivered %d outcomes, want %d", n, len(reqs))
	}
}

// workers < 2 must stream sequentially in submission order, with errors
// delivered positionally and the rest of the batch unharmed.
func TestExecuteAllStreamSequentialOrder(t *testing.T) {
	dataset := testDataset(103, 12)
	c := testCache(t, dataset, nil)
	reqs := []Request{
		{Graph: dataset[0], Type: ftv.Subgraph},
		{Graph: nil, Type: ftv.Subgraph}, // must fail positionally
		{Graph: dataset[1], Type: ftv.Supergraph},
	}
	want := 0
	for so := range c.ExecuteAllStream(reqs, 1) {
		if so.Index != want {
			t.Fatalf("sequential stream delivered index %d, want %d", so.Index, want)
		}
		want++
		if so.Index == 1 {
			if so.Err == nil {
				t.Error("nil graph should error")
			}
		} else if so.Err != nil {
			t.Errorf("query %d: %v", so.Index, so.Err)
		}
	}
	if want != 3 {
		t.Fatalf("delivered %d outcomes, want 3", want)
	}
}

// An empty batch closes immediately.
func TestExecuteAllStreamEmpty(t *testing.T) {
	dataset := testDataset(104, 8)
	c := testCache(t, dataset, nil)
	if _, ok := <-c.ExecuteAllStream(nil, 4); ok {
		t.Fatal("empty batch delivered an outcome")
	}
}

// An abandoned consumer must not wedge the workers: the channel is
// buffered to the batch size, so the batch drains (and its queries count)
// even when nobody reads.
func TestExecuteAllStreamAbandonedConsumer(t *testing.T) {
	dataset := testDataset(105, 10)
	c := testCache(t, dataset, nil)
	reqs := []Request{
		{Graph: dataset[0], Type: ftv.Subgraph},
		{Graph: dataset[1], Type: ftv.Subgraph},
		{Graph: dataset[2], Type: ftv.Subgraph},
	}
	ch := c.ExecuteAllStream(reqs, 2)
	// Read exactly one outcome, then walk away.
	<-ch
	// ExecuteAll on the same cache proves the kernel is not wedged.
	outs := c.ExecuteAll(reqs, 2)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("follow-up batch query %d: %v", i, o.Err)
		}
	}
}

// The outcome channel's buffer must be bounded by min(len(reqs),
// 4×workers) — not the batch size — so giant batches don't allocate
// giant buffers up front.
func TestExecuteAllStreamBufferBound(t *testing.T) {
	dataset := testDataset(105, 10)
	c := testCache(t, dataset, nil)
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Graph: dataset[i%len(dataset)], Type: ftv.Subgraph}
	}
	ch := c.ExecuteAllStreamContext(context.Background(), reqs, 3)
	if got, want := cap(ch), 12; got != want {
		t.Errorf("worker-pool buffer = %d, want %d", got, want)
	}
	for range ch {
	}
	ch = c.ExecuteAllStreamContext(context.Background(), reqs[:2], 8)
	if got, want := cap(ch), 2; got != want {
		t.Errorf("small-batch buffer = %d, want len(reqs) = %d", got, want)
	}
	for range ch {
	}
	ch = c.ExecuteAllStreamContext(context.Background(), reqs, 0)
	if got, want := cap(ch), 4; got != want {
		t.Errorf("sequential buffer = %d, want %d", got, want)
	}
	for range ch {
	}
}

// A consumer that stops reading AND cancels the context must never wedge
// the workers: with a batch far larger than the bounded buffer, the pool
// has to drain and close the channel after cancellation — the documented
// ExecuteAllStreamContext invariant.
func TestExecuteAllStreamCancelledConsumerDrains(t *testing.T) {
	dataset := testDataset(105, 10)
	c := testCache(t, dataset, nil)
	reqs := make([]Request, 96)
	for i := range reqs {
		reqs[i] = Request{Graph: dataset[i%len(dataset)], Type: ftv.Subgraph}
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		ch := c.ExecuteAllStreamContext(ctx, reqs, workers)
		<-ch // consume one outcome, then abandon
		cancel()
		closed := make(chan struct{})
		go func() {
			// Drain whatever straggler outcomes were already buffered and
			// wait for the close — it must arrive without further reads
			// being needed by the workers.
			for range ch {
			}
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: channel did not close after cancel", workers)
		}
	}
	// The kernel must remain usable after the cancelled batches.
	outs := c.ExecuteAll(reqs[:3], 2)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("follow-up batch query %d: %v", i, o.Err)
		}
	}
}
