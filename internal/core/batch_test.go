package core

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// streamReqs builds a small mixed request batch over the dataset.
func streamReqs(t *testing.T, dataset []*gen.Query) []Request {
	t.Helper()
	reqs := make([]Request, len(dataset))
	for i, q := range dataset {
		reqs[i] = Request{Graph: q.G, Type: q.Type}
	}
	return reqs
}

// Every request must be delivered exactly once, tagged with its index,
// and the channel must close when the batch drains — under a worker pool.
func TestExecuteAllStreamDeliversAll(t *testing.T) {
	dataset := testDataset(101, 25)
	c := testCache(t, dataset, func(cfg *Config) {
		cfg.Capacity = 10
		cfg.Window = 4
		cfg.SelfCheck = false
	})
	w, err := gen.NewWorkload(rand.New(rand.NewSource(102)), dataset, gen.WorkloadConfig{
		Size: 40, Mixed: true, PoolSize: 15,
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*gen.Query, len(w.Queries))
	for i := range w.Queries {
		queries[i] = &w.Queries[i]
	}
	reqs := streamReqs(t, queries)

	seen := make([]bool, len(reqs))
	n := 0
	for so := range c.ExecuteAllStream(reqs, 4) {
		if so.Index < 0 || so.Index >= len(reqs) {
			t.Fatalf("outcome index %d out of range", so.Index)
		}
		if seen[so.Index] {
			t.Fatalf("index %d delivered twice", so.Index)
		}
		seen[so.Index] = true
		n++
		if so.Err != nil {
			t.Fatalf("query %d: %v", so.Index, so.Err)
		}
		base := c.Method().Run(reqs[so.Index].Graph, reqs[so.Index].Type)
		if !base.Answers.Equal(so.Result.Answers) {
			t.Fatalf("query %d: streamed answers diverge from base", so.Index)
		}
	}
	if n != len(reqs) {
		t.Fatalf("delivered %d outcomes, want %d", n, len(reqs))
	}
}

// workers < 2 must stream sequentially in submission order, with errors
// delivered positionally and the rest of the batch unharmed.
func TestExecuteAllStreamSequentialOrder(t *testing.T) {
	dataset := testDataset(103, 12)
	c := testCache(t, dataset, nil)
	reqs := []Request{
		{Graph: dataset[0], Type: ftv.Subgraph},
		{Graph: nil, Type: ftv.Subgraph}, // must fail positionally
		{Graph: dataset[1], Type: ftv.Supergraph},
	}
	want := 0
	for so := range c.ExecuteAllStream(reqs, 1) {
		if so.Index != want {
			t.Fatalf("sequential stream delivered index %d, want %d", so.Index, want)
		}
		want++
		if so.Index == 1 {
			if so.Err == nil {
				t.Error("nil graph should error")
			}
		} else if so.Err != nil {
			t.Errorf("query %d: %v", so.Index, so.Err)
		}
	}
	if want != 3 {
		t.Fatalf("delivered %d outcomes, want 3", want)
	}
}

// An empty batch closes immediately.
func TestExecuteAllStreamEmpty(t *testing.T) {
	dataset := testDataset(104, 8)
	c := testCache(t, dataset, nil)
	if _, ok := <-c.ExecuteAllStream(nil, 4); ok {
		t.Fatal("empty batch delivered an outcome")
	}
}

// An abandoned consumer must not wedge the workers: the channel is
// buffered to the batch size, so the batch drains (and its queries count)
// even when nobody reads.
func TestExecuteAllStreamAbandonedConsumer(t *testing.T) {
	dataset := testDataset(105, 10)
	c := testCache(t, dataset, nil)
	reqs := []Request{
		{Graph: dataset[0], Type: ftv.Subgraph},
		{Graph: dataset[1], Type: ftv.Subgraph},
		{Graph: dataset[2], Type: ftv.Subgraph},
	}
	ch := c.ExecuteAllStream(reqs, 2)
	// Read exactly one outcome, then walk away.
	<-ch
	// ExecuteAll on the same cache proves the kernel is not wedged.
	outs := c.ExecuteAll(reqs, 2)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("follow-up batch query %d: %v", i, o.Err)
		}
	}
}
