package core

import (
	"sync"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Request is one query in a batch submission.
type Request struct {
	// Graph is the pattern graph.
	Graph *graph.Graph
	// Type is the query semantics.
	Type ftv.QueryType
}

// Outcome pairs one batch query's Result with its error; exactly one of
// the two is set.
type Outcome struct {
	Result *Result
	Err    error
}

// StreamOutcome is one streamed batch outcome: the position of the query
// in the submitted slice plus its Outcome fields.
type StreamOutcome struct {
	Index  int
	Result *Result
	Err    error
}

// ExecuteAllStream processes a batch of queries through the cache with a
// pool of workers goroutines, delivering each outcome on the returned
// channel as soon as its query finishes — the streaming pipeline behind
// POST /api/query/batch?stream=1. Outcomes arrive in completion order,
// tagged with the request index; the channel is closed once the whole
// batch has drained. The channel is buffered to the batch size, so an
// abandoned consumer never wedges the workers. workers < 2 executes the
// batch sequentially (on one goroutine, still streaming) in submission
// order — useful when reproducibility of cache contents matters more than
// throughput, since concurrent submission makes admission order
// scheduling-dependent. Individual answer sets are exact either way.
func (c *Cache) ExecuteAllStream(reqs []Request, workers int) <-chan StreamOutcome {
	out := make(chan StreamOutcome, len(reqs))
	if len(reqs) == 0 {
		close(out)
		return out
	}
	if workers < 2 || len(reqs) == 1 {
		go func() {
			defer close(out)
			for i, r := range reqs {
				res, err := c.Execute(r.Graph, r.Type)
				out <- StreamOutcome{Index: i, Result: res, Err: err}
			}
		}()
		return out
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := c.Execute(reqs[i].Graph, reqs[i].Type)
				out <- StreamOutcome{Index: i, Result: res, Err: err}
			}
		}()
	}
	go func() {
		for i := range reqs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	return out
}

// ExecuteAll processes a batch of queries through the cache with a pool of
// workers goroutines, returning outcomes positionally (outcome i belongs
// to reqs[i]) once the whole batch has drained. It is the collecting
// wrapper over ExecuteAllStream; use the stream directly to pipeline
// results as they finish. workers < 2 executes the batch sequentially in
// submission order.
func (c *Cache) ExecuteAll(reqs []Request, workers int) []Outcome {
	out := make([]Outcome, len(reqs))
	for so := range c.ExecuteAllStream(reqs, workers) {
		out[so.Index] = Outcome{Result: so.Result, Err: so.Err}
	}
	return out
}
