package core

import (
	"context"
	"sync"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Request is one query in a batch submission.
type Request struct {
	// Graph is the pattern graph.
	Graph *graph.Graph
	// Type is the query semantics.
	Type ftv.QueryType
}

// Outcome pairs one batch query's Result with its error; exactly one of
// the two is set.
type Outcome struct {
	Result *Result
	Err    error
}

// StreamOutcome is one streamed batch outcome: the position of the query
// in the submitted slice plus its Outcome fields.
type StreamOutcome struct {
	Index  int
	Result *Result
	Err    error
}

// ExecuteAllStream processes a batch of queries through the cache with a
// pool of workers goroutines, delivering each outcome on the returned
// channel as soon as its query finishes — the streaming pipeline behind
// POST /api/query/batch?stream=1. Outcomes arrive in completion order,
// tagged with the request index; the channel is closed once the whole
// batch has drained. The channel buffer is bounded (it does NOT scale
// with the batch size — see ExecuteAllStreamContext), so the caller must
// consume the channel to completion; a consumer that may abandon the
// stream early should use ExecuteAllStreamContext and cancel the context
// instead. workers < 2 executes the batch sequentially (on one
// goroutine, still streaming) in submission order — useful when
// reproducibility of cache contents matters more than throughput, since
// concurrent submission makes admission order scheduling-dependent.
// Individual answer sets are exact either way.
func (c *Cache) ExecuteAllStream(reqs []Request, workers int) <-chan StreamOutcome {
	//gclint:ignore ctxflow -- compatibility wrapper kept for context-free callers; an uncancellable batch is its documented contract
	return c.ExecuteAllStreamContext(context.Background(), reqs, workers)
}

// streamBufferFor bounds the outcome-channel buffer: enough slack that
// workers rarely block on a healthy consumer (4 outcomes per worker),
// never more than the batch itself, and O(workers) regardless of batch
// size — a 100k-query batch no longer allocates a 100k-slot channel up
// front.
func streamBufferFor(reqs, workers int) int {
	if workers < 1 {
		workers = 1
	}
	buf := 4 * workers
	if buf > reqs {
		buf = reqs
	}
	return buf
}

// sendOutcome delivers one outcome on out, honoring the delivery
// contract: a finished query's outcome is delivered whenever buffer
// space (or a reader) is available — even after cancellation — and is
// dropped only when the buffer is full AND the context is cancelled.
// The eager non-blocking attempt keeps the select below from randomly
// preferring an already-cancelled Done over a send that would have
// succeeded immediately. Reports whether the outcome was delivered.
func sendOutcome(ctx context.Context, out chan<- StreamOutcome, so StreamOutcome) bool {
	select {
	case out <- so:
		return true
	default:
	}
	// The bounded buffer means this send can block on a slow consumer;
	// racing it against ctx.Done keeps the abandoned-consumer guarantee
	// — cancel and the outcome is dropped, never wedging the pool.
	select {
	case out <- so:
		return true
	case <-ctx.Done():
		return false
	}
}

// ExecuteAllStreamContext is ExecuteAllStream bounded by a context: once
// ctx is cancelled, no further query is dispatched — queries already
// executing run to completion (Execute is not interruptible mid-iso-test)
// and deliver their outcomes, then the channel closes without the
// remaining queries ever reaching the cache. The HTTP layer threads the
// request context through here so a disconnected NDJSON client stops the
// batch instead of burning verification work nobody will read.
//
// Invariant: the outcome channel is buffered to min(len(reqs),
// 4×workers), not to the batch size, so workers may block on a slow
// consumer — but every outcome send races ctx.Done (sendOutcome), so a
// consumer that stops reading AND cancels the context never wedges the
// workers: an in-flight query's outcome is still delivered if buffer
// space remains, dropped otherwise, the pool drains, and the channel
// closes. A consumer without a cancellable context must drain the
// channel (as ExecuteAll does).
func (c *Cache) ExecuteAllStreamContext(ctx context.Context, reqs []Request, workers int) <-chan StreamOutcome {
	out := make(chan StreamOutcome, streamBufferFor(len(reqs), workers))
	if len(reqs) == 0 {
		close(out)
		return out
	}
	if workers < 2 || len(reqs) == 1 {
		go func() {
			defer close(out)
			for i, r := range reqs {
				if ctx.Err() != nil {
					return
				}
				res, err := c.Execute(r.Graph, r.Type)
				if !sendOutcome(ctx, out, StreamOutcome{Index: i, Result: res, Err: err}) {
					return
				}
			}
		}()
		return out
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A job the dispatcher handed over in the same instant the
				// context died is dropped, not executed: cancellation wins
				// every dispatch race.
				if ctx.Err() != nil {
					continue
				}
				res, err := c.Execute(reqs[i].Graph, reqs[i].Type)
				sendOutcome(ctx, out, StreamOutcome{Index: i, Result: res, Err: err})
			}
		}()
	}
	go func() {
		// The dispatcher races job handoff against cancellation, so a
		// cancelled batch stops after the in-flight queries — the jobs
		// channel is unbuffered, hence every send is an actual pickup. The
		// Err pre-check gives cancellation priority over the select's
		// random choice when a worker is already waiting for the next job.
		for i := range reqs {
			if ctx.Err() != nil {
				break
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	return out
}

// ExecuteAll processes a batch of queries through the cache with a pool of
// workers goroutines, returning outcomes positionally (outcome i belongs
// to reqs[i]) once the whole batch has drained. It is the collecting
// wrapper over ExecuteAllStream; use the stream directly to pipeline
// results as they finish. workers < 2 executes the batch sequentially in
// submission order.
func (c *Cache) ExecuteAll(reqs []Request, workers int) []Outcome {
	out := make([]Outcome, len(reqs))
	for so := range c.ExecuteAllStream(reqs, workers) {
		out[so.Index] = Outcome{Result: so.Result, Err: so.Err}
	}
	return out
}
