package core

import (
	"sync"

	"graphcache/internal/ftv"
	"graphcache/internal/graph"
)

// Request is one query in a batch submission.
type Request struct {
	// Graph is the pattern graph.
	Graph *graph.Graph
	// Type is the query semantics.
	Type ftv.QueryType
}

// Outcome pairs one batch query's Result with its error; exactly one of
// the two is set.
type Outcome struct {
	Result *Result
	Err    error
}

// ExecuteAll processes a batch of queries through the cache with a pool of
// workers goroutines, returning outcomes positionally (outcome i belongs
// to reqs[i]). workers < 2 executes the batch sequentially on the calling
// goroutine — useful when reproducibility of cache contents matters more
// than throughput, since concurrent submission makes admission order
// scheduling-dependent. Individual answer sets are exact either way.
func (c *Cache) ExecuteAll(reqs []Request, workers int) []Outcome {
	out := make([]Outcome, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if workers < 2 || len(reqs) == 1 {
		for i, r := range reqs {
			res, err := c.Execute(r.Graph, r.Type)
			out[i] = Outcome{Result: res, Err: err}
		}
		return out
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := c.Execute(reqs[i].Graph, reqs[i].Type)
				out[i] = Outcome{Result: res, Err: err}
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
