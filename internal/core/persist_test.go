package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

func TestStateRoundTrip(t *testing.T) {
	dataset := testDataset(71, 25)
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.Window = 2
	src, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	var queries []gen.Query
	for i := 0; i < 12; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		queries = append(queries, gen.Query{G: q, Type: ftv.Subgraph})
		if _, err := src.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if src.Len() == 0 {
		t.Fatal("no admitted entries to persist")
	}

	var buf bytes.Buffer
	if err := src.WriteState(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d entries, want %d", dst.Len(), src.Len())
	}

	// Every admitted query must now exact-hit on the restored cache with
	// identical answers.
	srcEntries := src.Entries()
	for _, e := range srcEntries {
		res, err := dst.Execute(e.Graph, e.Type)
		if err != nil {
			t.Fatal(err)
		}
		if !res.ExactHit {
			t.Fatalf("restored cache missed entry %d", e.ID)
		}
		if !res.Answers.Equal(e.Answers) {
			t.Fatalf("restored answers differ for entry %d", e.ID)
		}
	}
	// Utility counters survive the round trip: every restored entry's hit
	// count is at least its persisted value (the exact-hit loop above only
	// adds).
	for _, d := range dst.Entries() {
		for _, s := range srcEntries {
			if s.Fingerprint == d.Fingerprint && d.Hits < s.Hits {
				t.Fatalf("entry hit counter shrank through persistence: %d < %d", d.Hits, s.Hits)
			}
		}
	}
}

func TestStateRejectsMismatchedDataset(t *testing.T) {
	datasetA := testDataset(73, 10)
	datasetB := testDataset(74, 12)
	a, err := New(ftv.NewGGSXMethod(datasetA, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(ftv.NewGGSXMethod(datasetB, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadState(&buf); err == nil {
		t.Error("mismatched dataset size should be rejected")
	}
}

func TestStateRejectsGarbage(t *testing.T) {
	dataset := testDataset(75, 5)
	c, err := New(ftv.NewGGSXMethod(dataset, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"",
		"not a header\n",
		"gcstate 99 5\n",
		"gcstate 1 5\nanswers 1 2\n",
		"gcstate 1 5\nentry 0 1 0 0 0\nanswers 900\n",
		"gcstate 1 5\nentry 0 x 0 0 0\n",
	}
	for i, in := range cases {
		if err := c.ReadState(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage state accepted", i)
		}
	}
}

func TestStateCapacityEnforcedOnLoad(t *testing.T) {
	dataset := testDataset(76, 20)
	method := ftv.NewGGSXMethod(dataset, 3)
	bigCfg := DefaultConfig()
	bigCfg.Capacity = 50
	bigCfg.Window = 1
	big, err := New(method, bigCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%4)
		if _, err := big.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := big.WriteState(&buf); err != nil {
		t.Fatal(err)
	}

	smallCfg := DefaultConfig()
	smallCfg.Capacity = 3
	small, err := New(method, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	if small.Len() > 3 {
		t.Errorf("restored cache exceeds capacity: %d", small.Len())
	}
}

func TestStateDirectedEntries(t *testing.T) {
	dataset := circuitDataset(78, 15)
	method := ftv.NewGGSXMethod(dataset, 2)
	cfg := DefaultConfig()
	cfg.Window = 1
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 4)
	if _, err := c.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := restored.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactHit {
		t.Error("directed entry lost through persistence")
	}
}
