package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

func TestStateRoundTrip(t *testing.T) {
	dataset := testDataset(71, 25)
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.Window = 2
	src, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	var queries []gen.Query
	for i := 0; i < 12; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%5)
		queries = append(queries, gen.Query{G: q, Type: ftv.Subgraph})
		if _, err := src.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if src.Len() == 0 {
		t.Fatal("no admitted entries to persist")
	}

	var buf bytes.Buffer
	if err := src.WriteState(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ReadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d entries, want %d", dst.Len(), src.Len())
	}

	// Every admitted query must now exact-hit on the restored cache with
	// identical answers.
	srcEntries := src.Entries()
	for _, e := range srcEntries {
		res, err := dst.Execute(e.Graph, e.Type)
		if err != nil {
			t.Fatal(err)
		}
		if !res.ExactHit {
			t.Fatalf("restored cache missed entry %d", e.ID)
		}
		if !res.Answers.Equal(e.Answers()) {
			t.Fatalf("restored answers differ for entry %d", e.ID)
		}
	}
	// Utility counters survive the round trip: every restored entry's hit
	// count is at least its persisted value (the exact-hit loop above only
	// adds).
	for _, d := range dst.Entries() {
		for _, s := range srcEntries {
			if s.Fingerprint == d.Fingerprint && d.Hits < s.Hits {
				t.Fatalf("entry hit counter shrank through persistence: %d < %d", d.Hits, s.Hits)
			}
		}
	}
}

func TestStateRejectsMismatchedDataset(t *testing.T) {
	datasetA := testDataset(73, 10)
	datasetB := testDataset(74, 12)
	a, err := New(ftv.NewGGSXMethod(datasetA, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(ftv.NewGGSXMethod(datasetB, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadState(&buf); err == nil {
		t.Error("mismatched dataset size should be rejected")
	}
}

func TestStateRejectsGarbage(t *testing.T) {
	dataset := testDataset(75, 5)
	c, err := New(ftv.NewGGSXMethod(dataset, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"",
		"not a header\n",
		"gcstate 99 5\n",
		"gcstate 1 5\nanswers 1 2\n", // version-1 states are refused
		"gcstate 1 5\nentry 0 1 0 0 0\nanswers 900\n",
		"gcstate 1 5\nentry 0 x 0 0 0\n",
		"gcstate 2 5 0\n",                                        // missing end trailer
		"gcstate 2 5 1\nend\n",                                   // fewer entries than declared
		"gcstate 2 5 1\nentry 9 2 1 0 0 0 0\n",                   // unknown query type
		"gcstate 2 5 1\nentry 0 2 1 0 0 0 0\nanswers 2 1\nend\n", // answers count mismatch
	}
	for i, in := range cases {
		if err := c.ReadState(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage state accepted", i)
		}
		if c.Len() != 0 {
			t.Fatalf("case %d: failed restore left %d entries behind", i, c.Len())
		}
	}

	// Old-format files must get the actionable version diagnostic, not a
	// generic header complaint.
	err = c.ReadState(strings.NewReader("gcstate 1 5\nentry 0 1 0 0 0\n"))
	if err == nil || !strings.Contains(err.Error(), "unsupported state version 1") {
		t.Errorf("version-1 state: want version error, got %v", err)
	}
}

// validState builds a warm cache and returns its serialized state along
// with the cache (for content comparisons).
func validState(t *testing.T, seed int64) (string, *Cache) {
	t.Helper()
	dataset := testDataset(seed, 20)
	method := ftv.NewGGSXMethod(dataset, 3)
	cfg := DefaultConfig()
	cfg.Window = 2
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < 10; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%4)
		if _, err := c.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() < 3 {
		t.Fatalf("only %d admitted entries; corruption sweep needs more", c.Len())
	}
	var buf bytes.Buffer
	if err := c.WriteStateV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), c
}

// Every proper prefix of a valid state — cut at line boundaries and at
// arbitrary byte offsets — must be rejected with a line-numbered error and
// leave the cache empty, never partially populated.
func TestStateTruncationRejectedEverywhere(t *testing.T) {
	state, src := validState(t, 81)
	method := src.Method()
	fresh := func() *Cache {
		cfg := DefaultConfig()
		cfg.Window = 2
		return MustNew(method, cfg)
	}

	var cuts []int
	for i, ch := range state {
		if ch == '\n' {
			cuts = append(cuts, i, i+1) // just before and just after each newline
		}
	}
	for off := 0; off < len(state); off += 37 { // arbitrary mid-line offsets
		cuts = append(cuts, off)
	}
	full := strings.TrimSuffix(state, "\n")
	for _, cut := range cuts {
		if cut >= len(state) {
			continue
		}
		if state[:cut] == full {
			continue // only the final newline is missing: content is complete
		}
		c := fresh()
		err := c.ReadState(strings.NewReader(state[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d/%d accepted:\n%q", cut, len(state), tail(state[:cut]))
		}
		if !strings.Contains(err.Error(), "line") {
			t.Errorf("truncation at byte %d: error lacks a line number: %v", cut, err)
		}
		if c.Len() != 0 || c.WindowLen() != 0 {
			t.Fatalf("truncation at byte %d: cache partially populated (%d entries)", cut, c.Len())
		}
	}
	// The full state still loads.
	c := fresh()
	if err := c.ReadState(strings.NewReader(state)); err != nil {
		t.Fatalf("uncorrupted state rejected: %v", err)
	}
	if c.Len() != src.Len() {
		t.Fatalf("restored %d entries, want %d", c.Len(), src.Len())
	}
}

// tail returns the last ~2 lines of s for failure messages.
func tail(s string) string {
	if len(s) > 80 {
		s = s[len(s)-80:]
	}
	return s
}

// Field-level corruption — flipped digits, wrong counts, out-of-range ids —
// must be rejected with the offending line identified.
func TestStateFieldCorruptionRejected(t *testing.T) {
	state, _ := validState(t, 83)
	lines := strings.SplitAfter(state, "\n")
	corrupt := func(mutate func([]string) bool) string {
		ls := append([]string(nil), lines...)
		if !mutate(ls) {
			return ""
		}
		return strings.Join(ls, "")
	}
	mutations := map[string]func([]string) bool{
		"entry-vertex-count": func(ls []string) bool {
			for i, l := range ls {
				if strings.HasPrefix(l, "entry ") {
					f := strings.Fields(l)
					f[2] = "99" // declared vertices no longer match the graph
					ls[i] = strings.Join(f, " ") + "\n"
					return true
				}
			}
			return false
		},
		"answers-count": func(ls []string) bool {
			for i, l := range ls {
				if strings.HasPrefix(l, "answers ") {
					f := strings.Fields(l)
					f[1] = "999"
					ls[i] = strings.Join(f, " ") + "\n"
					return true
				}
			}
			return false
		},
		"answer-id-range": func(ls []string) bool {
			for i, l := range ls {
				f := strings.Fields(l)
				if len(f) >= 3 && f[0] == "answers" {
					f[2] = "100000"
					ls[i] = strings.Join(f, " ") + "\n"
					return true
				}
			}
			return false
		},
		"header-entry-count": func(ls []string) bool {
			ls[0] = "gcstate 2 20 99\n"
			return true
		},
		"dropped-graph-line": func(ls []string) bool {
			for i, l := range ls {
				if strings.HasPrefix(l, "v ") {
					ls[i] = ""
					return true
				}
			}
			return false
		},
		"dropped-edge-line": func(ls []string) bool {
			for i, l := range ls {
				if strings.HasPrefix(l, "e ") {
					ls[i] = ""
					return true
				}
			}
			return false
		},
		"dropped-answers-line": func(ls []string) bool {
			for i, l := range ls {
				if strings.HasPrefix(l, "answers ") {
					ls[i] = ""
					return true
				}
			}
			return false
		},
		"duplicated-answers-line": func(ls []string) bool {
			for i, l := range ls {
				if strings.HasPrefix(l, "answers ") {
					ls[i] = l + l
					return true
				}
			}
			return false
		},
	}
	method := ftv.NewGGSXMethod(testDataset(83, 20), 3)
	for name, mutate := range mutations {
		in := corrupt(mutate)
		if in == "" {
			t.Fatalf("%s: mutation found nothing to corrupt", name)
		}
		c := MustNew(method, DefaultConfig())
		err := c.ReadState(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: corrupt state accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error lacks a line number: %v", name, err)
		}
		if c.Len() != 0 {
			t.Errorf("%s: failed restore left %d entries behind", name, c.Len())
		}
	}
}

// A failed restore into a WARM cache must leave its previous contents
// untouched (all-or-nothing semantics).
func TestStateFailedRestoreLeavesWarmCacheIntact(t *testing.T) {
	state, warm := validState(t, 85)
	before := warm.Len()
	if before == 0 {
		t.Fatal("warm cache empty")
	}
	if err := warm.ReadState(strings.NewReader(state[:len(state)/2])); err == nil {
		t.Fatal("truncated state accepted")
	}
	if warm.Len() != before {
		t.Fatalf("failed restore changed the cache: %d entries, had %d", warm.Len(), before)
	}
	// The index still mirrors the surviving contents.
	indexed := 0
	for _, part := range warm.summariesView() {
		indexed += len(part)
	}
	if indexed != before {
		t.Fatalf("index has %d entries after failed restore, cache %d", indexed, before)
	}
}

func TestStateCapacityEnforcedOnLoad(t *testing.T) {
	dataset := testDataset(76, 20)
	method := ftv.NewGGSXMethod(dataset, 3)
	bigCfg := DefaultConfig()
	bigCfg.Capacity = 50
	bigCfg.Window = 1
	big, err := New(method, bigCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10; i++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[i%len(dataset)], 3+i%4)
		if _, err := big.Execute(q, ftv.Subgraph); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := big.WriteState(&buf); err != nil {
		t.Fatal(err)
	}

	smallCfg := DefaultConfig()
	smallCfg.Capacity = 3
	small, err := New(method, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	if small.Len() > 3 {
		t.Errorf("restored cache exceeds capacity: %d", small.Len())
	}
}

func TestStateDirectedEntries(t *testing.T) {
	dataset := circuitDataset(78, 15)
	method := ftv.NewGGSXMethod(dataset, 2)
	cfg := DefaultConfig()
	cfg.Window = 1
	c, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 4)
	if _, err := c.Execute(q, ftv.Subgraph); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(method, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := restored.Execute(q, ftv.Subgraph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactHit {
		t.Error("directed entry lost through persistence")
	}
}
