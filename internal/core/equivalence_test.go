package core

import (
	"fmt"
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// The sharding equivalence property: driven sequentially over the same
// workload with the SHARED admission window, a sharded cache must be
// indistinguishable from the serialized single-shard engine —
// byte-identical answer sets, identical hit/miss classifications,
// identical admission/eviction decisions — regardless of the shard count.
// This is what licenses the lock-striping refactor: the shards are an
// implementation detail of the kernel, never visible in its semantics.
// (The default per-shard windows deliberately relax the cache-contents
// part of this contract; TestPerShardWindowEquivalence pins what they
// preserve.)
//
// Policies here are restricted to timing-independent ones (PIN, LRU,
// FIFO, POP): PINC/HD rank victims by measured verification nanoseconds,
// which legitimately differ between two physical runs even of the very
// same engine.
func TestShardedEquivalentToSerialized(t *testing.T) {
	for _, policy := range []string{"pin", "lru", "fifo", "pop"} {
		for _, shards := range []int{2, 8, 32} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy, shards), func(t *testing.T) {
				checkShardedEquivalence(t, policy, shards, false)
			})
		}
	}
	// The IndexOff baseline scan must be just as shard-count-independent.
	for _, shards := range []int{2, 8, 32} {
		t.Run(fmt.Sprintf("pin/shards=%d/indexOff", shards), func(t *testing.T) {
			checkShardedEquivalence(t, "pin", shards, true)
		})
	}
}

func checkShardedEquivalence(t *testing.T, policy string, shards int, indexOff bool) {
	t.Helper()
	dataset := testDataset(51, 40)
	w, err := gen.NewWorkload(rand.New(rand.NewSource(52)), dataset, gen.WorkloadConfig{
		Size: 150, Mixed: true, PoolSize: 30,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	build := func(shardCount int, serialized bool) *Cache {
		p, err := NewPolicy(policy)
		if err != nil {
			t.Fatal(err)
		}
		method := ftv.NewGGSXMethod(dataset, 3)
		cfg := DefaultConfig()
		cfg.Capacity = 20 // small: plenty of window turns and evictions
		cfg.Window = 5
		cfg.Policy = p
		cfg.Shards = shardCount
		cfg.Serialized = serialized
		cfg.IndexOff = indexOff
		cfg.SharedWindow = true // the engine this contract is about
		return MustNew(method, cfg)
	}
	serial := build(1, true)
	sharded := build(shards, false)

	for i, q := range w.Queries {
		rs, err := serial.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("serial query %d: %v", i, err)
		}
		rp, err := sharded.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("sharded query %d: %v", i, err)
		}
		// Byte-identical results…
		if !rs.Answers.Equal(rp.Answers) {
			t.Fatalf("query %d: answer sets diverge", i)
		}
		if !rs.Sure.Equal(rp.Sure) || !rs.Excluded.Equal(rp.Excluded) || !rs.Survivors.Equal(rp.Survivors) {
			t.Fatalf("query %d: S/S'/R sets diverge", i)
		}
		// …and identical hit/miss classification.
		if rs.ExactHit != rp.ExactHit {
			t.Fatalf("query %d: exact-hit classification diverges (%v vs %v)", i, rs.ExactHit, rp.ExactHit)
		}
		if rs.Tests != rp.Tests || rs.BaseCandidates != rp.BaseCandidates {
			t.Fatalf("query %d: tests %d/%d vs %d/%d", i, rs.Tests, rs.BaseCandidates, rp.Tests, rp.BaseCandidates)
		}
		if len(rs.Hits) != len(rp.Hits) {
			t.Fatalf("query %d: hit counts diverge (%d vs %d)", i, len(rs.Hits), len(rp.Hits))
		}
		for j := range rs.Hits {
			if rs.Hits[j] != rp.Hits[j] {
				t.Fatalf("query %d hit %d: %+v vs %+v", i, j, rs.Hits[j], rp.Hits[j])
			}
		}
	}

	// Final cache contents must match entry for entry.
	es, ep := serial.Entries(), sharded.Entries()
	if len(es) != len(ep) {
		t.Fatalf("resident entries diverge: %d vs %d", len(es), len(ep))
	}
	for i := range es {
		if es[i].ID != ep[i].ID {
			t.Fatalf("entry %d: ID %d vs %d", i, es[i].ID, ep[i].ID)
		}
		if !es[i].Answers().Equal(ep[i].Answers()) {
			t.Fatalf("entry %d: answer sets diverge", i)
		}
		if es[i].Hits != ep[i].Hits || es[i].SavedTests != ep[i].SavedTests {
			t.Fatalf("entry %d: utilities diverge", i)
		}
	}
	if serial.Len() != sharded.Len() || serial.Bytes() != sharded.Bytes() || serial.WindowLen() != sharded.WindowLen() {
		t.Fatal("resident accounting diverges")
	}

	// Every count in the monitor must agree (times are physical, exempt).
	ss, sp := serial.Stats(), sharded.Stats()
	ss.FilterTime, ss.HitTime, ss.VerifyTime = 0, 0, 0
	sp.FilterTime, sp.HitTime, sp.VerifyTime = 0, 0, 0
	if ss != sp {
		t.Fatalf("monitor counters diverge:\nserial  %+v\nsharded %+v", ss, sp)
	}
	if ss.Evictions == 0 || ss.WindowTurns == 0 {
		t.Error("workload too tame: no evictions/window turns exercised")
	}
	if ss.ExactHits == 0 || ss.SubHits+ss.SuperHits == 0 {
		t.Error("workload too tame: no hits exercised")
	}
}

// The index equivalence property: with the feature index on, every answer
// set must be byte-identical to the IndexOff baseline's at every shard
// count — the index may only ever discard provable non-hits, so the two
// engines can classify hits differently within the VF2 attempt budget
// (and hence age different cache contents), but both always return the
// exact answer set. The index must also do strictly LESS hit-detection
// work: fewer dominance merges, no more q↔h iso tests, and a non-zero
// index-pruned count.
func TestIndexedEquivalentToUnindexed(t *testing.T) {
	dataset := testDataset(51, 40)
	w, err := gen.NewWorkload(rand.New(rand.NewSource(52)), dataset, gen.WorkloadConfig{
		Size: 150, Mixed: true, PoolSize: 30,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	method := ftv.NewGGSXMethod(dataset, 3)
	build := func(shards int, indexOff bool) *Cache {
		p, err := NewPolicy("pin") // timing-independent: runs are reproducible
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Capacity = 20
		cfg.Window = 5
		cfg.Policy = p
		cfg.Shards = shards
		cfg.IndexOff = indexOff
		// Shared window: cache contents are then identical at every shard
		// count, so the indexed-vs-unindexed work accounting compares the
		// same admitted sets (per-shard windows cache different entries at
		// different shard counts, which would confound the comparison).
		cfg.SharedWindow = true
		return MustNew(method, cfg)
	}

	baseline := build(1, true)
	var baseAnswers []string
	for i, q := range w.Queries {
		res, err := baseline.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		baseAnswers = append(baseAnswers, res.Answers.String())
	}
	bs := baseline.Stats()

	for _, shards := range []int{1, 2, 8, 32} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			indexed := build(shards, false)
			for i, q := range w.Queries {
				res, err := indexed.Execute(q.G, q.Type)
				if err != nil {
					t.Fatalf("indexed query %d: %v", i, err)
				}
				if got := res.Answers.String(); got != baseAnswers[i] {
					t.Fatalf("query %d: indexed answers %s, baseline %s", i, got, baseAnswers[i])
				}
			}
			is := indexed.Stats()
			if is.HitIndexPruned == 0 {
				t.Error("index pruned nothing: summaries never fired")
			}
			if is.HitFullChecks >= bs.HitFullChecks {
				t.Errorf("index did not reduce dominance merges: %d (indexed) vs %d (baseline)",
					is.HitFullChecks, bs.HitFullChecks)
			}
			if is.HitDetectionTests > bs.HitDetectionTests {
				t.Errorf("index increased cache-side iso tests: %d (indexed) vs %d (baseline)",
					is.HitDetectionTests, bs.HitDetectionTests)
			}
		})
	}
}

// The per-shard window equivalence property: the default decentralized
// admission engine must return answer sets byte-identical to the shared-
// window engine's for sequential streams at every shard count — the two
// engines stage and turn at different moments (so hit classifications and
// cache contents legitimately differ), but a graph's fingerprint pins it
// to one shard, making per-shard admission deterministic, and hits only
// ever shrink verification work, never change answers. At Shards: 1 the
// two engines coincide exactly: one shard's window IS the shared window,
// so the full strict contract (contents, counters) must hold there too.
func TestPerShardWindowEquivalence(t *testing.T) {
	dataset := testDataset(51, 40)
	w, err := gen.NewWorkload(rand.New(rand.NewSource(52)), dataset, gen.WorkloadConfig{
		Size: 150, Mixed: true, PoolSize: 30,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	method := ftv.NewGGSXMethod(dataset, 3)
	build := func(shards int, sharedWindow bool) *Cache {
		p, err := NewPolicy("pin") // timing-independent: runs are reproducible
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Capacity = 20
		cfg.Window = 5
		cfg.Policy = p
		cfg.Shards = shards
		cfg.SharedWindow = sharedWindow
		return MustNew(method, cfg)
	}

	baseline := build(1, true)
	var baseAnswers []string
	for i, q := range w.Queries {
		res, err := baseline.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		baseAnswers = append(baseAnswers, res.Answers.String())
	}

	for _, shards := range []int{1, 2, 8, 32} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			perShard := build(shards, false)
			for i, q := range w.Queries {
				res, err := perShard.Execute(q.G, q.Type)
				if err != nil {
					t.Fatalf("per-shard query %d: %v", i, err)
				}
				if got := res.Answers.String(); got != baseAnswers[i] {
					t.Fatalf("query %d: per-shard answers %s, shared-window %s", i, got, baseAnswers[i])
				}
			}
			turns := int64(0)
			for _, st := range perShard.ShardStats() {
				turns += st.Turns
			}
			if turns == 0 {
				t.Error("no per-shard window turns fired: workload too tame")
			}
			if got := perShard.Stats().WindowTurns; got != turns {
				t.Errorf("aggregate WindowTurns %d != sum of per-shard turns %d", got, turns)
			}
			if shards == 1 {
				// One shard's window IS the shared window: the engines must
				// coincide entry for entry, counter for counter.
				eb, ep := baseline.Entries(), perShard.Entries()
				if len(eb) != len(ep) {
					t.Fatalf("resident entries diverge at 1 shard: %d vs %d", len(eb), len(ep))
				}
				for i := range eb {
					if eb[i].ID != ep[i].ID || !eb[i].Answers().Equal(ep[i].Answers()) {
						t.Fatalf("entry %d diverges at 1 shard", i)
					}
					if eb[i].Hits != ep[i].Hits || eb[i].SavedTests != ep[i].SavedTests {
						t.Fatalf("entry %d: utilities diverge at 1 shard", i)
					}
				}
				sb, sp := baseline.Stats(), perShard.Stats()
				sb.FilterTime, sb.HitTime, sb.VerifyTime = 0, 0, 0
				sp.FilterTime, sp.HitTime, sp.VerifyTime = 0, 0, 0
				if sb != sp {
					t.Fatalf("monitor counters diverge at 1 shard:\nshared    %+v\nper-shard %+v", sb, sp)
				}
			}
		})
	}
}

// TestDeterministicAtFixedShardCount pins the determinism the per-shard
// engine DOES promise: two sequential runs of the same stream at the same
// shard count are indistinguishable — answers, hit classifications, cache
// contents and counters.
func TestDeterministicAtFixedShardCount(t *testing.T) {
	dataset := testDataset(51, 40)
	w, err := gen.NewWorkload(rand.New(rand.NewSource(53)), dataset, gen.WorkloadConfig{
		Size: 120, Mixed: true, PoolSize: 25,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	method := ftv.NewGGSXMethod(dataset, 3)
	build := func() *Cache {
		p, err := NewPolicy("pin")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Capacity = 20
		cfg.Window = 6
		cfg.Policy = p
		cfg.Shards = 8
		return MustNew(method, cfg)
	}
	a, b := build(), build()
	for i, q := range w.Queries {
		ra, err := a.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("run A query %d: %v", i, err)
		}
		rb, err := b.Execute(q.G, q.Type)
		if err != nil {
			t.Fatalf("run B query %d: %v", i, err)
		}
		if !ra.Answers.Equal(rb.Answers) || ra.ExactHit != rb.ExactHit || len(ra.Hits) != len(rb.Hits) {
			t.Fatalf("query %d: runs diverge", i)
		}
	}
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		t.Fatalf("resident entries diverge: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].ID != eb[i].ID || !ea[i].Answers().Equal(eb[i].Answers()) {
			t.Fatalf("entry %d diverges between runs", i)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	sa.FilterTime, sa.HitTime, sa.VerifyTime = 0, 0, 0
	sb.FilterTime, sb.HitTime, sb.VerifyTime = 0, 0, 0
	if sa != sb {
		t.Fatalf("monitor counters diverge:\nA %+v\nB %+v", sa, sb)
	}
}
