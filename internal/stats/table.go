package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width console tables for the experiment harness;
// every table/figure reproduction prints through it so EXPERIMENTS.md and
// gcbench output share one format.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	fmt.Fprintln(w, line(t.headers))
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		fmt.Fprintln(w, line(r))
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
