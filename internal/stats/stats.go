// Package stats provides the small statistics toolkit used by GraphCache's
// Statistics Monitor/Manager and by the benchmark harness: streaming
// aggregates (Welford), duration histograms, exponential moving averages
// and a fixed-width table renderer for experiment reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Agg is a streaming aggregate over float64 observations using Welford's
// algorithm: numerically stable mean and variance plus min/max and sum.
// The zero value is ready to use.
type Agg struct {
	n          int64
	mean, m2   float64
	min, max   float64
	sum        float64
	hasExtrema bool
}

// Add records one observation.
func (a *Agg) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	a.sum += x
	if !a.hasExtrema || x < a.min {
		a.min = x
	}
	if !a.hasExtrema || x > a.max {
		a.max = x
	}
	a.hasExtrema = true
}

// AddDuration records a duration in nanoseconds.
func (a *Agg) AddDuration(d time.Duration) { a.Add(float64(d.Nanoseconds())) }

// N returns the observation count.
func (a *Agg) N() int64 { return a.n }

// Sum returns the sum of observations.
func (a *Agg) Sum() float64 { return a.sum }

// Mean returns the arithmetic mean (0 when empty).
func (a *Agg) Mean() float64 { return a.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (a *Agg) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Agg) Std() float64 { return math.Sqrt(a.Var()) }

// CV returns the coefficient of variation (std/mean; 0 when mean is 0).
// The HD replacement policy uses the CV of per-graph verification cost to
// decide how much weight cost-awareness deserves.
func (a *Agg) CV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / math.Abs(a.mean)
}

// Min and Max return the extrema (0 when empty).
func (a *Agg) Min() float64 {
	if !a.hasExtrema {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Agg) Max() float64 {
	if !a.hasExtrema {
		return 0
	}
	return a.max
}

// EMA is an exponential moving average. The zero value is empty; the first
// observation initializes the average directly.
type EMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEMA returns an EMA with the given smoothing factor in (0, 1];
// values outside the range are clamped.
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EMA{alpha: alpha}
}

// Add records one observation.
func (e *EMA) Add(x float64) {
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 when empty).
func (e *EMA) Value() float64 { return e.value }

// Initialized reports whether any observation was recorded.
func (e *EMA) Initialized() bool { return e.init }

// Histogram is a log₂-bucketed histogram of non-negative values (typically
// nanoseconds or test counts).
type Histogram struct {
	buckets [64]int64
	n       int64
}

// Add records one observation; negatives clamp to bucket 0.
func (h *Histogram) Add(x float64) {
	h.n++
	if x < 1 {
		h.buckets[0]++
		return
	}
	b := int(math.Log2(x))
	if b > 63 {
		b = 63
	}
	h.buckets[b]++
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) based on
// bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum int64
	for b, c := range h.buckets {
		cum += c
		if cum > target {
			return math.Pow(2, float64(b+1))
		}
	}
	return math.Inf(1)
}

// Percentile is a convenience helper over a raw sample slice (sorted copy).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}

// FormatNanos renders a nanosecond count compactly ("1.24ms").
func FormatNanos(ns float64) string {
	return time.Duration(int64(ns)).Round(time.Microsecond).String()
}

// FormatBytes renders a byte count compactly ("3.2 MiB").
func FormatBytes(b int) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := int64(b) / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
