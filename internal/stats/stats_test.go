package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAggBasics(t *testing.T) {
	var a Agg
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of that classic dataset is 32/7.
	if got := a.Var(); math.Abs(got-32.0/7) > 1e-9 {
		t.Errorf("Var = %v, want %v", got, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != 40 {
		t.Errorf("Sum = %v", a.Sum())
	}
}

func TestAggEmptyAndSingle(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Var() != 0 || a.Min() != 0 || a.Max() != 0 || a.CV() != 0 {
		t.Error("empty aggregate should be all zeros")
	}
	a.Add(3)
	if a.Var() != 0 || a.Std() != 0 {
		t.Error("single observation has zero variance")
	}
	if a.Mean() != 3 || a.Min() != 3 || a.Max() != 3 {
		t.Error("single observation stats wrong")
	}
}

func TestAggNegativeValues(t *testing.T) {
	var a Agg
	a.Add(-5)
	a.Add(5)
	if a.Min() != -5 || a.Max() != 5 || a.Mean() != 0 {
		t.Errorf("stats with negatives: min=%v max=%v mean=%v", a.Min(), a.Max(), a.Mean())
	}
}

func TestAggDuration(t *testing.T) {
	var a Agg
	a.AddDuration(2 * time.Millisecond)
	if a.Mean() != 2e6 {
		t.Errorf("AddDuration mean = %v", a.Mean())
	}
}

// Property: Welford mean/var match the two-pass reference.
func TestQuickWelford(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var a Agg
		sum := 0.0
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(clean)-1)
		return math.Abs(a.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(a.Var()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Initialized() {
		t.Error("fresh EMA should not be initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first value = %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Errorf("EMA = %v, want 15", e.Value())
	}
	// clamping
	if NewEMA(-1) == nil || NewEMA(2) == nil {
		t.Error("clamped constructors should work")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Add(float64(rng.Intn(1000)))
	}
	if h.N() != 10000 {
		t.Fatalf("N = %d", h.N())
	}
	q50 := h.Quantile(0.5)
	// Median ≈ 500; bucket upper bound gives ≤ 1024 and ≥ 256.
	if q50 < 256 || q50 > 1024 {
		t.Errorf("median bucket bound %v out of range", q50)
	}
	if h.Quantile(0) <= 0 {
		t.Error("0-quantile should be positive bound")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 9 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(xs, 0.5) != 5 {
		t.Error("median wrong")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatBytes(512); got != "512 B" {
		t.Errorf("FormatBytes(512) = %q", got)
	}
	if got := FormatBytes(2048); got != "2.0 KiB" {
		t.Errorf("FormatBytes(2048) = %q", got)
	}
	if got := FormatBytes(3 << 20); got != "3.0 MiB" {
		t.Errorf("FormatBytes(3MiB) = %q", got)
	}
	if got := FormatNanos(1.5e6); got != "1.5ms" {
		t.Errorf("FormatNanos = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "policy", "speedup")
	tb.AddRow("LRU", 1.5)
	tb.AddRow("HD", 3.25)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "policy") || !strings.Contains(out, "speedup") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "3.25") {
		t.Errorf("missing float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableUntitled(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "==") {
		t.Error("untitled table should not render a title")
	}
}
