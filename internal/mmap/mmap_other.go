//go:build !unix

package mmap

import (
	"errors"
	"os"
)

// mapFile always fails on platforms without mmap support; Open falls back
// to serving ReadAt from the file descriptor.
func mapFile(*os.File, int64) ([]byte, error) {
	return nil, errors.New("mmap: unsupported platform")
}

func unmapFile([]byte) error { return nil }
