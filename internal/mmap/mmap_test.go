package mmap

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadAt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	content := bytes.Repeat([]byte("0123456789"), 100)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(content)) {
		t.Fatalf("Size %d, want %d", f.Size(), len(content))
	}

	got := make([]byte, 10)
	if _, err := f.ReadAt(got, 500); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, content[500:510]) {
		t.Fatalf("ReadAt returned %q", got)
	}

	// A read crossing EOF returns the short count and io.EOF, matching
	// io.ReaderAt semantics in both the mapped and fallback paths.
	n, err := f.ReadAt(make([]byte, 20), int64(len(content))-5)
	if n != 5 || err != io.EOF {
		t.Fatalf("tail read: n=%d err=%v, want 5, io.EOF", n, err)
	}
	if _, err := f.ReadAt(make([]byte, 1), int64(len(content))); err != io.EOF {
		t.Fatalf("past-EOF read: %v, want io.EOF", err)
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 0 || f.Mapped() {
		t.Fatalf("empty file: size=%d mapped=%v", f.Size(), f.Mapped())
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err != io.EOF {
		t.Fatalf("read of empty file: %v, want io.EOF", err)
	}
}
