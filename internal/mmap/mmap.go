// Package mmap is a minimal read-only memory-mapping shim for the lazy
// snapshot-restore path (internal/core). On Unix platforms Open maps the
// file with mmap(2), so faulting in one entry's answer body touches only
// that body's pages; elsewhere (and for empty files, or when the mapping
// fails) it degrades to plain pread-style os.File.ReadAt with identical
// semantics. Callers see one API either way: ReadAt + Size + Close.
package mmap

import (
	"fmt"
	"io"
	"os"
)

// File is a read-only random-access view of a file, backed by a memory
// mapping when the platform supports it and by the open file otherwise.
type File struct {
	f    *os.File
	data []byte // non-nil when memory-mapped
	size int64
}

var _ io.ReaderAt = (*File)(nil)

// Open opens path for random-access reads, memory-mapping it when
// possible.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	mf := &File{f: f, size: st.Size()}
	if mf.size > 0 {
		// A failed map is not an error: fall back to ReadAt on the fd.
		if data, err := mapFile(f, mf.size); err == nil {
			mf.data = data
		}
	}
	return mf, nil
}

// Mapped reports whether the file is served from a memory mapping.
func (f *File) Mapped() bool { return f.data != nil }

// Size returns the file's length at Open time.
func (f *File) Size() int64 { return f.size }

// ReadAt implements io.ReaderAt over the mapping or the underlying file.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.data == nil {
		return f.f.ReadAt(p, off)
	}
	if off < 0 {
		return 0, fmt.Errorf("mmap: negative offset %d", off)
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close unmaps (when mapped) and closes the file. Outstanding ReadAt
// calls must have completed.
func (f *File) Close() error {
	var err error
	if f.data != nil {
		err = unmapFile(f.data)
		f.data = nil
	}
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}
