//go:build unix

package mmap

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
