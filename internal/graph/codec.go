package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text codec for graph datasets in the gSpan-style transaction format used
// throughout the graph-query literature (and by the AIDS dataset tooling):
//
//	t # <id> [directed]
//	v <vertex-id> <label>
//	e <u> <v> [edge-label]
//
// Vertices must be declared before edges reference them; vertex ids within
// a graph must be consecutive from 0. Lines starting with "//" and blank
// lines are ignored. The optional "directed" marker and edge labels carry
// the generalized graph types; plain files remain fully compatible.

// WriteGraph writes a single graph in the text format.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if g.Directed() {
		fmt.Fprintf(bw, "t # %d directed\n", g.ID())
	} else {
		fmt.Fprintf(bw, "t # %d\n", g.ID())
	}
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "v %d %d\n", v, g.Label(v))
	}
	labelled := g.HasEdgeLabels()
	for _, e := range g.Edges() {
		if labelled {
			fmt.Fprintf(bw, "e %d %d %d\n", e[0], e[1], g.EdgeLabel(e[0], e[1]))
		} else {
			fmt.Fprintf(bw, "e %d %d\n", e[0], e[1])
		}
	}
	return bw.Flush()
}

// WriteAll writes the graphs consecutively in the text format.
func WriteAll(w io.Writer, gs []*Graph) error {
	for _, g := range gs {
		if err := WriteGraph(w, g); err != nil {
			return err
		}
	}
	return nil
}

// ParseError describes a syntax error in the text format with its 1-based
// line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("graph: parse error at line %d: %s", e.Line, e.Msg)
}

// ReadAll parses all graphs from r in the text format.
func ReadAll(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	type edgeRec struct {
		u, v     int
		label    Label
		hasLabel bool
	}
	var (
		out      []*Graph
		labels   []Label
		edges    []edgeRec
		gid      int
		directed bool
		open     bool
		line     int
	)
	fail := func(msg string, args ...any) error {
		return &ParseError{line, fmt.Sprintf(msg, args...)}
	}
	finish := func() error {
		if !open {
			return nil
		}
		b := NewBuilder(len(labels)).SetID(gid).SetLabels(labels)
		if directed {
			b.Directed()
		}
		for _, e := range edges {
			if e.hasLabel {
				b.AddLabeledEdge(e.u, e.v, e.label)
			} else {
				b.AddEdge(e.u, e.v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return &ParseError{line, err.Error()}
		}
		out = append(out, g)
		labels, edges, open, directed = nil, nil, false, false
		return nil
	}

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "t":
			if err := finish(); err != nil {
				return nil, err
			}
			if (len(fields) != 3 && len(fields) != 4) || fields[1] != "#" {
				return nil, fail("want %q, got %q", "t # <id> [directed]", text)
			}
			if len(fields) == 4 {
				if fields[3] != "directed" {
					return nil, fail("unknown graph flag %q", fields[3])
				}
				directed = true
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fail("bad graph id %q", fields[2])
			}
			gid, open = id, true
		case "v":
			if !open {
				return nil, fail("vertex line before any 't' line")
			}
			if len(fields) != 3 {
				return nil, fail("want %q, got %q", "v <id> <label>", text)
			}
			vid, err1 := strconv.Atoi(fields[1])
			lab, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || lab < 0 || lab > 0xFFFF {
				return nil, fail("bad vertex line %q", text)
			}
			if vid != len(labels) {
				return nil, fail("vertex ids must be consecutive from 0; got %d, want %d", vid, len(labels))
			}
			labels = append(labels, Label(lab))
		case "e":
			if !open {
				return nil, fail("edge line before any 't' line")
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fail("want %q, got %q", "e <u> <v> [label]", text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad edge line %q", text)
			}
			if u < 0 || u >= len(labels) || v < 0 || v >= len(labels) {
				return nil, fail("edge {%d,%d} references undeclared vertex", u, v)
			}
			rec := edgeRec{u: u, v: v}
			if len(fields) == 4 {
				el, err := strconv.Atoi(fields[3])
				if err != nil || el < 0 || el > 0xFFFF {
					return nil, fail("bad edge label %q", fields[3])
				}
				rec.label, rec.hasLabel = Label(el), true
			}
			edges = append(edges, rec)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return out, nil
}
