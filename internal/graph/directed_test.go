package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// diamond returns the directed, edge-labelled DAG 0→1→3, 0→2→3 with
// distinct wire labels.
func diamond() *Graph {
	return NewBuilder(4).Directed().
		SetLabels([]Label{1, 2, 2, 3}).
		AddLabeledEdge(0, 1, 10).
		AddLabeledEdge(0, 2, 11).
		AddLabeledEdge(1, 3, 12).
		AddLabeledEdge(2, 3, 13).
		MustBuild()
}

func TestDirectedAccessors(t *testing.T) {
	g := diamond()
	if !g.Directed() {
		t.Fatal("graph should be directed")
	}
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Errorf("vertex 0 degrees: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 2 {
		t.Errorf("vertex 3 degrees: out=%d in=%d", g.OutDegree(3), g.InDegree(3))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("direction not respected by HasEdge")
	}
	if got := g.InNeighbors(3); len(got) != 2 {
		t.Errorf("InNeighbors(3) = %v", got)
	}
}

func TestDirectedAntiparallelEdges(t *testing.T) {
	g := NewBuilder(2).Directed().SetLabels([]Label{0, 0}).
		AddEdge(0, 1).AddEdge(1, 0).MustBuild()
	if g.M() != 2 {
		t.Fatalf("antiparallel arcs should be distinct: M = %d", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("both arcs should exist")
	}
}

func TestUndirectedCollapsesReversedEdges(t *testing.T) {
	g := NewBuilder(2).SetLabels([]Label{0, 0}).
		AddEdge(0, 1).AddEdge(1, 0).MustBuild()
	if g.M() != 1 {
		t.Fatalf("undirected reversed duplicate should collapse: M = %d", g.M())
	}
}

func TestEdgeLabels(t *testing.T) {
	g := diamond()
	if !g.HasEdgeLabels() {
		t.Fatal("edge labels missing")
	}
	if g.EdgeLabel(0, 1) != 10 || g.EdgeLabel(2, 3) != 13 {
		t.Errorf("edge labels wrong: %d %d", g.EdgeLabel(0, 1), g.EdgeLabel(2, 3))
	}
	if g.EdgeLabel(1, 0) != 0 {
		t.Error("reverse arc should report no label")
	}
	counts := g.EdgeLabelCounts()
	if len(counts) != 4 {
		t.Errorf("EdgeLabelCounts = %v", counts)
	}
	// Undirected labelled edge is symmetric.
	u := NewBuilder(2).SetLabels([]Label{0, 0}).AddLabeledEdge(1, 0, 7).MustBuild()
	if u.EdgeLabel(0, 1) != 7 || u.EdgeLabel(1, 0) != 7 {
		t.Error("undirected edge label should be symmetric")
	}
	// Unlabelled graphs report 0 and nil counts.
	plain := MustNew([]Label{0, 0}, [][2]int{{0, 1}})
	if plain.HasEdgeLabels() || plain.EdgeLabel(0, 1) != 0 || plain.EdgeLabelCounts() != nil {
		t.Error("unlabelled graph misreports edge labels")
	}
}

func TestDirectedAfterAddEdgeRejected(t *testing.T) {
	b := NewBuilder(2).SetLabels([]Label{0, 0}).AddEdge(0, 1)
	if _, err := b.Directed().Build(); err == nil {
		t.Error("Directed after AddEdge should be rejected")
	}
}

func TestDirectedEdgesList(t *testing.T) {
	g := diamond()
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("Edges = %v", es)
	}
	// All arcs in original orientation.
	want := map[[2]int]bool{{0, 1}: true, {0, 2}: true, {1, 3}: true, {2, 3}: true}
	for _, e := range es {
		if !want[e] {
			t.Errorf("unexpected arc %v", e)
		}
	}
}

func TestDirectedWeakConnectivity(t *testing.T) {
	// 0→1, 2→1: weakly connected even though 0 cannot reach 2.
	g := NewBuilder(3).Directed().SetLabels([]Label{0, 0, 0}).
		AddEdge(0, 1).AddEdge(2, 1).MustBuild()
	if !g.IsConnected() {
		t.Error("weakly connected digraph should report connected")
	}
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("components = %v", comps)
	}
}

func TestDirectedInducedSubgraph(t *testing.T) {
	g := diamond()
	sub, err := g.InducedSubgraph([]int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Directed() {
		t.Error("induced subgraph lost directedness")
	}
	if sub.M() != 2 {
		t.Fatalf("induced M = %d, want 2", sub.M())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Error("induced arcs wrong")
	}
	if sub.EdgeLabel(0, 1) != 10 || sub.EdgeLabel(1, 2) != 12 {
		t.Error("induced edge labels lost")
	}
}

func TestDirectedCodecRoundTrip(t *testing.T) {
	gs := []*Graph{
		diamond().WithID(0),
		// Mixed: an undirected edge-labelled graph.
		NewBuilder(3).SetID(1).SetLabels([]Label{5, 6, 7}).
			AddLabeledEdge(0, 1, 2).AddLabeledEdge(1, 2, 3).MustBuild(),
		// A plain undirected graph stays in the plain format.
		MustNew([]Label{1, 1}, [][2]int{{0, 1}}).WithID(2),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, gs); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if len(back) != 3 {
		t.Fatalf("round trip lost graphs: %d", len(back))
	}
	d := back[0]
	if !d.Directed() || d.M() != 4 || d.EdgeLabel(0, 1) != 10 || d.EdgeLabel(2, 3) != 13 {
		t.Errorf("directed graph not preserved: %v", d)
	}
	u := back[1]
	if u.Directed() || u.EdgeLabel(1, 0) != 2 {
		t.Error("undirected labelled graph not preserved")
	}
	if back[2].Directed() || back[2].HasEdgeLabels() {
		t.Error("plain graph gained attributes")
	}
}

func TestCodecRejectsBadDirectedHeader(t *testing.T) {
	if _, err := ReadAll(bytes.NewBufferString("t # 0 sideways\n")); err == nil {
		t.Error("bad graph flag should error")
	}
	if _, err := ReadAll(bytes.NewBufferString("t # 0\nv 0 1\nv 1 1\ne 0 1 -3\n")); err == nil {
		t.Error("bad edge label should error")
	}
}

func TestDirectedWLFingerprintInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(6)
		b := NewBuilder(n).Directed()
		labels := make([]Label, n)
		for i := range labels {
			labels[i] = Label(rng.Intn(3))
			b.SetLabel(i, labels[i])
		}
		type arc struct {
			u, v int
			l    Label
		}
		var arcs []arc
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.3 {
					a := arc{u, v, Label(rng.Intn(3))}
					arcs = append(arcs, a)
					b.AddLabeledEdge(a.u, a.v, a.l)
				}
			}
		}
		g := b.MustBuild()

		perm := rng.Perm(n)
		pb := NewBuilder(n).Directed()
		for old, nw := range perm {
			pb.SetLabel(nw, labels[old])
		}
		for _, a := range arcs {
			pb.AddLabeledEdge(perm[a.u], perm[a.v], a.l)
		}
		pg := pb.MustBuild()
		if g.WLFingerprint(3) != pg.WLFingerprint(3) {
			t.Fatalf("trial %d: directed fingerprint not permutation invariant", trial)
		}
	}
}

func TestWLFingerprintSeesDirection(t *testing.T) {
	ab := NewBuilder(2).Directed().SetLabels([]Label{1, 2}).AddEdge(0, 1).MustBuild()
	ba := NewBuilder(2).Directed().SetLabels([]Label{1, 2}).AddEdge(1, 0).MustBuild()
	if ab.WLFingerprint(3) == ba.WLFingerprint(3) {
		t.Error("fingerprint should distinguish arc direction")
	}
}

func TestWLFingerprintSeesEdgeLabels(t *testing.T) {
	a := NewBuilder(2).SetLabels([]Label{1, 1}).AddLabeledEdge(0, 1, 5).MustBuild()
	b := NewBuilder(2).SetLabels([]Label{1, 1}).AddLabeledEdge(0, 1, 6).MustBuild()
	if a.WLFingerprint(3) == b.WLFingerprint(3) {
		t.Error("fingerprint should distinguish edge labels")
	}
}
