// Package graph implements the dataset-graph substrate of GraphCache:
// undirected, vertex-labelled simple graphs (no self-loops, no multi-edges),
// the representation over which subgraph/supergraph queries run.
//
// Graphs are immutable after construction (see Builder); all query-side
// components (iso, ftv, core) rely on that immutability to share graphs
// freely across goroutines without locks.
package graph

import (
	"fmt"
	"sort"
)

// Label is a vertex label. The demo deployment uses atom symbols of the
// AIDS antiviral screen dataset; any small alphabet works.
type Label uint16

// Graph is a vertex-labelled simple graph — undirected by default, with
// optional directedness and edge labels (see directed.go). Vertices are
// the integers [0, N()). Adjacency lists are sorted ascending, enabling
// binary-search edge tests. For directed graphs adj holds out-neighbors
// and radj in-neighbors; for undirected graphs radj is nil.
type Graph struct {
	id       int
	labels   []Label
	adj      [][]int32
	radj     [][]int32
	elabels  map[edgeKey]Label
	directed bool
	m        int

	// memoSet holds lazily-computed structural summaries (see memo.go).
	// It contains atomics, so Graph values must not be copied wholesale;
	// WithID shares the pointers explicitly instead.
	memoSet
}

// ID returns the graph's identifier: its dataset position for dataset
// graphs, or an arbitrary caller-chosen id (often -1) for query graphs.
func (g *Graph) ID() int { return g.id }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v int) Label { return g.labels[v] }

// Labels returns the label slice. Callers must not modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. Callers must not
// modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge — for directed graphs, whether
// the arc u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	if !g.directed && len(g.adj[v]) < len(a) {
		// Undirected: search the shorter list.
		a, v = g.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edges returns all edges in lexicographic order, freshly allocated:
// (u, v) pairs with u < v for undirected graphs, all arcs u→v for
// directed ones.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if g.directed || int32(u) < v {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// LabelCounts returns a map from label to its number of occurrences.
func (g *Graph) LabelCounts() map[Label]int {
	c := make(map[Label]int, 8)
	for _, l := range g.labels {
		c[l]++
	}
	return c
}

// MaxLabel returns the largest label value present, or 0 for an empty graph.
func (g *Graph) MaxLabel() Label {
	var max Label
	for _, l := range g.labels {
		if l > max {
			max = l
		}
	}
	return max
}

// DegreeSequence returns vertex degrees sorted descending.
func (g *Graph) DegreeSequence() []int {
	d := make([]int, g.N())
	for v := range d {
		d[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	return d
}

// Bytes estimates the heap footprint of the graph in bytes, used by the
// cache's memory accounting.
func (g *Graph) Bytes() int {
	b := 64 + 2*len(g.labels)
	for _, a := range g.adj {
		b += 24 + 4*len(a)
	}
	for _, a := range g.radj {
		b += 24 + 4*len(a)
	}
	b += 16 * len(g.elabels)
	return b
}

// String returns a short human-readable summary such as "g17(V=12,E=13)".
func (g *Graph) String() string {
	return fmt.Sprintf("g%d(V=%d,E=%d)", g.id, g.N(), g.m)
}

// WithID returns a shallow copy of g carrying the given id. The underlying
// label and adjacency storage is shared; since graphs are immutable this
// is safe.
func (g *Graph) WithID(id int) *Graph {
	c := &Graph{
		id:       id,
		labels:   g.labels,
		adj:      g.adj,
		radj:     g.radj,
		elabels:  g.elabels,
		directed: g.directed,
		m:        g.m,
	}
	c.shareFrom(&g.memoSet)
	return c
}

// IsConnected reports whether the graph is connected — weakly connected
// for directed graphs. The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
		for _, w := range g.InNeighbors(int(v)) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// ConnectedComponents returns the vertex sets of (weakly) connected
// components, each sorted ascending, ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int32{int32(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, int(v))
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
			for _, w := range g.InNeighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by verts (which must be
// distinct, valid vertex ids). Vertex i of the result corresponds to
// verts[i]; the result has id -1.
func (g *Graph) InducedSubgraph(verts []int) (*Graph, error) {
	remap := make(map[int]int, len(verts))
	for i, v := range verts {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d out of range [0,%d)", v, g.N())
		}
		if _, dup := remap[v]; dup {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d repeated", v)
		}
		remap[v] = i
	}
	b := NewBuilder(len(verts))
	if g.directed {
		b.Directed()
	}
	for i, v := range verts {
		b.SetLabel(i, g.Label(v))
	}
	for i, v := range verts {
		for _, w := range g.adj[v] {
			j, ok := remap[int(w)]
			if !ok || (!g.directed && i >= j) {
				continue
			}
			if g.elabels != nil {
				b.AddLabeledEdge(i, j, g.EdgeLabel(v, int(w)))
			} else {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}
