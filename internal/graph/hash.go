package graph

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Fingerprint is an isomorphism-invariant 64-bit digest of a graph.
// Isomorphic graphs always produce equal fingerprints; unequal fingerprints
// therefore prove non-isomorphism. Equal fingerprints do NOT prove
// isomorphism — the cache's exact-match detector uses the fingerprint only
// as a pre-filter before a verifying iso test.
type Fingerprint uint64

// WLFingerprint computes a Weisfeiler–Lehman style fingerprint: vertex
// colors start as labels and are iteratively refined with the sorted
// multiset of neighbor colors for rounds iterations (3 is plenty for the
// small query/molecule graphs GraphCache handles). The digest hashes the
// sorted final color multiset together with |V| and |E|. Directedness and
// edge labels participate in the refinement, so the invariance extends to
// the generalized graph types.
func (g *Graph) WLFingerprint(rounds int) Fingerprint {
	n := g.N()
	colors := make([]uint64, n)
	for v := 0; v < n; v++ {
		colors[v] = uint64(g.labels[v]) + 1
	}
	next := make([]uint64, n)
	neigh := make([]uint64, 0, 16)
	const mix = 0x9E3779B97F4A7C15
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			neigh = neigh[:0]
			for _, w := range g.adj[v] {
				e := colors[w]*mix ^ uint64(g.EdgeLabel(v, int(w)))<<1
				neigh = append(neigh, e)
			}
			if g.directed {
				for _, w := range g.radj[v] {
					e := colors[w]*mix ^ uint64(g.EdgeLabel(int(w), v))<<1 ^ 1<<63
					neigh = append(neigh, e)
				}
			}
			sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
			h := fnv.New64a()
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], colors[v])
			h.Write(buf[:])
			for _, c := range neigh {
				binary.LittleEndian.PutUint64(buf[:], c)
				h.Write(buf[:])
			}
			next[v] = h.Sum64()
		}
		colors, next = next, colors
	}
	final := make([]uint64, n)
	copy(final, colors)
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })

	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(g.m))
	h.Write(buf[:])
	for _, c := range final {
		binary.LittleEndian.PutUint64(buf[:], c)
		h.Write(buf[:])
	}
	return Fingerprint(h.Sum64())
}

// LabelVector is a sorted (label, count) run-length encoding of a graph's
// label multiset, used for containment pre-filtering: if q's multiset is
// not dominated by G's, then q cannot be a subgraph of G.
type LabelVector []LabelCount

// LabelCount is one run of a LabelVector.
type LabelCount struct {
	Label Label
	Count int
}

// LabelVectorOf computes the graph's LabelVector.
func LabelVectorOf(g *Graph) LabelVector {
	counts := g.LabelCounts()
	out := make(LabelVector, 0, len(counts))
	for l, c := range counts {
		out = append(out, LabelCount{l, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// DominatedBy reports whether every label occurs in o at least as many
// times as in v — a necessary condition for the graph of v to be
// subgraph-isomorphic to the graph of o.
func (v LabelVector) DominatedBy(o LabelVector) bool {
	j := 0
	for _, lc := range v {
		for j < len(o) && o[j].Label < lc.Label {
			j++
		}
		if j >= len(o) || o[j].Label != lc.Label || o[j].Count < lc.Count {
			return false
		}
	}
	return true
}
