package graph

import (
	"slices"
)

// Fingerprint is an isomorphism-invariant 64-bit digest of a graph.
// Isomorphic graphs always produce equal fingerprints; unequal fingerprints
// therefore prove non-isomorphism. Equal fingerprints do NOT prove
// isomorphism — the cache's exact-match detector uses the fingerprint only
// as a pre-filter before a verifying iso test.
type Fingerprint uint64

// FNV-1a constants, inlined so color refinement hashes into a stack
// uint64 instead of allocating a hash.Hash64 per vertex per round. The
// digests are byte-for-byte identical to hashing the values through
// hash/fnv in little-endian order.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix64 folds the eight little-endian bytes of v into the running
// FNV-1a state h.
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (v >> i) & 0xff
		h *= fnvPrime64
	}
	return h
}

// WLFingerprint computes a Weisfeiler–Lehman style fingerprint: vertex
// colors start as labels and are iteratively refined with the sorted
// multiset of neighbor colors for rounds iterations (3 is plenty for the
// small query/molecule graphs GraphCache handles). The digest hashes the
// sorted final color multiset together with |V| and |E|. Directedness and
// edge labels participate in the refinement, so the invariance extends to
// the generalized graph types.
//
// The fingerprint for the most recently requested round count is memoized
// on the (immutable) graph, so re-executing a query graph pays the O(n·d)
// refinement only once.
//
//gclint:loads memoFP
//gclint:deterministic
func (g *Graph) WLFingerprint(rounds int) Fingerprint {
	if m := g.memoFP.Load(); m != nil && m.rounds == rounds {
		return m.fp
	}
	fp := g.wlFingerprint(rounds)
	g.memoFP.Store(&fpMemo{rounds: rounds, fp: fp})
	return fp
}

func (g *Graph) wlFingerprint(rounds int) Fingerprint {
	n := g.N()
	colors := make([]uint64, n)
	for v := 0; v < n; v++ {
		colors[v] = uint64(g.labels[v]) + 1
	}
	next := make([]uint64, n)
	neigh := make([]uint64, 0, 16)
	const mix = 0x9E3779B97F4A7C15
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			neigh = neigh[:0]
			for _, w := range g.adj[v] {
				e := colors[w]*mix ^ uint64(g.EdgeLabel(v, int(w)))<<1
				neigh = append(neigh, e)
			}
			if g.directed {
				for _, w := range g.radj[v] {
					e := colors[w]*mix ^ uint64(g.EdgeLabel(int(w), v))<<1 ^ 1<<63
					neigh = append(neigh, e)
				}
			}
			slices.Sort(neigh)
			h := uint64(fnvOffset64)
			h = fnvMix64(h, colors[v])
			for _, c := range neigh {
				h = fnvMix64(h, c)
			}
			next[v] = h
		}
		colors, next = next, colors
	}
	final := make([]uint64, n)
	copy(final, colors)
	slices.Sort(final)

	h := uint64(fnvOffset64)
	h = fnvMix64(h, uint64(n))
	h = fnvMix64(h, uint64(g.m))
	for _, c := range final {
		h = fnvMix64(h, c)
	}
	return Fingerprint(h)
}

// LabelVector is a sorted (label, count) run-length encoding of a graph's
// label multiset, used for containment pre-filtering: if q's multiset is
// not dominated by G's, then q cannot be a subgraph of G.
type LabelVector []LabelCount

// LabelCount is one run of a LabelVector.
type LabelCount struct {
	Label Label
	Count int
}

// LabelVectorOf returns the graph's LabelVector. The result is memoized
// on the (immutable) graph and shared; callers must not modify it.
func LabelVectorOf(g *Graph) LabelVector {
	return g.labelVector()
}

// DominatedBy reports whether every label occurs in o at least as many
// times as in v — a necessary condition for the graph of v to be
// subgraph-isomorphic to the graph of o.
//
//gclint:noalloc
//gclint:deterministic
func (v LabelVector) DominatedBy(o LabelVector) bool {
	j := 0
	for _, lc := range v {
		for j < len(o) && o[j].Label < lc.Label {
			j++
		}
		if j >= len(o) || o[j].Label != lc.Label || o[j].Count < lc.Count {
			return false
		}
	}
	return true
}
