package graph

import (
	"fmt"
	"sort"
)

// Builder assembles a Graph. A zero Builder is not usable; construct with
// NewBuilder. Builders are single-goroutine objects.
type Builder struct {
	id       int
	labels   []Label
	edges    map[[2]int32]struct{}
	elabels  map[edgeKey]Label
	directed bool
	errs     []error
}

// NewBuilder returns a builder for a graph with n vertices, all initially
// labelled 0, with no edges and id -1.
func NewBuilder(n int) *Builder {
	return &Builder{
		id:     -1,
		labels: make([]Label, n),
		edges:  make(map[[2]int32]struct{}),
	}
}

// SetID sets the graph id recorded in the built graph.
func (b *Builder) SetID(id int) *Builder {
	b.id = id
	return b
}

// SetLabel assigns a label to vertex v.
func (b *Builder) SetLabel(v int, l Label) *Builder {
	if v < 0 || v >= len(b.labels) {
		b.errs = append(b.errs, fmt.Errorf("graph: SetLabel vertex %d out of range [0,%d)", v, len(b.labels)))
		return b
	}
	b.labels[v] = l
	return b
}

// SetLabels assigns labels to vertices 0..len(ls)-1.
func (b *Builder) SetLabels(ls []Label) *Builder {
	for v, l := range ls {
		b.SetLabel(v, l)
	}
	return b
}

// AddEdge records the edge {u, v} (the arc u→v for directed builders).
// Self-loops are rejected; duplicate edges are collapsed silently (the
// graph is simple).
func (b *Builder) AddEdge(u, v int) *Builder {
	if u == v {
		b.errs = append(b.errs, fmt.Errorf("graph: self-loop at vertex %d", u))
		return b
	}
	if u < 0 || u >= len(b.labels) || v < 0 || v >= len(b.labels) {
		b.errs = append(b.errs, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, len(b.labels)))
		return b
	}
	if !b.directed && u > v {
		u, v = v, u
	}
	b.edges[[2]int32{int32(u), int32(v)}] = struct{}{}
	return b
}

// Build finalizes the graph. It returns the first recorded error, if any.
func (b *Builder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	n := len(b.labels)
	adj := make([][]int32, n)
	var radj [][]int32
	if b.directed {
		radj = make([][]int32, n)
		for e := range b.edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			radj[e[1]] = append(radj[e[1]], e[0])
		}
		for v := 0; v < n; v++ {
			sortInt32s(adj[v])
			sortInt32s(radj[v])
		}
	} else {
		for e := range b.edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		for v := 0; v < n; v++ {
			sortInt32s(adj[v])
		}
	}
	labels := make([]Label, n)
	copy(labels, b.labels)
	var elabels map[edgeKey]Label
	if len(b.elabels) > 0 {
		elabels = make(map[edgeKey]Label, len(b.elabels))
		for k, l := range b.elabels {
			if _, ok := b.edges[[2]int32{k.u, k.v}]; ok {
				elabels[k] = l
			}
		}
	}
	return &Graph{
		id:       b.id,
		labels:   labels,
		adj:      adj,
		radj:     radj,
		elabels:  elabels,
		directed: b.directed,
		m:        len(b.edges),
	}, nil
}

func sortInt32s(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// New constructs a graph directly from a label slice and an edge list.
func New(labels []Label, edges [][2]int) (*Graph, error) {
	b := NewBuilder(len(labels)).SetLabels(labels)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustNew is New that panics on error.
func MustNew(labels []Label, edges [][2]int) *Graph {
	g, err := New(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}
