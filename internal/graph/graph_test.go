package graph

import (
	"math/rand"
	"testing"
)

// triangle returns K3 with labels a, b, c.
func triangle(a, b, c Label) *Graph {
	return MustNew([]Label{a, b, c}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
}

// path returns a labelled path v0-v1-...-vk.
func path(labels ...Label) *Graph {
	edges := make([][2]int, 0, len(labels)-1)
	for i := 0; i+1 < len(labels); i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return MustNew(labels, edges)
}

func TestBasicAccessors(t *testing.T) {
	g := triangle(1, 2, 3)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3 3", g.N(), g.M())
	}
	if g.Label(1) != 2 {
		t.Errorf("Label(1) = %d, want 2", g.Label(1))
	}
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2", g.Degree(0))
	}
	if g.MaxLabel() != 3 {
		t.Errorf("MaxLabel = %d, want 3", g.MaxLabel())
	}
	if g.ID() != -1 {
		t.Errorf("default ID = %d, want -1", g.ID())
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := path(1, 1, 1, 1)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false},
		{0, 3, false}, {3, 2, true},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesSortedUnique(t *testing.T) {
	b := NewBuilder(4).SetLabels([]Label{0, 0, 0, 0})
	b.AddEdge(2, 1)
	b.AddEdge(1, 2) // duplicate reversed
	b.AddEdge(0, 3)
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicate edge collapsed)", g.M())
	}
	es := g.Edges()
	if es[0] != [2]int{0, 3} || es[1] != [2]int{1, 2} {
		t.Errorf("Edges = %v, want [[0 3] [1 2]]", es)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(3).AddEdge(1, 1).Build(); err == nil {
		t.Error("self-loop not rejected")
	}
	if _, err := NewBuilder(3).AddEdge(0, 5).Build(); err == nil {
		t.Error("out-of-range edge not rejected")
	}
	if _, err := NewBuilder(2).SetLabel(7, 1).Build(); err == nil {
		t.Error("out-of-range SetLabel not rejected")
	}
}

func TestLabelCounts(t *testing.T) {
	g := MustNew([]Label{5, 5, 7}, [][2]int{{0, 1}})
	c := g.LabelCounts()
	if c[5] != 2 || c[7] != 1 || len(c) != 2 {
		t.Errorf("LabelCounts = %v", c)
	}
}

func TestDegreeSequence(t *testing.T) {
	g := MustNew([]Label{0, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	ds := g.DegreeSequence()
	want := []int{3, 1, 1, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("DegreeSequence = %v, want %v", ds, want)
		}
	}
}

func TestConnectivity(t *testing.T) {
	if !triangle(0, 0, 0).IsConnected() {
		t.Error("triangle should be connected")
	}
	g := MustNew([]Label{0, 0, 0, 0}, [][2]int{{0, 1}, {2, 3}})
	if g.IsConnected() {
		t.Error("two components should not be connected")
	}
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2", comps)
	}
	if comps[0][0] != 0 || comps[1][0] != 2 {
		t.Errorf("components ordered wrong: %v", comps)
	}
	empty := MustNew(nil, nil)
	if !empty.IsConnected() {
		t.Error("empty graph is connected by convention")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustNew([]Label{1, 2, 3, 4}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	sub, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced N=%d M=%d, want 3 2", sub.N(), sub.M())
	}
	if sub.Label(0) != 2 || sub.Label(2) != 4 {
		t.Errorf("induced labels wrong: %v", sub.Labels())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("induced edges wrong")
	}
	if _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex not rejected")
	}
	if _, err := g.InducedSubgraph([]int{9}); err == nil {
		t.Error("out-of-range vertex not rejected")
	}
}

func TestWithID(t *testing.T) {
	g := triangle(0, 0, 0)
	h := g.WithID(42)
	if h.ID() != 42 || g.ID() != -1 {
		t.Errorf("WithID: got %d / original %d", h.ID(), g.ID())
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Error("WithID changed structure")
	}
}

func TestWLFingerprintInvariance(t *testing.T) {
	// A 5-cycle labelled 1,2,1,2,3 and a relabelled permutation of it.
	g1 := MustNew([]Label{1, 2, 1, 2, 3}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	// permutation: map old vertex i to (i+2) mod 5
	perm := []int{2, 3, 4, 0, 1}
	labels := make([]Label, 5)
	for old, nw := range perm {
		labels[nw] = g1.Label(old)
	}
	var edges [][2]int
	for _, e := range g1.Edges() {
		edges = append(edges, [2]int{perm[e[0]], perm[e[1]]})
	}
	g2 := MustNew(labels, edges)
	if g1.WLFingerprint(3) != g2.WLFingerprint(3) {
		t.Error("fingerprints of isomorphic graphs differ")
	}
}

func TestWLFingerprintDiscriminates(t *testing.T) {
	a := path(1, 2, 3)
	b := path(1, 3, 2) // different labelled structure
	c := triangle(1, 2, 3)
	if a.WLFingerprint(3) == b.WLFingerprint(3) {
		t.Error("paths with different label order should differ (center label differs)")
	}
	if a.WLFingerprint(3) == c.WLFingerprint(3) {
		t.Error("path vs triangle should differ")
	}
}

func TestWLFingerprintRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		labels := make([]Label, n)
		for i := range labels {
			labels[i] = Label(rng.Intn(3))
		}
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := MustNew(labels, edges)

		perm := rng.Perm(n)
		plabels := make([]Label, n)
		for old, nw := range perm {
			plabels[nw] = labels[old]
		}
		pedges := make([][2]int, len(edges))
		for i, e := range edges {
			pedges[i] = [2]int{perm[e[0]], perm[e[1]]}
		}
		pg := MustNew(plabels, pedges)
		if g.WLFingerprint(3) != pg.WLFingerprint(3) {
			t.Fatalf("trial %d: fingerprint not permutation invariant", trial)
		}
	}
}

func TestLabelVectorDominance(t *testing.T) {
	small := LabelVectorOf(path(1, 1, 2))
	big := LabelVectorOf(MustNew([]Label{1, 1, 1, 2, 3}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}))
	if !small.DominatedBy(big) {
		t.Error("small should be dominated by big")
	}
	if big.DominatedBy(small) {
		t.Error("big should not be dominated by small")
	}
	if !small.DominatedBy(small) {
		t.Error("vector should dominate itself")
	}
	other := LabelVectorOf(path(4, 4))
	if other.DominatedBy(big) {
		t.Error("disjoint labels should not be dominated")
	}
}

func TestBytesGrowsWithSize(t *testing.T) {
	small := path(1, 2)
	big := path(1, 2, 3, 4, 5, 6, 7, 8)
	if big.Bytes() <= small.Bytes() {
		t.Error("Bytes should grow with graph size")
	}
}

func TestStringFormat(t *testing.T) {
	g := triangle(0, 0, 0).WithID(17)
	if got := g.String(); got != "g17(V=3,E=3)" {
		t.Errorf("String = %q", got)
	}
}
