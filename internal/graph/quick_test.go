package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: any graph assembled from arbitrary (clamped) fuzz input
// round-trips through the text codec preserving structure, labels,
// directedness and edge labels.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(rawLabels []uint16, rawEdges []uint32, directed, edgeLabels bool) bool {
		n := len(rawLabels)
		if n > 20 {
			n = 20
		}
		if n == 0 {
			return true
		}
		b := NewBuilder(n)
		if directed {
			b.Directed()
		}
		for v := 0; v < n; v++ {
			b.SetLabel(v, Label(rawLabels[v]%50))
		}
		for _, raw := range rawEdges {
			u := int(raw % uint32(n))
			v := int((raw / 7) % uint32(n))
			if u == v {
				continue
			}
			if edgeLabels {
				b.AddLabeledEdge(u, v, Label((raw/31)%9))
			} else {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}

		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			return false
		}
		back, err := ReadAll(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		h := back[0]
		if h.N() != g.N() || h.M() != g.M() || h.Directed() != g.Directed() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if h.Label(v) != g.Label(v) {
				return false
			}
		}
		ge, he := g.Edges(), h.Edges()
		for i := range ge {
			if ge[i] != he[i] {
				return false
			}
			if g.EdgeLabel(ge[i][0], ge[i][1]) != h.EdgeLabel(he[i][0], he[i][1]) {
				return false
			}
		}
		// Fingerprints must agree too (total structural equality).
		return g.WLFingerprint(3) == h.WLFingerprint(3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LabelVector dominance is a necessary condition for equal-label
// multisets in both directions (antisymmetry up to multiset equality).
func TestQuickLabelVectorAntisymmetry(t *testing.T) {
	f := func(a, b []uint8) bool {
		la := make([]Label, len(a))
		for i, x := range a {
			la[i] = Label(x % 6)
		}
		lb := make([]Label, len(b))
		for i, x := range b {
			lb[i] = Label(x % 6)
		}
		ga := MustNew(la, nil)
		gb := MustNew(lb, nil)
		va, vb := LabelVectorOf(ga), LabelVectorOf(gb)
		if va.DominatedBy(vb) && vb.DominatedBy(va) {
			// Mutual dominance ⇒ identical label multisets.
			ca, cb := ga.LabelCounts(), gb.LabelCounts()
			if len(ca) != len(cb) {
				return false
			}
			for l, c := range ca {
				if cb[l] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: InducedSubgraph of the full vertex set is the graph itself
// (same fingerprint), for arbitrary generated graphs.
func TestQuickInducedIdentity(t *testing.T) {
	f := func(rawLabels []uint16, rawEdges []uint32) bool {
		n := len(rawLabels)
		if n > 12 {
			n = 12
		}
		if n == 0 {
			return true
		}
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetLabel(v, Label(rawLabels[v]%5))
		}
		for _, raw := range rawEdges {
			u := int(raw % uint32(n))
			v := int((raw / 11) % uint32(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		ind, err := g.InducedSubgraph(all)
		if err != nil {
			return false
		}
		return ind.WLFingerprint(3) == g.WLFingerprint(3) && ind.M() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
