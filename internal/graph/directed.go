package graph

import "fmt"

// Directedness and edge labels. The paper's results "straightforwardly
// generalize to directed graphs and/or graphs with edge labels"; this file
// carries that generalization through the Graph type. Undirected,
// vertex-labelled graphs remain the default and pay nothing for it.
//
// Representation: for directed graphs, adj holds out-neighbors and radj
// in-neighbors (radj is nil for undirected graphs). Edge labels live in a
// side map keyed by the canonical endpoint pair — (u, v) as stored for
// directed edges, (min, max) for undirected ones; a nil map means
// "no edge labels" and EdgeLabel reports 0 for every edge.

type edgeKey struct{ u, v int32 }

func (g *Graph) edgeKeyOf(u, v int) edgeKey {
	if !g.directed && u > v {
		u, v = v, u
	}
	return edgeKey{int32(u), int32(v)}
}

// Directed reports whether the graph is directed. Undirected graphs treat
// every edge as bidirectional in HasEdge/Neighbors.
func (g *Graph) Directed() bool { return g.directed }

// HasEdgeLabels reports whether any edge carries a label.
func (g *Graph) HasEdgeLabels() bool { return len(g.elabels) > 0 }

// EdgeLabel returns the label of edge (u, v); absent labels and absent
// edges report 0. Matching treats label 0 as "unlabelled".
func (g *Graph) EdgeLabel(u, v int) Label {
	if g.elabels == nil {
		return 0
	}
	return g.elabels[g.edgeKeyOf(u, v)]
}

// OutNeighbors returns the vertices reachable from v by one edge: the
// out-neighbors of a directed graph, all neighbors of an undirected one.
// Callers must not modify the slice.
func (g *Graph) OutNeighbors(v int) []int32 { return g.adj[v] }

// InNeighbors returns the vertices with an edge into v. For undirected
// graphs this equals OutNeighbors.
func (g *Graph) InNeighbors(v int) []int32 {
	if !g.directed {
		return g.adj[v]
	}
	return g.radj[v]
}

// OutDegree returns len(OutNeighbors(v)).
func (g *Graph) OutDegree(v int) int { return len(g.adj[v]) }

// InDegree returns len(InNeighbors(v)).
func (g *Graph) InDegree(v int) int {
	if !g.directed {
		return len(g.adj[v])
	}
	return len(g.radj[v])
}

// EdgeLabelCounts returns occurrences per edge label (absent for graphs
// without edge labels).
func (g *Graph) EdgeLabelCounts() map[Label]int {
	if g.elabels == nil {
		return nil
	}
	out := make(map[Label]int, 8)
	for _, l := range g.elabels {
		out[l]++
	}
	return out
}

// Directed marks the builder's graph as directed: AddEdge(u, v) then means
// the arc u→v, and (u, v)/(v, u) are distinct edges. Must be called before
// any AddEdge.
func (b *Builder) Directed() *Builder {
	if len(b.edges) > 0 {
		b.errs = append(b.errs, fmt.Errorf("graph: Directed must precede AddEdge"))
		return b
	}
	b.directed = true
	return b
}

// AddLabeledEdge records an edge carrying an edge label. For undirected
// builders the label is shared by both directions.
func (b *Builder) AddLabeledEdge(u, v int, l Label) *Builder {
	b.AddEdge(u, v)
	if len(b.errs) > 0 {
		return b
	}
	if b.elabels == nil {
		b.elabels = make(map[edgeKey]Label)
	}
	if !b.directed && u > v {
		u, v = v, u
	}
	b.elabels[edgeKey{int32(u), int32(v)}] = l
	return b
}
