package graph

import (
	"sort"
	"sync/atomic"
)

// Memoized derived summaries.
//
// Graphs are immutable after Build, so summaries that depend only on the
// structure — the per-label degree sequences, the matcher visit order, the
// label vector — can be computed once and shared by every reader. The
// subgraph-isomorphism hot path recomputed these on every invocation,
// which made them the dominant allocation sites of query execution; the
// memoized accessors below make every invocation after the first
// allocation-free.
//
// Each summary sits behind its own atomic pointer so a dataset graph that
// is only ever a verification *target* never pays for the pattern-side
// visit order. Two goroutines racing on first use may both compute the
// summary; the values are identical and the loser's copy is garbage, so
// no further synchronization is needed. Callers must treat every returned
// slice and map as read-only.

// LabelDegrees returns vertex degrees grouped by label, each list sorted
// descending. The result is memoized on the graph; callers must not
// modify it.
//
//gclint:loads memoLabelDeg
func (g *Graph) LabelDegrees() map[Label][]int32 {
	if m := g.memoLabelDeg.Load(); m != nil {
		return *m
	}
	m := make(map[Label][]int32, 8)
	for v := 0; v < g.N(); v++ {
		m[g.labels[v]] = append(m[g.labels[v]], int32(g.Degree(v)))
	}
	for _, ds := range m {
		sort.Slice(ds, func(i, j int) bool { return ds[i] > ds[j] })
	}
	g.memoLabelDeg.Store(&m)
	return m
}

// VisitOrder returns a vertex visit order that starts from the
// highest-degree vertex and grows connected (in the weak sense for
// directed graphs): each subsequent vertex is adjacent to an
// already-ordered one when the graph is connected (components are chained
// for robustness on disconnected graphs). This is the pattern-side search
// order used by the isomorphism matchers. The result is memoized on the
// graph; callers must not modify it.
//
//gclint:loads memoVisit
func (g *Graph) VisitOrder() []int {
	if o := g.memoVisit.Load(); o != nil {
		return *o
	}
	n := g.N()
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	// conn[v] = number of ordered neighbors of v (either direction).
	conn := make([]int, n)
	totalDeg := func(v int) int { return g.OutDegree(v) + g.InDegree(v) }

	pick := func() int {
		best := -1
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			if best == -1 {
				best = v
				continue
			}
			// Prefer higher connection to ordered part, then higher degree.
			if conn[v] > conn[best] || (conn[v] == conn[best] && totalDeg(v) > totalDeg(best)) {
				best = v
			}
		}
		return best
	}

	for len(order) < n {
		v := pick()
		inOrder[v] = true
		order = append(order, v)
		for _, w := range g.adj[v] {
			conn[w]++
		}
		if g.directed {
			for _, w := range g.radj[v] {
				conn[w]++
			}
		}
	}
	g.memoVisit.Store(&order)
	return order
}

// labelVector returns the memoized LabelVector (see LabelVectorOf).
//
//gclint:loads memoLabelVec
func (g *Graph) labelVector() LabelVector {
	if v := g.memoLabelVec.Load(); v != nil {
		return *v
	}
	counts := g.LabelCounts()
	out := make(LabelVector, 0, len(counts))
	for l, c := range counts {
		out = append(out, LabelCount{l, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	g.memoLabelVec.Store(&out)
	return out
}

// memoSet is the triple of lazily-computed summary slots embedded in
// Graph. It is excluded from WithID's shallow copy semantics manually:
// atomic values must not be copied, so WithID re-shares the already
// computed pointers instead of copying the struct.
type memoSet struct {
	//gclint:snapshot memoLabelDeg
	memoLabelDeg atomic.Pointer[map[Label][]int32]
	//gclint:snapshot memoVisit
	memoVisit atomic.Pointer[[]int]
	//gclint:snapshot memoLabelVec
	memoLabelVec atomic.Pointer[LabelVector]
	//gclint:snapshot memoFP
	memoFP atomic.Pointer[fpMemo]
}

// fpMemo caches the WL fingerprint for one round count — the cache keeps
// only the most recently requested rounds value, which suffices because
// every production caller uses a fixed count.
type fpMemo struct {
	rounds int
	fp     Fingerprint
}

// shareFrom copies the memoized summary pointers from src. Sound only
// when the receiver describes the same structure as src (labels and
// adjacency shared), as in WithID.
//
//gclint:loads memoLabelDeg src
//gclint:loads memoVisit src
//gclint:loads memoLabelVec src
//gclint:loads memoFP src
func (m *memoSet) shareFrom(src *memoSet) {
	m.memoLabelDeg.Store(src.memoLabelDeg.Load())
	m.memoVisit.Store(src.memoVisit.Load())
	m.memoLabelVec.Store(src.memoLabelVec.Load())
	m.memoFP.Store(src.memoFP.Load())
}
