package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	gs := []*Graph{
		MustNew([]Label{1, 2, 3}, [][2]int{{0, 1}, {1, 2}}).WithID(0),
		MustNew([]Label{7}, nil).WithID(1),
		MustNew([]Label{0, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}}).WithID(2),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, gs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(gs) {
		t.Fatalf("read %d graphs, want %d", len(back), len(gs))
	}
	for i, g := range gs {
		h := back[i]
		if h.ID() != g.ID() || h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("graph %d mismatch: %v vs %v", i, h, g)
		}
		for v := 0; v < g.N(); v++ {
			if h.Label(v) != g.Label(v) {
				t.Fatalf("graph %d label %d mismatch", i, v)
			}
		}
		ge, he := g.Edges(), h.Edges()
		for j := range ge {
			if ge[j] != he[j] {
				t.Fatalf("graph %d edge %d mismatch", i, j)
			}
		}
	}
}

func TestCodecIgnoresCommentsAndBlankLines(t *testing.T) {
	in := `
// a comment
t # 5

v 0 10
v 1 11
// another
e 0 1
`
	gs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].ID() != 5 || gs[0].N() != 2 || gs[0].M() != 1 {
		t.Fatalf("parsed %v", gs)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []struct {
		name, in string
		wantLine int
	}{
		{"vertex before t", "v 0 1\n", 1},
		{"edge before t", "e 0 1\n", 1},
		{"bad t", "t 0\n", 1},
		{"bad id", "t # x\n", 1},
		{"nonconsecutive vid", "t # 0\nv 1 0\n", 2},
		{"bad label", "t # 0\nv 0 -2\n", 2},
		{"label overflow", "t # 0\nv 0 70000\n", 2},
		{"edge undeclared", "t # 0\nv 0 1\ne 0 1\n", 3},
		{"self loop", "t # 0\nv 0 1\ne 0 0\n", 3},
		{"junk directive", "t # 0\nx y z\n", 2},
		{"malformed edge", "t # 0\nv 0 1\nv 1 1\ne 0\n", 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadAll(strings.NewReader(c.in))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want *ParseError, got %T: %v", err, err)
			}
			if pe.Line != c.wantLine {
				t.Errorf("error line = %d, want %d (%v)", pe.Line, c.wantLine, err)
			}
		})
	}
}

func TestCodecEmptyInput(t *testing.T) {
	gs, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 0 {
		t.Fatalf("want no graphs, got %d", len(gs))
	}
}

func TestCodecSelfLoopErrorSurfacesFromBuilder(t *testing.T) {
	// The self-loop is caught at Build time but must still be a ParseError.
	_, err := ReadAll(strings.NewReader("t # 0\nv 0 1\nv 1 1\ne 1 1\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
}
