package ftv

import (
	"strings"
	"testing"
)

func TestFeatureVectorBinaryRoundTrip(t *testing.T) {
	v := FeatureVector{
		Vertices:     12,
		Edges:        30,
		LabelBits:    0xDEADBEEF,
		LabelDegBits: 0x0123456789ABCDEF,
		DegreeTail:   [DegreeTailLen]int32{4, 3, 2, 1, 0, 0, 1, 1},
	}
	buf := v.AppendBinary(nil)
	if len(buf) != BinaryLen {
		t.Fatalf("encoded %d bytes, want %d", len(buf), BinaryLen)
	}
	got, err := FeatureVectorFromBinary(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != v {
		t.Fatalf("round trip changed vector: %+v != %+v", got, v)
	}
}

func TestFeatureVectorBinaryRejectsInvalid(t *testing.T) {
	valid := FeatureVector{Vertices: 5, Edges: 4, DegreeTail: [DegreeTailLen]int32{2, 2, 1}}
	buf := valid.AppendBinary(nil)

	if _, err := FeatureVectorFromBinary(buf[:BinaryLen-1]); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("short input: got %v, want truncation error", err)
	}

	neg := append([]byte(nil), buf...)
	neg[3] = 0x80 // Vertices sign bit
	if _, err := FeatureVectorFromBinary(neg); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative vertices: got %v", err)
	}

	bad := append([]byte(nil), buf...)
	bad[24] = 0xFF // DegreeTail[0] = 255 > Vertices
	if _, err := FeatureVectorFromBinary(bad); err == nil || !strings.Contains(err.Error(), "degree-tail") {
		t.Fatalf("oversized degree tail: got %v", err)
	}
}
