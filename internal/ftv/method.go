package ftv

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphcache/internal/bitset"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// VerifierFunc decides whether pattern is subgraph-isomorphic to target.
// The default is VF2; Ullmann or any custom engine can be plugged in
// (the paper's "pluggable cache" extends down to Method M components).
type VerifierFunc func(pattern, target *graph.Graph) bool

// VF2Verifier is the default verifier.
func VF2Verifier(pattern, target *graph.Graph) bool { return iso.SubIso(pattern, target) }

// UllmannVerifier is the alternative baseline verifier.
func UllmannVerifier(pattern, target *graph.Graph) bool {
	ok, _ := iso.Ullmann(pattern, target, iso.Options{})
	return ok
}

// FilterFactory builds a Filter over a dataset slice. Tombstoned positions
// are nil and must be tolerated (indexed as empty — the bundled filters
// all do); a Method constructed with a factory supports AddGraph, which
// rebuilds the filter over the grown dataset.
type FilterFactory func(dataset []*graph.Graph) Filter

// Method is "Method M" of the paper: a dataset, a Filter and a Verifier.
// It answers subgraph/supergraph queries exactly, and exposes its filter
// and verifier so the GraphCache kernel can run the verification stage
// over a pruned candidate set.
//
// # Dynamic datasets
//
// A Method built with NewDynamicMethod (or the bundled constructors, which
// all use one) additionally takes live mutations: AddGraph appends a graph
// under a fresh, stable id, and RemoveGraph tombstones an id without ever
// reusing it. The whole dataset state — graph slice, filter, live-id set,
// epoch and addition log — lives in one immutable snapshot behind an
// atomic pointer: mutators build a new snapshot (copy-on-write) and
// publish it with a single store, so readers never lock and never observe
// a half-applied mutation. Every mutation bumps the epoch; the addition
// log records (epoch, gid) per added graph so cache layers can reconcile
// stale answer sets by verifying only the delta — and is compacted through
// CompactAdditions once every outstanding answer set has passed a record.
// Removals keep the old filter (its postings for the dead id are masked by
// the live set — exact, because Candidates intersects with live);
// additions patch the filter incrementally when it is an InsertableFilter
// (every bundled filter is), falling back to a factory rebuild otherwise.
//
// Readers that need a consistent multi-call view (size, candidates,
// verification) must take one View and use it throughout; the plain Method
// accessors re-snapshot per call.
type Method struct {
	name    string
	verify  VerifierFunc
	factory FilterFactory // nil: static filter, AddGraph unsupported

	// mu serializes mutators; readers go through the atomic state pointer
	// and never take it. It is a leaf lock: nothing is acquired under it,
	// so callers may hold arbitrary locks of their own (the cache kernel
	// compacts the addition log from inside its window turns).
	//gclint:lock methodMu
	//gclint:leaf
	mu sync.Mutex
	// state publishes the dataset snapshot. Operations pin ONE snapshot
	// (a View) and use it throughout; re-loading mid-operation tears the
	// epoch (enforced by the snapshotonce analyzer).
	//
	//gclint:snapshot dataset
	state atomic.Pointer[methodState]

	// filterInserts / filterRebuilds split how AddGraph maintained the
	// filter: an incremental InsertableFilter.WithGraph insert (O(graph))
	// versus a full FilterFactory rebuild (O(dataset)). All bundled
	// filters are insertable, so rebuilds only happen for custom
	// factory-built filters without the capability. filterMaintainNs
	// accumulates the wall time of exactly that step — insert or rebuild,
	// nothing else — so the two strategies compare over identical work.
	filterInserts    atomic.Int64
	filterRebuilds   atomic.Int64
	filterMaintainNs atomic.Int64
}

// methodState is one immutable dataset snapshot. All fields are read-only
// after publication.
//
//gclint:cow
type methodState struct {
	dataset   []*graph.Graph // by stable gid; tombstones are nil
	filter    Filter
	live      *bitset.Set // gids not tombstoned; capacity == len(dataset)
	liveCount int
	epoch     int64
	adds      []AddRecord // ascending by Epoch; never mutated in place
}

// AddRecord is one dataset addition: the graph id it introduced and the
// epoch at which it became visible. The log lets a holder of a stale
// answer set verify exactly the delta graphs instead of rescanning the
// dataset.
type AddRecord struct {
	Epoch int64
	GID   int
}

// NewMethod assembles a static method. Dataset graphs are identified by
// slice position throughout (graph ids are not consulted). verify may be
// nil, defaulting to VF2. The returned method supports RemoveGraph but not
// AddGraph (no filter factory); use NewDynamicMethod for a fully mutable
// dataset.
func NewMethod(name string, dataset []*graph.Graph, filter Filter, verify VerifierFunc) *Method {
	m := &Method{name: name, verify: defaultVerify(verify)}
	m.state.Store(initialState(dataset, filter))
	return m
}

// NewDynamicMethod assembles a method whose dataset takes live mutations:
// the filter is built — and on every AddGraph rebuilt — by the factory.
func NewDynamicMethod(name string, dataset []*graph.Graph, factory FilterFactory, verify VerifierFunc) *Method {
	m := &Method{name: name, verify: defaultVerify(verify), factory: factory}
	m.state.Store(initialState(dataset, factory(dataset)))
	return m
}

func defaultVerify(v VerifierFunc) VerifierFunc {
	if v == nil {
		return VF2Verifier
	}
	return v
}

func initialState(dataset []*graph.Graph, filter Filter) *methodState {
	live := bitset.New(len(dataset))
	liveCount := 0
	for i, g := range dataset {
		if g != nil {
			live.Add(i)
			liveCount++
		}
	}
	// A fully (or mostly) live dataset collapses to a handful of run
	// spans; the mask is immutable once published, so re-encode it into
	// its smallest container up front.
	live.Compact()
	return &methodState{
		dataset:   dataset,
		filter:    filter,
		live:      live,
		liveCount: liveCount,
	}
}

// Name returns the method's report name, e.g. "ggsx-L4/vf2".
func (m *Method) Name() string { return m.name }

// View returns the current immutable dataset snapshot. Use one View for
// any computation that must be internally consistent (candidate sets,
// sizes, delta reconciliation); the snapshot stays valid — and exact with
// respect to its own epoch — forever, even after later mutations.
//
//gclint:loads dataset
func (m *Method) View() DatasetView { return DatasetView{s: m.state.Load(), verify: m.verify} }

// Dataset returns the current dataset slice (tombstoned positions are
// nil). Callers must not modify it.
//
//gclint:cowview
//gclint:loads dataset
func (m *Method) Dataset() []*graph.Graph { return m.state.Load().dataset }

// DatasetSize returns the dataset's id space — the number of positions,
// including tombstones, hence the capacity answer bitsets are sized to.
//
//gclint:loads dataset
func (m *Method) DatasetSize() int { return len(m.state.Load().dataset) }

// LiveCount returns the number of non-tombstoned dataset graphs.
//
//gclint:loads dataset
func (m *Method) LiveCount() int { return m.state.Load().liveCount }

// Epoch returns the current dataset epoch: 0 at construction, +1 per
// mutation (addition or removal).
//
//gclint:loads dataset
func (m *Method) Epoch() int64 { return m.state.Load().epoch }

// Filter returns the method's current filter.
//
//gclint:loads dataset
func (m *Method) Filter() Filter { return m.state.Load().filter }

// Candidates runs the filtering stage, returning the candidate set C_M.
//
//gclint:pins dataset
func (m *Method) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	return m.View().Candidates(q, qt)
}

// VerifyCandidate runs one sub-iso test between the query and dataset
// graph gid, oriented by query type: pattern=q for subgraph queries,
// pattern=dataset graph for supergraph queries.
//
//gclint:pins dataset
func (m *Method) VerifyCandidate(q *graph.Graph, gid int, qt QueryType) bool {
	return m.View().VerifyCandidate(q, gid, qt)
}

// AddGraph appends g to the dataset under a fresh, stable id (the next
// slice position — tombstoned ids are never reused) and publishes a new
// snapshot whose filter covers the grown dataset: incrementally patched
// through InsertableFilter.WithGraph when the current filter supports it
// (O(graph) — the default for every bundled filter), rebuilt through the
// factory otherwise. It returns the new graph's id. Requires a filter
// factory (NewDynamicMethod or a bundled constructor) — the factory stays
// the dynamic-method contract and the fallback when an insert is
// unavailable.
//
//gclint:acquires methodMu
//gclint:pins dataset
func (m *Method) AddGraph(g *graph.Graph) (int, error) {
	if g == nil || g.N() == 0 {
		return 0, fmt.Errorf("ftv: cannot add an empty graph")
	}
	if m.factory == nil {
		return 0, fmt.Errorf("ftv: method %q has a static filter (no factory); build it with NewDynamicMethod to support AddGraph", m.name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.state.Load()
	gid := len(old.dataset)
	dataset := make([]*graph.Graph, gid+1)
	copy(dataset, old.dataset)
	dataset[gid] = g
	var filter Filter
	tf := time.Now()
	if ins, ok := old.filter.(InsertableFilter); ok {
		filter = ins.WithGraph(gid, g)
		m.filterInserts.Add(1)
	} else {
		filter = m.factory(dataset)
		m.filterRebuilds.Add(1)
	}
	m.filterMaintainNs.Add(time.Since(tf).Nanoseconds())
	live := old.live.Grown(gid + 1)
	live.Add(gid)
	epoch := old.epoch + 1
	// Full slice expression: a later append can never scribble over a log
	// slice an older snapshot still exposes.
	adds := append(old.adds[:len(old.adds):len(old.adds)], AddRecord{Epoch: epoch, GID: gid})
	m.state.Store(&methodState{
		dataset:   dataset,
		filter:    filter,
		live:      live,
		liveCount: old.liveCount + 1,
		epoch:     epoch,
		adds:      adds,
	})
	return gid, nil
}

// FilterInserts returns how many AddGraph calls maintained the filter
// through an incremental InsertableFilter.WithGraph insert.
func (m *Method) FilterInserts() int64 { return m.filterInserts.Load() }

// FilterRebuilds returns how many AddGraph calls fell back to a full
// FilterFactory rebuild (the filter did not support incremental inserts).
func (m *Method) FilterRebuilds() int64 { return m.filterRebuilds.Load() }

// FilterMaintainNs returns the cumulative wall time AddGraph spent
// maintaining the filter (the insert or rebuild step alone — no dataset
// copying, no cache-layer reconciliation), in nanoseconds.
func (m *Method) FilterMaintainNs() int64 { return m.filterMaintainNs.Load() }

// AdditionLogLen returns the current length of the addition log — the
// records not yet dropped by CompactAdditions.
//
//gclint:loads dataset
func (m *Method) AdditionLogLen() int { return len(m.state.Load().adds) }

// CompactAdditions drops every addition record with Epoch ≤ floor from
// the log and publishes the trimmed snapshot (the dataset, filter, live
// set and epoch are untouched — compaction is observable only through
// AddsSince). It returns the number of records dropped.
//
// Safety is the caller's contract: floor must not exceed the minimum
// epoch any outstanding epoch-stamped answer set is exact up to,
// otherwise a holder of a lower epoch would silently skip the dropped
// records when it reconciles. Records above the floor are untouched, and
// snapshots taken before the call keep their full log — compaction can
// never retroactively change what an already-obtained view reports.
//
//gclint:acquires methodMu
//gclint:pins dataset
func (m *Method) CompactAdditions(floor int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.state.Load()
	// Epochs ascend: everything before the first record above the floor
	// goes.
	drop := sort.Search(len(old.adds), func(i int) bool { return old.adds[i].Epoch > floor })
	if drop == 0 {
		return 0
	}
	// A fresh allocation (not a re-slice) so the dropped prefix's backing
	// array becomes collectable — the whole point of compaction is keeping
	// the log's footprint bounded.
	kept := make([]AddRecord, len(old.adds)-drop)
	copy(kept, old.adds[drop:])
	m.state.Store(&methodState{
		dataset:   old.dataset,
		filter:    old.filter,
		live:      old.live,
		liveCount: old.liveCount,
		epoch:     old.epoch,
		adds:      kept,
	})
	return drop
}

// RemoveGraph tombstones dataset graph gid: the id stays allocated forever
// (answer-set positions remain stable) but the graph leaves the live set,
// so it can never again appear in a candidate or answer set. The filter is
// kept as-is — its postings for the dead id are masked by the live set —
// making removals O(dataset) copying with no index rebuild.
//
//gclint:acquires methodMu
//gclint:pins dataset
func (m *Method) RemoveGraph(gid int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.state.Load()
	if gid < 0 || gid >= len(old.dataset) {
		return fmt.Errorf("ftv: no dataset graph %d (id space [0,%d))", gid, len(old.dataset))
	}
	if old.dataset[gid] == nil {
		return fmt.Errorf("ftv: dataset graph %d is already removed", gid)
	}
	dataset := make([]*graph.Graph, len(old.dataset))
	copy(dataset, old.dataset)
	dataset[gid] = nil
	live := old.live.Clone()
	live.Remove(gid)
	m.state.Store(&methodState{
		dataset:   dataset,
		filter:    old.filter,
		live:      live,
		liveCount: old.liveCount - 1,
		epoch:     old.epoch + 1,
		adds:      old.adds,
	})
	return nil
}

// DatasetView is one immutable dataset snapshot: every accessor answers
// with respect to the same epoch, no matter what mutations land after the
// view was taken. The zero value is unusable; obtain views from
// Method.View.
//
//gclint:view dataset
type DatasetView struct {
	s      *methodState
	verify VerifierFunc
}

// Size returns the id space (positions including tombstones) — the
// capacity candidate and answer bitsets are sized to.
func (v DatasetView) Size() int { return len(v.s.dataset) }

// LiveCount returns the number of non-tombstoned graphs.
func (v DatasetView) LiveCount() int { return v.s.liveCount }

// Epoch returns the snapshot's dataset epoch.
func (v DatasetView) Epoch() int64 { return v.s.epoch }

// Graph returns dataset graph gid, or nil if tombstoned.
func (v DatasetView) Graph(gid int) *graph.Graph { return v.s.dataset[gid] }

// Live returns the live-id set. Callers must treat it as read-only.
//
//gclint:cowview
func (v DatasetView) Live() *bitset.Set { return v.s.live }

// AddsSince returns the addition records with Epoch > epoch, oldest
// first — the delta a holder of an epoch-stamped answer set must verify.
// The returned slice is shared and must not be modified.
//
//gclint:cowview
func (v DatasetView) AddsSince(epoch int64) []AddRecord {
	adds := v.s.adds
	// Epochs ascend; scan back from the tail (deltas are short-lived).
	i := len(adds)
	for i > 0 && adds[i-1].Epoch > epoch {
		i--
	}
	return adds[i:]
}

// Candidates runs the filtering stage over the snapshot: the filter's
// candidate set intersected with the live ids, so tombstoned graphs never
// reach verification even when the (removal-surviving) filter still posts
// them.
func (v DatasetView) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	c := v.s.filter.Candidates(q, qt)
	c.And(v.s.live)
	return c
}

// VerifyCandidate runs one sub-iso test between the query and dataset
// graph gid, oriented by query type. Tombstoned gids report false.
func (v DatasetView) VerifyCandidate(q *graph.Graph, gid int, qt QueryType) bool {
	g := v.s.dataset[gid]
	if g == nil {
		return false
	}
	if qt == Supergraph {
		return v.verify(g, q)
	}
	return v.verify(q, g)
}

// Result reports one query execution.
type Result struct {
	// Answers is the exact answer set as a bitset over dataset positions.
	Answers *bitset.Set
	// CandidateCount is |C_M| after filtering.
	CandidateCount int
	// Tests is the number of sub-iso tests executed (== CandidateCount for
	// a plain FTV run; smaller when the cache pruned the candidates).
	Tests int
	// FilterTime and VerifyTime split the processing cost.
	FilterTime time.Duration
	// VerifyTime is the total verification wall time.
	VerifyTime time.Duration
}

// TotalTime returns filter plus verification time.
func (r *Result) TotalTime() time.Duration { return r.FilterTime + r.VerifyTime }

// Run executes the query with plain filter-then-verify (no cache) over
// one consistent snapshot of the dataset.
//
//gclint:pins dataset
func (m *Method) Run(q *graph.Graph, qt QueryType) *Result {
	v := m.View()
	t0 := time.Now()
	cands := v.Candidates(q, qt)
	filterTime := time.Since(t0)

	answers := bitset.New(v.Size())
	tests := 0
	t1 := time.Now()
	cands.ForEach(func(gid int) bool {
		tests++
		if v.VerifyCandidate(q, gid, qt) {
			answers.Add(gid)
		}
		return true
	})
	return &Result{
		Answers:        answers,
		CandidateCount: cands.Count(),
		Tests:          tests,
		FilterTime:     filterTime,
		VerifyTime:     time.Since(t1),
	}
}

// NewGGSXMethod is a convenience constructor for the demo deployment's
// Method M: GGSX filtering with VF2 verification. The method is dynamic:
// AddGraph patches the GGSX trie in place through a copy-on-write
// incremental insert (O(graph), never a full rebuild).
func NewGGSXMethod(dataset []*graph.Graph, maxLen int) *Method {
	return NewDynamicMethod(fmt.Sprintf("ggsx-L%d/vf2", maxLen), dataset,
		func(ds []*graph.Graph) Filter { return NewGGSX(ds, maxLen) }, nil)
}
