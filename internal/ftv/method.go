package ftv

import (
	"fmt"
	"time"

	"graphcache/internal/bitset"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// VerifierFunc decides whether pattern is subgraph-isomorphic to target.
// The default is VF2; Ullmann or any custom engine can be plugged in
// (the paper's "pluggable cache" extends down to Method M components).
type VerifierFunc func(pattern, target *graph.Graph) bool

// VF2Verifier is the default verifier.
func VF2Verifier(pattern, target *graph.Graph) bool { return iso.SubIso(pattern, target) }

// UllmannVerifier is the alternative baseline verifier.
func UllmannVerifier(pattern, target *graph.Graph) bool {
	ok, _ := iso.Ullmann(pattern, target, iso.Options{})
	return ok
}

// Method is "Method M" of the paper: a dataset, a Filter and a Verifier.
// It answers subgraph/supergraph queries exactly, and exposes its filter
// and verifier so the GraphCache kernel can run the verification stage
// over a pruned candidate set.
type Method struct {
	name    string
	dataset []*graph.Graph
	filter  Filter
	verify  VerifierFunc
}

// NewMethod assembles a method. Dataset graphs are identified by slice
// position throughout (graph ids are not consulted). verify may be nil,
// defaulting to VF2.
func NewMethod(name string, dataset []*graph.Graph, filter Filter, verify VerifierFunc) *Method {
	if verify == nil {
		verify = VF2Verifier
	}
	return &Method{name: name, dataset: dataset, filter: filter, verify: verify}
}

// Name returns the method's report name, e.g. "ggsx-L4/vf2".
func (m *Method) Name() string { return m.name }

// Dataset returns the underlying dataset slice. Callers must not modify it.
func (m *Method) Dataset() []*graph.Graph { return m.dataset }

// DatasetSize returns the number of dataset graphs.
func (m *Method) DatasetSize() int { return len(m.dataset) }

// Filter returns the method's filter.
func (m *Method) Filter() Filter { return m.filter }

// Candidates runs the filtering stage, returning the candidate set C_M.
func (m *Method) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	return m.filter.Candidates(q, qt)
}

// VerifyCandidate runs one sub-iso test between the query and dataset
// graph gid, oriented by query type: pattern=q for subgraph queries,
// pattern=dataset graph for supergraph queries.
func (m *Method) VerifyCandidate(q *graph.Graph, gid int, qt QueryType) bool {
	if qt == Supergraph {
		return m.verify(m.dataset[gid], q)
	}
	return m.verify(q, m.dataset[gid])
}

// Result reports one query execution.
type Result struct {
	// Answers is the exact answer set as a bitset over dataset positions.
	Answers *bitset.Set
	// CandidateCount is |C_M| after filtering.
	CandidateCount int
	// Tests is the number of sub-iso tests executed (== CandidateCount for
	// a plain FTV run; smaller when the cache pruned the candidates).
	Tests int
	// FilterTime and VerifyTime split the processing cost.
	FilterTime time.Duration
	// VerifyTime is the total verification wall time.
	VerifyTime time.Duration
}

// TotalTime returns filter plus verification time.
func (r *Result) TotalTime() time.Duration { return r.FilterTime + r.VerifyTime }

// Run executes the query with plain filter-then-verify (no cache).
func (m *Method) Run(q *graph.Graph, qt QueryType) *Result {
	t0 := time.Now()
	cands := m.Candidates(q, qt)
	filterTime := time.Since(t0)

	answers := bitset.New(len(m.dataset))
	tests := 0
	t1 := time.Now()
	cands.ForEach(func(gid int) bool {
		tests++
		if m.VerifyCandidate(q, gid, qt) {
			answers.Add(gid)
		}
		return true
	})
	return &Result{
		Answers:        answers,
		CandidateCount: cands.Count(),
		Tests:          tests,
		FilterTime:     filterTime,
		VerifyTime:     time.Since(t1),
	}
}

// NewGGSXMethod is a convenience constructor for the demo deployment's
// Method M: GGSX filtering with VF2 verification.
func NewGGSXMethod(dataset []*graph.Graph, maxLen int) *Method {
	return NewMethod(fmt.Sprintf("ggsx-L%d/vf2", maxLen), dataset, NewGGSX(dataset, maxLen), nil)
}
