package ftv

import "graphcache/internal/graph"

// DegreeTailLen is the number of out-degree thresholds a FeatureVector
// tracks (degrees 1..DegreeTailLen; higher degrees saturate the last
// bucket's predecessors but still count toward every threshold they meet).
const DegreeTailLen = 8

// FeatureVector is a fixed-size, containment-safe summary of a graph: the
// vertex and edge counts, a bloom of the vertex-label set, a bloom of
// (label, minimum-degree) facts, and an out-degree tail histogram. It is
// the cheap first stage of containment filtering, sitting in front of the
// exact (and allocation-heavy) label-multiset and path-feature dominance
// merges that LabelFilter and GGSX perform: every field is a necessary
// condition for subgraph isomorphism, so ContainedIn failing proves
// non-containment while costing a few dozen integer compares and no
// pointer chasing.
//
// Soundness: a (label-preserving, direction-preserving) embedding of q
// into G maps each q-vertex v to a G-vertex with the same label and
// out-degree ≥ deg(v), and distinct vertices to distinct vertices. Hence
// |V|, |E|, the label set, the per-(label, degree≥k) facts and the number
// of vertices with out-degree ≥ k can only grow from q to G. Bloom
// collisions merge bits, which weakens but never unsounds the filter.
type FeatureVector struct {
	// Vertices and Edges are |V| and |E|.
	Vertices, Edges int32
	// LabelBits is a 64-bit bloom of the vertex-label set.
	LabelBits uint64
	// LabelDegBits is a 64-bit bloom of (label l, degree ≥ k) facts for
	// k in 1..4: bit set when some vertex with label l has out-degree ≥ k.
	LabelDegBits uint64
	// DegreeTail[k] counts vertices with out-degree ≥ k+1.
	DegreeTail [DegreeTailLen]int32
}

// labelDegThresholds bounds the k range of LabelDegBits.
const labelDegThresholds = 4

// golden is the 64-bit golden-ratio multiplier used to spread small label
// values across the bloom words.
const golden = 0x9E3779B97F4A7C15

func labelBit(l graph.Label) uint64 {
	return 1 << ((uint64(l) * golden) >> 58)
}

func labelDegBit(l graph.Label, k int) uint64 {
	return 1 << (((uint64(l)*31 + uint64(k)) * golden) >> 58)
}

// ExtractFeatures computes the graph's FeatureVector. For undirected
// graphs the out-degree of a vertex is its degree.
func ExtractFeatures(g *graph.Graph) FeatureVector {
	fv := FeatureVector{Vertices: int32(g.N()), Edges: int32(g.M())}
	for v := 0; v < g.N(); v++ {
		l := g.Label(v)
		fv.LabelBits |= labelBit(l)
		d := g.OutDegree(v)
		for k := 1; k <= d && k <= labelDegThresholds; k++ {
			fv.LabelDegBits |= labelDegBit(l, k)
		}
		if d > DegreeTailLen {
			d = DegreeTailLen
		}
		for k := 0; k < d; k++ {
			fv.DegreeTail[k]++
		}
	}
	return fv
}

// ContainedIn reports whether v's graph can possibly be subgraph-isomorphic
// to o's graph — a necessary condition, never sufficient. The zero
// FeatureVector (the empty graph) is contained in everything.
//
//gclint:noalloc
func (v FeatureVector) ContainedIn(o FeatureVector) bool {
	if v.Vertices > o.Vertices || v.Edges > o.Edges {
		return false
	}
	if v.LabelBits&^o.LabelBits != 0 || v.LabelDegBits&^o.LabelDegBits != 0 {
		return false
	}
	for k := range v.DegreeTail {
		if v.DegreeTail[k] > o.DegreeTail[k] {
			return false
		}
	}
	return true
}
