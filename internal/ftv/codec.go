package ftv

import (
	"encoding/binary"
	"fmt"
)

// Fixed binary codec for FeatureVector, used by the GCS3 snapshot format's
// per-entry index records (internal/core/persist.go). The layout is fixed
// at BinaryLen bytes (all integers little-endian) so index records stay
// constant-size and seekable:
//
//	bytes  0..4    Vertices (int32)
//	bytes  4..8    Edges (int32)
//	bytes  8..16   LabelBits (uint64)
//	bytes 16..24   LabelDegBits (uint64)
//	bytes 24..56   DegreeTail ([DegreeTailLen]int32)

// BinaryLen is the fixed encoded size of a FeatureVector.
const BinaryLen = 4 + 4 + 8 + 8 + 4*DegreeTailLen

// AppendBinary appends v's fixed-size encoding to buf.
func (v FeatureVector) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Vertices))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Edges))
	buf = binary.LittleEndian.AppendUint64(buf, v.LabelBits)
	buf = binary.LittleEndian.AppendUint64(buf, v.LabelDegBits)
	for _, d := range v.DegreeTail {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	return buf
}

// FeatureVectorFromBinary decodes the fixed-size encoding from the front
// of data. Counts are validated non-negative — a corrupted record must
// fail here, not poison containment filtering later.
func FeatureVectorFromBinary(data []byte) (FeatureVector, error) {
	var v FeatureVector
	if len(data) < BinaryLen {
		return v, fmt.Errorf("ftv: feature vector truncated: %d bytes, want %d", len(data), BinaryLen)
	}
	v.Vertices = int32(binary.LittleEndian.Uint32(data[0:]))
	v.Edges = int32(binary.LittleEndian.Uint32(data[4:]))
	v.LabelBits = binary.LittleEndian.Uint64(data[8:])
	v.LabelDegBits = binary.LittleEndian.Uint64(data[16:])
	if v.Vertices < 0 || v.Edges < 0 {
		return FeatureVector{}, fmt.Errorf("ftv: negative graph size %d/%d", v.Vertices, v.Edges)
	}
	for i := range v.DegreeTail {
		d := int32(binary.LittleEndian.Uint32(data[24+4*i:]))
		if d < 0 || d > v.Vertices {
			return FeatureVector{}, fmt.Errorf("ftv: degree-tail count %d out of range at threshold %d", d, i+1)
		}
		v.DegreeTail[i] = d
	}
	return v, nil
}
