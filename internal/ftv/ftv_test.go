package ftv_test

import (
	"math/rand"
	"testing"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

func molecules(seed int64, count int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	cfg := gen.MoleculeConfig{MinV: 12, MaxV: 24, RingFrac: 0.1, MaxDegree: 4, Labels: 8}
	return gen.Molecules(rng, count, cfg)
}

// exactAnswers computes the ground-truth answer set by exhaustive VF2.
func exactAnswers(dataset []*graph.Graph, q *graph.Graph, qt ftv.QueryType) *bitset.Set {
	out := bitset.New(len(dataset))
	for i, g := range dataset {
		var ok bool
		if qt == ftv.Supergraph {
			ok = iso.SubIso(g, q)
		} else {
			ok = iso.SubIso(q, g)
		}
		if ok {
			out.Add(i)
		}
	}
	return out
}

func TestQueryTypeString(t *testing.T) {
	if ftv.Subgraph.String() != "subgraph" || ftv.Supergraph.String() != "supergraph" {
		t.Error("QueryType.String wrong")
	}
}

func TestNoFilterIsComplete(t *testing.T) {
	f := ftv.NewNoFilter(7)
	c := f.Candidates(graph.MustNew([]graph.Label{0}, nil), ftv.Subgraph)
	if c.Count() != 7 {
		t.Errorf("NoFilter candidates = %d, want 7", c.Count())
	}
	if f.IndexBytes() != 0 || f.Name() != "none" {
		t.Error("NoFilter metadata wrong")
	}
}

// Soundness: the candidate set must contain every true answer.
func TestFiltersSound(t *testing.T) {
	dataset := molecules(1, 40)
	rng := rand.New(rand.NewSource(2))
	filters := []ftv.Filter{
		ftv.NewLabelFilter(dataset),
		ftv.NewGGSX(dataset, 3),
		ftv.NewGGSX(dataset, 4),
		ftv.NewNoFilter(len(dataset)),
	}
	sampler := gen.NewAIDSLabelSampler(8)
	for trial := 0; trial < 25; trial++ {
		src := dataset[rng.Intn(len(dataset))]
		sub := gen.ExtractConnectedSubgraph(rng, src, 3+rng.Intn(8))
		super := gen.Augment(rng, src, 2, 1, sampler)

		for _, f := range filters {
			subTruth := exactAnswers(dataset, sub, ftv.Subgraph)
			if !subTruth.SubsetOf(f.Candidates(sub, ftv.Subgraph)) {
				t.Fatalf("filter %s drops subgraph answers (trial %d)", f.Name(), trial)
			}
			superTruth := exactAnswers(dataset, super, ftv.Supergraph)
			if !superTruth.SubsetOf(f.Candidates(super, ftv.Supergraph)) {
				t.Fatalf("filter %s drops supergraph answers (trial %d)", f.Name(), trial)
			}
		}
	}
}

// GGSX should filter at least as well as the label filter in aggregate.
func TestGGSXPrunesHarder(t *testing.T) {
	dataset := molecules(3, 60)
	rng := rand.New(rand.NewSource(4))
	lf := ftv.NewLabelFilter(dataset)
	gg := ftv.NewGGSX(dataset, 4)
	totalLF, totalGG := 0, 0
	for trial := 0; trial < 30; trial++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 6)
		totalLF += lf.Candidates(q, ftv.Subgraph).Count()
		totalGG += gg.Candidates(q, ftv.Subgraph).Count()
	}
	if totalGG > totalLF {
		t.Errorf("GGSX candidates (%d) exceed label-filter candidates (%d)", totalGG, totalLF)
	}
}

func TestGGSXLongerPathsPruneMore(t *testing.T) {
	dataset := molecules(5, 60)
	rng := rand.New(rand.NewSource(6))
	g3 := ftv.NewGGSX(dataset, 3)
	g4 := ftv.NewGGSX(dataset, 4)
	tot3, tot4 := 0, 0
	for trial := 0; trial < 30; trial++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 8)
		tot3 += g3.Candidates(q, ftv.Subgraph).Count()
		tot4 += g4.Candidates(q, ftv.Subgraph).Count()
	}
	if tot4 > tot3 {
		t.Errorf("L=4 candidates (%d) exceed L=3 candidates (%d)", tot4, tot3)
	}
	if g4.IndexBytes() <= g3.IndexBytes() {
		t.Errorf("L=4 index (%d B) not larger than L=3 (%d B)", g4.IndexBytes(), g3.IndexBytes())
	}
	if g4.NodeCount() <= g3.NodeCount() {
		t.Error("L=4 should have more trie nodes")
	}
}

func TestGGSXMissingFeatureShortCircuit(t *testing.T) {
	dataset := molecules(7, 10)
	gg := ftv.NewGGSX(dataset, 3)
	// A query with a label that no molecule has (alphabet is 8).
	q := graph.MustNew([]graph.Label{100, 100}, [][2]int{{0, 1}})
	if c := gg.Candidates(q, ftv.Subgraph); !c.Empty() {
		t.Errorf("query with unseen label should have no candidates, got %d", c.Count())
	}
}

func TestGGSXEmptyQuery(t *testing.T) {
	dataset := molecules(8, 5)
	gg := ftv.NewGGSX(dataset, 3)
	q := graph.MustNew(nil, nil)
	if c := gg.Candidates(q, ftv.Subgraph); c.Count() != 5 {
		t.Errorf("empty query should match all graphs, got %d", c.Count())
	}
}

func TestMethodRunExactness(t *testing.T) {
	dataset := molecules(9, 30)
	rng := rand.New(rand.NewSource(10))
	methods := []*ftv.Method{
		ftv.NewGGSXMethod(dataset, 3),
		ftv.NewMethod("label/vf2", dataset, ftv.NewLabelFilter(dataset), nil),
		ftv.NewMethod("none/vf2", dataset, ftv.NewNoFilter(len(dataset)), nil),
		ftv.NewMethod("ggsx/ullmann", dataset, ftv.NewGGSX(dataset, 3), ftv.UllmannVerifier),
	}
	sampler := gen.NewAIDSLabelSampler(8)
	for trial := 0; trial < 15; trial++ {
		sub := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 5)
		super := gen.Augment(rng, dataset[rng.Intn(len(dataset))], 2, 1, sampler)
		wantSub := exactAnswers(dataset, sub, ftv.Subgraph)
		wantSuper := exactAnswers(dataset, super, ftv.Supergraph)
		for _, m := range methods {
			if got := m.Run(sub, ftv.Subgraph); !got.Answers.Equal(wantSub) {
				t.Fatalf("%s: subgraph answers %v, want %v", m.Name(), got.Answers, wantSub)
			}
			if got := m.Run(super, ftv.Supergraph); !got.Answers.Equal(wantSuper) {
				t.Fatalf("%s: supergraph answers %v, want %v", m.Name(), got.Answers, wantSuper)
			}
		}
	}
}

func TestMethodResultAccounting(t *testing.T) {
	dataset := molecules(11, 20)
	m := ftv.NewGGSXMethod(dataset, 3)
	rng := rand.New(rand.NewSource(12))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 4)
	r := m.Run(q, ftv.Subgraph)
	if r.Tests != r.CandidateCount {
		t.Errorf("plain FTV run: tests %d != candidates %d", r.Tests, r.CandidateCount)
	}
	if r.Answers.Count() > r.CandidateCount {
		t.Error("more answers than candidates")
	}
	if !r.Answers.Contains(0) {
		t.Error("extraction source must be an answer")
	}
	if r.TotalTime() < r.VerifyTime {
		t.Error("TotalTime must include verify time")
	}
	if m.DatasetSize() != 20 || m.Filter().Name() != "ggsx" {
		t.Error("method metadata wrong")
	}
}

func TestVerifyCandidateOrientation(t *testing.T) {
	small := graph.MustNew([]graph.Label{1, 2}, [][2]int{{0, 1}})
	big := graph.MustNew([]graph.Label{1, 2, 3}, [][2]int{{0, 1}, {1, 2}})
	dataset := []*graph.Graph{big.WithID(0), small.WithID(1)}
	m := ftv.NewMethod("t", dataset, ftv.NewNoFilter(2), nil)

	// small ⊑ big: subgraph query small matches dataset graph 0.
	if !m.VerifyCandidate(small, 0, ftv.Subgraph) {
		t.Error("subgraph orientation broken")
	}
	// supergraph query big contains dataset graph 1 (= small).
	if !m.VerifyCandidate(big, 1, ftv.Supergraph) {
		t.Error("supergraph orientation broken")
	}
	// big is not ⊑ small.
	if m.VerifyCandidate(big, 1, ftv.Subgraph) {
		t.Error("subgraph orientation inverted")
	}
}

func TestLabelFilterMetadata(t *testing.T) {
	dataset := molecules(13, 10)
	f := ftv.NewLabelFilter(dataset)
	if f.Name() != "label" {
		t.Error("name wrong")
	}
	if f.IndexBytes() <= 0 {
		t.Error("label filter should report positive index bytes")
	}
}

func BenchmarkGGSXBuild(b *testing.B) {
	dataset := molecules(20, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ftv.NewGGSX(dataset, 4)
	}
}

func BenchmarkGGSXFilter(b *testing.B) {
	dataset := molecules(21, 200)
	gg := ftv.NewGGSX(dataset, 4)
	rng := rand.New(rand.NewSource(22))
	q := gen.ExtractConnectedSubgraph(rng, dataset[0], 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gg.Candidates(q, ftv.Subgraph)
	}
}
