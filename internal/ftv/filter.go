// Package ftv implements "Method M" of GraphCache: filter-then-verify
// (FTV) subgraph/supergraph query processing over a graph dataset.
//
// A Filter prunes the dataset to a candidate set C_M that provably
// contains the query's full answer set; a verifier (VF2 by default) then
// tests each candidate. Three filters are provided:
//
//   - GGSX: a from-scratch implementation of the GraphGrepSX idea
//     (Bonnici et al., PRIB 2010): a suffix trie over vertex-label paths of
//     bounded length with per-graph occurrence counts. This is the Method M
//     the demo deployment uses.
//   - LabelFilter: label-multiset and size pruning only (a cheap baseline).
//   - NoFilter: no pruning — Method M degenerates to a pure SI algorithm.
//
// Filtering is sound in both query directions: for a subgraph query the
// candidates are graphs whose features dominate the query's; for a
// supergraph query, graphs whose features are dominated by the query's.
package ftv

import (
	"fmt"

	"graphcache/internal/bitset"
	"graphcache/internal/graph"
)

// QueryType distinguishes the two query semantics of the paper.
type QueryType uint8

const (
	// Subgraph queries return dataset graphs containing the pattern.
	Subgraph QueryType = iota
	// Supergraph queries return dataset graphs contained in the pattern.
	Supergraph
)

// String returns "subgraph" or "supergraph".
func (t QueryType) String() string {
	if t == Supergraph {
		return "supergraph"
	}
	return "subgraph"
}

// Filter narrows a dataset to a candidate set guaranteed to contain the
// query's answer set (no false negatives; false positives are verified
// away later).
type Filter interface {
	// Name identifies the filter in reports.
	Name() string
	// Candidates returns the candidate set for query q as a bitset over
	// dataset positions. Implementations must not retain q.
	Candidates(q *graph.Graph, qt QueryType) *bitset.Set
	// IndexBytes estimates the heap footprint of the filter's index —
	// the space-overhead series of experiment EXP-II.
	IndexBytes() int
}

// InsertableFilter is the optional incremental-maintenance capability of a
// Filter: WithGraph returns a NEW filter whose candidate sets (after the
// method's live-id mask) are identical to rebuilding the filter from
// scratch over the dataset with g appended at position gid, without
// re-indexing any existing graph. Implementations are copy-on-write: the
// receiver is never modified, so snapshots holding it keep answering for
// their own epoch, and the returned filter shares all untouched index
// structure with the receiver.
//
// gid must be ≥ the filter's current dataset size (additions only ever
// append — ids are never reused); positions between the old size and gid
// are indexed as tombstones. Method.AddGraph prefers this path over the
// FilterFactory rebuild whenever the current filter implements it: the
// expensive work — feature extraction — is O(graph), never the O(dataset)
// re-enumeration of every existing graph's features a rebuild pays. The
// COW bookkeeping additionally costs at worst a flat, pointer-sized copy
// of the index skeleton (GGSX clones its node-pointer array and the
// touched posting lists; StarFilter clones its inverted map shallowly,
// sharing every untouched posting list) — memcpy-class work, orders of
// magnitude below re-extraction. All bundled filters implement
// InsertableFilter.
type InsertableFilter interface {
	Filter
	WithGraph(gid int, g *graph.Graph) Filter
}

// RebuildOnly wraps a filter so it no longer advertises the
// InsertableFilter capability, forcing Method.AddGraph down the full
// FilterFactory rebuild path. It is the measurable baseline for the
// incremental-insert comparison (benchmarks and tests); Candidates,
// Name and IndexBytes delegate unchanged.
func RebuildOnly(f Filter) Filter { return rebuildOnly{f} }

type rebuildOnly struct{ Filter }

// LabelFilter prunes by vertex count, edge count and label-multiset
// dominance. It needs only O(1) state per dataset graph.
type LabelFilter struct {
	n       int
	vectors []graph.LabelVector
	sizes   [][2]int // (V, E) per graph
	bytes   int
}

// NewLabelFilter builds a LabelFilter over the dataset.
func NewLabelFilter(dataset []*graph.Graph) *LabelFilter {
	f := &LabelFilter{
		n:       len(dataset),
		vectors: make([]graph.LabelVector, len(dataset)),
		sizes:   make([][2]int, len(dataset)),
	}
	for i, g := range dataset {
		if g == nil { // tombstoned id: sentinel sizes match no query
			f.sizes[i] = [2]int{-1, -1}
			continue
		}
		f.vectors[i] = graph.LabelVectorOf(g)
		f.sizes[i] = [2]int{g.N(), g.M()}
		f.bytes += 8*len(f.vectors[i]) + 16
	}
	return f
}

// Name implements Filter.
func (f *LabelFilter) Name() string { return "label" }

// IndexBytes implements Filter.
func (f *LabelFilter) IndexBytes() int { return f.bytes }

// WithGraph implements InsertableFilter: only the new graph's label vector
// and sizes are computed; every existing row is carried over by a flat
// copy.
func (f *LabelFilter) WithGraph(gid int, g *graph.Graph) Filter {
	if gid < f.n {
		panic(fmt.Sprintf("ftv: LabelFilter.WithGraph gid %d is inside the indexed id space [0,%d) — additions only append", gid, f.n))
	}
	n := gid + 1
	f2 := &LabelFilter{
		n:       n,
		vectors: make([]graph.LabelVector, n),
		sizes:   make([][2]int, n),
		bytes:   f.bytes,
	}
	copy(f2.vectors, f.vectors)
	copy(f2.sizes, f.sizes)
	for i := f.n; i < gid; i++ {
		f2.sizes[i] = [2]int{-1, -1} // implicit tombstones: match no query
	}
	f2.vectors[gid] = graph.LabelVectorOf(g)
	f2.sizes[gid] = [2]int{g.N(), g.M()}
	f2.bytes += 8*len(f2.vectors[gid]) + 16
	return f2
}

// Candidates implements Filter.
func (f *LabelFilter) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	qv := graph.LabelVectorOf(q)
	out := bitset.New(f.n)
	for i := 0; i < f.n; i++ {
		if f.sizes[i][0] < 0 {
			continue // tombstoned
		}
		switch qt {
		case Subgraph:
			if q.N() <= f.sizes[i][0] && q.M() <= f.sizes[i][1] && qv.DominatedBy(f.vectors[i]) {
				out.Add(i)
			}
		case Supergraph:
			if f.sizes[i][0] <= q.N() && f.sizes[i][1] <= q.M() && f.vectors[i].DominatedBy(qv) {
				out.Add(i)
			}
		}
	}
	return out
}

// NoFilter performs no pruning: every dataset graph is a candidate.
// Method M with NoFilter is a plain SI algorithm in the paper's taxonomy.
type NoFilter struct {
	n int
}

// NewNoFilter returns a NoFilter for a dataset of n graphs.
func NewNoFilter(n int) *NoFilter { return &NoFilter{n: n} }

// Name implements Filter.
func (f *NoFilter) Name() string { return "none" }

// IndexBytes implements Filter.
func (f *NoFilter) IndexBytes() int { return 0 }

// Candidates implements Filter.
func (f *NoFilter) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	return bitset.NewFull(f.n)
}

// WithGraph implements InsertableFilter: a NoFilter only tracks the id
// space (tombstones are masked by the method's live set either way).
func (f *NoFilter) WithGraph(gid int, g *graph.Graph) Filter {
	if gid < f.n {
		panic(fmt.Sprintf("ftv: NoFilter.WithGraph gid %d is inside the indexed id space [0,%d) — additions only append", gid, f.n))
	}
	return &NoFilter{n: gid + 1}
}
