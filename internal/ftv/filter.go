// Package ftv implements "Method M" of GraphCache: filter-then-verify
// (FTV) subgraph/supergraph query processing over a graph dataset.
//
// A Filter prunes the dataset to a candidate set C_M that provably
// contains the query's full answer set; a verifier (VF2 by default) then
// tests each candidate. Three filters are provided:
//
//   - GGSX: a from-scratch implementation of the GraphGrepSX idea
//     (Bonnici et al., PRIB 2010): a suffix trie over vertex-label paths of
//     bounded length with per-graph occurrence counts. This is the Method M
//     the demo deployment uses.
//   - LabelFilter: label-multiset and size pruning only (a cheap baseline).
//   - NoFilter: no pruning — Method M degenerates to a pure SI algorithm.
//
// Filtering is sound in both query directions: for a subgraph query the
// candidates are graphs whose features dominate the query's; for a
// supergraph query, graphs whose features are dominated by the query's.
package ftv

import (
	"graphcache/internal/bitset"
	"graphcache/internal/graph"
)

// QueryType distinguishes the two query semantics of the paper.
type QueryType uint8

const (
	// Subgraph queries return dataset graphs containing the pattern.
	Subgraph QueryType = iota
	// Supergraph queries return dataset graphs contained in the pattern.
	Supergraph
)

// String returns "subgraph" or "supergraph".
func (t QueryType) String() string {
	if t == Supergraph {
		return "supergraph"
	}
	return "subgraph"
}

// Filter narrows a dataset to a candidate set guaranteed to contain the
// query's answer set (no false negatives; false positives are verified
// away later).
type Filter interface {
	// Name identifies the filter in reports.
	Name() string
	// Candidates returns the candidate set for query q as a bitset over
	// dataset positions. Implementations must not retain q.
	Candidates(q *graph.Graph, qt QueryType) *bitset.Set
	// IndexBytes estimates the heap footprint of the filter's index —
	// the space-overhead series of experiment EXP-II.
	IndexBytes() int
}

// LabelFilter prunes by vertex count, edge count and label-multiset
// dominance. It needs only O(1) state per dataset graph.
type LabelFilter struct {
	n       int
	vectors []graph.LabelVector
	sizes   [][2]int // (V, E) per graph
	bytes   int
}

// NewLabelFilter builds a LabelFilter over the dataset.
func NewLabelFilter(dataset []*graph.Graph) *LabelFilter {
	f := &LabelFilter{
		n:       len(dataset),
		vectors: make([]graph.LabelVector, len(dataset)),
		sizes:   make([][2]int, len(dataset)),
	}
	for i, g := range dataset {
		if g == nil { // tombstoned id: sentinel sizes match no query
			f.sizes[i] = [2]int{-1, -1}
			continue
		}
		f.vectors[i] = graph.LabelVectorOf(g)
		f.sizes[i] = [2]int{g.N(), g.M()}
		f.bytes += 8*len(f.vectors[i]) + 16
	}
	return f
}

// Name implements Filter.
func (f *LabelFilter) Name() string { return "label" }

// IndexBytes implements Filter.
func (f *LabelFilter) IndexBytes() int { return f.bytes }

// Candidates implements Filter.
func (f *LabelFilter) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	qv := graph.LabelVectorOf(q)
	out := bitset.New(f.n)
	for i := 0; i < f.n; i++ {
		if f.sizes[i][0] < 0 {
			continue // tombstoned
		}
		switch qt {
		case Subgraph:
			if q.N() <= f.sizes[i][0] && q.M() <= f.sizes[i][1] && qv.DominatedBy(f.vectors[i]) {
				out.Add(i)
			}
		case Supergraph:
			if f.sizes[i][0] <= q.N() && f.sizes[i][1] <= q.M() && f.vectors[i].DominatedBy(qv) {
				out.Add(i)
			}
		}
	}
	return out
}

// NoFilter performs no pruning: every dataset graph is a candidate.
// Method M with NoFilter is a plain SI algorithm in the paper's taxonomy.
type NoFilter struct {
	n int
}

// NewNoFilter returns a NoFilter for a dataset of n graphs.
func NewNoFilter(n int) *NoFilter { return &NoFilter{n: n} }

// Name implements Filter.
func (f *NoFilter) Name() string { return "none" }

// IndexBytes implements Filter.
func (f *NoFilter) IndexBytes() int { return 0 }

// Candidates implements Filter.
func (f *NoFilter) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	return bitset.NewFull(f.n)
}
