package ftv

import (
	"fmt"
	"sort"

	"graphcache/internal/bitset"
	"graphcache/internal/graph"
)

// StarFilter is a tree-feature FTV filter: it indexes star subtrees
// (a center vertex plus a label multiset of up to MaxLeaves leaves) with
// per-graph instance counts. Paths, trees and subgraphs are the classic
// FTV feature families (§3.1.II); StarFilter is the tree member, pluggable
// into Method M alongside GGSX.
//
// Soundness: an embedding maps every star instance of q (center vertex +
// chosen leaf set) to a distinct star instance of G with identical center
// and leaf labels, so per-feature counts dominate. Instance counts are
// computed combinatorially from per-vertex neighbor-label counts — no
// enumeration of actual leaf sets.
type StarFilter struct {
	n        int
	maxLeafs int
	inverted map[uint64][]posting // feature hash → (gid, count), sorted by gid
	forward  [][]nodeCount64
	bytes    int
}

type nodeCount64 struct {
	hash  uint64
	count int32
}

// NewStarFilter indexes stars with 1..maxLeaves leaves (2 is the classic
// "cherry"; 3 adds most of the discriminative power on molecules).
func NewStarFilter(dataset []*graph.Graph, maxLeaves int) *StarFilter {
	if maxLeaves < 1 {
		maxLeaves = 1
	}
	f := &StarFilter{
		n:        len(dataset),
		maxLeafs: maxLeaves,
		inverted: make(map[uint64][]posting),
		forward:  make([][]nodeCount64, len(dataset)),
	}
	for gid, g := range dataset {
		if g == nil { // tombstoned id: indexed as empty
			continue
		}
		counts := starCounts(g, maxLeaves)
		fwd := make([]nodeCount64, 0, len(counts))
		for h, c := range counts {
			f.inverted[h] = append(f.inverted[h], posting{int32(gid), c})
			fwd = append(fwd, nodeCount64{h, c})
		}
		sort.Slice(fwd, func(i, j int) bool { return fwd[i].hash < fwd[j].hash })
		f.forward[gid] = fwd
		f.bytes += 16 + 12*len(fwd)
	}
	for _, ps := range f.inverted {
		f.bytes += 24 + 8*len(ps)
	}
	return f
}

// starCounts returns per-feature instance counts for all stars with
// 1..maxLeaves leaves. The count for a star (center c, leaf multiset L) is
// Σ over vertices v with label c of Π_l C(#neighbors of v with label l,
// multiplicity of l in L) — pure combinatorics over the per-vertex
// neighbor-label histogram.
func starCounts(g *graph.Graph, maxLeaves int) map[uint64]int32 {
	counts := make(map[uint64]int32)
	for v := 0; v < g.N(); v++ {
		// Neighbor-label histogram over out-neighbors: for undirected
		// graphs that is all neighbors; for directed ones the out-star,
		// which direction-respecting embeddings preserve.
		hist := make(map[graph.Label]int, 8)
		for _, w := range g.OutNeighbors(v) {
			hist[g.Label(int(w))]++
		}
		if len(hist) == 0 {
			continue
		}
		labels := make([]graph.Label, 0, len(hist))
		for l := range hist {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		var leaf []graph.Label
		extendStar(0, 1, &leaf, labels, hist, maxLeaves, g.Label(v), counts)
	}
	return counts
}

// extendStar grows the current leaf multiset with copies of labels[idx:],
// recording each non-empty multiset with its combinatorial instance count.
// ways carries Π C(avail_l, k_l) for the labels already chosen.
func extendStar(idx int, ways int64, leaf *[]graph.Label, labels []graph.Label, hist map[graph.Label]int, maxLeaves int, center graph.Label, counts map[uint64]int32) {
	for i := idx; i < len(labels); i++ {
		l := labels[i]
		avail := hist[l]
		w := ways
		for k := 1; k <= avail && len(*leaf)+k <= maxLeaves; k++ {
			w = w * int64(avail-k+1) / int64(k) // running C(avail, k)
			for j := 0; j < k; j++ {
				*leaf = append(*leaf, l)
			}
			counts[starHash(center, *leaf)] += int32(w)
			if len(*leaf) < maxLeaves {
				extendStar(i+1, w, leaf, labels, hist, maxLeaves, center, counts)
			}
			*leaf = (*leaf)[:len(*leaf)-k]
		}
	}
}

// starHash hashes (center label, sorted leaf multiset).
func starHash(center graph.Label, leaves []graph.Label) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(center) | 1<<32
	h *= prime64
	for _, l := range leaves {
		h ^= uint64(l)
		h *= prime64
	}
	h ^= uint64(len(leaves)) << 48
	h *= prime64
	return h
}

// WithGraph implements InsertableFilter: only the new graph's stars are
// counted (O(graph) combinatorics — no existing graph is revisited);
// posting lists are extended through copy-on-write appends (the new gid
// is the largest, preserving the gid sort) and the receiver is never
// modified. The inverted map is cloned shallowly — O(distinct star
// features) pointer-sized entries, sharing every untouched posting list —
// the flat-bookkeeping cost the InsertableFilter contract allows; the
// star re-COUNTING a rebuild would pay is what the insert avoids.
func (f *StarFilter) WithGraph(gid int, g *graph.Graph) Filter {
	if gid < f.n {
		panic(fmt.Sprintf("ftv: StarFilter.WithGraph gid %d is inside the indexed id space [0,%d) — additions only append", gid, f.n))
	}
	n := gid + 1
	counts := starCounts(g, f.maxLeafs)
	f2 := &StarFilter{
		n:        n,
		maxLeafs: f.maxLeafs,
		inverted: make(map[uint64][]posting, len(f.inverted)+len(counts)),
		forward:  make([][]nodeCount64, n),
		bytes:    f.bytes,
	}
	for h, ps := range f.inverted {
		f2.inverted[h] = ps
	}
	copy(f2.forward, f.forward)

	fwd := make([]nodeCount64, 0, len(counts))
	for h, c := range counts {
		ps := f2.inverted[h]
		if len(ps) == 0 {
			f2.bytes += 24 // fresh posting list header
		}
		// Full slice expression: the append reallocates instead of
		// scribbling over a posting array the receiver still exposes.
		f2.inverted[h] = append(ps[:len(ps):len(ps)], posting{int32(gid), c})
		f2.bytes += 8
		fwd = append(fwd, nodeCount64{h, c})
	}
	sort.Slice(fwd, func(i, j int) bool { return fwd[i].hash < fwd[j].hash })
	f2.forward[gid] = fwd
	f2.bytes += 16 + 12*len(fwd)
	return f2
}

// Name implements Filter.
func (f *StarFilter) Name() string { return "stars" }

// IndexBytes implements Filter.
func (f *StarFilter) IndexBytes() int { return f.bytes }

// Candidates implements Filter.
func (f *StarFilter) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	qc := starCounts(q, f.maxLeafs)
	switch qt {
	case Supergraph:
		out := bitset.New(f.n)
	graphs:
		for gid, fwd := range f.forward {
			for _, nc := range fwd {
				if qc[nc.hash] < nc.count {
					continue graphs
				}
			}
			out.Add(gid)
		}
		return out
	default:
		if len(qc) == 0 {
			return bitset.NewFull(f.n)
		}
		// Intersect posting lists, rarest feature first.
		type feat struct {
			hash  uint64
			count int32
		}
		feats := make([]feat, 0, len(qc))
		for h, c := range qc {
			feats = append(feats, feat{h, c})
		}
		sort.Slice(feats, func(i, j int) bool {
			return len(f.inverted[feats[i].hash]) < len(f.inverted[feats[j].hash])
		})
		out := bitset.New(f.n)
		first, ok := f.inverted[feats[0].hash]
		if !ok {
			return out // feature absent from every dataset graph
		}
		for _, p := range first {
			if p.count >= feats[0].count {
				out.Add(int(p.gid))
			}
		}
		scratch := bitset.New(f.n)
		for _, ft := range feats[1:] {
			if out.Empty() {
				return out
			}
			ps, ok := f.inverted[ft.hash]
			if !ok {
				return bitset.New(f.n)
			}
			scratch.Clear()
			for _, p := range ps {
				if p.count >= ft.count {
					scratch.Add(int(p.gid))
				}
			}
			out.And(scratch)
		}
		return out
	}
}
