package ftv_test

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// liveExactAnswers is exactAnswers over a dataset with tombstones.
func liveExactAnswers(dataset []*graph.Graph, q *graph.Graph, qt ftv.QueryType) []int {
	var out []int
	for i, g := range dataset {
		if g == nil {
			continue
		}
		ok := iso.SubIso(q, g)
		if qt == ftv.Supergraph {
			ok = iso.SubIso(g, q)
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// TestDynamicMethodMutations drives a mutation sequence through every
// bundled dynamic filter and cross-checks each Run against exhaustive VF2
// over the live dataset after every mutation.
func TestDynamicMethodMutations(t *testing.T) {
	base := molecules(7, 12)
	extra := molecules(8, 4)
	builders := map[string]func([]*graph.Graph) *ftv.Method{
		"ggsx": func(ds []*graph.Graph) *ftv.Method { return ftv.NewGGSXMethod(ds, 3) },
		"label": func(ds []*graph.Graph) *ftv.Method {
			return ftv.NewDynamicMethod("label/vf2", ds,
				func(d []*graph.Graph) ftv.Filter { return ftv.NewLabelFilter(d) }, nil)
		},
		"stars": func(ds []*graph.Graph) *ftv.Method {
			return ftv.NewDynamicMethod("stars/vf2", ds,
				func(d []*graph.Graph) ftv.Filter { return ftv.NewStarFilter(d, 3) }, nil)
		},
	}
	queries := make([]*graph.Graph, 6)
	rng := rand.New(rand.NewSource(9))
	for i := range queries {
		queries[i] = gen.ExtractConnectedSubgraph(rng, base[i%len(base)], 4+i%4)
	}

	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			m := build(base)
			check := func(when string) {
				t.Helper()
				ds := m.Dataset()
				for qi, q := range queries {
					for _, qt := range []ftv.QueryType{ftv.Subgraph, ftv.Supergraph} {
						got := m.Run(q, qt).Answers.Indices()
						want := liveExactAnswers(ds, q, qt)
						if len(got) != len(want) {
							t.Fatalf("%s: query %d (%s): answers %v, want %v", when, qi, qt, got, want)
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s: query %d (%s): answers %v, want %v", when, qi, qt, got, want)
							}
						}
					}
				}
			}
			check("initial")

			gid, err := m.AddGraph(extra[0])
			if err != nil {
				t.Fatal(err)
			}
			if gid != len(base) {
				t.Fatalf("first added gid %d, want %d", gid, len(base))
			}
			if m.Epoch() != 1 || m.DatasetSize() != len(base)+1 || m.LiveCount() != len(base)+1 {
				t.Fatalf("shape after add: epoch %d size %d live %d", m.Epoch(), m.DatasetSize(), m.LiveCount())
			}
			check("after add")

			if err := m.RemoveGraph(2); err != nil {
				t.Fatal(err)
			}
			if m.Epoch() != 2 || m.DatasetSize() != len(base)+1 || m.LiveCount() != len(base) {
				t.Fatalf("shape after remove: epoch %d size %d live %d", m.Epoch(), m.DatasetSize(), m.LiveCount())
			}
			check("after remove")

			// Ids are never reused: the next addition lands past the
			// tombstone.
			gid2, err := m.AddGraph(extra[1])
			if err != nil {
				t.Fatal(err)
			}
			if gid2 != len(base)+1 {
				t.Fatalf("second added gid %d, want %d", gid2, len(base)+1)
			}
			check("after second add")

			if err := m.RemoveGraph(2); err == nil {
				t.Error("double removal should error")
			}
			if err := m.RemoveGraph(-1); err == nil {
				t.Error("negative gid should error")
			}
			if err := m.RemoveGraph(m.DatasetSize()); err == nil {
				t.Error("out-of-range gid should error")
			}
		})
	}
}

// TestViewSnapshotIsolation pins the copy-on-write contract: a view taken
// before a mutation keeps answering for its own epoch.
func TestViewSnapshotIsolation(t *testing.T) {
	base := molecules(17, 8)
	m := ftv.NewGGSXMethod(base, 3)
	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(18)), base[0], 4)

	old := m.View()
	oldCands := old.Candidates(q, ftv.Subgraph).Indices()

	if _, err := m.AddGraph(base[0]); err != nil { // duplicate: q surely matches it
		t.Fatal(err)
	}
	if err := m.RemoveGraph(0); err != nil {
		t.Fatal(err)
	}

	// The old view is frozen: same size, same candidates, epoch 0.
	if old.Epoch() != 0 || old.Size() != len(base) {
		t.Fatalf("old view mutated: epoch %d size %d", old.Epoch(), old.Size())
	}
	again := old.Candidates(q, ftv.Subgraph).Indices()
	if len(again) != len(oldCands) {
		t.Fatalf("old view candidates changed: %v vs %v", again, oldCands)
	}

	// The new view reflects both mutations and logs the addition.
	now := m.View()
	if now.Epoch() != 2 || now.Graph(0) != nil || now.Graph(len(base)) == nil {
		t.Fatalf("new view wrong: epoch %d", now.Epoch())
	}
	adds := now.AddsSince(0)
	if len(adds) != 1 || adds[0].GID != len(base) || adds[0].Epoch != 1 {
		t.Fatalf("AddsSince(0) = %v", adds)
	}
	if len(now.AddsSince(1)) != 0 {
		t.Fatalf("AddsSince(1) should be empty, got %v", now.AddsSince(1))
	}
}

// TestFiltersTolerateNilGraphs builds every bundled filter over a dataset
// with tombstoned (nil) positions directly and checks no candidate set
// ever posts a tombstoned id once masked through the method.
func TestFiltersTolerateNilGraphs(t *testing.T) {
	ds := molecules(27, 6)
	ds[1], ds[4] = nil, nil
	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(28)), ds[0], 4)
	methods := []*ftv.Method{
		ftv.NewMethod("ggsx", ds, ftv.NewGGSX(ds, 3), nil),
		ftv.NewMethod("label", ds, ftv.NewLabelFilter(ds), nil),
		ftv.NewMethod("stars", ds, ftv.NewStarFilter(ds, 3), nil),
		ftv.NewMethod("none", ds, ftv.NewNoFilter(len(ds)), nil),
	}
	for _, m := range methods {
		if m.LiveCount() != 4 {
			t.Fatalf("%s: live count %d, want 4", m.Name(), m.LiveCount())
		}
		for _, qt := range []ftv.QueryType{ftv.Subgraph, ftv.Supergraph} {
			m.Candidates(q, qt).ForEach(func(gid int) bool {
				if ds[gid] == nil {
					t.Fatalf("%s: tombstoned gid %d is a %s candidate", m.Name(), gid, qt)
				}
				return true
			})
		}
	}
}
