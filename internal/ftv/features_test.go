package ftv_test

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// Property: FeatureVector containment is a necessary condition for
// subgraph isomorphism — whenever VF2 finds an embedding, ContainedIn must
// agree. (The converse is deliberately false: the vector is a filter.)
func TestFeatureVectorContainmentNecessary(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	dataset := gen.Molecules(rng, 40, gen.DefaultMoleculeConfig())
	for i, g := range dataset {
		q := gen.ExtractConnectedSubgraph(rng, g, 2+i%6)
		if !iso.SubIso(q, g) {
			t.Fatalf("graph %d: extracted pattern is not a subgraph", i)
		}
		if !ftv.ExtractFeatures(q).ContainedIn(ftv.ExtractFeatures(g)) {
			t.Errorf("graph %d: feature vector rejects a true embedding", i)
		}
	}
}

func TestFeatureVectorRejectsObviousNonContainment(t *testing.T) {
	small := graph.MustNew([]graph.Label{1, 2}, [][2]int{{0, 1}})
	big := graph.MustNew([]graph.Label{1, 1, 1}, [][2]int{{0, 1}, {1, 2}})
	if ftv.ExtractFeatures(big).ContainedIn(ftv.ExtractFeatures(small)) {
		t.Error("larger graph reported containable in smaller")
	}
	// Label 2 is absent from big: the label bloom must fire.
	if ftv.ExtractFeatures(small).ContainedIn(ftv.ExtractFeatures(big)) {
		t.Error("missing label not caught")
	}
}

// The degree tail catches shapes label and path-count summaries miss: two
// 3-stars cannot embed into one 6-star plus an isolated vertex (only one
// vertex of degree ≥ 3 exists), though label multisets dominate.
func TestFeatureVectorDegreeTail(t *testing.T) {
	twoStars := graph.MustNew(make([]graph.Label, 8),
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}, {4, 7}})
	oneStar := graph.MustNew(make([]graph.Label, 8),
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}})
	if iso.SubIso(twoStars, oneStar) {
		t.Fatal("test premise broken: embedding should not exist")
	}
	if ftv.ExtractFeatures(twoStars).ContainedIn(ftv.ExtractFeatures(oneStar)) {
		t.Error("degree tail failed to reject two centers vs one")
	}
}

func TestFeatureVectorSelfContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, g := range gen.Molecules(rng, 20, gen.DefaultMoleculeConfig()) {
		fv := ftv.ExtractFeatures(g)
		if !fv.ContainedIn(fv) {
			t.Fatal("vector not contained in itself")
		}
	}
}
