package ftv

import (
	"fmt"
	"sort"

	"graphcache/internal/bitset"
	"graphcache/internal/graph"
)

// GGSX is a GraphGrepSX-style FTV filter: a suffix trie over the
// vertex-label sequences of simple paths with at most MaxLen edges,
// annotated with per-graph occurrence counts.
//
// Soundness: an embedding of q into G maps every directed simple path of q
// to a distinct directed simple path of G with the same label sequence, so
// count_q(f) ≤ count_G(f) for every path feature f is necessary for
// q ⊑ G (and dually for supergraph queries). Both dataset and query paths
// are enumerated as directed traversals, so the counting convention
// cancels out.
//
// The trie stores a node per distinct label-sequence prefix; postings are
// (graph id, count) pairs sorted by id. A per-graph forward index of
// (node id, count) pairs supports the supergraph direction.
type GGSX struct {
	maxLen  int
	n       int
	root    *trieNode
	nodes   []*trieNode // by node id
	forward [][]nodeCount
	bytes   int
}

type trieNode struct {
	id       int32
	children map[trieKey]*trieNode
	postings []posting // sorted by gid
	minCount int32     // smallest per-graph count (supergraph fast reject helper)
}

// trieKey is one trie step: the edge label leading to the vertex (0 for
// the path's first vertex and for unlabelled edges) plus the vertex label.
// Edge labels participating in the key carry the paper's generalization to
// edge-labelled graphs through the filter.
type trieKey struct {
	edge   graph.Label
	vertex graph.Label
}

type posting struct {
	gid   int32
	count int32
}

type nodeCount struct {
	node  int32
	count int32
}

// NewGGSX builds the index over the dataset, indexing label paths with up
// to maxLen edges (maxLen+1 vertices). maxLen is the "feature size" knob
// of experiment EXP-II; GraphGrepSX's customary default is 4.
func NewGGSX(dataset []*graph.Graph, maxLen int) *GGSX {
	if maxLen < 0 {
		maxLen = 0
	}
	x := &GGSX{
		maxLen:  maxLen,
		n:       len(dataset),
		root:    &trieNode{id: -1, children: make(map[trieKey]*trieNode)},
		forward: make([][]nodeCount, len(dataset)),
	}
	for gid, g := range dataset {
		if g == nil { // tombstoned id: indexed as empty
			continue
		}
		counts := x.countPaths(g)
		fwd := make([]nodeCount, 0, len(counts))
		for node, c := range counts {
			x.nodes[node].postings = append(x.nodes[node].postings, posting{int32(gid), c})
			fwd = append(fwd, nodeCount{node, c})
		}
		sort.Slice(fwd, func(i, j int) bool { return fwd[i].node < fwd[j].node })
		x.forward[gid] = fwd
	}
	// Postings were appended in increasing gid order already (dataset loop),
	// but sort defensively and compute summary stats.
	for _, nd := range x.nodes {
		sort.Slice(nd.postings, func(i, j int) bool { return nd.postings[i].gid < nd.postings[j].gid })
		nd.minCount = 1 << 30
		for _, p := range nd.postings {
			if p.count < nd.minCount {
				nd.minCount = p.count
			}
		}
	}
	x.bytes = x.computeBytes()
	return x
}

// countPaths enumerates all directed simple paths of g with ≤ maxLen edges
// (following out-edges, which covers both directions for undirected
// graphs) and returns occurrence counts keyed by trie node id, creating
// trie nodes on demand.
func (x *GGSX) countPaths(g *graph.Graph) map[int32]int32 {
	counts := make(map[int32]int32)
	inPath := make([]bool, g.N())
	// extend grows a path currently ending at v with `edges` edges.
	var extend func(v int, node *trieNode, edges int)
	extend = func(v int, node *trieNode, edges int) {
		if edges == x.maxLen {
			return
		}
		inPath[v] = true
		for _, w := range g.OutNeighbors(v) {
			if inPath[w] {
				continue
			}
			child := x.child(node, trieKey{g.EdgeLabel(v, int(w)), g.Label(int(w))})
			counts[child.id]++
			extend(int(w), child, edges+1)
		}
		inPath[v] = false
	}
	for v := 0; v < g.N(); v++ {
		child := x.child(x.root, trieKey{0, g.Label(v)})
		counts[child.id]++
		extend(v, child, 0)
	}
	return counts
}

// child returns the child of nd for the key, creating it if needed.
func (x *GGSX) child(nd *trieNode, k trieKey) *trieNode {
	if c, ok := nd.children[k]; ok {
		return c
	}
	c := &trieNode{id: int32(len(x.nodes)), children: make(map[trieKey]*trieNode)}
	nd.children[k] = c
	x.nodes = append(x.nodes, c)
	return c
}

// queryCounts enumerates the query's path features against the existing
// trie. Paths absent from the trie are reported via the missing flag
// (meaningful for subgraph queries: no dataset graph contains them).
// Nodes are NOT created for unseen query paths.
func (x *GGSX) queryCounts(q *graph.Graph) (counts map[int32]int32, missing bool) {
	counts = make(map[int32]int32)
	inPath := make([]bool, q.N())
	var extend func(v int, node *trieNode, edges int)
	extend = func(v int, node *trieNode, edges int) {
		if edges == x.maxLen {
			return
		}
		inPath[v] = true
		for _, w := range q.OutNeighbors(v) {
			if inPath[w] {
				continue
			}
			child, ok := node.children[trieKey{q.EdgeLabel(v, int(w)), q.Label(int(w))}]
			if !ok {
				missing = true
				continue
			}
			counts[child.id]++
			extend(int(w), child, edges+1)
		}
		inPath[v] = false
	}
	for v := 0; v < q.N(); v++ {
		child, ok := x.root.children[trieKey{0, q.Label(v)}]
		if !ok {
			missing = true
			continue
		}
		counts[child.id]++
		extend(v, child, 0)
	}
	return counts, missing
}

// WithGraph implements InsertableFilter: an incremental, copy-on-write
// trie insert. Only g's own label paths are enumerated (the same walk
// NewGGSX does for one dataset graph — O(graph)); every trie node the
// walk touches is replaced by a private copy carrying the new posting,
// and every untouched node, posting list and child map is shared with
// the receiver, which is never modified. The per-touched-node copy keeps
// old snapshots exact forever: a reader holding the receiver never
// observes the new gid.
//
// Cost: O(paths(g)) feature enumeration plus, per touched node, one flat
// posting-list copy (the new gid is the largest, so the append preserves
// the sort order) — no other dataset graph is ever revisited, whereas
// the factory rebuild re-enumerates the paths of the whole dataset.
func (x *GGSX) WithGraph(gid int, g *graph.Graph) Filter {
	if gid < x.n {
		panic(fmt.Sprintf("ftv: GGSX.WithGraph gid %d is inside the indexed id space [0,%d) — additions only append", gid, x.n))
	}
	x2 := &GGSX{
		maxLen:  x.maxLen,
		n:       gid + 1,
		nodes:   make([]*trieNode, len(x.nodes)),
		forward: make([][]nodeCount, gid+1),
		bytes:   x.bytes,
	}
	copy(x2.nodes, x.nodes)
	copy(x2.forward, x.forward)
	// Positions [x.n, gid) are implicit tombstones: indexed as empty, but
	// still charged the empty forward-row overhead computeBytes counts.
	x2.bytes += 24 * (gid - x.n)

	// The root is always touched (every vertex starts a path); its private
	// copy initially shares the child map, cloned only if g introduces a
	// new first-step feature.
	x2.root = &trieNode{id: -1, children: x.root.children, minCount: x.root.minCount}
	ins := &ggsxInserter{
		x2:   x2,
		priv: map[int32]*trieNode{-1: x2.root},
	}

	counts := ins.insertPaths(g)
	fwd := make([]nodeCount, 0, len(counts))
	for node, c := range counts {
		nd := ins.priv[node] // every counted node was stepped into, hence private
		// Full slice expression: the append reallocates instead of
		// scribbling over a posting array the receiver still exposes.
		nd.postings = append(nd.postings[:len(nd.postings):len(nd.postings)], posting{int32(gid), c})
		if c < nd.minCount {
			nd.minCount = c
		}
		x2.bytes += 8
		fwd = append(fwd, nodeCount{node, c})
	}
	sort.Slice(fwd, func(i, j int) bool { return fwd[i].node < fwd[j].node })
	x2.forward[gid] = fwd
	x2.bytes += 24 + 8*len(fwd)
	return x2
}

// ggsxInserter carries the copy-on-write state of one WithGraph call:
// priv maps node ids (-1 for the root) to their private copies, ownMap
// marks private nodes whose child map has already been cloned (maps,
// unlike slices, cannot be shared once written).
type ggsxInserter struct {
	x2     *GGSX
	priv   map[int32]*trieNode
	ownMap map[int32]bool
}

// step descends from the PRIVATE node nd along key k, returning a private
// child: an existing shared child is copied (sharing its postings and
// child map until they are written), a missing one is created fresh —
// mirroring what NewGGSX's child() would have built.
func (ins *ggsxInserter) step(nd *trieNode, k trieKey) *trieNode {
	if c, ok := nd.children[k]; ok {
		if p, ok := ins.priv[c.id]; ok {
			return p
		}
		p := &trieNode{id: c.id, children: c.children, postings: c.postings, minCount: c.minCount}
		ins.priv[c.id] = p
		ins.x2.nodes[c.id] = p
		ins.ownChildren(nd)[k] = p
		return p
	}
	c := &trieNode{id: int32(len(ins.x2.nodes)), children: make(map[trieKey]*trieNode)}
	ins.priv[c.id] = c
	ins.setOwn(c.id)
	ins.x2.nodes = append(ins.x2.nodes, c)
	ins.ownChildren(nd)[k] = c
	ins.x2.bytes += 64 + 16 // node struct + the parent's new map entry
	c.minCount = 1 << 30    // no postings yet; the insert loop lowers it
	return c
}

// ownChildren returns nd's child map, cloning it first if it is still
// shared with the receiver. Caller is about to write into it.
func (ins *ggsxInserter) ownChildren(nd *trieNode) map[trieKey]*trieNode {
	if !ins.ownMap[nd.id] {
		m := make(map[trieKey]*trieNode, len(nd.children)+1)
		for k, v := range nd.children {
			m[k] = v
		}
		nd.children = m
		ins.setOwn(nd.id)
	}
	return nd.children
}

func (ins *ggsxInserter) setOwn(id int32) {
	if ins.ownMap == nil {
		ins.ownMap = make(map[int32]bool)
	}
	ins.ownMap[id] = true
}

// insertPaths is countPaths against the copy-on-write trie: identical
// path enumeration, but descending from the private root through private
// copies so the new postings never touch shared nodes.
func (ins *ggsxInserter) insertPaths(g *graph.Graph) map[int32]int32 {
	counts := make(map[int32]int32)
	inPath := make([]bool, g.N())
	var extend func(v int, node *trieNode, edges int)
	extend = func(v int, node *trieNode, edges int) {
		if edges == ins.x2.maxLen {
			return
		}
		inPath[v] = true
		for _, w := range g.OutNeighbors(v) {
			if inPath[w] {
				continue
			}
			child := ins.step(node, trieKey{g.EdgeLabel(v, int(w)), g.Label(int(w))})
			counts[child.id]++
			extend(int(w), child, edges+1)
		}
		inPath[v] = false
	}
	for v := 0; v < g.N(); v++ {
		child := ins.step(ins.x2.root, trieKey{0, g.Label(v)})
		counts[child.id]++
		extend(v, child, 0)
	}
	return counts
}

// Name implements Filter.
func (x *GGSX) Name() string { return "ggsx" }

// MaxLen returns the indexed feature size (path length in edges).
func (x *GGSX) MaxLen() int { return x.maxLen }

// NodeCount returns the number of trie nodes (distinct features).
func (x *GGSX) NodeCount() int { return len(x.nodes) }

// IndexBytes implements Filter.
func (x *GGSX) IndexBytes() int { return x.bytes }

func (x *GGSX) computeBytes() int {
	b := 0
	for _, nd := range x.nodes {
		b += 64                    // node struct + map header
		b += 16 * len(nd.children) // map entries
		b += 8 * len(nd.postings)  // postings
	}
	for _, fwd := range x.forward {
		b += 24 + 8*len(fwd)
	}
	return b
}

// Candidates implements Filter.
func (x *GGSX) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	switch qt {
	case Supergraph:
		return x.supergraphCandidates(q)
	default:
		return x.subgraphCandidates(q)
	}
}

// subgraphCandidates: G is a candidate iff count_G(f) ≥ count_q(f) for all
// query features f. Implemented as intersection over posting lists,
// cheapest feature first.
func (x *GGSX) subgraphCandidates(q *graph.Graph) *bitset.Set {
	qc, missing := x.queryCounts(q)
	if missing {
		return bitset.New(x.n) // some query path occurs in no dataset graph
	}
	if len(qc) == 0 {
		return bitset.NewFull(x.n) // empty query matches everything
	}
	// Order features by posting-list length so the working set shrinks fast.
	feats := make([]nodeCount, 0, len(qc))
	for node, c := range qc {
		feats = append(feats, nodeCount{node, c})
	}
	sort.Slice(feats, func(i, j int) bool {
		return len(x.nodes[feats[i].node].postings) < len(x.nodes[feats[j].node].postings)
	})

	out := bitset.New(x.n)
	first := x.nodes[feats[0].node].postings
	for _, p := range first {
		if p.count >= feats[0].count {
			out.Add(int(p.gid))
		}
	}
	scratch := bitset.New(x.n)
	for _, f := range feats[1:] {
		if out.Empty() {
			return out
		}
		nd := x.nodes[f.node]
		if nd.minCount >= f.count && len(nd.postings) == x.n {
			continue // every graph qualifies; skip the intersection
		}
		scratch.Clear()
		for _, p := range nd.postings {
			if p.count >= f.count {
				scratch.Add(int(p.gid))
			}
		}
		out.And(scratch)
	}
	return out
}

// supergraphCandidates: G is a candidate iff count_G(f) ≤ count_q(f) for
// all of G's features f, checked against the per-graph forward index.
func (x *GGSX) supergraphCandidates(q *graph.Graph) *bitset.Set {
	qc, _ := x.queryCounts(q) // missing paths are fine here
	out := bitset.New(x.n)
graphs:
	for gid, fwd := range x.forward {
		for _, nc := range fwd {
			if qc[nc.node] < nc.count {
				continue graphs
			}
		}
		out.Add(gid)
	}
	return out
}
