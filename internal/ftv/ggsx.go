package ftv

import (
	"sort"

	"graphcache/internal/bitset"
	"graphcache/internal/graph"
)

// GGSX is a GraphGrepSX-style FTV filter: a suffix trie over the
// vertex-label sequences of simple paths with at most MaxLen edges,
// annotated with per-graph occurrence counts.
//
// Soundness: an embedding of q into G maps every directed simple path of q
// to a distinct directed simple path of G with the same label sequence, so
// count_q(f) ≤ count_G(f) for every path feature f is necessary for
// q ⊑ G (and dually for supergraph queries). Both dataset and query paths
// are enumerated as directed traversals, so the counting convention
// cancels out.
//
// The trie stores a node per distinct label-sequence prefix; postings are
// (graph id, count) pairs sorted by id. A per-graph forward index of
// (node id, count) pairs supports the supergraph direction.
type GGSX struct {
	maxLen  int
	n       int
	root    *trieNode
	nodes   []*trieNode // by node id
	forward [][]nodeCount
	bytes   int
}

type trieNode struct {
	id       int32
	children map[trieKey]*trieNode
	postings []posting // sorted by gid
	minCount int32     // smallest per-graph count (supergraph fast reject helper)
}

// trieKey is one trie step: the edge label leading to the vertex (0 for
// the path's first vertex and for unlabelled edges) plus the vertex label.
// Edge labels participating in the key carry the paper's generalization to
// edge-labelled graphs through the filter.
type trieKey struct {
	edge   graph.Label
	vertex graph.Label
}

type posting struct {
	gid   int32
	count int32
}

type nodeCount struct {
	node  int32
	count int32
}

// NewGGSX builds the index over the dataset, indexing label paths with up
// to maxLen edges (maxLen+1 vertices). maxLen is the "feature size" knob
// of experiment EXP-II; GraphGrepSX's customary default is 4.
func NewGGSX(dataset []*graph.Graph, maxLen int) *GGSX {
	if maxLen < 0 {
		maxLen = 0
	}
	x := &GGSX{
		maxLen:  maxLen,
		n:       len(dataset),
		root:    &trieNode{id: -1, children: make(map[trieKey]*trieNode)},
		forward: make([][]nodeCount, len(dataset)),
	}
	for gid, g := range dataset {
		if g == nil { // tombstoned id: indexed as empty
			continue
		}
		counts := x.countPaths(g)
		fwd := make([]nodeCount, 0, len(counts))
		for node, c := range counts {
			x.nodes[node].postings = append(x.nodes[node].postings, posting{int32(gid), c})
			fwd = append(fwd, nodeCount{node, c})
		}
		sort.Slice(fwd, func(i, j int) bool { return fwd[i].node < fwd[j].node })
		x.forward[gid] = fwd
	}
	// Postings were appended in increasing gid order already (dataset loop),
	// but sort defensively and compute summary stats.
	for _, nd := range x.nodes {
		sort.Slice(nd.postings, func(i, j int) bool { return nd.postings[i].gid < nd.postings[j].gid })
		nd.minCount = 1 << 30
		for _, p := range nd.postings {
			if p.count < nd.minCount {
				nd.minCount = p.count
			}
		}
	}
	x.bytes = x.computeBytes()
	return x
}

// countPaths enumerates all directed simple paths of g with ≤ maxLen edges
// (following out-edges, which covers both directions for undirected
// graphs) and returns occurrence counts keyed by trie node id, creating
// trie nodes on demand.
func (x *GGSX) countPaths(g *graph.Graph) map[int32]int32 {
	counts := make(map[int32]int32)
	inPath := make([]bool, g.N())
	// extend grows a path currently ending at v with `edges` edges.
	var extend func(v int, node *trieNode, edges int)
	extend = func(v int, node *trieNode, edges int) {
		if edges == x.maxLen {
			return
		}
		inPath[v] = true
		for _, w := range g.OutNeighbors(v) {
			if inPath[w] {
				continue
			}
			child := x.child(node, trieKey{g.EdgeLabel(v, int(w)), g.Label(int(w))})
			counts[child.id]++
			extend(int(w), child, edges+1)
		}
		inPath[v] = false
	}
	for v := 0; v < g.N(); v++ {
		child := x.child(x.root, trieKey{0, g.Label(v)})
		counts[child.id]++
		extend(v, child, 0)
	}
	return counts
}

// child returns the child of nd for the key, creating it if needed.
func (x *GGSX) child(nd *trieNode, k trieKey) *trieNode {
	if c, ok := nd.children[k]; ok {
		return c
	}
	c := &trieNode{id: int32(len(x.nodes)), children: make(map[trieKey]*trieNode)}
	nd.children[k] = c
	x.nodes = append(x.nodes, c)
	return c
}

// queryCounts enumerates the query's path features against the existing
// trie. Paths absent from the trie are reported via the missing flag
// (meaningful for subgraph queries: no dataset graph contains them).
// Nodes are NOT created for unseen query paths.
func (x *GGSX) queryCounts(q *graph.Graph) (counts map[int32]int32, missing bool) {
	counts = make(map[int32]int32)
	inPath := make([]bool, q.N())
	var extend func(v int, node *trieNode, edges int)
	extend = func(v int, node *trieNode, edges int) {
		if edges == x.maxLen {
			return
		}
		inPath[v] = true
		for _, w := range q.OutNeighbors(v) {
			if inPath[w] {
				continue
			}
			child, ok := node.children[trieKey{q.EdgeLabel(v, int(w)), q.Label(int(w))}]
			if !ok {
				missing = true
				continue
			}
			counts[child.id]++
			extend(int(w), child, edges+1)
		}
		inPath[v] = false
	}
	for v := 0; v < q.N(); v++ {
		child, ok := x.root.children[trieKey{0, q.Label(v)}]
		if !ok {
			missing = true
			continue
		}
		counts[child.id]++
		extend(v, child, 0)
	}
	return counts, missing
}

// Name implements Filter.
func (x *GGSX) Name() string { return "ggsx" }

// MaxLen returns the indexed feature size (path length in edges).
func (x *GGSX) MaxLen() int { return x.maxLen }

// NodeCount returns the number of trie nodes (distinct features).
func (x *GGSX) NodeCount() int { return len(x.nodes) }

// IndexBytes implements Filter.
func (x *GGSX) IndexBytes() int { return x.bytes }

func (x *GGSX) computeBytes() int {
	b := 0
	for _, nd := range x.nodes {
		b += 64                    // node struct + map header
		b += 16 * len(nd.children) // map entries
		b += 8 * len(nd.postings)  // postings
	}
	for _, fwd := range x.forward {
		b += 24 + 8*len(fwd)
	}
	return b
}

// Candidates implements Filter.
func (x *GGSX) Candidates(q *graph.Graph, qt QueryType) *bitset.Set {
	switch qt {
	case Supergraph:
		return x.supergraphCandidates(q)
	default:
		return x.subgraphCandidates(q)
	}
}

// subgraphCandidates: G is a candidate iff count_G(f) ≥ count_q(f) for all
// query features f. Implemented as intersection over posting lists,
// cheapest feature first.
func (x *GGSX) subgraphCandidates(q *graph.Graph) *bitset.Set {
	qc, missing := x.queryCounts(q)
	if missing {
		return bitset.New(x.n) // some query path occurs in no dataset graph
	}
	if len(qc) == 0 {
		return bitset.NewFull(x.n) // empty query matches everything
	}
	// Order features by posting-list length so the working set shrinks fast.
	feats := make([]nodeCount, 0, len(qc))
	for node, c := range qc {
		feats = append(feats, nodeCount{node, c})
	}
	sort.Slice(feats, func(i, j int) bool {
		return len(x.nodes[feats[i].node].postings) < len(x.nodes[feats[j].node].postings)
	})

	out := bitset.New(x.n)
	first := x.nodes[feats[0].node].postings
	for _, p := range first {
		if p.count >= feats[0].count {
			out.Add(int(p.gid))
		}
	}
	scratch := bitset.New(x.n)
	for _, f := range feats[1:] {
		if out.Empty() {
			return out
		}
		nd := x.nodes[f.node]
		if nd.minCount >= f.count && len(nd.postings) == x.n {
			continue // every graph qualifies; skip the intersection
		}
		scratch.Clear()
		for _, p := range nd.postings {
			if p.count >= f.count {
				scratch.Add(int(p.gid))
			}
		}
		out.And(scratch)
	}
	return out
}

// supergraphCandidates: G is a candidate iff count_G(f) ≤ count_q(f) for
// all of G's features f, checked against the per-graph forward index.
func (x *GGSX) supergraphCandidates(q *graph.Graph) *bitset.Set {
	qc, _ := x.queryCounts(q) // missing paths are fine here
	out := bitset.New(x.n)
graphs:
	for gid, fwd := range x.forward {
		for _, nc := range fwd {
			if qc[nc.node] < nc.count {
				continue graphs
			}
		}
		out.Add(gid)
	}
	return out
}
