package ftv_test

import (
	"math/rand"
	"testing"

	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

func TestStarFilterSound(t *testing.T) {
	dataset := molecules(31, 40)
	rng := rand.New(rand.NewSource(32))
	f := ftv.NewStarFilter(dataset, 3)
	sampler := gen.NewAIDSLabelSampler(8)
	for trial := 0; trial < 25; trial++ {
		src := dataset[rng.Intn(len(dataset))]
		sub := gen.ExtractConnectedSubgraph(rng, src, 3+rng.Intn(8))
		super := gen.Augment(rng, src, 2, 1, sampler)

		subTruth := exactAnswers(dataset, sub, ftv.Subgraph)
		if !subTruth.SubsetOf(f.Candidates(sub, ftv.Subgraph)) {
			t.Fatalf("trial %d: star filter drops subgraph answers", trial)
		}
		superTruth := exactAnswers(dataset, super, ftv.Supergraph)
		if !superTruth.SubsetOf(f.Candidates(super, ftv.Supergraph)) {
			t.Fatalf("trial %d: star filter drops supergraph answers", trial)
		}
	}
}

func TestStarFilterPrunes(t *testing.T) {
	dataset := molecules(33, 60)
	rng := rand.New(rand.NewSource(34))
	f := ftv.NewStarFilter(dataset, 3)
	total, full := 0, 0
	for trial := 0; trial < 30; trial++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 6)
		total += f.Candidates(q, ftv.Subgraph).Count()
		full += len(dataset)
	}
	if total >= full {
		t.Errorf("star filter pruned nothing: %d of %d", total, full)
	}
	if f.IndexBytes() <= 0 {
		t.Error("star filter should report positive index bytes")
	}
	if f.Name() != "stars" {
		t.Error("name wrong")
	}
}

func TestStarFilterStarCountsExact(t *testing.T) {
	// A star K1,3 with center label 9 and leaves 1,1,2: the filter must
	// require a center-9 vertex with ≥2 label-1 and ≥1 label-2 neighbors.
	pattern := graph.MustNew([]graph.Label{9, 1, 1, 2}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	yes := graph.MustNew([]graph.Label{9, 1, 1, 2, 5}, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	no := graph.MustNew([]graph.Label{9, 1, 2, 2}, [][2]int{{0, 1}, {0, 2}, {0, 3}})

	f := ftv.NewStarFilter([]*graph.Graph{yes.WithID(0), no.WithID(1)}, 3)
	c := f.Candidates(pattern, ftv.Subgraph)
	if !c.Contains(0) {
		t.Error("true match filtered out")
	}
	if c.Contains(1) {
		t.Error("star with wrong leaf multiset not filtered")
	}
}

func TestStarFilterDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	dataset := gen.Circuits(rng, 20, gen.DefaultCircuitConfig())
	f := ftv.NewStarFilter(dataset, 2)
	for trial := 0; trial < 15; trial++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 2+rng.Intn(4))
		truth := exactAnswers(dataset, q, ftv.Subgraph)
		if !truth.SubsetOf(f.Candidates(q, ftv.Subgraph)) {
			t.Fatalf("trial %d: directed star filter drops answers", trial)
		}
	}
}

func TestStarMethodExact(t *testing.T) {
	dataset := molecules(36, 25)
	rng := rand.New(rand.NewSource(37))
	m := ftv.NewMethod("stars/vf2", dataset, ftv.NewStarFilter(dataset, 3), nil)
	ref := ftv.NewGGSXMethod(dataset, 3)
	for trial := 0; trial < 10; trial++ {
		q := gen.ExtractConnectedSubgraph(rng, dataset[rng.Intn(len(dataset))], 5)
		if !m.Run(q, ftv.Subgraph).Answers.Equal(ref.Run(q, ftv.Subgraph).Answers) {
			t.Fatal("star method disagrees with GGSX method")
		}
	}
}

func TestStarFilterEmptyQuery(t *testing.T) {
	dataset := molecules(38, 5)
	f := ftv.NewStarFilter(dataset, 3)
	q := graph.MustNew(nil, nil)
	if c := f.Candidates(q, ftv.Subgraph); c.Count() != 5 {
		t.Errorf("empty query should match all graphs, got %d", c.Count())
	}
	// Single vertex has no star features either.
	one := graph.MustNew([]graph.Label{0}, nil)
	if c := f.Candidates(one, ftv.Subgraph); c.Count() != 5 {
		t.Errorf("star-free query should match all graphs, got %d", c.Count())
	}
}

func TestStarFilterUnseenFeature(t *testing.T) {
	dataset := molecules(39, 10)
	f := ftv.NewStarFilter(dataset, 3)
	q := graph.MustNew([]graph.Label{200, 201}, [][2]int{{0, 1}})
	if c := f.Candidates(q, ftv.Subgraph); !c.Empty() {
		t.Errorf("unseen star feature should yield no candidates, got %d", c.Count())
	}
}
