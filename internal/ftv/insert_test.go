package ftv_test

import (
	"math/rand"
	"testing"

	"graphcache/internal/bitset"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// insertableBuilders is every bundled filter, built directly (not through
// a method) so the incremental inserts can be compared against from-
// scratch rebuilds over the identical dataset slice.
func insertableBuilders() map[string]func([]*graph.Graph) ftv.Filter {
	return map[string]func([]*graph.Graph) ftv.Filter{
		"ggsx":  func(ds []*graph.Graph) ftv.Filter { return ftv.NewGGSX(ds, 3) },
		"label": func(ds []*graph.Graph) ftv.Filter { return ftv.NewLabelFilter(ds) },
		"stars": func(ds []*graph.Graph) ftv.Filter { return ftv.NewStarFilter(ds, 3) },
		"none":  func(ds []*graph.Graph) ftv.Filter { return ftv.NewNoFilter(len(ds)) },
	}
}

// TestWithGraphEquivalentToRebuild is the incremental-insert correctness
// property: after any sequence of WithGraph inserts (interleaved with
// tombstones in the dataset slice), the incremental filter's candidate
// sets — masked by the live ids exactly like DatasetView.Candidates does
// — are byte-identical to a filter rebuilt from scratch over the final
// dataset, for a spread of queries in both directions.
func TestWithGraphEquivalentToRebuild(t *testing.T) {
	base := molecules(31, 10)
	extra := molecules(32, 6)
	rng := rand.New(rand.NewSource(33))
	queries := make([]*graph.Graph, 8)
	for i := range queries {
		src := base[i%len(base)]
		if i%3 == 2 {
			src = extra[i%len(extra)]
		}
		queries[i] = gen.ExtractConnectedSubgraph(rng, src, 3+i%4)
	}

	for name, build := range insertableBuilders() {
		t.Run(name, func(t *testing.T) {
			dataset := append([]*graph.Graph(nil), base...)
			incr := build(dataset)
			step := func(what string) {
				t.Helper()
				rebuilt := build(dataset)
				live := liveMask(dataset)
				for qi, q := range queries {
					for _, qt := range []ftv.QueryType{ftv.Subgraph, ftv.Supergraph} {
						got := incr.Candidates(q, qt)
						got.And(live)
						want := rebuilt.Candidates(q, qt)
						want.And(live)
						if !got.Equal(want) {
							t.Fatalf("%s: query %d (%s): incremental candidates %v, rebuilt %v",
								what, qi, qt, got, want)
						}
					}
				}
			}
			step("initial")
			for i, g := range extra {
				ins, ok := incr.(ftv.InsertableFilter)
				if !ok {
					t.Fatalf("%T lost the InsertableFilter capability after %d inserts", incr, i)
				}
				gid := len(dataset)
				dataset = append(dataset, g)
				incr = ins.WithGraph(gid, g)
				// Interleave a tombstone so the insert path is exercised
				// over datasets with holes (the filter keeps its postings;
				// the live mask hides them, like the method does).
				if i%2 == 1 {
					dataset[i] = nil
				}
				step("after insert")
			}
		})
	}
}

// liveMask returns the non-tombstoned positions of dataset as a bitset.
func liveMask(dataset []*graph.Graph) *bitset.Set {
	s := bitset.New(len(dataset))
	for i, g := range dataset {
		if g != nil {
			s.Add(i)
		}
	}
	return s
}

// TestWithGraphLeavesReceiverIntact pins the copy-on-write contract at
// the filter level: a filter snapshot taken before an insert keeps
// answering exactly as before — the new gid never leaks into it, and its
// candidate sets stay sized to the old id space.
func TestWithGraphLeavesReceiverIntact(t *testing.T) {
	base := molecules(41, 8)
	extra := molecules(42, 3)
	q := gen.ExtractConnectedSubgraph(rand.New(rand.NewSource(43)), base[0], 4)

	for name, build := range insertableBuilders() {
		t.Run(name, func(t *testing.T) {
			old := build(base)
			var before [2]string
			for i, qt := range []ftv.QueryType{ftv.Subgraph, ftv.Supergraph} {
				before[i] = old.Candidates(q, qt).String()
			}
			oldBytes := old.IndexBytes()

			f := old
			for i, g := range extra {
				f = f.(ftv.InsertableFilter).WithGraph(len(base)+i, g)
			}
			for i, qt := range []ftv.QueryType{ftv.Subgraph, ftv.Supergraph} {
				c := old.Candidates(q, qt)
				if c.Len() != len(base) {
					t.Fatalf("old filter's candidate capacity grew to %d", c.Len())
				}
				if c.String() != before[i] {
					t.Fatalf("old filter's %s candidates changed: %s vs %s", qt, c.String(), before[i])
				}
			}
			if old.IndexBytes() != oldBytes {
				t.Fatalf("old filter's IndexBytes changed: %d vs %d", old.IndexBytes(), oldBytes)
			}
			if f.IndexBytes() < oldBytes {
				t.Fatalf("%s: grown filter reports fewer bytes (%d) than its base (%d)", name, f.IndexBytes(), oldBytes)
			}
		})
	}
}

// TestAddGraphUsesIncrementalInsert is the tentpole counter assertion:
// a dynamic method whose filter is insertable (all bundled ones) never
// calls the FilterFactory rebuild on AddGraph, while a RebuildOnly-
// wrapped filter forces the fallback path every time.
func TestAddGraphUsesIncrementalInsert(t *testing.T) {
	base := molecules(51, 8)
	extra := molecules(52, 4)

	m := ftv.NewGGSXMethod(base, 3)
	for _, g := range extra {
		if _, err := m.AddGraph(g); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FilterInserts(); got != int64(len(extra)) {
		t.Errorf("filter inserts %d, want %d", got, len(extra))
	}
	if got := m.FilterRebuilds(); got != 0 {
		t.Errorf("GGSX AddGraph fell back to %d full rebuilds, want 0", got)
	}

	forced := ftv.NewDynamicMethod("ggsx-rebuild/vf2", base,
		func(ds []*graph.Graph) ftv.Filter { return ftv.RebuildOnly(ftv.NewGGSX(ds, 3)) }, nil)
	for _, g := range extra {
		if _, err := forced.AddGraph(g); err != nil {
			t.Fatal(err)
		}
	}
	if got := forced.FilterRebuilds(); got != int64(len(extra)) {
		t.Errorf("RebuildOnly rebuilds %d, want %d", got, len(extra))
	}
	if got := forced.FilterInserts(); got != 0 {
		t.Errorf("RebuildOnly recorded %d inserts, want 0", got)
	}

	// Both maintenance strategies stay answer-equivalent.
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 6; i++ {
		q := gen.ExtractConnectedSubgraph(rng, extra[i%len(extra)], 3+i%3)
		for _, qt := range []ftv.QueryType{ftv.Subgraph, ftv.Supergraph} {
			a := m.Run(q, qt).Answers
			b := forced.Run(q, qt).Answers
			if !a.Equal(b) {
				t.Fatalf("query %d (%s): incremental answers %v, rebuilt %v", i, qt, a, b)
			}
		}
	}
}

// TestCompactAdditions pins the log-compaction contract: records at or
// below the floor disappear, records above survive, the epoch and
// dataset are untouched, and snapshots taken before the compaction keep
// the full log.
func TestCompactAdditions(t *testing.T) {
	base := molecules(61, 6)
	extra := molecules(62, 4)
	m := ftv.NewGGSXMethod(base, 3)
	for _, g := range extra {
		if _, err := m.AddGraph(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RemoveGraph(1); err != nil { // removals never enter the log
		t.Fatal(err)
	}
	if got := m.AdditionLogLen(); got != len(extra) {
		t.Fatalf("log length %d, want %d", got, len(extra))
	}
	pre := m.View()

	if dropped := m.CompactAdditions(2); dropped != 2 {
		t.Fatalf("CompactAdditions(2) dropped %d records, want 2", dropped)
	}
	if got := m.AdditionLogLen(); got != len(extra)-2 {
		t.Fatalf("log length after compaction %d, want %d", got, len(extra)-2)
	}
	if m.Epoch() != int64(len(extra))+1 {
		t.Fatalf("compaction changed the epoch: %d", m.Epoch())
	}
	v := m.View()
	if got := v.AddsSince(0); len(got) != len(extra)-2 || got[0].Epoch != 3 {
		t.Fatalf("AddsSince(0) after compaction = %v", got)
	}
	if got := v.AddsSince(2); len(got) != len(extra)-2 {
		t.Fatalf("AddsSince(2) after compaction = %v", got)
	}
	// The pre-compaction snapshot still reports the full delta.
	if got := pre.AddsSince(0); len(got) != len(extra) {
		t.Fatalf("pre-compaction view lost records: %v", got)
	}

	// Idempotent below the floor; MaxInt-style floors drain the log.
	if dropped := m.CompactAdditions(2); dropped != 0 {
		t.Fatalf("second CompactAdditions(2) dropped %d", dropped)
	}
	if dropped := m.CompactAdditions(m.Epoch()); dropped != len(extra)-2 {
		t.Fatalf("CompactAdditions(epoch) dropped %d, want %d", dropped, len(extra)-2)
	}
	if got := m.AdditionLogLen(); got != 0 {
		t.Fatalf("log not drained: %d records left", got)
	}
}
